"""Crash sweep: node failure rate x parity strength.

The LH*_RS availability claim (§5 of the paper's substrate reference):
with ``k`` parity buckets per group the file keeps answering every
query while up to ``k`` member buckets are down, and rebuilds them
online for the cost of one group read per lost bucket.  The sweep runs
the same keyed workload under a seeded crash/restart schedule for
plain LH* (k = 0) and LH*_RS (k = 1, 2) and reports availability,
degraded reads, and what recovery moved over the wire.
"""

from repro.bench.tables import TableResult
from repro.errors import SDDSError
from repro.net import CrashFaultModel, Network, RetryPolicy
from repro.sdds import LHStarFile, LHStarRSFile

RECORDS = 200
GROUP_SIZE = 4
POLICY = RetryPolicy(timeout=0.05, backoff=2.0, max_retries=3)
# Mean time to failure per node, in simulated seconds (None = no
# crashes); restarts follow with a quarter of the MTTF.
MTTFS = [None, 2.0, 0.5]
PARITIES = [0, 1, 2]

RECOVERY_KINDS = (
    "suspect", "probe", "probe_ack", "recover", "group_fetch",
    "group_data", "parity_fetch", "parity_data", "recover_install",
    "recover_done", "degraded_lookup", "await_recovery",
    "bucket_down", "bucket_up", "bucket_recovered",
)


def make_file(net, parity):
    if parity == 0:
        return LHStarFile(network=net, bucket_capacity=8,
                          retry_policy=POLICY)
    return LHStarRSFile(network=net, bucket_capacity=8,
                        group_size=GROUP_SIZE, parity_count=parity,
                        retry_policy=POLICY)


def data_bucket_gate(file):
    """Crash-eligibility for plain LH*: only live data buckets (the
    RS variant ships its own group-budget-aware gate)."""

    def gate(node_id):
        if not (isinstance(node_id, tuple) and len(node_id) == 3
                and node_id[0] == "bucket" and node_id[1] == file.name):
            return False
        bucket = file.buckets.get(node_id[2])
        if bucket is None or bucket.retired or bucket.pending:
            return False
        return node_id[2] not in file.coordinator.dead

    return gate


def run_cell(mttf, parity, seed=2006):
    crashes = None
    if mttf is not None:
        crashes = CrashFaultModel(seed=seed, mttf=mttf,
                                  mttr=mttf / 4, horizon=10_000.0)
    net = Network(crashes=crashes)
    file = make_file(net, parity)
    for key in range(RECORDS // 2):
        file.insert(key, b"%06d-payload\x00" % key)
    if crashes is not None:
        if parity:
            crashes.gate = file.crash_gate()
        else:
            crashes.gate = data_bucket_gate(file)
        crashes.plan([file.bucket_id(a) for a in range(64)])
    served = 0
    total = 0
    for key in range(RECORDS // 2, RECORDS):
        total += 1
        try:
            file.insert(key, b"%06d-payload\x00" % key)
            served += 1
        except SDDSError:
            pass
    for key in range(RECORDS):
        total += 1
        try:
            if file.lookup(key) is not None:
                served += 1
        except SDDSError:
            pass
    stats = net.stats
    recovery_bytes = sum(
        stats.bytes_by_kind.get(kind, 0) for kind in RECOVERY_KINDS
    )
    return {
        "availability": served / total,
        "crashes": crashes.crashes if crashes else 0,
        "degraded": (stats.by_kind.get("degraded_lookup", 0)
                     + stats.by_kind.get("degraded_scan", 0)),
        "recoveries": stats.by_kind.get("recover_done", 0),
        "recovery_bytes": recovery_bytes,
        "crashed_drops": stats.crashed_drops,
        "messages": stats.messages,
    }


def exp_crash_sweep() -> TableResult:
    table = TableResult(
        title="Crash sweep: availability and recovery traffic "
              f"({RECORDS} records, group size {GROUP_SIZE}, "
              "MTTR = MTTF/4)",
        headers=["parity k", "MTTF (s)", "availability", "crashes",
                 "degraded reads", "recoveries", "recovery bytes",
                 "crash-dropped", "messages"],
    )
    for parity in PARITIES:
        for mttf in MTTFS:
            cell = run_cell(mttf, parity)
            table.add_row(
                parity,
                "-" if mttf is None else f"{mttf:.1f}",
                f"{cell['availability']:.1%}",
                cell["crashes"],
                cell["degraded"],
                cell["recoveries"],
                cell["recovery_bytes"],
                cell["crashed_drops"],
                cell["messages"],
            )
    table.notes.append(
        "k = 0 is plain LH*: a crashed bucket is unreachable until "
        "its node restarts, so availability dips with the crash rate."
    )
    table.notes.append(
        "k >= 1 keeps availability at 100%: reads are served "
        "degraded through the parity group while the lost bucket is "
        "rebuilt online; updates park until the spare is up."
    )
    table.notes.append(
        "recovery bytes cover detection, degraded reads and bucket "
        "reconstruction traffic — all billed in NetworkStats."
    )
    return table


def exp_degraded_cost() -> TableResult:
    """Per-operation cost of the outage path vs the normal path."""
    table = TableResult(
        title="Keyed lookup cost around a bucket crash "
              f"(group size {GROUP_SIZE})",
        headers=["parity k", "phase", "messages", "bytes"],
    )
    for parity in (1, 2):
        net = Network()
        file = make_file(net, parity)
        for key in range(RECORDS):
            file.insert(key, b"%06d-payload\x00" % key)
        victim = next(a for a, b in file.buckets.items()
                      if not b.retired and b.records)
        key = next(iter(file.buckets[victim].records))

        before = net.stats.snapshot()
        file.lookup(key)
        normal = net.stats.diff(before)

        net.crash(file.bucket_id(victim))
        before = net.stats.snapshot()
        file.lookup(key)
        outage = net.stats.diff(before)

        before = net.stats.snapshot()
        file.lookup(key)
        recovered = net.stats.diff(before)

        table.add_row(parity, "normal", normal.messages, normal.bytes)
        table.add_row(parity, "first after crash (detect+degraded"
                      "+recover)", outage.messages, outage.bytes)
        table.add_row(parity, "after recovery", recovered.messages,
                      recovered.bytes)
    table.notes.append(
        "the outage row pays for the whole incident: client timeout "
        "escalation, coordinator probe, the degraded parity read, and "
        "the full online reconstruction of the lost bucket."
    )
    table.notes.append(
        "after recovery the spare answers at exactly the normal cost "
        "— the outage leaves no residue."
    )
    return table


def test_crash_sweep(benchmark, emit):
    table = benchmark.pedantic(exp_crash_sweep, rounds=1, iterations=1)
    emit(table, "crash_sweep")
    # Parity rows never lose an operation; the fault-free column is
    # always perfect.  (Table cells are rendered strings.)
    for row in table.rows:
        if row[0] != "0" or row[1] == "-":
            assert row[2] == "100.0%", row


def test_degraded_cost(benchmark, emit):
    table = benchmark.pedantic(exp_degraded_cost, rounds=1,
                               iterations=1)
    emit(table, "crash_degraded_cost")
    by_phase = {(row[0], row[1][:6]): row for row in table.rows}
    for parity in ("1", "2"):
        normal = by_phase[(parity, "normal")]
        outage = by_phase[(parity, "first ")]
        post = by_phase[(parity, "after ")]
        assert outage[3] != normal[3]
        assert post[2] == normal[2] and post[3] == normal[3]
