"""The paper's announced follow-up (section 8): NIST-style randomness
grading of the index streams."""

from repro.bench.experiments import exp_randomness


def test_randomness(benchmark, directory, emit):
    table = benchmark.pedantic(
        exp_randomness, args=(directory,), rounds=1, iterations=1
    )
    emit(table, "randomness")
    failed = {r[0]: int(r[2]) for r in table.rows}
    # Raw text fails (nearly) everything; ECB streams fail much less.
    assert failed["raw ASCII names"] >= 5
    assert failed["Stage 1 only (ECB, s=4)"] < failed["raw ASCII names"]
