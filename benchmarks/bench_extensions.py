"""The §8 extensions: SWP word search, searchable compression,
collusion analysis."""

from repro.bench.extensions import (
    exp_collusion,
    exp_compression,
    exp_edge_defense,
    exp_stage2_attack,
    exp_warsaw,
    exp_wordsearch,
)


def test_wordsearch(benchmark, directory, emit):
    table = benchmark.pedantic(
        exp_wordsearch, args=(directory,), rounds=1, iterations=1
    )
    emit(table, "wordsearch")
    recalls = [r[1] for r in table.rows]
    assert all(v == "100%" for v in recalls)
    # SWP's word index is far smaller than the multi-chunking index.
    chunk_bytes = float(table.rows[0][3].replace(",", ""))
    word_bytes = float(table.rows[1][3].replace(",", ""))
    assert word_bytes < chunk_bytes * 3


def test_compression(benchmark, directory, emit):
    table = benchmark.pedantic(
        exp_compression, args=(directory,), rounds=1, iterations=1
    )
    emit(table, "compression")
    assert all(r[3] == "100%" for r in table.rows)  # recall invariant
    ratios = [float(r[1]) for r in table.rows]
    assert all(r < 1.0 for r in ratios)  # it actually compresses
    fps = [int(r[2].replace(",", "")) for r in table.rows]
    assert fps[-1] >= fps[0]  # lossier buckets -> more FPs


def test_edge_defense(benchmark, directory, emit):
    table = benchmark.pedantic(
        exp_edge_defense, args=(directory,), rounds=1, iterations=1
    )
    emit(table, "edge_defense")
    keep, drop = table.rows
    assert keep[1].endswith("%")  # boundary attack succeeds measurably
    assert drop[1].startswith("n/a")
    # The refined finding: recall stays 100% either way for
    # supported queries.
    assert keep[2] == drop[2] == "100%"
    assert keep[3] == drop[3] == "100%"


def test_stage2_attack(benchmark, directory, emit):
    table = benchmark.pedantic(
        exp_stage2_attack, args=(directory,), rounds=1, iterations=1
    )
    emit(table, "stage2_attack")
    for row in table.rows:
        unigram = float(row[1].rstrip("%"))
        bigram = float(row[2].rstrip("%"))
        # The bigram solver exploits what rank matching cannot.
        assert bigram >= unigram


def test_warsaw_counterfactual(benchmark, emit):
    table = benchmark.pedantic(
        exp_warsaw, kwargs={"sample_size": 500}, rounds=1, iterations=1
    )
    emit(table, "warsaw")
    for row in table.rows:
        sf_fp2 = int(row[2].replace(",", ""))
        warsaw_fp2 = int(row[4].replace(",", ""))
        # The paper's hunch: long surnames collapse the FP mass.
        assert warsaw_fp2 < sf_fp2 / 3


def test_collusion(benchmark, directory, emit):
    table = benchmark.pedantic(
        exp_collusion, args=(directory,), rounds=1, iterations=1
    )
    emit(table, "collusion")
    assert table.rows[0][4] == "no"
    assert table.rows[-1][4] == "yes"
    known = [int(r[1].split("/")[0]) for r in table.rows]
    assert known == sorted(known)
