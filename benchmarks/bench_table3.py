"""Paper Table 3: χ² after Stage-2 redundancy removal.

Sweeps chunk sizes 1, 2, 4, 6 against the paper's code counts.
"""

from repro.bench.experiments import exp_table3


def test_table3(benchmark, directory, emit):
    tables = benchmark.pedantic(
        exp_table3, args=(directory,), rounds=1, iterations=1
    )
    emit(tables, "table3")
    for table in tables:
        singles = [float(r[1].replace(",", "")) for r in table.rows]
        doubles = [float(r[2].replace(",", "")) for r in table.rows]
        triples = [float(r[3].replace(",", "")) for r in table.rows]
        # Within each chunk size: chi^2 grows with the code count ...
        assert singles[0] <= singles[-1]
        # ... and with the n-gram order (inter-chunk predictability).
        for s, d, t in zip(singles, doubles, triples):
            assert s < d < t
    # Larger chunks give better (smaller) doublet chi^2 at equal codes:
    # compare chunk size 2 vs 6 at 16 codes (paper's conclusion that
    # 'we need larger chunk sizes').
    by_chunk = {t.title.split("= ")[1]: t for t in tables}
    d2 = float(dict((r[0], r[2]) for r in by_chunk["2"].rows)["16"]
               .replace(",", ""))
    d6 = float(dict((r[0], r[2]) for r in by_chunk["6"].rows)["16"]
               .replace(",", ""))
    assert d6 < d2
