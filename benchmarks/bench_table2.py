"""Paper Table 2: χ² after Stage-3 dispersion alone (k=4, g=2)."""

from repro.bench.experiments import exp_table1, exp_table2


def test_table2(benchmark, directory, emit):
    table = benchmark.pedantic(
        exp_table2, args=(directory,), rounds=1, iterations=1
    )
    emit(table, "table2")
    dispersed = [float(r[1].replace(",", "")) for r in table.rows[:3]]
    raw = [
        float(r[1].replace(",", ""))
        for r in exp_table1(directory).rows[:3]
    ]
    # The paper's observation: dispersion shrinks chi^2 by about an
    # order of magnitude but does NOT reach uniformity.
    assert dispersed[0] < raw[0] / 2
    assert dispersed[0] > 100  # still visibly non-uniform
