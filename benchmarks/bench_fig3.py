"""Paper Figure 3: one record over 9 sites (1 store + 8 index)."""

from repro.bench.experiments import exp_fig3


def test_fig3(benchmark, emit):
    table = benchmark.pedantic(exp_fig3, rounds=1, iterations=1)
    emit(table, "fig3")
    assert len(table.rows) == 9  # 1 record-store + 2 chunkings x 4 sites
