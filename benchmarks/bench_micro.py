"""Component microbenchmarks (proper pytest-benchmark timing runs)."""

import random

from repro.core import Disperser, FrequencyEncoder, IndexPipeline, \
    SchemeParameters
from repro.core.search import aligned_find
from repro.crypto import AES, FeistelPRP


def test_aes_block(benchmark):
    aes = AES(bytes(range(16)))
    block = bytes(range(16))
    benchmark(aes.encrypt_block, block)


#: Pre-materialised PRP inputs: the old bench computed
#: ``next(values) % 65536`` inside the timed lambda, so iterator and
#: modulo overhead polluted the PRP measurement.
PRP_VALUES = [(i * 2654435761) % 65536 for i in range(1000)]


def test_feistel_prp(benchmark):
    prp = FeistelPRP(b"bench-key", 2 ** 16)
    values = PRP_VALUES
    benchmark(lambda: [prp.encrypt(v) for v in values])


def test_feistel_prp_stream(benchmark):
    """The fused fast path: table-driven batch encryption."""
    prp = FeistelPRP(b"bench-key", 2 ** 16)
    prp.permutation_table()  # build outside the timed region
    benchmark(prp.encrypt_stream, PRP_VALUES)


def test_dispersion_throughput(benchmark):
    d = Disperser(k=4, piece_bits=2, seed=1)
    rng = random.Random(2)
    stream = [rng.randrange(256) for __ in range(1000)]
    benchmark(d.disperse_stream, stream)


def test_encoder_throughput(benchmark, directory):
    corpus = [e.name.encode("ascii") for e in directory.sample(500, 1)]
    encoder = FrequencyEncoder.train(corpus, 2, 32)
    benchmark(
        lambda: [encoder.encode_nonoverlapping(t, 0) for t in corpus]
    )


def _build_pipeline(directory, fast_path):
    sample = directory.sample(100, seed=2)
    corpus = [e.name.encode("ascii") for e in sample]
    params = SchemeParameters.full(4, n_codes=64, dispersal=2)
    pipeline = IndexPipeline(
        params, FrequencyEncoder.train(corpus, 4, 64),
        fast_path=fast_path,
    )
    texts = [e.record_text.encode("ascii") + b"\x00" for e in sample]
    return pipeline, texts


def test_index_pipeline_build(benchmark, directory):
    """The fused fast path (default): table-driven index build."""
    pipeline, texts = _build_pipeline(directory, fast_path=True)
    pipeline.warm()  # codec tables built outside the timed region
    benchmark(
        lambda: [pipeline.build_index_streams(t) for t in texts]
    )


def test_index_pipeline_build_reference(benchmark, directory):
    """The per-chunk reference path, for the speedup comparison."""
    pipeline, texts = _build_pipeline(directory, fast_path=False)
    benchmark(
        lambda: [pipeline.build_index_streams(t) for t in texts]
    )


def test_aligned_find_large_haystack(benchmark):
    rng = random.Random(3)
    haystack = bytes(rng.randrange(64) for __ in range(100_000))
    needle = haystack[50_000:50_006]
    positions = benchmark(aligned_find, haystack, needle, 2)
    assert 25_000 in positions
