"""Paper Table 4: false positives after symbol encoding (FP1) and
after chunking with chunk size 2 (FP2), on a 1000-record sample."""

from repro.bench.experiments import exp_table4


def test_table4(benchmark, directory, emit):
    tables = benchmark.pedantic(
        exp_table4, args=(directory,), rounds=1, iterations=1
    )
    emit(tables, "table4")
    all_entries, long_names = tables

    def col(table, name):
        index = table.headers.index(name)
        return [int(r[index].replace(",", "")) for r in table.rows]

    fp1 = col(all_entries, "FP1")
    fp2 = col(all_entries, "FP2")
    # Paper shape: FP1 falls steeply with the code count (6253 -> 911
    # -> 0 in the paper); chunking adds FPs on top (FP2 > FP1).
    assert fp1[0] > fp1[1] >= fp1[2]
    assert all(b >= a for a, b in zip(fp1, fp2))
    # Short names cause almost all FPs: the long-name restriction
    # removes the overwhelming majority.
    assert sum(col(long_names, "FP1")) < sum(fp1) / 10
