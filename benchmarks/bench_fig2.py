"""Paper Figure 2: the worked 'SCHWARZ' search example."""

from repro.bench.experiments import exp_fig2


def test_fig2(benchmark, emit):
    table = benchmark.pedantic(exp_fig2, rounds=1, iterations=1)
    emit(table, "fig2")
    hits = [r for r in table.rows if r[0].startswith("hit")]
    # Reduced layout: exactly one (series, chunking) pair matches.
    assert len(hits) == 1
