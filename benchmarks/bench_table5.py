"""Paper Table 5: false positives after two-symbol chunk encoding."""

from repro.bench.experiments import exp_table5


def test_table5(benchmark, directory, emit):
    tables = benchmark.pedantic(
        exp_table5, args=(directory,), rounds=1, iterations=1
    )
    emit(tables, "table5")
    all_entries, long_names = tables

    def col(table, name):
        index = table.headers.index(name)
        return [r[index] for r in table.rows]

    fps = [int(v.replace(",", "")) for v in col(all_entries, "FP")]
    # Paper shape: FP falls monotonically with the code count
    # (31,648 -> 15,588 -> 7,968 -> 3,857).
    assert all(a >= b for a, b in zip(fps, fps[1:]))
    # chi^2 single grows with the code count.
    chis = [float(v.replace(",", ""))
            for v in col(all_entries, "chi^2 single")]
    assert chis[0] <= chis[-1]
    # Long names: FPs nearly vanish (859 -> 96 -> 13 -> 2 in paper).
    long_fps = [int(v.replace(",", "")) for v in col(long_names, "FP")]
    assert long_fps[-1] < fps[-1] / 20
