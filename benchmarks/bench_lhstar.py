"""SDDS cost claims: constant-cost lookups, bounded hops, 1-round
scans — plus wall-clock microbenches of the simulated operations."""

import random

from repro.bench.experiments import exp_elasticity, exp_lhstar
from repro.sdds import LHStarFile


def test_lhstar_scaling(benchmark, emit):
    table = benchmark.pedantic(exp_lhstar, rounds=1, iterations=1)
    emit(table, "lhstar_scaling")
    converged = [r[2] for r in table.rows]
    assert all(v == "2.00" for v in converged)
    assert max(int(r[4]) for r in table.rows) <= 2
    # Scan cost = 2 messages per bucket (request + reply).
    for row in table.rows:
        assert int(row[5].replace(",", "")) == 2 * int(row[1].replace(",", ""))


def test_elasticity(benchmark, emit):
    table = benchmark.pedantic(exp_elasticity, rounds=1, iterations=1)
    emit(table, "elasticity")
    buckets = [int(r[2].replace(",", "")) for r in table.rows]
    grow, shrink, regrow = buckets
    assert shrink < grow          # the file actually shrank
    assert regrow > shrink        # and grew again


def test_concurrent_batch_throughput(benchmark):
    """Operations per second through concurrent multi-client batches."""
    file = LHStarFile(bucket_capacity=32)
    for k in range(1000):
        file.insert(k, b"seed-record\x00")
    counter = iter(range(10 ** 9))

    def run_batch():
        base = 10_000 + next(counter) * 200
        ops = [("insert", base + i, b"batch\x00") for i in range(100)]
        ops += [("lookup", i) for i in range(100)]
        results = file.run_concurrent(ops, concurrency=8)
        assert all(r is not None for r in results[100:])

    benchmark(run_batch)


def test_lookup_throughput(benchmark):
    """Simulated lookups per second (harness overhead measure)."""
    file = LHStarFile(bucket_capacity=32)
    rng = random.Random(1)
    keys = [rng.randrange(10 ** 6) for __ in range(2000)]
    for key in keys:
        file.insert(key, b"payload-0123456789\x00")

    probe = iter(keys * 100)

    def lookup_one():
        assert file.lookup(next(probe)) is not None

    benchmark(lookup_one)


def test_insert_throughput(benchmark):
    counter = iter(range(10 ** 9))
    file = LHStarFile(bucket_capacity=64)

    def insert_one():
        file.insert(next(counter), b"payload-0123456789\x00")

    benchmark(insert_one)


def test_scan_latency(benchmark):
    file = LHStarFile(bucket_capacity=32)
    for key in range(3000):
        file.insert(key, b"%06d-payload\x00" % key)

    def scan_once():
        return file.scan(
            lambda r: r.rid if b"00042-" in r.content else None
        )

    hits = benchmark(scan_once)
    assert hits == [42]
