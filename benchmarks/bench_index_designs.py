"""The three index designs, head to head (see
repro.bench.extensions.exp_index_designs)."""

from repro.bench.extensions import exp_index_designs


def test_index_designs(benchmark, directory, emit):
    table = benchmark.pedantic(
        exp_index_designs, args=(directory,), rounds=1, iterations=1
    )
    emit(table, "index_designs")
    recalls = [r[4] for r in table.rows]
    assert recalls == ["100%", "n/a", "100%"]
    # The compressed index stores less than the multi-chunking index.
    chunk_kb = float(table.rows[0][1])
    compressed_kb = float(table.rows[2][1])
    assert compressed_kb < chunk_kb * 1.5
