"""Encoder generalisation: train-vs-held-out χ² (deployment honesty
for the paper's 'preprocess a representative part' advice)."""

from repro.bench.experiments import exp_holdout


def test_holdout(benchmark, directory, emit):
    table = benchmark.pedantic(
        exp_holdout, args=(directory,), rounds=1, iterations=1
    )
    emit(table, "holdout")
    ratios = []
    for row in table.rows:
        if row[4] != "inf":
            ratios.append(float(row[4].rstrip("x")))
    # Held-out chi^2 is never meaningfully better than train chi^2 —
    # the encoder cannot generalise beyond what it optimised.
    assert all(r >= 0.8 for r in ratios)
    # And at least one configuration shows a real generalisation gap,
    # the phenomenon this experiment exists to expose.
    assert max(ratios) > 1.5
