"""Paper Table 1: χ² of the raw directory + most common n-grams."""

from repro.bench.experiments import exp_table1


def test_table1(benchmark, directory, emit):
    table = benchmark.pedantic(
        exp_table1, args=(directory,), rounds=1, iterations=1
    )
    emit(table, "table1")
    chis = [float(r[1].replace(",", "")) for r in table.rows[:3]]
    # The paper's shape: triplet chi^2 >> doublet >> single.
    assert chis[0] < chis[1] < chis[2]
    top_letters = {r[0] for r in table.rows[3:9]}
    assert top_letters == {"A", "E", "N", "R", "I", "O"}
