"""Paper Figure 5: the greedy least-loaded encoding assignment."""

from repro.bench.experiments import exp_fig5


def test_fig5(benchmark, directory, emit):
    table = benchmark.pedantic(
        exp_fig5, args=(directory,), rounds=1, iterations=1
    )
    emit(table, "fig5")
    # The table is sorted by decreasing quantity and the top 8 symbols
    # occupy 8 distinct buckets (the greedy rule's first pass).
    top8_codes = [int(r[2]) for r in table.rows[:8]]
    assert sorted(top8_codes) == list(range(8))
    quantities = [int(r[1].replace(",", "")) for r in table.rows]
    assert quantities == sorted(quantities, reverse=True)
