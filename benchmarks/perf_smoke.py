"""Machine-readable perf smoke for the fused index-codec kernels.

Emits ``benchmarks/results/BENCH_codec.json`` (microbench medians for
the PRP and index-build kernels, fused vs reference, plus the plan
cache), ``benchmarks/results/BENCH_search.json`` (end-to-end bulk
load and search-round timings over the simulator) and
``benchmarks/results/BENCH_scan.json`` (the multi-needle scan
automaton vs per-needle sweeps on the noisy sub-byte layout, plus
vectorised-round vs per-message fan-out) — median ns/op and ops/s per
bench, plus the fused-vs-reference speedup ratios.

Before timing anything, the harness proves the fast path is *safe*:
fused and reference stores — the chunk index *and* the §8 word-search
and compressed-index stores — run the same workload and must produce
byte-identical index records, identical search answers and identical
wire costs.  A fidelity failure aborts with exit code 2.

Regression gating (``--check``) compares the *speedup ratios* against
the committed baseline in ``benchmarks/baselines/``: ratios are
near machine-independent, unlike absolute nanoseconds, so the gate is
stable across CI hardware.  It fails (exit 1) when a gated ratio
drops more than ``TOLERANCE`` (30%) below baseline or below its
per-ratio hard floor in ``GATED_RATIOS``.  Peak allocations (measured
with ``tracemalloc``, which counts Python-level bytes and is therefore
far more machine-stable than RSS) are gated too: a gated figure may
not grow more than ``MEMORY_TOLERANCE`` (50%) over baseline.  On a
miss the measurement is retried once and the better run wins,
absorbing scheduler noise.

Usage::

    python benchmarks/perf_smoke.py                  # measure + emit
    python benchmarks/perf_smoke.py --check          # gate vs baseline
    python benchmarks/perf_smoke.py --write-baseline # refresh baseline

Env knobs: ``PERF_SMOKE_RECORDS`` (default 120) and
``PERF_SMOKE_REPEATS`` (default 5) shrink the workload for smoke
tests.
"""

from __future__ import annotations

import json
import os
import pathlib
import statistics
import sys
import time
import tracemalloc

from repro.core import (
    CompressedSearchStore,
    EncryptedSearchableStore,
    EncryptedWordStore,
    FrequencyEncoder,
    IndexPipeline,
    SchemeParameters,
)
from repro.core.compressed_index import CompressedScanMatcher
from repro.core.kernels import clear_automaton_cache, clear_codec_cache
from repro.core.scheme import BatchHitReporter
from repro.core.automaton import plans_automaton
from repro.core.search import (
    MultiPlanScanMatcher,
    PlanScanMatcher,
    bucket_plan_hits,
)
from repro.core.wordsearch import WordScanMatcher
from repro.crypto import FeistelPRP
from repro.data.phonebook import generate_directory
from repro.net.simulator import Network
from repro.sdds.haystack import BucketHaystack

HERE = pathlib.Path(__file__).parent
RESULTS_DIR = HERE / "results"
BASELINE_DIR = HERE / "baselines"

RECORDS = int(os.environ.get("PERF_SMOKE_RECORDS", "120"))
REPEATS = int(os.environ.get("PERF_SMOKE_REPEATS", "5"))

#: Allowed relative drop of a speedup ratio before the gate fails.
TOLERANCE = 0.30
#: The gated ratios, each with its own hard floor: the fused path
#: must beat the reference by at least this factor regardless of
#: baseline drift (acceptance bar).  The table-driven kernels sit an
#: order of magnitude up; the batched-scan matchers replace a Python
#: loop with one C-level pass, a smaller but structural win.
GATED_RATIOS = {
    "prp_speedup": 5.0,
    "index_build_speedup": 5.0,
    "batched_scan_speedup": 3.0,
    "wordstore_match_speedup": 1.3,
    "compressed_match_speedup": 3.0,
    "multi_needle_scan_speedup": 3.0,
    "vectorised_round_speedup": 1.1,
}
#: Allowed relative growth of a gated peak-allocation figure.
MEMORY_TOLERANCE = 0.50
#: The tracemalloc peaks the gate enforces.
GATED_MEMORY = (
    "bulk_load_peak_bytes",
    "search_round_peak_bytes",
    "automaton_build_peak_bytes",
)

PATTERNS = ["SCHWARZ", "MARTINEZ", "WONG", "NGUYEN", "GARCIA"]

#: The 16-pattern batch driving the multi-needle and vectorised-round
#: benches — the Table-4 workload shape (many last-name queries in one
#: round), sized so the per-(lane, length) needle census crosses the
#: automaton's index threshold.
SCAN_PATTERNS = [
    "SCHWARZ ", "MARTINEZ", "RODRIGUE", "WILLIAMS",
    "ANDERSON", "THOMPSON", "GONZALEZ", "HERNANDE",
    "CAMPBELL", "MITCHELL", "ROBINSON", "PETERSON",
    "PHILLIPS", "SULLIVAN", "REYNOLDS", "FERGUSON",
]


def _median_seconds(fn, repeats=REPEATS):
    """Median wall-clock of ``repeats`` calls of ``fn``."""
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def _bench(fn, ops, repeats=REPEATS):
    """One bench record: median ns/op and ops/s over ``ops`` ops/call."""
    seconds = _median_seconds(fn, repeats)
    return {
        "median_ns_per_op": seconds * 1e9 / ops,
        "ops_per_s": ops / seconds if seconds else float("inf"),
        "ops_per_call": ops,
    }


# -- fidelity -----------------------------------------------------------------


def _workload(directory, fast_path):
    """One deterministic store workload; returns comparable artefacts."""
    sample = directory.sample(RECORDS, seed=7)
    corpus = [e.name.encode("ascii") for e in sample]
    params = SchemeParameters.full(
        4, n_codes=64, dispersal=2, master_key=b"perf-smoke"
    )
    encoder = FrequencyEncoder.train(corpus, params.chunk_bytes, 64)
    store = EncryptedSearchableStore(
        params, encoder=encoder, bucket_capacity=32, fast_path=fast_path
    )
    store.bulk_load({e.rid: e.record_text for e in sample})
    answers = {
        pattern: (
            sorted(result.candidates), sorted(result.matches)
        )
        for pattern in PATTERNS
        for result in [store.search(pattern)]
    }
    index_bytes = {
        record.rid: record.content
        for record in store.index_file.all_records()
    }
    stats = store.network.stats
    wire = (stats.messages, stats.bytes, dict(stats.by_kind),
            dict(stats.bytes_by_kind))
    return index_bytes, answers, wire


def _wire(store):
    stats = store.network.stats
    return (stats.messages, stats.bytes, dict(stats.by_kind),
            dict(stats.bytes_by_kind))


def _word_workload(texts, fast_path):
    store = EncryptedWordStore(b"perf-smoke-words", fast_path=fast_path)
    for rid, text in texts.items():
        store.put(rid, text)
    answers = {
        pattern: (sorted(result.matches), dict(result.positions))
        for pattern in PATTERNS
        for result in [store.search(pattern)]
    }
    return answers, _wire(store)


def _compressed_workload(texts, corpus, fast_path):
    store = CompressedSearchStore(
        b"perf-smoke-csi", corpus, fast_path=fast_path
    )
    for rid, text in texts.items():
        store.put(rid, text)
    answers = {
        pattern: sorted(store.search(pattern).matches)
        for pattern in PATTERNS
    }
    index_bytes = {
        record.rid: record.content
        for record in store.index_file.all_records()
    }
    return index_bytes, answers, _wire(store)


def check_equivalence(directory):
    """Fused and reference stores must be indistinguishable — the
    chunk index and both §8 stores."""
    fused = _workload(directory, fast_path=True)
    reference = _workload(directory, fast_path=False)
    sample = directory.sample(min(RECORDS, 80), seed=11)
    texts = {e.rid: e.record_text for e in sample}
    corpus = [e.name.encode("ascii") for e in sample]
    return {
        "index_bytes_identical": fused[0] == reference[0],
        "search_answers_identical": fused[1] == reference[1],
        "wire_costs_identical": fused[2] == reference[2],
        "wordstore_identical": (
            _word_workload(texts, True) == _word_workload(texts, False)
        ),
        "compressed_identical": (
            _compressed_workload(texts, corpus, True)
            == _compressed_workload(texts, corpus, False)
        ),
    }


# -- measurements -------------------------------------------------------------


def measure_codec(directory):
    """Microbench medians for BENCH_codec.json."""
    values = [(i * 2654435761) % 65536 for i in range(1000)]
    reference_prp = FeistelPRP(b"perf-smoke-prp", 2 ** 16)
    fused_prp = FeistelPRP(b"perf-smoke-prp", 2 ** 16)
    fused_prp.permutation_table()  # build outside the timed region

    sample = directory.sample(min(RECORDS, 100), seed=2)
    corpus = [e.name.encode("ascii") for e in sample]
    params = SchemeParameters.full(4, n_codes=64, dispersal=2)
    texts = [e.record_text.encode("ascii") + b"\x00" for e in sample]

    def pipeline(fast_path):
        return IndexPipeline(
            params,
            FrequencyEncoder.train(corpus, params.chunk_bytes, 64),
            fast_path=fast_path,
        )

    fused_pipeline = pipeline(True)
    fused_pipeline.warm()
    reference_pipeline = pipeline(False)

    plan_pipeline = pipeline(True)
    plan_pipeline.warm()
    pattern = b"SCHWARZ "
    plan_pipeline.plan_query(pattern)  # prime the LRU

    benches = {
        "prp_encrypt_reference": _bench(
            lambda: [reference_prp.encrypt(v) for v in values],
            ops=len(values),
        ),
        "prp_encrypt_stream": _bench(
            lambda: fused_prp.encrypt_stream(values), ops=len(values)
        ),
        "index_build_reference": _bench(
            lambda: [reference_pipeline.build_index_streams(t)
                     for t in texts],
            ops=len(texts),
        ),
        "index_build_fused": _bench(
            lambda: [fused_pipeline.build_index_streams(t)
                     for t in texts],
            ops=len(texts),
        ),
        "plan_query_uncached": _bench(
            lambda: plan_pipeline._build_plan(pattern), ops=1
        ),
        "plan_query_cached": _bench(
            lambda: plan_pipeline.plan_query(pattern), ops=1
        ),
    }
    ratios = {
        "prp_speedup": (
            benches["prp_encrypt_reference"]["median_ns_per_op"]
            / benches["prp_encrypt_stream"]["median_ns_per_op"]
        ),
        "index_build_speedup": (
            benches["index_build_reference"]["median_ns_per_op"]
            / benches["index_build_fused"]["median_ns_per_op"]
        ),
        "plan_cache_speedup": (
            benches["plan_query_uncached"]["median_ns_per_op"]
            / benches["plan_query_cached"]["median_ns_per_op"]
        ),
    }
    return benches, ratios


def measure_matchers(directory):
    """Matcher-level medians: one haystack pass vs the scalar loop.

    Every store is built with an oversized bucket so its whole index
    lands in one haystack — the per-bucket geometry the batched scan
    sees on the server.
    """
    sample = directory.sample(RECORDS, seed=7)
    texts = {e.rid: e.record_text for e in sample}
    corpus = [e.name.encode("ascii") for e in sample]
    capacity = max(8 * RECORDS, 64)

    # The §2.3 full-entropy layout (raw PRP chunks, dispersed): the
    # geometry where scan time is needle-sweep-bound.  Sub-byte
    # Stage-2 layouts (e.g. 64 codes over dispersal) are chance-hit
    # bound instead — there batched and scalar run at par, so they
    # would gate nothing.
    params = SchemeParameters.full(
        4, dispersal=2, master_key=b"perf-smoke"
    )
    chunk_store = EncryptedSearchableStore(
        params, bucket_capacity=capacity
    )
    chunk_store.bulk_load(texts)
    chunk_records = {
        record.rid: record
        for record in chunk_store.index_file.all_records()
    }
    chunk_haystack = BucketHaystack(chunk_records)
    plan = chunk_store.pipeline.plan_query(b"SCHWARZ ")
    plan_fused = PlanScanMatcher(plan, chunk_store.decode_index_key)
    plan_scalar = PlanScanMatcher(
        plan, chunk_store.decode_index_key, batched=False
    )

    word_store = EncryptedWordStore(
        b"perf-smoke-words", bucket_capacity=capacity
    )
    for rid, text in texts.items():
        word_store.put(rid, text)
    word_records = {
        record.rid: record
        for record in word_store.index_file.all_records()
    }
    word_haystack = BucketHaystack(word_records)
    trapdoor = word_store._swp.trapdoor("SCHWARZ")
    word_fused = WordScanMatcher(trapdoor)
    word_scalar = WordScanMatcher(trapdoor, fast_path=False)

    csi_store = CompressedSearchStore(
        b"perf-smoke-csi", corpus, bucket_capacity=capacity
    )
    for rid, text in texts.items():
        csi_store.put(rid, text)
    csi_records = {
        record.rid: record
        for record in csi_store.index_file.all_records()
    }
    csi_haystack = BucketHaystack(csi_records)
    needles = tuple(
        csi_store._encrypt_stream(variant)
        for variant in csi_store.compressor.pattern_variants(b"SCHWARZ")
    )
    csi_fused = CompressedScanMatcher(needles)
    csi_scalar = CompressedScanMatcher(needles, batched=False)

    def scalar_pass(matcher, records):
        return [
            hit for record in records.values()
            if (hit := matcher(record)) is not None
        ]

    benches = {
        "batched_scan_fused": _bench(
            lambda: plan_fused.match_bucket(chunk_haystack),
            ops=len(chunk_records),
        ),
        "batched_scan_reference": _bench(
            lambda: scalar_pass(plan_scalar, chunk_records),
            ops=len(chunk_records),
        ),
        "wordstore_match_fused": _bench(
            lambda: word_fused.match_bucket(word_haystack),
            ops=len(word_records),
        ),
        "wordstore_match_reference": _bench(
            lambda: scalar_pass(word_scalar, word_records),
            ops=len(word_records),
        ),
        "compressed_match_fused": _bench(
            lambda: csi_fused.match_bucket(csi_haystack),
            ops=len(csi_records),
        ),
        "compressed_match_reference": _bench(
            lambda: scalar_pass(csi_scalar, csi_records),
            ops=len(csi_records),
        ),
    }
    ratios = {
        "batched_scan_speedup": (
            benches["batched_scan_reference"]["median_ns_per_op"]
            / benches["batched_scan_fused"]["median_ns_per_op"]
        ),
        "wordstore_match_speedup": (
            benches["wordstore_match_reference"]["median_ns_per_op"]
            / benches["wordstore_match_fused"]["median_ns_per_op"]
        ),
        "compressed_match_speedup": (
            benches["compressed_match_reference"]["median_ns_per_op"]
            / benches["compressed_match_fused"]["median_ns_per_op"]
        ),
    }
    return benches, ratios


def measure_scan(directory):
    """Multi-needle automaton + vectorised rounds for BENCH_scan.json.

    The matcher benches run on the noisy sub-byte Stage-2 layout
    (1-byte pieces over a 64-code domain, dispersal 2) — the geometry
    where per-needle ``bytes.find`` sweeps are chance-hit bound and a
    16-pattern batch pays the sweep tax once per needle.  The
    automaton answers all needles from one gram-index sweep instead.
    """
    sample = directory.sample(RECORDS, seed=7)
    texts = {e.rid: e.record_text for e in sample}
    corpus = [e.name.encode("ascii") for e in sample]
    capacity = max(8 * RECORDS, 64)
    params = SchemeParameters.full(
        4, n_codes=64, dispersal=2, master_key=b"perf-smoke"
    )

    def build_store(network=None, bucket_capacity=capacity):
        encoder = FrequencyEncoder.train(corpus, params.chunk_bytes, 64)
        store = EncryptedSearchableStore(
            params, encoder=encoder, network=network,
            bucket_capacity=bucket_capacity,
        )
        store.bulk_load(texts)
        return store

    store = build_store()
    records = {
        record.rid: record
        for record in store.index_file.all_records()
    }
    haystack = BucketHaystack(records)
    plans = [
        store.pipeline.plan_query(pattern.encode("ascii"))
        for pattern in SCAN_PATTERNS
    ]

    def matcher(automaton):
        return MultiPlanScanMatcher(
            plans, store.decode_index_key,
            BatchHitReporter(tagged=True), automaton=automaton,
        )

    automaton_matcher = matcher(True)
    per_needle_matcher = matcher(False)
    # The automaton's gram indexes die with the haystack, so the build
    # peak is measured against a fresh one; the timed benches then run
    # warm — the steady state a bucket serves between mutations.
    memory = {
        "automaton_build_peak_bytes": _traced_peak(
            lambda: automaton_matcher.match_bucket(
                BucketHaystack(records)
            )
        ),
    }
    if automaton_matcher.match_bucket(haystack) \
            != per_needle_matcher.match_bucket(haystack):
        raise SystemExit("scan fidelity failure: automaton != per-needle")

    # The gated pair times the *sweep phase* — gathering every plan's
    # hits over the bucket haystack — which is exactly the work the
    # automaton replaces: 16 plans' needles answered from shared
    # single-sweep gram indexes vs one ``bytes.find`` sweep per
    # needle.  Turning hits into reply objects (decode + SiteHit per
    # chance hit, identical either way on this chance-hit-bound
    # layout) is deliberately outside the timed region.
    compiled = plans_automaton(plans)

    def sweep(automaton):
        return [
            bucket_plan_hits(
                plan, haystack, store.decode_index_key, automaton
            )
            for plan in plans
        ]

    benches = {
        "multi_needle_scan_automaton": _bench(
            lambda: sweep(compiled), ops=len(plans),
        ),
        "multi_needle_scan_per_needle": _bench(
            lambda: sweep(None), ops=len(plans),
        ),
    }

    # Vectorised rounds: the same hot 16-pattern batch fanned out
    # repeatedly (many clients asking the Table-4 questions).  On a
    # vectorised network the buckets' scan memo answers repeats
    # without re-matching; per-message dispatch recomputes every time.
    fanouts = 4

    def round_trips(vectorised):
        hot = build_store(
            network=Network(vectorised_rounds=vectorised),
            bucket_capacity=32,
        )
        hot.search_batch(SCAN_PATTERNS, verify=False)  # warm haystacks
        return _bench(
            lambda: [
                hot.search_batch(SCAN_PATTERNS, verify=False)
                for _ in range(fanouts)
            ],
            ops=fanouts, repeats=3,
        )

    benches["vectorised_round_batch"] = round_trips(True)
    benches["per_message_round_batch"] = round_trips(False)

    ratios = {
        "multi_needle_scan_speedup": (
            benches["multi_needle_scan_per_needle"]["median_ns_per_op"]
            / benches["multi_needle_scan_automaton"]["median_ns_per_op"]
        ),
        "vectorised_round_speedup": (
            benches["per_message_round_batch"]["median_ns_per_op"]
            / benches["vectorised_round_batch"]["median_ns_per_op"]
        ),
    }
    return benches, ratios, memory


def _traced_peak(fn):
    """Peak Python-level allocation (bytes) across one call of ``fn``."""
    tracemalloc.start()
    try:
        fn()
        return tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()


def measure_search(directory):
    """End-to-end medians for BENCH_search.json."""
    sample = directory.sample(RECORDS, seed=7)
    corpus = [e.name.encode("ascii") for e in sample]
    params = SchemeParameters.full(
        4, n_codes=64, dispersal=2, master_key=b"perf-smoke"
    )
    records = {e.rid: e.record_text for e in sample}

    def bulk_load(fast_path):
        encoder = FrequencyEncoder.train(corpus, params.chunk_bytes, 64)
        store = EncryptedSearchableStore(
            params, encoder=encoder, bucket_capacity=32,
            fast_path=fast_path,
        )
        store.bulk_load(records)
        return store

    benches = {
        "bulk_load_fused": _bench(
            lambda: bulk_load(True), ops=len(records), repeats=3
        ),
        "bulk_load_reference": _bench(
            lambda: bulk_load(False), ops=len(records), repeats=3
        ),
    }
    store = bulk_load(True)
    benches["search_round"] = _bench(
        lambda: [store.search(p) for p in PATTERNS],
        ops=len(PATTERNS), repeats=3,
    )
    ratios = {
        "bulk_load_speedup": (
            benches["bulk_load_reference"]["median_ns_per_op"]
            / benches["bulk_load_fused"]["median_ns_per_op"]
        ),
    }
    # Peak allocations.  The search round runs against a fresh store,
    # so the peak includes building every bucket haystack — the new
    # caches are inside the gated figure, not hidden by warm state.
    cold = bulk_load(True)
    memory = {
        "bulk_load_peak_bytes": _traced_peak(lambda: bulk_load(True)),
        "search_round_peak_bytes": _traced_peak(
            lambda: [cold.search(p) for p in PATTERNS]
        ),
    }
    return benches, ratios, memory


def run(equivalence=True):
    directory = generate_directory(max(RECORDS, 200), seed=2006)
    clear_codec_cache()
    clear_automaton_cache()
    fidelity = check_equivalence(directory) if equivalence else None
    codec_benches, codec_ratios = measure_codec(directory)
    matcher_benches, matcher_ratios = measure_matchers(directory)
    search_benches, search_ratios, memory = measure_search(directory)
    scan_benches, scan_ratios, scan_memory = measure_scan(directory)
    config = {"records": RECORDS, "repeats": REPEATS}
    codec = {
        "schema": "repro-perf-smoke/2",
        "config": config,
        "equivalence": fidelity,
        "benches": codec_benches,
        "ratios": codec_ratios,
    }
    search = {
        "schema": "repro-perf-smoke/2",
        "config": config,
        "benches": {**search_benches, **matcher_benches},
        "ratios": {**search_ratios, **matcher_ratios},
        "memory": memory,
    }
    scan = {
        "schema": "repro-perf-smoke/2",
        "config": config,
        "benches": scan_benches,
        "ratios": scan_ratios,
        "memory": scan_memory,
    }
    return codec, search, scan


def _dump(payload, path):
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _gate(ratios, baseline_ratios):
    """The failing ratio names, against tolerance and hard floors."""
    failures = []
    for name, hard_floor in GATED_RATIOS.items():
        current = ratios.get(name, 0.0)
        floor = hard_floor
        baseline = baseline_ratios.get(name)
        if baseline is not None:
            floor = max(floor, baseline * (1.0 - TOLERANCE))
        if current < floor:
            failures.append(
                f"{name}: {current:.1f}x < required {floor:.1f}x "
                f"(baseline {baseline and f'{baseline:.1f}x' or 'none'}, "
                f"tolerance {TOLERANCE:.0%}, hard floor {hard_floor}x)"
            )
    return failures


def _gate_memory(memory, baseline_memory):
    """The failing peak-allocation names, against the growth ceiling."""
    failures = []
    for name in GATED_MEMORY:
        current = memory.get(name)
        baseline = baseline_memory.get(name)
        if current is None or baseline is None:
            continue
        ceiling = baseline * (1.0 + MEMORY_TOLERANCE)
        if current > ceiling:
            failures.append(
                f"{name}: {current} B > allowed {ceiling:.0f} B "
                f"(baseline {baseline} B, tolerance "
                f"{MEMORY_TOLERANCE:.0%})"
            )
    return failures


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    check = "--check" in argv
    write_baseline = "--write-baseline" in argv

    codec, search, scan = run()
    fidelity = codec["equivalence"]
    if fidelity is not None and not all(fidelity.values()):
        print(f"FIDELITY FAILURE: {fidelity}", file=sys.stderr)
        return 2

    if check:
        baseline_codec = json.loads(
            (BASELINE_DIR / "BENCH_codec.json").read_text()
        )
        baseline_search = json.loads(
            (BASELINE_DIR / "BENCH_search.json").read_text()
        )
        baseline_scan = json.loads(
            (BASELINE_DIR / "BENCH_scan.json").read_text()
        )
        baseline_ratios = {
            **baseline_codec["ratios"],
            **baseline_search["ratios"],
            **baseline_scan["ratios"],
        }
        baseline_memory = {
            **baseline_search.get("memory", {}),
            **baseline_scan.get("memory", {}),
        }

        def failures_now():
            return _gate(
                {**codec["ratios"], **search["ratios"],
                 **scan["ratios"]},
                baseline_ratios,
            ) + _gate_memory(
                {**search.get("memory", {}), **scan.get("memory", {})},
                baseline_memory,
            )

        failures = failures_now()
        if failures:
            # One retry absorbs a noisy neighbour; keep the better run
            # (max per ratio, min per peak).
            retry_codec, retry_search, retry_scan = run(
                equivalence=False
            )
            for name, value in retry_codec["ratios"].items():
                codec["ratios"][name] = max(codec["ratios"][name], value)
            for name, value in retry_search["ratios"].items():
                search["ratios"][name] = max(
                    search["ratios"][name], value
                )
            for name, value in retry_scan["ratios"].items():
                scan["ratios"][name] = max(scan["ratios"][name], value)
            for name, value in retry_search["memory"].items():
                search["memory"][name] = min(
                    search["memory"][name], value
                )
            for name, value in retry_scan["memory"].items():
                scan["memory"][name] = min(scan["memory"][name], value)
            failures = failures_now()
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            _dump(codec, RESULTS_DIR / "BENCH_codec.json")
            _dump(search, RESULTS_DIR / "BENCH_search.json")
            _dump(scan, RESULTS_DIR / "BENCH_scan.json")
            return 1

    _dump(codec, RESULTS_DIR / "BENCH_codec.json")
    _dump(search, RESULTS_DIR / "BENCH_search.json")
    _dump(scan, RESULTS_DIR / "BENCH_scan.json")
    if write_baseline:
        _dump(codec, BASELINE_DIR / "BENCH_codec.json")
        _dump(search, BASELINE_DIR / "BENCH_search.json")
        _dump(scan, BASELINE_DIR / "BENCH_scan.json")

    print(json.dumps({
        "equivalence": fidelity,
        "codec_ratios": codec["ratios"],
        "search_ratios": search["ratios"],
        "scan_ratios": scan["ratios"],
        "memory": {**search["memory"], **scan["memory"]},
    }, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
