"""Machine-readable perf smoke for the fused index-codec kernels.

Emits ``benchmarks/results/BENCH_codec.json`` (microbench medians for
the PRP and index-build kernels, fused vs reference, plus the plan
cache) and ``benchmarks/results/BENCH_search.json`` (end-to-end bulk
load and search-round timings over the simulator) — median ns/op and
ops/s per bench, plus the fused-vs-reference speedup ratios.

Before timing anything, the harness proves the fast path is *safe*:
two stores — fused and reference — run the same workload and must
produce byte-identical index records, identical search answers and
identical wire costs.  A fidelity failure aborts with exit code 2.

Regression gating (``--check``) compares the *speedup ratios* against
the committed baseline in ``benchmarks/baselines/``: ratios are
near machine-independent, unlike absolute nanoseconds, so the gate is
stable across CI hardware.  It fails (exit 1) when a fused-kernel
ratio drops more than ``TOLERANCE`` (30%) below baseline or below the
hard floor of 5x.  On a miss the measurement is retried once and the
better ratio wins, absorbing scheduler noise.

Usage::

    python benchmarks/perf_smoke.py                  # measure + emit
    python benchmarks/perf_smoke.py --check          # gate vs baseline
    python benchmarks/perf_smoke.py --write-baseline # refresh baseline

Env knobs: ``PERF_SMOKE_RECORDS`` (default 120) and
``PERF_SMOKE_REPEATS`` (default 5) shrink the workload for smoke
tests.
"""

from __future__ import annotations

import json
import os
import pathlib
import statistics
import sys
import time

from repro.core import (
    EncryptedSearchableStore,
    FrequencyEncoder,
    IndexPipeline,
    SchemeParameters,
)
from repro.core.kernels import clear_codec_cache
from repro.crypto import FeistelPRP
from repro.data.phonebook import generate_directory

HERE = pathlib.Path(__file__).parent
RESULTS_DIR = HERE / "results"
BASELINE_DIR = HERE / "baselines"

RECORDS = int(os.environ.get("PERF_SMOKE_RECORDS", "120"))
REPEATS = int(os.environ.get("PERF_SMOKE_REPEATS", "5"))

#: Allowed relative drop of a speedup ratio before the gate fails.
TOLERANCE = 0.30
#: Hard floor: the fused kernels must beat the reference path by at
#: least this factor regardless of baseline drift (acceptance bar).
HARD_FLOOR = 5.0
#: The ratios the gate enforces (others are informational).
GATED_RATIOS = ("prp_speedup", "index_build_speedup")

PATTERNS = ["SCHWARZ", "MARTINEZ", "WONG", "NGUYEN", "GARCIA"]


def _median_seconds(fn, repeats=REPEATS):
    """Median wall-clock of ``repeats`` calls of ``fn``."""
    samples = []
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - started)
    return statistics.median(samples)


def _bench(fn, ops, repeats=REPEATS):
    """One bench record: median ns/op and ops/s over ``ops`` ops/call."""
    seconds = _median_seconds(fn, repeats)
    return {
        "median_ns_per_op": seconds * 1e9 / ops,
        "ops_per_s": ops / seconds if seconds else float("inf"),
        "ops_per_call": ops,
    }


# -- fidelity -----------------------------------------------------------------


def _workload(directory, fast_path):
    """One deterministic store workload; returns comparable artefacts."""
    sample = directory.sample(RECORDS, seed=7)
    corpus = [e.name.encode("ascii") for e in sample]
    params = SchemeParameters.full(
        4, n_codes=64, dispersal=2, master_key=b"perf-smoke"
    )
    encoder = FrequencyEncoder.train(corpus, params.chunk_bytes, 64)
    store = EncryptedSearchableStore(
        params, encoder=encoder, bucket_capacity=32, fast_path=fast_path
    )
    store.bulk_load({e.rid: e.record_text for e in sample})
    answers = {
        pattern: (
            sorted(result.candidates), sorted(result.matches)
        )
        for pattern in PATTERNS
        for result in [store.search(pattern)]
    }
    index_bytes = {
        record.rid: record.content
        for record in store.index_file.all_records()
    }
    stats = store.network.stats
    wire = (stats.messages, stats.bytes, dict(stats.by_kind),
            dict(stats.bytes_by_kind))
    return index_bytes, answers, wire


def check_equivalence(directory):
    """Fused and reference stores must be indistinguishable."""
    fused = _workload(directory, fast_path=True)
    reference = _workload(directory, fast_path=False)
    return {
        "index_bytes_identical": fused[0] == reference[0],
        "search_answers_identical": fused[1] == reference[1],
        "wire_costs_identical": fused[2] == reference[2],
    }


# -- measurements -------------------------------------------------------------


def measure_codec(directory):
    """Microbench medians for BENCH_codec.json."""
    values = [(i * 2654435761) % 65536 for i in range(1000)]
    reference_prp = FeistelPRP(b"perf-smoke-prp", 2 ** 16)
    fused_prp = FeistelPRP(b"perf-smoke-prp", 2 ** 16)
    fused_prp.permutation_table()  # build outside the timed region

    sample = directory.sample(min(RECORDS, 100), seed=2)
    corpus = [e.name.encode("ascii") for e in sample]
    params = SchemeParameters.full(4, n_codes=64, dispersal=2)
    texts = [e.record_text.encode("ascii") + b"\x00" for e in sample]

    def pipeline(fast_path):
        return IndexPipeline(
            params,
            FrequencyEncoder.train(corpus, params.chunk_bytes, 64),
            fast_path=fast_path,
        )

    fused_pipeline = pipeline(True)
    fused_pipeline.warm()
    reference_pipeline = pipeline(False)

    plan_pipeline = pipeline(True)
    plan_pipeline.warm()
    pattern = b"SCHWARZ "
    plan_pipeline.plan_query(pattern)  # prime the LRU

    benches = {
        "prp_encrypt_reference": _bench(
            lambda: [reference_prp.encrypt(v) for v in values],
            ops=len(values),
        ),
        "prp_encrypt_stream": _bench(
            lambda: fused_prp.encrypt_stream(values), ops=len(values)
        ),
        "index_build_reference": _bench(
            lambda: [reference_pipeline.build_index_streams(t)
                     for t in texts],
            ops=len(texts),
        ),
        "index_build_fused": _bench(
            lambda: [fused_pipeline.build_index_streams(t)
                     for t in texts],
            ops=len(texts),
        ),
        "plan_query_uncached": _bench(
            lambda: plan_pipeline._build_plan(pattern), ops=1
        ),
        "plan_query_cached": _bench(
            lambda: plan_pipeline.plan_query(pattern), ops=1
        ),
    }
    ratios = {
        "prp_speedup": (
            benches["prp_encrypt_reference"]["median_ns_per_op"]
            / benches["prp_encrypt_stream"]["median_ns_per_op"]
        ),
        "index_build_speedup": (
            benches["index_build_reference"]["median_ns_per_op"]
            / benches["index_build_fused"]["median_ns_per_op"]
        ),
        "plan_cache_speedup": (
            benches["plan_query_uncached"]["median_ns_per_op"]
            / benches["plan_query_cached"]["median_ns_per_op"]
        ),
    }
    return benches, ratios


def measure_search(directory):
    """End-to-end medians for BENCH_search.json."""
    sample = directory.sample(RECORDS, seed=7)
    corpus = [e.name.encode("ascii") for e in sample]
    params = SchemeParameters.full(
        4, n_codes=64, dispersal=2, master_key=b"perf-smoke"
    )
    records = {e.rid: e.record_text for e in sample}

    def bulk_load(fast_path):
        encoder = FrequencyEncoder.train(corpus, params.chunk_bytes, 64)
        store = EncryptedSearchableStore(
            params, encoder=encoder, bucket_capacity=32,
            fast_path=fast_path,
        )
        store.bulk_load(records)
        return store

    benches = {
        "bulk_load_fused": _bench(
            lambda: bulk_load(True), ops=len(records), repeats=3
        ),
        "bulk_load_reference": _bench(
            lambda: bulk_load(False), ops=len(records), repeats=3
        ),
    }
    store = bulk_load(True)
    benches["search_round"] = _bench(
        lambda: [store.search(p) for p in PATTERNS],
        ops=len(PATTERNS), repeats=3,
    )
    ratios = {
        "bulk_load_speedup": (
            benches["bulk_load_reference"]["median_ns_per_op"]
            / benches["bulk_load_fused"]["median_ns_per_op"]
        ),
    }
    return benches, ratios


def run(equivalence=True):
    directory = generate_directory(max(RECORDS, 200), seed=2006)
    clear_codec_cache()
    fidelity = check_equivalence(directory) if equivalence else None
    codec_benches, codec_ratios = measure_codec(directory)
    search_benches, search_ratios = measure_search(directory)
    config = {"records": RECORDS, "repeats": REPEATS}
    codec = {
        "schema": "repro-perf-smoke/1",
        "config": config,
        "equivalence": fidelity,
        "benches": codec_benches,
        "ratios": codec_ratios,
    }
    search = {
        "schema": "repro-perf-smoke/1",
        "config": config,
        "benches": search_benches,
        "ratios": search_ratios,
    }
    return codec, search


def _dump(payload, path):
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _gate(ratios, baseline_ratios):
    """The failing ratio names, against tolerance and hard floor."""
    failures = []
    for name in GATED_RATIOS:
        current = ratios.get(name, 0.0)
        floor = HARD_FLOOR
        baseline = baseline_ratios.get(name)
        if baseline is not None:
            floor = max(floor, baseline * (1.0 - TOLERANCE))
        if current < floor:
            failures.append(
                f"{name}: {current:.1f}x < required {floor:.1f}x "
                f"(baseline {baseline and f'{baseline:.1f}x' or 'none'}, "
                f"tolerance {TOLERANCE:.0%}, hard floor {HARD_FLOOR}x)"
            )
    return failures


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    check = "--check" in argv
    write_baseline = "--write-baseline" in argv

    codec, search = run()
    fidelity = codec["equivalence"]
    if fidelity is not None and not all(fidelity.values()):
        print(f"FIDELITY FAILURE: {fidelity}", file=sys.stderr)
        return 2

    if check:
        baseline_path = BASELINE_DIR / "BENCH_codec.json"
        baseline = json.loads(baseline_path.read_text())
        failures = _gate(codec["ratios"], baseline["ratios"])
        if failures:
            # One retry absorbs a noisy neighbour; keep the better run.
            retry_codec, retry_search = run(equivalence=False)
            for name, value in retry_codec["ratios"].items():
                codec["ratios"][name] = max(
                    codec["ratios"][name], value
                )
            search = retry_search
            failures = _gate(codec["ratios"], baseline["ratios"])
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}", file=sys.stderr)
            _dump(codec, RESULTS_DIR / "BENCH_codec.json")
            _dump(search, RESULTS_DIR / "BENCH_search.json")
            return 1

    _dump(codec, RESULTS_DIR / "BENCH_codec.json")
    _dump(search, RESULTS_DIR / "BENCH_search.json")
    if write_baseline:
        _dump(codec, BASELINE_DIR / "BENCH_codec.json")
        _dump(search, BASELINE_DIR / "BENCH_search.json")

    print(json.dumps({
        "equivalence": fidelity,
        "codec_ratios": codec["ratios"],
        "search_ratios": search["ratios"],
    }, indent=2, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
