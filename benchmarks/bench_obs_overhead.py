"""Observability overhead: tracing must not change what it measures.

Two claims, one workload (bulk insert, then searches, gets and a
rekey over a phonebook store):

* **Fidelity** — the simulated protocol is byte-identical with and
  without a tracer and metrics registry installed.  Every counter in
  ``NetworkStats`` (messages, bytes, per-kind census, faults) must
  match exactly; instrumentation that perturbed the thing it observes
  would be worthless.  This is a hard assertion.
* **Cheapness** — wall-clock overhead of active tracing is small
  (target ~5%), and of the dormant hooks effectively nil.  Wall-clock
  on shared CI is noisy, so the bench reports best-of-N timings in
  the emitted table and only hard-fails on an intentionally generous
  bound.
"""

import time

from repro.bench.tables import TableResult
from repro.core import EncryptedSearchableStore, SchemeParameters
from repro.data.phonebook import generate_directory
from repro.obs import MetricsRegistry, Tracer, use_metrics, use_tracer

RECORDS = 300
REPEATS = 3
PATTERNS = ["SCHWARZ", "MARTINEZ", "WONG", "NGUYEN", "GARCIA"]
# Generous hard bound: catches an accidentally quadratic tracer
# without flaking on a busy CI machine.  The table reports the real
# number; the ~5% target is a review criterion, not an assert.
HARD_OVERHEAD_BOUND = 0.50


def run_workload(directory, tracer=None, registry=None):
    """One deterministic workload; returns (stats, wall_seconds)."""
    params = SchemeParameters.full(4, master_key=b"obs-overhead")
    store = EncryptedSearchableStore(params, bucket_capacity=32)
    if tracer is not None:
        tracer.network = store.network
    started = time.perf_counter()
    with use_tracer(tracer), use_metrics(registry):
        for entry in directory.entries:
            store.put(entry.rid, entry.record_text)
        for pattern in PATTERNS:
            store.search(pattern)
        for entry in directory.entries[:20]:
            store.get(entry.rid)
        store.rekey(b"obs-overhead-rotated")
    elapsed = time.perf_counter() - started
    return store.network.stats, elapsed


def best_of(directory, repeats=REPEATS, traced=False):
    """Best wall-clock of ``repeats`` runs, plus the last run's stats."""
    best = float("inf")
    stats = spans = None
    for _ in range(repeats):
        tracer = Tracer(network=None) if traced else None
        registry = MetricsRegistry() if traced else None
        stats, elapsed = run_workload(directory, tracer, registry)
        best = min(best, elapsed)
        if tracer is not None:
            spans = len(tracer.finished)
    return stats, best, spans


def assert_identical(plain, traced):
    """The full NetworkStats surface must match field for field."""
    assert traced.messages == plain.messages
    assert traced.bytes == plain.bytes
    assert dict(traced.by_kind) == dict(plain.by_kind)
    assert dict(traced.bytes_by_kind) == dict(plain.bytes_by_kind)
    assert traced.dropped == plain.dropped
    assert traced.duplicated == plain.duplicated
    assert traced.retries == plain.retries


def test_observability_overhead(emit):
    directory = generate_directory(RECORDS, seed=2006)
    # Interleave warmup: one throwaway run primes allocator/caches.
    run_workload(directory)

    plain_stats, plain_best, _ = best_of(directory, traced=False)
    traced_stats, traced_best, spans = best_of(directory, traced=True)

    assert_identical(plain_stats, traced_stats)
    overhead = traced_best / plain_best - 1.0
    assert overhead < HARD_OVERHEAD_BOUND, (
        f"tracing overhead {overhead:.1%} exceeds the "
        f"{HARD_OVERHEAD_BOUND:.0%} sanity bound"
    )

    table = TableResult(
        title=f"Observability overhead ({RECORDS} records, "
              f"best of {REPEATS})",
        headers=["mode", "wall (s)", "overhead", "spans",
                 "messages", "bytes"],
    )
    table.add_row("uninstrumented", plain_best, "--", 0,
                  plain_stats.messages, plain_stats.bytes)
    table.add_row("tracer + metrics", traced_best,
                  f"{overhead:+.1%}", spans,
                  traced_stats.messages, traced_stats.bytes)
    table.notes.append(
        "message and byte counters are asserted byte-identical "
        "between the two modes; tracing observes, never perturbs."
    )
    table.notes.append(
        "wall-clock target is ~5% on an idle machine; the hard "
        f"bound here is {HARD_OVERHEAD_BOUND:.0%} to keep CI stable."
    )
    emit(table, "obs_overhead")
