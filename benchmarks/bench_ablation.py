"""Ablation: per-stage index randomness and attacker success."""

from repro.bench.experiments import exp_ablation


def test_ablation(benchmark, directory, emit):
    table = benchmark.pedantic(
        exp_ablation, args=(directory,), rounds=1, iterations=1
    )
    emit(table, "ablation")
    assert len(table.rows) == 4
    # Stage 2 collapses the distinct/total ratio (lossy compression).
    distinct = {r[0]: float(r[3]) for r in table.rows}
    assert (
        distinct["+ Stage 2 (64 codes)"]
        < distinct["Stage 1 only (raw ECB)"]
    )
