"""Shared fixtures for the paper-reproduction benchmarks.

Each ``bench_*`` file regenerates one table or figure of the paper.
The rendered output goes to stdout *and* to ``benchmarks/results/``,
so a plain ``pytest benchmarks/ --benchmark-only`` leaves the full set
of reproduced tables on disk.

Dataset size defaults to 20,000 synthetic entries so the whole suite
runs in a couple of minutes; set ``REPRO_BENCH_RECORDS=282965`` (or
run ``python -m repro.bench --full``) for paper scale.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.bench.tables import TableResult
from repro.data.phonebook import generate_directory

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

BENCH_RECORDS = int(os.environ.get("REPRO_BENCH_RECORDS", "20000"))


@pytest.fixture(scope="session")
def directory():
    return generate_directory(BENCH_RECORDS, seed=2006)


@pytest.fixture(scope="session")
def emit():
    """Print a TableResult (or list of them) and persist it."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(tables: TableResult | list[TableResult], name: str) -> None:
        if isinstance(tables, TableResult):
            tables = [tables]
        text = "\n\n".join(table.render() for table in tables)
        print("\n" + text)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit
