"""Robustness sweep: loss rate x retry policy.

Not a paper table — the paper assumes a reliable multicomputer — but
the claim the sweep defends is the paper's availability story (§5):
the LH* substrate keeps answering correctly when the network does not
cooperate.  For each (loss rate, retry policy) cell we run a full
insert -> search-scan -> lookup workload on an unreliable network and
report recall, the injected faults, the recovery retries, and what the
recovery cost in messages and simulated time relative to the reliable
baseline.
"""

from repro.bench.tables import TableResult
from repro.net import RetryPolicy, UnreliableNetwork
from repro.sdds import LHStarFile

RECORDS = 300
LOSS_RATES = [0.0, 0.01, 0.05, 0.10, 0.20]
POLICIES = {
    "patient": RetryPolicy(timeout=0.25, backoff=2.0, max_retries=8),
    "eager": RetryPolicy(timeout=0.05, backoff=1.5, max_retries=12),
}


def run_workload(loss_rate: float, policy: RetryPolicy, seed: int = 2006):
    net = UnreliableNetwork(
        seed=seed, loss_rate=loss_rate, duplication_rate=loss_rate / 5
    )
    file = LHStarFile(
        network=net, bucket_capacity=16, retry_policy=policy
    )
    for key in range(RECORDS):
        file.insert(key, b"%06d-payload\x00" % key)
    hits = file.scan(lambda r: r.rid)
    found = sum(
        1 for key in range(RECORDS)
        if file.lookup(key) is not None
    )
    recall = (len(set(hits)) + found) / (2 * RECORDS)
    return {
        "recall": recall,
        "messages": net.stats.messages,
        "dropped": net.stats.dropped,
        "duplicated": net.stats.duplicated,
        "retries": net.stats.retries,
        "elapsed": net.now,
        "record_count": file.record_count,
    }


def exp_fault_sweep() -> TableResult:
    table = TableResult(
        title="Unreliable network sweep: recall and recovery cost "
              f"({RECORDS} records, duplication = loss/5)",
        headers=["policy", "loss", "recall", "messages", "dropped",
                 "dup'd", "retries", "elapsed (s)"],
    )
    for name, policy in POLICIES.items():
        baseline = None
        for loss in LOSS_RATES:
            outcome = run_workload(loss, policy)
            if baseline is None:
                baseline = outcome
            table.add_row(
                name,
                f"{loss:.0%}",
                f"{outcome['recall']:.0%}",
                outcome["messages"],
                outcome["dropped"],
                outcome["duplicated"],
                outcome["retries"],
                outcome["elapsed"],
            )
    table.notes.append(
        "recall averages scan coverage and lookup hit rate; 100% "
        "means every record answered despite the injected faults."
    )
    table.notes.append(
        "messages include retransmissions and fault-injected copies; "
        "the 0% row is byte-identical to a reliable network."
    )
    return table


def test_fault_sweep(benchmark, emit):
    table = benchmark.pedantic(exp_fault_sweep, rounds=1, iterations=1)
    emit(table, "fault_sweep")
    # Every cell of the sweep must keep perfect recall and an exact
    # record count — that is the whole point of the retry layer.
    assert all(row[2] == "100%" for row in table.rows)
    by_policy = {}
    for row in table.rows:
        by_policy.setdefault(row[0], []).append(row)
    for rows in by_policy.values():
        messages = [int(r[3].replace(",", "")) for r in rows]
        retries = [int(r[6].replace(",", "")) for r in rows]
        assert retries[0] == 0      # no loss -> no retries
        assert retries[-1] > 0      # heavy loss -> visible recovery
        assert messages[-1] > messages[0]
