"""End-to-end encrypted search over the simulator: recall, precision,
message and byte costs per configuration."""

from repro.bench.experiments import exp_search_e2e


def test_search_e2e(benchmark, directory, emit):
    table = benchmark.pedantic(
        exp_search_e2e, args=(directory,), rounds=1, iterations=1
    )
    emit(table, "search_e2e")
    recalls = [r[1] for r in table.rows]
    assert all(v in ("100%", "-") for v in recalls)
    assert recalls[0] == "100%"
