"""Chaos sweep: availability and messaging cost under composed faults.

Runs seeded chaos episodes (`repro.chaos`) over the full LH*_RS
deployment while dialling three nemesis axes — message loss windows,
link-partition windows and node-crash windows — from off to heavy.
Every cell is the *same* seeded workload; only the fault schedule
changes.  Availability is the fraction of workload operations whose
retry budget survived the chaos; the invariant battery must hold in
every cell (chaos degrades cost and availability, never correctness).
"""

from repro.bench.tables import TableResult
from repro.chaos.nemesis import NemesisProfile
from repro.chaos.runner import EpisodeConfig, run_episode

SEEDS = [0, 1, 2]

#: (label, loss_rate, loss_windows) — duplication/corruption/latency
#: ride along at the same relative intensity so the "heavy" column is
#: a genuinely composed storm, not a single-axis sweep.
LOSS_LEVELS = [("off", 0.0, 0), ("low", 0.15, 1), ("heavy", 0.3, 2)]
PARTITION_LEVELS = [("off", 0), ("low", 1), ("heavy", 2)]
CRASH_LEVELS = [("off", 0), ("low", 1), ("heavy", 2)]


def make_profile(loss, loss_windows, partitions, crashes):
    return NemesisProfile(
        loss_rate=loss, loss_windows=loss_windows,
        duplication_rate=loss, duplication_windows=loss_windows,
        corruption_rate=loss, corruption_windows=loss_windows,
        latency_extra=0.01 if loss else 0.0,
        latency_windows=1 if loss else 0,
        partition_windows=partitions,
        crash_windows=crashes,
        window=1.2, horizon=14.0,
    )


def run_cell(profile):
    config = EpisodeConfig(records=8, ops=20, profile=profile)
    total_ops = 0
    applied = 0
    messages = 0
    retries = 0
    faulted = 0
    crashes = 0
    violations = 0
    for seed in SEEDS:
        report = run_episode(seed, config=config)
        total_ops += config.ops
        applied += report.ops_applied
        messages += report.stats["messages"]
        retries += report.stats["retries"]
        faulted += (report.stats["dropped"]
                    + report.stats["duplicated"]
                    + report.stats["corrupted"]
                    + report.stats["partitioned_drops"]
                    + report.stats["crashed_drops"])
        crashes += report.nemesis["crashes"]
        violations += len(report.violations)
    return {
        "availability": applied / total_ops,
        "messages": messages // len(SEEDS),
        "retries": retries // len(SEEDS),
        "faulted": faulted // len(SEEDS),
        "crashes": crashes,
        "violations": violations,
    }


def exp_chaos_sweep() -> TableResult:
    table = TableResult(
        title="Chaos sweep: availability and messaging cost under "
              f"composed nemesis faults ({len(SEEDS)} seeds/cell)",
        headers=["loss", "partition", "crash", "availability",
                 "msgs/episode", "retries/episode",
                 "faulted/episode", "crashes", "violations"],
    )
    for loss_label, loss, loss_windows in LOSS_LEVELS:
        for part_label, partitions in PARTITION_LEVELS:
            for crash_label, crash_windows in CRASH_LEVELS:
                cell = run_cell(make_profile(
                    loss, loss_windows, partitions, crash_windows
                ))
                table.add_row(
                    loss_label, part_label, crash_label,
                    f"{cell['availability']:.1%}",
                    cell["messages"],
                    cell["retries"],
                    cell["faulted"],
                    cell["crashes"],
                    cell["violations"],
                )
    table.notes.append(
        "Every cell runs the same seeded workload; only the fault "
        "schedule changes.  'violations' counts invariant-oracle "
        "failures (acked durability, search agreement, scan "
        "coverage, monotone level, parity consistency) and must be "
        "0 everywhere: chaos buys cost, never corruption."
    )
    table.notes.append(
        "Availability dips only where retry budgets die inside "
        "loss/partition windows; messaging cost grows with retries "
        "and with the recovery traffic crash windows trigger."
    )
    return table


LIVE_SEEDS = [0, 1]

#: Wall-clock-compressed storm for the live rows: same axes, short
#: windows (the live cluster runs in real time).
LIVE_PROFILE = NemesisProfile(
    loss_rate=0.1, loss_windows=1,
    duplication_rate=0.1, duplication_windows=1,
    corruption_rate=0.1, corruption_windows=1,
    latency_extra=0.005, latency_windows=1,
    partition_windows=1, crash_windows=1,
    window=0.4, horizon=2.5,
)


def exp_live_availability() -> TableResult:
    """Backend parity rows: the same seeded episode on the event
    simulator and on a live cluster of site processes."""
    table = TableResult(
        title="Chaos backend parity: identically seeded episodes on "
              "the simulator and on live site processes",
        headers=["seed", "backend", "availability", "msgs/episode",
                 "retries", "crashes", "acked==sim", "searches==sim",
                 "violations"],
    )
    for seed in LIVE_SEEDS:
        baseline = None
        for backend in ("simulator", "live"):
            config = EpisodeConfig(
                records=8, ops=20, profile=LIVE_PROFILE,
                backend=backend,
            )
            report = run_episode(seed, config=config)
            if backend == "simulator":
                baseline = report
            table.add_row(
                seed, backend,
                f"{report.ops_applied / config.ops:.1%}",
                report.stats["messages"],
                report.stats["retries"],
                report.nemesis["crashes"],
                "yes" if report.acked == baseline.acked else "NO",
                ("yes" if report.searches == baseline.searches
                 else "NO"),
                len(report.violations),
            )
    table.notes.append(
        "The live rows drive the same seeded workload and nemesis "
        "schedule through real bucket processes over TCP; acked sets "
        "and post-heal search answers must match the simulator rows "
        "seed for seed."
    )
    return table


#: (label, merge_pressure, join, leave, rejoin) window counts — the
#: membership-event axis from off to heavy, over a shrinking file
#: with softened message/crash faults riding along.
ELASTICITY_LEVELS = [
    ("off", 0, 0, 0, 0),
    ("low", 1, 1, 1, 1),
    ("heavy", 3, 2, 2, 2),
]


def make_elasticity_profile(merge_pressure, join, leave, rejoin):
    return NemesisProfile(
        loss_rate=0.05, loss_windows=1,
        duplication_rate=0.02, duplication_windows=1,
        corruption_rate=0.0, latency_windows=0,
        partition_windows=1, crash_windows=1,
        merge_pressure_windows=merge_pressure, join_windows=join,
        leave_events=leave, rejoin_windows=rejoin,
        window=0.6, horizon=2.5,
    )


def exp_elasticity_availability() -> TableResult:
    """Availability during rebalance: the same seeded workload while
    merge-pressure/join windows, graceful leaves and tombstone
    crash+rejoin events reshape the file underneath it."""
    table = TableResult(
        title="Chaos elasticity: availability and rebalance traffic "
              f"under membership events ({len(SEEDS)} seeds/cell)",
        headers=["membership", "availability", "msgs/episode",
                 "retries/episode", "merges", "leaves",
                 "migrations", "crashes", "violations"],
    )
    for label, merge_pressure, join, leave, rejoin in \
            ELASTICITY_LEVELS:
        profile = make_elasticity_profile(
            merge_pressure, join, leave, rejoin
        )
        config = EpisodeConfig(
            records=12, ops=30, profile=profile,
            shrink=True, merge_threshold=0.6,
        )
        total_ops = applied = messages = retries = 0
        merges = leaves = migrations = crashes = violations = 0
        for seed in SEEDS:
            report = run_episode(seed, config=config)
            total_ops += config.ops
            applied += report.ops_applied
            messages += report.stats["messages"]
            retries += report.stats["retries"]
            by_kind = report.stats["by_kind"]
            merges += by_kind.get("merge", 0)
            leaves += by_kind.get("leave", 0)
            migrations += by_kind.get("recover_done", 0)
            crashes += report.nemesis["crashes"]
            violations += len(report.violations)
        table.add_row(
            label,
            f"{applied / total_ops:.1%}",
            messages // len(SEEDS),
            retries // len(SEEDS),
            merges,
            leaves,
            migrations,
            crashes,
            violations,
        )
    table.notes.append(
        "All cells run shrinking files (merge_threshold=0.6) under "
        "softened loss/duplication/partition/crash faults; the "
        "membership axis adds merge-pressure and join windows, "
        "graceful leaves and tombstone crash+rejoin.  'migrations' "
        "counts recover_done acks (leave drains and crash "
        "recoveries); 'violations' spans the full oracle battery — "
        "including tombstone convergence, migration integrity and "
        "post-heal level restoration — and must be 0 everywhere."
    )
    return table


def test_chaos_elasticity_availability(benchmark, emit):
    table = benchmark.pedantic(exp_elasticity_availability,
                               rounds=1, iterations=1)
    emit(table, "chaos_elasticity_availability")
    rebalanced = 0
    for row in table.rows:
        assert row[-1] == "0", row
        if row[0] != "off":
            rebalanced += int(row[4]) + int(row[5])
    # The membership windows must exercise real machinery: at least
    # one merge or leave landed across the non-off cells.
    assert rebalanced > 0, table.rows


def test_chaos_live_availability(benchmark, emit):
    import os

    import pytest

    if os.environ.get("REPRO_LIVE_TESTS") != "1":
        pytest.skip("live cluster benches need REPRO_LIVE_TESTS=1")
    table = benchmark.pedantic(exp_live_availability, rounds=1,
                               iterations=1)
    emit(table, "chaos_live_availability")
    for row in table.rows:
        assert row[-1] == "0", row
        assert row[-2] == "yes" and row[-3] == "yes", row


def test_chaos_sweep(benchmark, emit):
    table = benchmark.pedantic(exp_chaos_sweep, rounds=1,
                               iterations=1)
    emit(table, "chaos_sweep")
    for row in table.rows:
        # Correctness is non-negotiable in every cell.
        assert row[-1] == "0", row
        # The fault-free corner loses nothing.
        if row[0] == "off" and row[1] == "off" and row[2] == "off":
            assert row[3] == "100.0%", row
