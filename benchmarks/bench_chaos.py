"""Chaos sweep: availability and messaging cost under composed faults.

Runs seeded chaos episodes (`repro.chaos`) over the full LH*_RS
deployment while dialling three nemesis axes — message loss windows,
link-partition windows and node-crash windows — from off to heavy.
Every cell is the *same* seeded workload; only the fault schedule
changes.  Availability is the fraction of workload operations whose
retry budget survived the chaos; the invariant battery must hold in
every cell (chaos degrades cost and availability, never correctness).
"""

from repro.bench.tables import TableResult
from repro.chaos.nemesis import NemesisProfile
from repro.chaos.runner import EpisodeConfig, run_episode

SEEDS = [0, 1, 2]

#: (label, loss_rate, loss_windows) — duplication/corruption/latency
#: ride along at the same relative intensity so the "heavy" column is
#: a genuinely composed storm, not a single-axis sweep.
LOSS_LEVELS = [("off", 0.0, 0), ("low", 0.15, 1), ("heavy", 0.3, 2)]
PARTITION_LEVELS = [("off", 0), ("low", 1), ("heavy", 2)]
CRASH_LEVELS = [("off", 0), ("low", 1), ("heavy", 2)]


def make_profile(loss, loss_windows, partitions, crashes):
    return NemesisProfile(
        loss_rate=loss, loss_windows=loss_windows,
        duplication_rate=loss, duplication_windows=loss_windows,
        corruption_rate=loss, corruption_windows=loss_windows,
        latency_extra=0.01 if loss else 0.0,
        latency_windows=1 if loss else 0,
        partition_windows=partitions,
        crash_windows=crashes,
        window=1.2, horizon=14.0,
    )


def run_cell(profile):
    config = EpisodeConfig(records=8, ops=20, profile=profile)
    total_ops = 0
    applied = 0
    messages = 0
    retries = 0
    faulted = 0
    crashes = 0
    violations = 0
    for seed in SEEDS:
        report = run_episode(seed, config=config)
        total_ops += config.ops
        applied += report.ops_applied
        messages += report.stats["messages"]
        retries += report.stats["retries"]
        faulted += (report.stats["dropped"]
                    + report.stats["duplicated"]
                    + report.stats["corrupted"]
                    + report.stats["partitioned_drops"]
                    + report.stats["crashed_drops"])
        crashes += report.nemesis["crashes"]
        violations += len(report.violations)
    return {
        "availability": applied / total_ops,
        "messages": messages // len(SEEDS),
        "retries": retries // len(SEEDS),
        "faulted": faulted // len(SEEDS),
        "crashes": crashes,
        "violations": violations,
    }


def exp_chaos_sweep() -> TableResult:
    table = TableResult(
        title="Chaos sweep: availability and messaging cost under "
              f"composed nemesis faults ({len(SEEDS)} seeds/cell)",
        headers=["loss", "partition", "crash", "availability",
                 "msgs/episode", "retries/episode",
                 "faulted/episode", "crashes", "violations"],
    )
    for loss_label, loss, loss_windows in LOSS_LEVELS:
        for part_label, partitions in PARTITION_LEVELS:
            for crash_label, crash_windows in CRASH_LEVELS:
                cell = run_cell(make_profile(
                    loss, loss_windows, partitions, crash_windows
                ))
                table.add_row(
                    loss_label, part_label, crash_label,
                    f"{cell['availability']:.1%}",
                    cell["messages"],
                    cell["retries"],
                    cell["faulted"],
                    cell["crashes"],
                    cell["violations"],
                )
    table.notes.append(
        "Every cell runs the same seeded workload; only the fault "
        "schedule changes.  'violations' counts invariant-oracle "
        "failures (acked durability, search agreement, scan "
        "coverage, monotone level, parity consistency) and must be "
        "0 everywhere: chaos buys cost, never corruption."
    )
    table.notes.append(
        "Availability dips only where retry budgets die inside "
        "loss/partition windows; messaging cost grows with retries "
        "and with the recovery traffic crash windows trigger."
    )
    return table


def test_chaos_sweep(benchmark, emit):
    table = benchmark.pedantic(exp_chaos_sweep, rounds=1,
                               iterations=1)
    emit(table, "chaos_sweep")
    for row in table.rows:
        # Correctness is non-negotiable in every cell.
        assert row[-1] == "0", row
        # The fault-free corner loses nothing.
        if row[0] == "off" and row[1] == "off" and row[2] == "off":
            assert row[3] == "100.0%", row
