"""Section 2.5: storage layouts vs query constraints, plus measured
storage footprints of the full scheme."""

from repro.bench.experiments import exp_storage
from repro.bench.tables import TableResult
from repro.core import (
    EncryptedSearchableStore,
    FrequencyEncoder,
    SchemeParameters,
)


def test_storage_layouts(benchmark, emit):
    table = benchmark.pedantic(exp_storage, rounds=1, iterations=1)
    emit(table, "storage_layouts")
    rows = {r[0]: r for r in table.rows}
    assert rows["s=8, 4 sites"][3] == "9"   # paper: >= s+1
    assert rows["s=8, 2 sites"][3] == "11"  # paper: >= s+3


def test_measured_footprint(benchmark, directory, emit):
    """Actual stored bytes per configuration on a 150-record corpus."""
    sample = directory.sample(150, seed=5)
    corpus = [e.name.encode("ascii") for e in sample]

    def measure():
        table = TableResult(
            title="Measured storage footprint (150 records)",
            headers=["configuration", "record KB", "index KB",
                     "overhead", "index records"],
        )
        configs = [
            ("s=4 full, raw", SchemeParameters.full(4), None),
            ("s=4 full, 64 codes", SchemeParameters.full(4, n_codes=64),
             64),
            ("s=8 2-sites, raw", SchemeParameters.reduced(8, 2), None),
            ("s=8 4-sites, 256 codes, k=4",
             SchemeParameters.reduced(8, 4, n_codes=256, dispersal=4),
             256),
        ]
        for label, params, n_codes in configs:
            encoder = (
                FrequencyEncoder.train(corpus, params.chunk_size, n_codes)
                if n_codes else None
            )
            store = EncryptedSearchableStore(params, encoder=encoder)
            for entry in sample:
                store.put(entry.rid, entry.record_text)
            fp = store.footprint()
            table.add_row(
                label,
                f"{fp.record_bytes / 1024:.1f}",
                f"{fp.index_bytes / 1024:.1f}",
                f"{fp.overhead:.2f}x",
                fp.index_records,
            )
        table.notes.append(
            "Stage 2 shrinks the index below the record size even with "
            "s chunkings; raw full-s layouts pay ~s x blowup (paper "
            "section 2.5's motivation)"
        )
        return table

    table = benchmark.pedantic(measure, rounds=1, iterations=1)
    emit(table, "storage_footprint")
    overheads = [float(r[3].rstrip("x")) for r in table.rows]
    assert overheads[1] < overheads[0]  # stage 2 compresses
