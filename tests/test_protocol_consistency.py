"""Cross-validation: the offline Table-4 machinery vs the live protocol.

The Table-4 FP1 experiment (per-symbol Stage-2 encoding, substring
match on the code stream) is exactly what the complete scheme computes
with chunk size 1: a single chunking, one alignment, one code per
symbol.  Running the same workload through the distributed store must
therefore reproduce the offline counts — if they ever diverge, either
the protocol or the measurement is wrong.
"""

import pytest

from repro.bench.falsepos import fp_symbol_encoding
from repro.core import (
    EncryptedSearchableStore,
    FrequencyEncoder,
    SchemeParameters,
)


@pytest.fixture(scope="module")
def workload(directory):
    return directory.sample(120, seed=19).entries


@pytest.mark.parametrize("n_codes", [8, 16])
def test_protocol_reproduces_offline_counts(workload, n_codes):
    names = [entry.name.encode("ascii") for entry in workload]
    encoder = FrequencyEncoder.train(names, 1, n_codes)

    # Offline reference over the *exact stored content* (the store
    # appends the zero terminator, whose fallback code can collide
    # with query codes — a real property of the scheme, so the
    # reference must model it too).
    contents = [name + b"\x00" for name in names]
    streams = [encoder.encode_symbols(content) for content in contents]
    offline_hits = offline_fps = 0
    for entry in workload:
        query = entry.last_name
        needle = encoder.encode_symbols(query.encode("ascii"))
        for other, stream in zip(workload, streams):
            if needle in stream:
                if query in other.name:
                    offline_hits += 1
                else:
                    offline_fps += 1

    params = SchemeParameters.full(1, n_codes=n_codes, encrypt=True)
    store = EncryptedSearchableStore(params, encoder=encoder)
    for index, entry in enumerate(workload):
        store.put(index, entry.name)

    protocol_hits = protocol_fps = 0
    results = store.search_batch(
        [entry.last_name for entry in workload], verify=False
    )
    for entry in workload:
        result = results[entry.last_name]
        for index, other in enumerate(workload):
            if index in result.candidates:
                if entry.last_name in other.name:
                    protocol_hits += 1
                else:
                    protocol_fps += 1

    assert protocol_fps == offline_fps
    assert protocol_hits == offline_hits

    # And the Table-4 machinery (no terminator) is a lower bound —
    # the terminator's fallback code can only add matches.
    table4 = fp_symbol_encoding(workload, n_codes, encoder=encoder)
    assert protocol_fps >= table4.false_positives


def test_protocol_recall_matches_offline(workload):
    """Both measurement paths must report total recall."""
    names = [entry.name.encode("ascii") for entry in workload]
    encoder = FrequencyEncoder.train(names, 1, 8)
    offline = fp_symbol_encoding(workload, 8, encoder=encoder)
    assert offline.true_hits >= offline.searches


@pytest.mark.parametrize("n_codes", [16, 64])
def test_protocol_reproduces_table5(workload, n_codes):
    """The Table-5 experiment (2-symbol chunk encoding, OR rule) run
    through the live distributed scheme must count the same hits as
    the offline machinery, terminator modelled on both sides."""
    import dataclasses

    from repro.bench.falsepos import fp_chunk_encoding

    # Offline side: append the terminator symbol to the names so the
    # content equals what the store indexes.
    shadow = [
        dataclasses.replace(entry, name=entry.name + "\x00")
        for entry in workload
    ]
    contents = [entry.name.encode("ascii") for entry in shadow]
    encoder = FrequencyEncoder.train(contents, 2, n_codes)
    offline = fp_chunk_encoding(shadow, n_codes, chunk=2,
                                encoder=encoder)

    params = SchemeParameters.full(
        2, n_codes=n_codes, drop_partial_chunks=True, aggregation="any"
    )
    store = EncryptedSearchableStore(params, encoder=encoder)
    for index, entry in enumerate(workload):
        store.put(index, entry.name)

    protocol_hits = protocol_fps = 0
    queries = [
        entry.last_name
        for entry in workload
        if len(entry.last_name) >= params.min_query_length
    ]
    results = store.search_batch(queries, verify=False)
    for entry in workload:
        query = entry.last_name
        if query not in results:
            continue
        for index, other in enumerate(workload):
            if index in results[query].candidates:
                if query in other.name:
                    protocol_hits += 1
                else:
                    protocol_fps += 1

    # The offline machinery also runs sub-minimum queries (single
    # complete chunks exist for 2-symbol names); restrict both sides
    # to the protocol's query set for the comparison.
    offline_hits = offline_fps = 0
    record_views = [
        [encoder.encode_nonoverlapping(text, offset)
         for offset in range(2)]
        for text in contents
    ]
    for entry in workload:
        query = entry.last_name
        if len(query) < params.min_query_length:
            continue
        pattern = query.encode("ascii")
        series = [
            encoder.encode_nonoverlapping(pattern, offset)
            for offset in range(2)
            if len(pattern) - offset >= 2
        ]
        for other, views in zip(workload, record_views):
            hit = any(
                s and s in view for s in series for view in views
            )
            if hit:
                if query in other.name:
                    offline_hits += 1
                else:
                    offline_fps += 1

    assert protocol_hits == offline_hits
    assert protocol_fps == offline_fps
