"""LH*_RS parity maintenance and recovery."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sdds import LHStarRSFile
from repro.sdds.lhstar_rs import _scale, _xor, generator_matrix
from repro.gf import GF2


class TestPrimitives:
    def test_xor_zero_extends(self):
        assert _xor(b"\x01\x02\x03", b"\x01") == b"\x00\x02\x03"

    def test_xor_symmetric(self):
        assert _xor(b"ab", b"abcd") == _xor(b"abcd", b"ab")

    def test_scale_by_zero_and_one(self):
        assert _scale(0, b"xyz") == b"\x00\x00\x00"
        assert _scale(1, b"xyz") == b"xyz"

    def test_scale_matches_field(self):
        field = GF2(8)
        data = bytes(range(0, 250, 7))
        scaled = _scale(5, data)
        assert scaled == bytes(field.mul(5, b) for b in data)

    def test_generator_is_cauchy(self):
        g = generator_matrix(4, 2)
        assert g.nrows == 2 and g.ncols == 4
        assert g.all_nonzero()

    def test_generator_too_large(self):
        with pytest.raises(ValueError):
            generator_matrix(200, 100)


def populated_file(n=80, group_size=4, parity_count=2, capacity=4):
    file = LHStarRSFile(
        bucket_capacity=capacity,
        group_size=group_size,
        parity_count=parity_count,
    )
    for k in range(n):
        file.insert(k, f"payload-{k:04d}".encode() + b"\x00")
    return file


class TestRecovery:
    def test_single_bucket_recovery(self):
        file = populated_file()
        for address in list(file.buckets)[:4]:
            assert file.verify_recovery([address]), address

    def test_double_bucket_recovery_same_group(self):
        file = populated_file()
        groups: dict[int, list[int]] = {}
        for address in file.buckets:
            groups.setdefault(file.group_of(address), []).append(address)
        tested = 0
        for members in groups.values():
            if len(members) >= 2:
                assert file.verify_recovery(sorted(members)[:2])
                tested += 1
        assert tested > 0

    def test_triple_parity(self):
        file = LHStarRSFile(
            bucket_capacity=4, group_size=4, parity_count=3
        )
        for k in range(60):
            file.insert(k, f"r{k}".encode() + b"\x00")
        groups: dict[int, list[int]] = {}
        for address in file.buckets:
            groups.setdefault(file.group_of(address), []).append(address)
        for members in groups.values():
            if len(members) >= 3:
                assert file.verify_recovery(sorted(members)[:3])
                return
        pytest.skip("no group with 3 buckets materialised")

    def test_recovery_after_updates_and_deletes(self):
        file = populated_file()
        file.insert(7, b"updated-payload\x00")
        file.delete(13)
        file.delete(14)
        file.insert(13, b"reinserted\x00")
        for address in list(file.buckets)[:3]:
            assert file.verify_recovery([address])

    def test_recovery_after_splits(self):
        """Splits move records between buckets; parity must follow."""
        file = LHStarRSFile(bucket_capacity=2, group_size=4,
                            parity_count=2)
        for k in range(150):
            file.insert(k, f"split-{k}".encode() + b"\x00")
        assert file.bucket_count >= 8
        for address in list(file.buckets)[:6]:
            assert file.verify_recovery([address]), address

    def test_recovered_contents_exact(self):
        file = populated_file()
        recovered = file.recover_buckets([0])
        live = {
            rid: record.content
            for rid, record in file.buckets[0].records.items()
        }
        assert recovered[0] == live


class TestRecoveryValidation:
    def test_too_many_failures_rejected(self):
        file = populated_file(parity_count=2)
        with pytest.raises(ValueError):
            file.recover_buckets([0, 1, 2])

    def test_cross_group_rejected(self):
        file = populated_file(group_size=2)
        with pytest.raises(ValueError):
            file.recover_buckets([0, 2])  # groups 0 and 1

    def test_duplicates_rejected(self):
        file = populated_file()
        with pytest.raises(ValueError):
            file.recover_buckets([0, 0])

    def test_empty_request(self):
        assert populated_file().recover_buckets([]) == {}

    def test_bad_parameters(self):
        with pytest.raises(ValueError):
            LHStarRSFile(group_size=1)
        with pytest.raises(ValueError):
            LHStarRSFile(parity_count=0)


class TestParityTraffic:
    def test_inserts_generate_parity_messages(self):
        file = LHStarRSFile(group_size=4, parity_count=2)
        before = file.network.stats.snapshot()
        file.insert(1, b"x\x00")
        delta = file.network.stats.delta(before)
        assert delta.by_kind["parity_delta"] == 2

    def test_parity_bucket_count(self):
        file = populated_file(group_size=4, parity_count=2)
        data_groups = {file.group_of(a) for a in file.buckets}
        assert len(file.parity_buckets) == 2 * len(data_groups)


@settings(max_examples=10)
@given(
    st.lists(
        st.tuples(st.integers(0, 400), st.binary(min_size=1, max_size=20)),
        min_size=5,
        max_size=60,
    ),
    st.integers(0, 100),
)
def test_property_recovery_under_random_workload(operations, seed):
    """Random inserts/overwrites/deletes never break recoverability."""
    file = LHStarRSFile(bucket_capacity=3, group_size=4, parity_count=2)
    rng = random.Random(seed)
    live = set()
    for key, value in operations:
        if live and rng.random() < 0.2:
            victim = rng.choice(sorted(live))
            file.delete(victim)
            live.discard(victim)
        file.insert(key, value)
        live.add(key)
    for address in list(file.buckets)[:3]:
        assert file.verify_recovery([address])
