"""The LH* addressing calculus and its two central guarantees."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sdds.hashing import (
    bucket_level,
    client_address,
    file_buckets,
    forward_address,
    h,
    image_adjust,
    scan_initial_level,
)


def _true_address(key: int, i: int, n: int) -> int:
    """Ground truth: where a key lives in file state (i, n)."""
    address = h(key, i)
    if address < n:
        address = h(key, i + 1)
    return address


@st.composite
def file_states(draw):
    i = draw(st.integers(0, 8))
    n = draw(st.integers(0, max(0, (1 << i) - 1)))
    return i, n


@st.composite
def state_and_stale_image(draw):
    """A real state and any image that was accurate at some past state."""
    i, n = draw(file_states())
    # A past state (i', n') <= (i, n) in file-growth order.
    i_img = draw(st.integers(0, i))
    if i_img == i:
        n_img = draw(st.integers(0, n))
    else:
        n_img = draw(st.integers(0, (1 << i_img) - 1)) if i_img else 0
    return (i, n), (i_img, n_img)


class TestBasics:
    def test_h(self):
        assert h(13, 3) == 5
        assert h(13, 0) == 0

    def test_h_negative_level(self):
        with pytest.raises(ValueError):
            h(1, -1)

    def test_file_buckets(self):
        assert file_buckets(3, 5) == 13

    def test_bucket_level(self):
        # state (2, 1): buckets 0 and 4 are at level 3, 1..3 at level 2.
        assert bucket_level(0, 2, 1) == 3
        assert bucket_level(1, 2, 1) == 2
        assert bucket_level(3, 2, 1) == 2
        assert bucket_level(4, 2, 1) == 3

    def test_bucket_level_out_of_range(self):
        with pytest.raises(ValueError):
            bucket_level(5, 2, 1)

    def test_client_address_matches_truth_when_accurate(self):
        for key in range(200):
            assert client_address(key, 3, 2) == _true_address(key, 3, 2)


class TestForwarding:
    @given(state_and_stale_image(), st.integers(0, 2 ** 20))
    def test_at_most_two_hops(self, states, key):
        """The LNS96 theorem: any once-accurate image needs <= 2
        forwarding hops to reach the correct bucket."""
        (i, n), (i_img, n_img) = states
        address = client_address(key, i_img, n_img)
        hops = 0
        while True:
            level = bucket_level(address, i, n)
            target = forward_address(key, address, level)
            if target is None:
                break
            address = target
            hops += 1
            assert hops <= 2, (
                f"key {key} took {hops} hops from image "
                f"({i_img},{n_img}) in state ({i},{n})"
            )
        assert address == _true_address(key, i, n)

    @given(state_and_stale_image(), st.integers(0, 2 ** 20))
    def test_forwarding_targets_exist(self, states, key):
        """Forwarding never addresses a bucket beyond the file."""
        (i, n), (i_img, n_img) = states
        address = client_address(key, i_img, n_img)
        for __ in range(3):
            assert address < file_buckets(i, n)
            level = bucket_level(address, i, n)
            target = forward_address(key, address, level)
            if target is None:
                return
            address = target

    def test_correct_address_not_forwarded(self):
        for key in range(100):
            address = _true_address(key, 3, 4)
            level = bucket_level(address, 3, 4)
            assert forward_address(key, address, level) is None


class TestImageAdjust:
    def test_no_change_when_level_not_newer(self):
        assert image_adjust(3, 2, 1, 3) == (3, 2)

    def test_basic_update(self):
        # IAM from bucket 0 at level 2: image becomes (1, 1).
        assert image_adjust(0, 0, 0, 2) == (1, 1)

    def test_wraparound(self):
        # IAM from bucket 1 at level 2: n' = 2 >= 2^1, folds to (2, 0).
        assert image_adjust(0, 0, 1, 2) == (2, 0)

    @given(state_and_stale_image(), st.integers(0, 2 ** 20))
    def test_image_never_overtakes_file(self, states, key):
        """After an IAM from the *first forwarder*, the image still
        describes no more buckets than the file has."""
        (i, n), (i_img, n_img) = states
        address = client_address(key, i_img, n_img)
        level = bucket_level(address, i, n)
        if forward_address(key, address, level) is None:
            return  # no forwarding, no IAM
        new_i, new_n = image_adjust(i_img, n_img, address, level)
        assert file_buckets(new_i, new_n) <= file_buckets(i, n)

    @given(state_and_stale_image(), st.integers(0, 2 ** 20))
    def test_image_monotone(self, states, key):
        """IAMs (sent only on forwarding) never shrink the image."""
        (i, n), (i_img, n_img) = states
        address = client_address(key, i_img, n_img)
        level = bucket_level(address, i, n)
        if forward_address(key, address, level) is None:
            return  # no forwarding -> no IAM in the protocol
        new_i, new_n = image_adjust(i_img, n_img, address, level)
        assert file_buckets(new_i, new_n) >= file_buckets(i_img, n_img)


class TestScanLevels:
    @given(state_and_stale_image())
    def test_presumed_level_never_exceeds_true_level(self, states):
        """The scan-forwarding rule terminates because the image's
        presumed level is a lower bound on the bucket's true level."""
        (i, n), (i_img, n_img) = states
        for address in range(file_buckets(i_img, n_img)):
            presumed = scan_initial_level(address, i_img, n_img)
            assert presumed <= bucket_level(address, i, n)
