"""The flat record type."""

import pytest

from repro.sdds.records import RECORD_OVERHEAD, Record


class TestRecord:
    def test_from_text_roundtrip(self):
        record = Record.from_text(7, "SCHWARZ THOMAS")
        assert record.text() == "SCHWARZ THOMAS"
        assert record.content.endswith(b"\x00")

    def test_wire_size(self):
        record = Record(1, b"abc")
        assert record.wire_size == RECORD_OVERHEAD + 3

    def test_negative_rid_rejected(self):
        with pytest.raises(ValueError):
            Record(-1, b"x")

    def test_non_bytes_content_rejected(self):
        with pytest.raises(TypeError):
            Record(1, "text")  # type: ignore[arg-type]

    def test_frozen(self):
        record = Record(1, b"x")
        with pytest.raises(AttributeError):
            record.rid = 2  # type: ignore[misc]

    def test_equality(self):
        assert Record(1, b"x") == Record(1, b"x")
        assert Record(1, b"x") != Record(2, b"x")
