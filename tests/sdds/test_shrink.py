"""File shrinking: merges, tombstones, regrowth (the abstract's
'grows and shrinks with the storage needs')."""

import pytest

from repro.sdds import LHStarFile
from repro.sdds.lhstar_rs import LHStarRSFile


def grown_file(**options):
    file = LHStarFile(bucket_capacity=4, shrink=True, **options)
    for k in range(200):
        file.insert(k, b"v\x00")
    return file


class TestShrink:
    def test_validation(self):
        with pytest.raises(ValueError):
            LHStarFile(shrink=True, merge_threshold=0.0)
        with pytest.raises(ValueError):
            LHStarFile(shrink=True, merge_threshold=0.9,
                       load_factor_threshold=0.8)

    def test_file_shrinks_after_mass_deletion(self):
        file = grown_file()
        grown = file.coordinator.bucket_count
        for k in range(180):
            file.delete(k)
        assert file.coordinator.bucket_count < grown

    def test_remaining_records_still_found(self):
        file = grown_file()
        for k in range(180):
            file.delete(k)
        for k in range(180, 200):
            assert file.lookup(k) == b"v\x00"
        for k in range(180):
            assert file.lookup(k) is None

    def test_tombstones_redirect_stale_clients(self):
        file = grown_file()
        stale = file.new_client()
        # Converge the stale client on the grown file first.
        for k in range(0, 200, 5):
            op = stale.start_keyed("lookup", k)
            file.network.run()
            stale.take_reply(op)
        image_size = (1 << stale.i_image) + stale.n_image
        for k in range(180):
            file.delete(k)
        assert image_size > file.coordinator.bucket_count
        # The stale image now points at tombstones; every lookup must
        # still resolve.
        for k in range(180, 200):
            op = stale.start_keyed("lookup", k)
            file.network.run()
            assert stale.take_reply(op)["ok"]

    def test_scan_correct_after_shrink(self):
        file = grown_file()
        for k in range(180):
            file.delete(k)
        hits = file.scan(lambda r: r.rid)
        assert sorted(hits) == list(range(180, 200))

    def test_scan_with_stale_image_after_shrink(self):
        file = grown_file()
        stale = file.new_client()
        for k in range(0, 200, 5):
            op = stale.start_keyed("lookup", k)
            file.network.run()
            stale.take_reply(op)
        for k in range(180):
            file.delete(k)
        hits = file.scan(lambda r: r.rid, client=stale)
        assert sorted(hits) == list(range(180, 200))

    def test_regrowth_revives_tombstones(self):
        file = grown_file()
        for k in range(180):
            file.delete(k)
        shrunk = file.coordinator.bucket_count
        for k in range(1000, 1300):
            file.insert(k, b"w\x00")
        assert file.coordinator.bucket_count > shrunk
        for k in range(1000, 1300):
            assert file.lookup(k) == b"w\x00"
        for k in range(180, 200):
            assert file.lookup(k) == b"v\x00"

    def test_merge_preserves_addressing_invariant(self):
        file = grown_file()
        for k in range(0, 180, 2):
            file.delete(k)
        for address, bucket in file.buckets.items():
            if bucket.retired:
                assert not bucket.records
                continue
            for rid in bucket.records:
                assert rid & ((1 << bucket.level) - 1) == address

    def test_no_shrink_by_default(self):
        file = LHStarFile(bucket_capacity=4)
        for k in range(200):
            file.insert(k, b"v\x00")
        grown = file.coordinator.bucket_count
        for k in range(200):
            file.delete(k)
        assert file.coordinator.bucket_count == grown


class TestTombstoneShipments:
    def test_late_shipment_reforwarded(self):
        """A record shipment arriving at an already-retired bucket
        must be re-forwarded, never stranded in the tombstone."""
        from repro.sdds.records import Record

        file = LHStarFile(bucket_capacity=4, shrink=True)
        for k in range(40):
            file.insert(k, b"v\x00")
        for k in range(36):
            file.delete(k)
        tombstone = next(
            b for b in file.buckets.values() if b.retired
        )
        stray = Record(10_007, b"stray\x00")
        file.network.send(
            file.coordinator_id,       # any attached source works
            tombstone.node_id,
            "split_records",
            {"records": [stray]},
        )
        file.network.run()
        assert not tombstone.records
        # The record ended up at its true (live) home bucket.
        assert file.lookup(10_007) == b"stray\x00"


class TestShrinkWithParity:
    def test_rs_recovery_survives_merges(self):
        file = LHStarRSFile(
            bucket_capacity=4, group_size=4, parity_count=2,
            shrink=True,
        )
        for k in range(150):
            file.insert(k, f"r{k:03d}".encode() + b"\x00")
        for k in range(120):
            file.delete(k)
        live = [a for a, b in file.buckets.items() if not b.retired]
        for address in live[:4]:
            assert file.verify_recovery([address]), address
