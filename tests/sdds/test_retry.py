"""Client timeout/retry and idempotent redelivery under faults.

The LH* client protocol must complete whole workloads over a network
that drops and duplicates its datagrams, without ever double-applying
an operation — ``record_count`` stays exact and every reply is the
one the original request earned.
"""

import pytest

from repro.net import (
    JitterLatencyModel,
    Network,
    RetryExhaustedError,
    RetryPolicy,
    UnreliableNetwork,
)
from repro.sdds import LHStarFile

FAST = RetryPolicy(timeout=0.05, backoff=2.0, max_retries=8)


def faulty_file(seed=0, loss=0.05, dup=0.0, latency=None,
                policy=FAST, capacity=4):
    net = UnreliableNetwork(
        seed=seed, loss_rate=loss, duplication_rate=dup,
        latency=latency,
    )
    return LHStarFile(
        network=net, bucket_capacity=capacity, retry_policy=policy
    )


class TestKeyedRetry:
    def test_workload_survives_loss(self):
        file = faulty_file(seed=11, loss=0.1)
        for k in range(60):
            file.insert(k, f"v{k}\x00".encode())
        assert file.record_count == 60
        for k in range(60):
            assert file.lookup(k) == f"v{k}\x00".encode()
        stats = file.network.stats
        assert stats.dropped > 0
        assert stats.retries > 0

    def test_deletes_survive_loss(self):
        file = faulty_file(seed=23, loss=0.1)
        for k in range(40):
            file.insert(k, b"v\x00")
        for k in range(40):
            assert file.delete(k) is True
        assert file.record_count == 0
        assert not file.delete(0)

    def test_duplicate_inserts_keep_record_count_exact(self):
        """Redelivered inserts are dedup'd bucket-side: splitting
        thresholds and the record count never see the copy."""
        file = faulty_file(seed=7, loss=0.0, dup=1.0)
        for k in range(50):
            file.insert(k, b"v\x00")
        assert file.record_count == 50
        assert file.network.stats.duplicated > 0
        assert len(file.all_records()) == 50

    def test_duplicate_deletes_stay_true(self):
        """The copy of a delete must not observe the post-delete state
        and flip the answer to False."""
        file = faulty_file(seed=7, loss=0.0, dup=1.0)
        file.insert(1, b"v\x00")
        assert file.delete(1) is True
        assert file.record_count == 0

    def test_retry_budget_exhaustion_raises(self):
        file = faulty_file(
            seed=1, loss=1.0,
            policy=RetryPolicy(timeout=0.01, max_retries=2),
        )
        with pytest.raises(RetryExhaustedError):
            file.insert(1, b"v\x00")

    def test_no_policy_means_no_retransmission(self):
        """retry_policy=None restores the pre-robustness behaviour:
        a lost request simply never answers."""
        file = faulty_file(seed=1, loss=1.0, policy=None)
        op = file.client.start_keyed("insert", 1, b"v\x00")
        file.network.run()
        with pytest.raises(RuntimeError, match="no reply"):
            file.client.take_reply(op)
        assert file.network.stats.retries == 0


class TestScanRetry:
    def matcher(self, record):
        return record.rid

    def test_scan_completes_under_loss(self):
        file = faulty_file(seed=3, loss=0.1)
        for k in range(60):
            file.insert(k, b"v\x00")
        assert file.bucket_count > 1
        before = file.network.stats.snapshot()
        hits = file.scan(self.matcher)
        assert sorted(hits) == list(range(60))
        delta = file.network.stats.delta(before)
        assert delta.retries > 0

    def test_retry_is_targeted_not_rebroadcast(self):
        """A retry round resends at most the unanswered buckets, so
        the per-scan message count stays near one per bucket."""
        file = faulty_file(seed=3, loss=0.15)
        for k in range(80):
            file.insert(k, b"v\x00")
        buckets = file.live_bucket_count
        before = file.network.stats.snapshot()
        file.scan(self.matcher)
        delta = file.network.stats.delta(before)
        sent = delta.by_kind["scan"]
        # A full re-broadcast per retry round would cost a multiple of
        # the bucket count; targeted retries stay well under 2x.
        assert buckets <= sent < 2 * buckets

    def test_duplicate_scan_replies_not_double_counted(self):
        file = faulty_file(seed=5, loss=0.0, dup=1.0)
        for k in range(60):
            file.insert(k, b"v\x00")
        hits = file.scan(self.matcher)
        assert sorted(hits) == list(range(60))

    def test_scan_budget_exhaustion_raises(self):
        file = faulty_file(
            seed=1, loss=1.0,
            policy=RetryPolicy(timeout=0.01, max_retries=2),
        )
        with pytest.raises(RetryExhaustedError):
            file.scan(self.matcher)


class TestConvergenceUnderJitter:
    def test_full_workload_with_jitter_and_faults(self):
        """Loss, duplication and cross-link reordering at once: the
        protocol still converges to the exact expected state."""
        file = faulty_file(
            seed=17, loss=0.05, dup=0.02,
            latency=JitterLatencyModel(seed=17),
        )
        for k in range(50):
            file.insert(k, f"r{k}\x00".encode())
        for k in range(0, 50, 2):
            assert file.delete(k)
        assert file.record_count == 25
        for k in range(50):
            expected = None if k % 2 == 0 else f"r{k}\x00".encode()
            assert file.lookup(k) == expected
        hits = file.scan(lambda record: record.rid)
        assert sorted(hits) == [k for k in range(50) if k % 2]


class TestZeroLossEquivalence:
    def test_byte_identical_to_reliable_network(self):
        """At zero rates the whole retry layer must be invisible:
        message counts, bytes and the simulated clock all match a
        plain reliable Network run."""

        def workload(net):
            file = LHStarFile(network=net, bucket_capacity=4)
            for k in range(40):
                file.insert(k, b"v\x00")
            for k in range(40):
                file.lookup(k)
            file.scan(lambda record: record.rid)
            stats = net.stats
            return (stats.messages, stats.bytes, net.now,
                    stats.retries, stats.dropped)

        reliable = workload(Network())
        faulty = workload(
            UnreliableNetwork(seed=99, loss_rate=0.0,
                              duplication_rate=0.0)
        )
        assert reliable == faulty
        assert reliable[3] == 0
