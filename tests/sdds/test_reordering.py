"""Protocol robustness under message reordering (jittered latency)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EncryptedSearchableStore, SchemeParameters
from repro.net import JitterLatencyModel, Network
from repro.sdds import LHStarFile, LHStarRSFile


def jittered_network(seed=0):
    return Network(JitterLatencyModel(seed=seed, jitter=0.05))


class TestJitterModel:
    def test_deterministic_per_seed(self):
        a = JitterLatencyModel(seed=5)
        b = JitterLatencyModel(seed=5)
        assert [a.latency(64) for __ in range(5)] == [
            b.latency(64) for __ in range(5)
        ]

    def test_jitter_reorders_across_links_only(self):
        from repro.net.simulator import Node, Message

        class Sink(Node):
            def __init__(self):
                super().__init__("sink")
                self.order = []

            def handle(self, message: Message) -> None:
                self.order.append(message.payload["n"])

        net = jittered_network(seed=1)
        sink = net.attach(Sink())
        for n in range(20):
            net.attach(Sink.__base__(f"src-{n}"))
        # Different links: jitter reorders freely.
        for n in range(20):
            net.send(f"src-{n}", "sink", "data", {"n": n}, size=64)
        net.run()
        assert sink.order != list(range(20))  # reordering did happen
        assert sorted(sink.order) == list(range(20))
        # Same link: pairwise FIFO holds even under jitter.
        sink.order.clear()
        for n in range(20):
            net.send("src-0", "sink", "data", {"n": n}, size=64)
        net.run()
        assert sink.order == list(range(20))


class TestLHStarUnderJitter:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_inserts_and_lookups(self, seed):
        file = LHStarFile(network=jittered_network(seed),
                          bucket_capacity=3)
        for k in range(150):
            file.insert(k * 13, str(k).encode() + b"\x00")
        for k in range(150):
            assert file.lookup(k * 13) == str(k).encode() + b"\x00"

    def test_scan_complete_under_jitter(self):
        file = LHStarFile(network=jittered_network(7),
                          bucket_capacity=3)
        for k in range(120):
            file.insert(k, b"v\x00")
        hits = file.scan(lambda r: r.rid)
        assert sorted(hits) == list(range(120))

    def test_rs_recovery_under_jitter(self):
        file = LHStarRSFile(
            network=jittered_network(9), bucket_capacity=3,
            group_size=4, parity_count=2,
        )
        for k in range(100):
            file.insert(k, f"j{k}".encode() + b"\x00")
        for address in list(file.buckets)[:3]:
            assert file.verify_recovery([address])

    def test_shrink_under_jitter(self):
        file = LHStarFile(network=jittered_network(11),
                          bucket_capacity=4, shrink=True)
        for k in range(200):
            file.insert(k, b"v\x00")
        for k in range(180):
            file.delete(k)
        for k in range(180, 200):
            assert file.lookup(k) == b"v\x00"


class TestSchemeUnderJitter:
    def test_encrypted_search(self):
        store = EncryptedSearchableStore(
            SchemeParameters.full(4), network=jittered_network(13)
        )
        store.put(1, "SCHWARZ THOMAS")
        store.put(2, "LITWIN WITOLD")
        assert store.search("SCHWARZ").matches == frozenset({1})
        assert store.search("WITOLD").matches == frozenset({2})


@settings(max_examples=10)
@given(st.integers(0, 10 ** 6))
def test_property_jitter_never_breaks_lookups(seed):
    file = LHStarFile(network=jittered_network(seed),
                      bucket_capacity=2)
    for k in range(60):
        file.insert(k * 7, b"x\x00")
    for k in range(60):
        assert file.lookup(k * 7) == b"x\x00"
