"""Split policies: uncontrolled vs load-factor-controlled."""

import pytest

from repro.sdds import LHStarFile
from repro.sdds.lhstar_rs import LHStarRSFile


def fill(file, n=300):
    for k in range(n):
        file.insert(k, b"v\x00")
    return file


class TestPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            LHStarFile(split_policy="magic")

    def test_bad_threshold_rejected(self):
        with pytest.raises(ValueError):
            LHStarFile(split_policy="load_factor",
                       load_factor_threshold=0.0)

    @staticmethod
    def fill_skewed(file, n=120):
        """All keys collide in the same bucket chain (hot spot)."""
        for k in range(n):
            file.insert(k * 64, b"v\x00")
        return file

    def test_controlled_uses_fewer_buckets_on_hot_spots(self):
        """The policy's point: a single hot bucket must not force the
        whole file to double (uncontrolled splits do exactly that)."""
        uncontrolled = self.fill_skewed(LHStarFile(bucket_capacity=4))
        controlled = self.fill_skewed(
            LHStarFile(bucket_capacity=4, split_policy="load_factor",
                       load_factor_threshold=0.7)
        )
        assert controlled.bucket_count < uncontrolled.bucket_count
        # Both remain correct.
        for k in range(120):
            assert controlled.lookup(k * 64) == b"v\x00"
            assert uncontrolled.lookup(k * 64) == b"v\x00"

    def test_controlled_runs_hotter(self):
        uncontrolled = self.fill_skewed(LHStarFile(bucket_capacity=4))
        controlled = self.fill_skewed(
            LHStarFile(bucket_capacity=4, split_policy="load_factor",
                       load_factor_threshold=0.7)
        )

        def load(file):
            return file.record_count / (
                file.bucket_count * file.bucket_capacity
            )

        assert load(controlled) > load(uncontrolled)

    def test_controlled_correctness_preserved(self):
        file = fill(
            LHStarFile(bucket_capacity=4, split_policy="load_factor"),
            n=400,
        )
        for k in range(400):
            assert file.lookup(k) == b"v\x00"
        for address, bucket in file.buckets.items():
            for rid in bucket.records:
                assert rid & ((1 << bucket.level) - 1) == address

    def test_scan_still_complete(self):
        file = fill(
            LHStarFile(bucket_capacity=4, split_policy="load_factor"),
            n=200,
        )
        hits = file.scan(lambda r: r.rid)
        assert sorted(hits) == list(range(200))

    def test_rs_file_accepts_policy(self):
        file = LHStarRSFile(
            bucket_capacity=4, group_size=4, parity_count=2,
            split_policy="load_factor",
        )
        fill(file, n=120)
        assert file.split_policy == "load_factor"
        for address in list(file.buckets)[:3]:
            assert file.verify_recovery([address])
