"""Crash-fault tolerance: detection, online recovery, degraded reads.

Buckets here die by `Network.crash` — their node stops receiving and
its timers freeze — and every path back to correctness runs through
messages: clients escalate suspects to the coordinator, the
coordinator probes and declares, LH*_RS reconstructs the lost bucket
from survivors + parity and swaps a spare into the address map, and
reads issued meanwhile are served degraded through the parity group.
"""

import pytest

from repro.errors import (
    BucketUnavailableError,
    InsertFailedError,
    ReproError,
    SDDSError,
)
from repro.net import CrashFaultModel, Network, RetryPolicy
from repro.net.faults import RetryExhaustedError
from repro.obs import Tracer, use_tracer
from repro.sdds import LHStarFile, LHStarRSFile

FAST = RetryPolicy(timeout=0.05, backoff=2.0, max_retries=3)


def rs_file(keys=80, capacity=4, group_size=4, parity_count=2):
    file = LHStarRSFile(
        bucket_capacity=capacity, group_size=group_size,
        parity_count=parity_count, retry_policy=FAST,
    )
    for k in range(keys):
        file.insert(k, f"payload-{k:03d}\x00".encode())
    return file


def lh_file(keys=40, capacity=4):
    file = LHStarFile(bucket_capacity=capacity, retry_policy=FAST)
    for k in range(keys):
        file.insert(k, f"payload-{k:03d}\x00".encode())
    return file


def crash_bucket(file, address):
    file.network.crash(file.bucket_id(address))


def keys_in(file, address):
    return sorted(file.buckets[address].records)


class TestDetectionAndRecovery:
    def test_lookup_triggers_full_recovery(self):
        file = rs_file()
        baseline = {k: file.lookup(k) for k in range(80)}
        target = keys_in(file, 1)[0]
        crash_bucket(file, 1)
        # The very op that hits the dead bucket both gets a degraded
        # answer and sets recovery in motion.
        assert file.lookup(target) == baseline[target]
        stats = file.network.stats
        for kind in ("suspect", "probe", "recover", "group_fetch",
                     "recover_install", "recover_done"):
            assert stats.by_kind.get(kind, 0) > 0, kind
        assert stats.crashed_drops > 0
        # The spare holds the reconstructed records and coordinator
        # state is clean again.
        assert 1 not in file.coordinator.dead
        assert file.verify_recovery([1]) is True
        assert {k: file.lookup(k) for k in range(80)} == baseline

    def test_recovered_bucket_serves_normally(self):
        file = rs_file()
        target = keys_in(file, 2)[0]
        crash_bucket(file, 2)
        first = file.client.start_keyed("lookup", target)
        file.network.run()
        assert file.client.take_reply(first)["degraded"] is True
        # Recovery completed during that run: the next read comes from
        # the spare bucket, not the parity path.
        second = file.client.start_keyed("lookup", target)
        file.network.run()
        reply = file.client.take_reply(second)
        assert reply["ok"]
        assert "degraded" not in reply

    def test_update_parks_until_recovery(self):
        file = rs_file()
        target = keys_in(file, 1)[0]
        crash_bucket(file, 1)
        # Writes cannot be served degraded: the client parks the op
        # with the coordinator and it completes once the spare is up.
        file.insert(target, b"rewritten\x00")
        assert file.lookup(target) == b"rewritten\x00"
        assert file.verify_recovery([1]) is True

    def test_delete_parks_until_recovery(self):
        file = rs_file()
        target = keys_in(file, 1)[0]
        count = file.record_count
        crash_bucket(file, 1)
        assert file.delete(target) is True
        assert file.record_count == count - 1
        assert file.lookup(target) is None
        assert file.verify_recovery([1]) is True

    def test_recovery_emits_span(self):
        file = rs_file()
        tracer = Tracer(network=file.network)
        with use_tracer(tracer):
            crash_bucket(file, 1)
            file.lookup(keys_in(file, 1)[0])
        names = [span.name for span in tracer.finished]
        assert "lh.recover" in names
        span = next(s for s in tracer.finished
                    if s.name == "lh.recover")
        assert span.attrs["bucket"] == 1
        # Reconstruction cost is visible in the span's stats delta.
        assert span.stats.by_kind.get("group_fetch", 0) > 0
        assert span.stats.bytes > 0

    def test_gather_survives_crashed_survivor(self):
        # A second same-group crash the client does not know about:
        # the parity bucket's gather hits the silent survivor, times
        # out, escalates it to the coordinator, and restarts with the
        # enlarged dead set instead of wedging forever.
        file = rs_file(parity_count=2)
        baseline = {k: file.lookup(k) for k in range(80)}
        target = keys_in(file, 1)[0]
        crash_bucket(file, 1)
        crash_bucket(file, 2)
        assert file.lookup(target) == baseline[target]
        # Both members were declared and rebuilt online.
        assert file.coordinator.dead == {}
        assert file.verify_recovery([1, 2]) is True
        assert {k: file.lookup(k) for k in range(80)} == baseline

    def test_false_suspicion_clears_without_recovery(self):
        # Crash, let the client escalate, restore before the probe
        # verdict: the coordinator's probe gets acked and the bucket
        # is never declared dead.
        file = rs_file()
        target = keys_in(file, 1)[0]
        node = file.bucket_id(1)
        file.network.schedule(0.01, lambda: file.network.restore(node))
        file.network.crash(node)
        assert file.lookup(target) is not None
        assert 1 not in file.coordinator.dead
        assert file.network.stats.by_kind.get("recover", 0) == 0


class TestDegradedScan:
    def test_scan_correct_under_k_crashes_same_group(self):
        file = rs_file(keys=120, parity_count=2)
        expected = sorted(file.scan(lambda r: r.rid))
        crash_bucket(file, 1)
        crash_bucket(file, 2)
        degraded = sorted(file.scan(lambda r: r.rid))
        assert degraded == expected
        assert file.network.stats.by_kind.get("degraded_scan", 0) > 0

    def test_scan_correct_under_crashes_across_groups(self):
        file = rs_file(keys=160, capacity=4, group_size=4,
                       parity_count=1)
        assert file.coordinator.n + (file.coordinator.i and 0) >= 0
        expected = sorted(file.scan(lambda r: r.rid))
        # One crash per group stays within parity budget.
        crash_bucket(file, 0)
        crash_bucket(file, 5)
        degraded = sorted(file.scan(lambda r: r.rid))
        assert degraded == expected

    def test_substring_scan_matches_fault_free(self):
        file = rs_file(keys=100)
        matcher = (lambda r: r.rid if b"-04" in r.content else None)
        expected = sorted(file.scan(matcher))
        crash_bucket(file, 3)
        assert sorted(file.scan(matcher)) == expected


class TestPlainLHStarCrashes:
    def test_lookup_raises_typed_unavailable(self):
        file = lh_file()
        target = keys_in(file, 1)[0]
        crash_bucket(file, 1)
        with pytest.raises(BucketUnavailableError) as excinfo:
            file.lookup(target)
        assert "no parity" in str(excinfo.value)

    def test_scan_raises_typed_unavailable(self):
        file = lh_file()
        crash_bucket(file, 1)
        with pytest.raises(BucketUnavailableError):
            file.scan(lambda r: r.rid)

    def test_reboot_is_rediscovered(self):
        file = lh_file()
        target = keys_in(file, 1)[0]
        crash_bucket(file, 1)
        with pytest.raises(BucketUnavailableError):
            file.lookup(target)
        file.network.restore(file.bucket_id(1))
        # The next suspect round re-probes and clears the death
        # certificate; no records were lost (crash, not disk loss).
        assert file.lookup(target) is not None
        assert sorted(file.scan(lambda r: r.rid)) == list(range(40))

    def test_splits_and_merges_avoid_dead_addresses(self):
        file = LHStarFile(bucket_capacity=4, retry_policy=FAST,
                          shrink=True, merge_threshold=0.2)
        for k in range(40):
            file.insert(k, b"v\x00")
        survivors_of_1 = keys_in(file, 1)
        crash_bucket(file, 1)
        with pytest.raises(BucketUnavailableError):
            file.lookup(survivors_of_1[0])
        # Shrink pressure must not merge through the dead address: a
        # merge would need its records, which nobody can fetch.
        for k in range(40):
            if k in survivors_of_1:
                continue
            file.delete(k)
        assert 1 in file.buckets
        assert not file.buckets[1].retired
        assert set(file.buckets[1].records) == set(survivors_of_1)


class TestErrorHierarchy:
    def test_tree(self):
        assert issubclass(SDDSError, ReproError)
        assert issubclass(BucketUnavailableError, SDDSError)
        assert issubclass(RetryExhaustedError, SDDSError)
        assert issubclass(InsertFailedError, SDDSError)
        # Backwards compatibility: existing handlers that caught
        # RuntimeError keep working.
        assert issubclass(BucketUnavailableError, RuntimeError)
        assert issubclass(RetryExhaustedError, RuntimeError)
        assert issubclass(InsertFailedError, RuntimeError)

    def test_retry_exhaustion_still_raised_on_total_loss(self):
        from repro.net import UnreliableNetwork

        net = UnreliableNetwork(seed=1, loss_rate=1.0)
        file = LHStarFile(
            network=net, bucket_capacity=4,
            retry_policy=RetryPolicy(timeout=0.01, max_retries=1),
        )
        with pytest.raises(RetryExhaustedError):
            file.insert(1, b"v\x00")


class TestCrashFaultModelWorkload:
    def test_seeded_crashes_under_gate_preserve_correctness(self):
        crashes = CrashFaultModel(seed=5, mttf=0.4, mttr=0.1,
                                  horizon=60.0)
        net = Network(crashes=crashes)
        file = LHStarRSFile(
            network=net, bucket_capacity=4, group_size=4,
            parity_count=2, retry_policy=FAST,
        )
        crashes.gate = file.crash_gate()
        for k in range(40):
            file.insert(k, f"v{k}\x00".encode())
        crashes.plan([file.bucket_id(a) for a in range(8)])
        for k in range(40, 120):
            file.insert(k, f"v{k}\x00".encode())
        for k in range(120):
            assert file.lookup(k) == f"v{k}\x00".encode(), k
        assert sorted(file.scan(lambda r: r.rid)) == list(range(120))

    def test_gate_refuses_overbudget_crashes(self):
        file = rs_file(parity_count=1)
        gate = file.crash_gate()
        assert gate(file.bucket_id(1)) is True
        crash_bucket(file, 1)
        # A second failure in group 0 would exceed k=1.
        assert gate(file.bucket_id(2)) is False
        # Other groups keep their own budget.
        if 4 in file.buckets:
            assert gate(file.bucket_id(4)) is True
        # Non-bucket nodes are never crashed.
        assert gate(file.coordinator_id) is False
        assert gate(file.client_id(0)) is False


class TestVerifyRecoveryDiagnostics:
    def test_missing_bucket_raises_typed_error(self):
        file = rs_file(keys=20)
        with pytest.raises(BucketUnavailableError) as excinfo:
            file.verify_recovery([97])
        assert "97" in str(excinfo.value)

    def test_happy_path_all_patterns(self):
        file = rs_file(keys=60)
        import itertools

        members = [a for a in file.buckets
                   if not file.buckets[a].retired
                   and file.group_of(a) == 0]
        for r in (1, 2):
            for pattern in itertools.combinations(members, r):
                assert file.verify_recovery(list(pattern)) is True
