"""LH*_RS degraded reads: record reconstruction without its bucket."""

import pytest

from repro.sdds import LHStarRSFile


@pytest.fixture(scope="module")
def rs_file():
    file = LHStarRSFile(bucket_capacity=4, group_size=4, parity_count=2)
    for k in range(100):
        file.insert(k, f"payload-{k:03d}".encode() + b"\x00")
    return file


class TestDegradedLookup:
    def test_matches_direct_read(self, rs_file):
        for rid in (0, 17, 42, 63, 99):
            direct = rs_file.lookup(rid)
            degraded = rs_file.degraded_lookup(rid)
            assert degraded == direct

    def test_unknown_rid(self, rs_file):
        assert rs_file.degraded_lookup(123456) is None

    def test_after_update(self):
        file = LHStarRSFile(bucket_capacity=4, group_size=4,
                            parity_count=2)
        for k in range(40):
            file.insert(k, b"before\x00")
        file.insert(7, b"after-update!\x00")
        assert file.degraded_lookup(7) == b"after-update!\x00"

    def test_after_delete(self):
        file = LHStarRSFile(bucket_capacity=4, group_size=4,
                            parity_count=2)
        for k in range(40):
            file.insert(k, b"v\x00")
        file.delete(9)
        assert file.degraded_lookup(9) is None

    def test_every_record_degraded_readable(self, rs_file):
        """The availability claim: any single record survives the
        loss of its home bucket."""
        for bucket in rs_file.buckets.values():
            for rid, record in bucket.records.items():
                assert rs_file.degraded_lookup(rid) == record.content

    def test_after_splits(self):
        file = LHStarRSFile(bucket_capacity=2, group_size=4,
                            parity_count=2)
        for k in range(120):
            file.insert(k, f"s{k}".encode() + b"\x00")
        for rid in (0, 33, 77, 119):
            assert file.degraded_lookup(rid) == file.lookup(rid)
