"""Concurrent multi-client batches: interleaved ops, splits in flight."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import JitterLatencyModel, Network
from repro.sdds import LHStarFile


class TestConcurrentBatches:
    def test_concurrent_inserts_land(self):
        file = LHStarFile(bucket_capacity=3)
        ops = [("insert", k, b"v%d\x00" % k) for k in range(100)]
        file.run_concurrent(ops, concurrency=8)
        for k in range(100):
            assert file.lookup(k) == b"v%d\x00" % k

    def test_mixed_batch_results_in_order(self):
        file = LHStarFile(bucket_capacity=4)
        for k in range(50):
            file.insert(k, b"old\x00")
        ops = (
            [("lookup", k) for k in range(10)]
            + [("delete", k) for k in range(10, 20)]
            + [("insert", k, b"new\x00") for k in range(100, 110)]
        )
        results = file.run_concurrent(ops, concurrency=6)
        assert results[:10] == [b"old\x00"] * 10
        assert results[10:20] == [True] * 10
        assert results[20:] == [None] * 10

    def test_lookups_concurrent_with_split_storm(self):
        """Inserts forcing splits interleave with lookups of existing
        keys; every lookup must still resolve correctly."""
        file = LHStarFile(bucket_capacity=2)
        for k in range(40):
            file.insert(k, b"stable\x00")
        ops = []
        for k in range(40):
            ops.append(("insert", 1000 + k, b"x\x00"))
            ops.append(("lookup", k))
        results = file.run_concurrent(ops, concurrency=8)
        lookups = results[1::2]
        assert lookups == [b"stable\x00"] * 40

    def test_under_jitter(self):
        file = LHStarFile(
            network=Network(JitterLatencyModel(seed=3, jitter=0.05)),
            bucket_capacity=2,
        )
        for k in range(30):
            file.insert(k, b"s\x00")
        ops = [("lookup", k) for k in range(30)] + [
            ("insert", 500 + k, b"n\x00") for k in range(30)
        ]
        results = file.run_concurrent(ops, concurrency=5)
        assert results[:30] == [b"s\x00"] * 30

    def test_validation(self):
        file = LHStarFile()
        with pytest.raises(ValueError):
            file.run_concurrent([("lookup", 1)], concurrency=0)
        with pytest.raises(ValueError):
            file.run_concurrent([("bogus", 1)])


@settings(max_examples=10)
@given(
    st.lists(st.integers(0, 500), min_size=1, max_size=60, unique=True),
    st.integers(1, 8),
)
def test_property_concurrent_equals_serial(keys, concurrency):
    """A concurrent insert batch produces the same file contents as
    serial insertion (order-independence of disjoint keys)."""
    serial = LHStarFile(name="serial", bucket_capacity=3)
    for key in keys:
        serial.insert(key, str(key).encode())
    concurrent = LHStarFile(name="concurrent", bucket_capacity=3)
    concurrent.run_concurrent(
        [("insert", key, str(key).encode()) for key in keys],
        concurrency=concurrency,
    )
    for key in keys:
        assert concurrent.lookup(key) == serial.lookup(key)
    assert concurrent.record_count == serial.record_count
