"""BucketHaystack: the concatenated-blob offset table is exact.

The batched scan's correctness rests on one property: ``find_all``
over the concatenated blob reports exactly what per-record
``aligned_find`` reports — no cross-boundary matches, no sentinel
matches, alignment relative to each record's own start.
"""

import pytest

from repro.core.search import aligned_find
from repro.sdds.haystack import GAP, SENTINEL_BYTE, BucketHaystack
from repro.sdds.records import Record


def make_records(contents: dict[int, bytes]) -> dict[int, Record]:
    return {rid: Record(rid, blob) for rid, blob in contents.items()}


class TestLayout:
    def test_empty_bucket(self):
        hay = BucketHaystack({})
        assert len(hay) == 0
        assert hay.blob == b""
        assert list(hay.find_all(b"X", 1)) == []

    def test_single_record_has_no_sentinel(self):
        hay = BucketHaystack(make_records({7: b"ABCD"}))
        assert hay.blob == b"ABCD"
        assert hay.rids == [7]

    def test_records_joined_with_gap(self):
        hay = BucketHaystack(make_records({1: b"AB", 2: b"CD"}))
        assert hay.blob == b"AB" + bytes([SENTINEL_BYTE]) * GAP + b"CD"

    def test_preserves_dict_order(self):
        records = make_records({5: b"A", 1: b"B", 3: b"C"})
        assert BucketHaystack(records).rids == [5, 1, 3]

    def test_segments_roundtrip(self):
        contents = {1: b"AB", 2: b"", 3: b"XYZ"}
        hay = BucketHaystack(make_records(contents))
        assert {
            rid: bytes(view) for rid, view in hay.segments()
        } == contents

    def test_memory_accounting(self):
        hay = BucketHaystack(make_records({1: b"AB", 2: b"CD"}))
        assert hay.memory_bytes() == len(hay.blob) + 2 * 3 * 8


class TestFindAll:
    def test_matches_per_record_aligned_find(self):
        contents = {1: b"ABCDAB", 2: b"XXABYY", 3: b"AB" * 5}
        hay = BucketHaystack(make_records(contents))
        for width in (1, 2):
            expected = [
                (rid, position)
                for rid, blob in contents.items()
                for position in aligned_find(blob, b"AB", width)
            ]
            got = sorted(hay.find_all(b"AB", width))
            assert got == sorted(expected)

    def test_rejects_cross_boundary_match(self):
        # "CD" spans record 1's tail and record 2's head only via the
        # sentinel gap; zero-gap concatenation would see "CD" at the
        # seam of b"AC"+b"DB" — containment must reject it.
        hay = BucketHaystack(make_records({1: b"AC", 2: b"DB"}))
        assert list(hay.find_all(b"CD", 1)) == []

    def test_needle_spanning_into_gap_rejected(self):
        sentinel = bytes([SENTINEL_BYTE])
        hay = BucketHaystack(make_records({1: b"AB" + sentinel[:0] + b"C",
                                           2: b"D"}))
        # A needle ending with sentinel bytes can find its prefix at a
        # record tail; the containment check must reject it.
        assert list(hay.find_all(b"C" + sentinel, 1)) == []

    def test_sentinel_only_needle_never_matches(self):
        hay = BucketHaystack(make_records({1: b"AB", 2: b"CD"}))
        assert list(hay.find_all(bytes([SENTINEL_BYTE]), 1)) == []

    def test_alignment_relative_to_segment_start(self):
        # Record 2 starts at an odd blob offset unless GAP re-aligns;
        # positions must be record-relative regardless.
        hay = BucketHaystack(make_records({1: b"A", 2: b"ZZAB"}))
        assert list(hay.find_all(b"AB", 2)) == [(2, 1)]

    def test_empty_records_are_skipped(self):
        hay = BucketHaystack(make_records({1: b"", 2: b"AB", 3: b""}))
        assert list(hay.find_all(b"AB", 1)) == [(2, 0)]

    def test_empty_needle_rejected(self):
        hay = BucketHaystack(make_records({1: b"AB"}))
        with pytest.raises(ValueError):
            list(hay.find_all(b"", 1))
        with pytest.raises(ValueError):
            list(hay.find_records(b""))

    def test_bad_width_rejected(self):
        hay = BucketHaystack(make_records({1: b"AB"}))
        with pytest.raises(ValueError):
            list(hay.find_all(b"A", 0))


class TestFindRecords:
    def test_membership_each_record_once(self):
        hay = BucketHaystack(
            make_records({1: b"AB" * 10, 2: b"XY", 3: b"ZAB"})
        )
        assert list(hay.find_records(b"AB")) == [1, 3]

    def test_cross_boundary_membership_rejected(self):
        hay = BucketHaystack(make_records({1: b"AC", 2: b"DB"}))
        assert list(hay.find_records(b"CD")) == []

    def test_blob_order_preserved(self):
        records = make_records({9: b"QQ", 4: b"QQ", 6: b"QQ"})
        assert list(BucketHaystack(records).find_records(b"Q")) == [9, 4, 6]
