"""LH* protocol behaviour over the simulator."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net import Network
from repro.sdds import LHStarFile
from repro.sdds.records import Record


def small_file(capacity=4, name="lh"):
    return LHStarFile(name=name, bucket_capacity=capacity)


class TestBasicOperations:
    def test_insert_lookup(self):
        file = small_file()
        file.insert(1, b"one\x00")
        assert file.lookup(1) == b"one\x00"

    def test_lookup_missing(self):
        file = small_file()
        assert file.lookup(99) is None

    def test_overwrite(self):
        file = small_file()
        file.insert(1, b"a\x00")
        file.insert(1, b"b\x00")
        assert file.lookup(1) == b"b\x00"
        assert file.record_count == 1

    def test_delete(self):
        file = small_file()
        file.insert(1, b"x\x00")
        assert file.delete(1)
        assert file.lookup(1) is None
        assert not file.delete(1)

    def test_record_count(self):
        file = small_file()
        for k in range(25):
            file.insert(k, b"v\x00")
        assert file.record_count == 25

    def test_bad_capacity(self):
        with pytest.raises(ValueError):
            LHStarFile(bucket_capacity=0)


class TestSplitting:
    def test_file_grows_under_load(self):
        file = small_file(capacity=4)
        for k in range(100):
            file.insert(k, b"v\x00")
        assert file.bucket_count > 1
        i, n = file.state
        assert file.bucket_count == (1 << i) + n

    def test_all_records_in_correct_bucket(self):
        """After arbitrary splits, every record hashes to its bucket."""
        file = small_file(capacity=3)
        for k in range(200):
            file.insert(k * 7919, b"v\x00")
        for address, bucket in file.buckets.items():
            for rid in bucket.records:
                assert rid & ((1 << bucket.level) - 1) == address

    def test_no_records_lost_during_splits(self):
        file = small_file(capacity=2)
        keys = [k * 31 for k in range(150)]
        for k in keys:
            file.insert(k, str(k).encode() + b"\x00")
        for k in keys:
            assert file.lookup(k) == str(k).encode() + b"\x00"

    def test_bucket_levels_consistent_with_coordinator(self):
        file = small_file(capacity=4)
        for k in range(300):
            file.insert(k, b"v\x00")
        i, n = file.state
        for address, bucket in file.buckets.items():
            if address < n or address >= (1 << i):
                assert bucket.level == i + 1
            else:
                assert bucket.level == i


class TestClientImages:
    def test_stale_client_still_succeeds(self):
        file = small_file(capacity=2)
        for k in range(100):
            file.insert(k, b"v\x00")
        stale = file.new_client()  # image (0, 0)
        for k in (0, 17, 63, 99):
            op = stale.start_keyed("lookup", k)
            file.network.run()
            reply = stale.take_reply(op)
            assert reply["ok"]

    def test_iam_converges_image(self):
        file = small_file(capacity=2)
        for k in range(200):
            file.insert(k, b"v\x00")
        stale = file.new_client()
        rng = random.Random(5)
        for __ in range(100):
            op = stale.start_keyed("lookup", rng.randrange(200))
            file.network.run()
            stale.take_reply(op)
        image_size = (1 << stale.i_image) + stale.n_image
        assert image_size > 1
        assert image_size <= file.bucket_count

    def test_image_never_exceeds_file(self):
        file = small_file(capacity=2)
        stale = file.new_client()
        for k in range(300):
            file.insert(k, b"v\x00")
            if k % 10 == 0:
                op = stale.start_keyed("lookup", k)
                file.network.run()
                stale.take_reply(op)
                image_size = (1 << stale.i_image) + stale.n_image
                assert image_size <= file.bucket_count

    def test_forwarding_bounded_by_two_hops(self):
        """End-to-end check of the <= 2 forwarding-hops theorem."""
        file = small_file(capacity=2)
        for k in range(500):
            file.insert(k, b"v\x00")

        max_hops = 0
        original = type(file.buckets[0])._handle_keyed

        def tracking(self, message):
            nonlocal max_hops
            max_hops = max(max_hops, message.hops)
            return original(self, message)

        for bucket in file.buckets.values():
            bucket._handle_keyed = tracking.__get__(bucket)
        stale = file.new_client()
        for k in range(0, 500, 7):
            op = stale.start_keyed("lookup", k)
            file.network.run()
            stale.take_reply(op)
        assert max_hops <= 2

    def test_converged_lookup_costs_two_messages(self):
        file = small_file(capacity=4)
        for k in range(100):
            file.insert(k, b"v\x00")
        for k in range(100):
            file.lookup(k)  # converge
        before = file.network.stats.snapshot()
        for k in range(50):
            file.lookup(k)
        delta = file.network.stats.delta(before)
        assert delta.messages == 100  # request + reply each


class TestScan:
    def test_scan_finds_all_matches(self):
        file = small_file(capacity=4)
        for k in range(120):
            file.insert(k, b"even\x00" if k % 2 == 0 else b"odd\x00")
        hits = file.scan(
            lambda r: r.rid if r.content == b"even\x00" else None
        )
        assert sorted(hits) == list(range(0, 120, 2))

    def test_scan_covers_every_bucket_exactly_once(self):
        file = small_file(capacity=2)
        for k in range(200):
            file.insert(k, b"v\x00")
        seen = []
        file.scan(lambda r: seen.append(r.rid))
        assert sorted(seen) == list(range(200))

    def test_scan_with_stale_client_image(self):
        file = small_file(capacity=2)
        for k in range(150):
            file.insert(k, b"v\x00")
        stale = file.new_client()  # believes there is 1 bucket
        hits = file.scan(lambda r: r.rid, client=stale)
        assert sorted(hits) == list(range(150))

    def test_scan_cost_is_linear_in_buckets(self):
        file = small_file(capacity=4)
        for k in range(200):
            file.insert(k, b"v\x00")
        before = file.network.stats.snapshot()
        file.scan(lambda r: None)
        delta = file.network.stats.delta(before)
        assert delta.messages == 2 * file.bucket_count

    def test_scan_empty_file(self):
        file = small_file()
        assert file.scan(lambda r: r.rid) == []


class TestMultiFileNetwork:
    def test_two_files_share_a_network(self):
        net = Network()
        a = LHStarFile(name="a", network=net, bucket_capacity=4)
        b = LHStarFile(name="b", network=net, bucket_capacity=4)
        a.insert(1, b"in-a\x00")
        b.insert(1, b"in-b\x00")
        assert a.lookup(1) == b"in-a\x00"
        assert b.lookup(1) == b"in-b\x00"

    def test_all_records_dump(self):
        file = small_file()
        for k in range(10):
            file.insert(k, b"v\x00")
        dump = file.all_records()
        assert len(dump) == 10
        assert all(isinstance(r, Record) for r in dump)


@settings(max_examples=15)
@given(
    st.lists(
        st.tuples(st.integers(0, 10_000), st.binary(min_size=1, max_size=30)),
        min_size=1,
        max_size=120,
    )
)
def test_property_file_equals_dict(operations):
    """An LH* file behaves exactly like a dict under inserts."""
    file = LHStarFile(bucket_capacity=3)
    model: dict[int, bytes] = {}
    for key, value in operations:
        file.insert(key, value)
        model[key] = value
    for key, value in model.items():
        assert file.lookup(key) == value
    assert file.record_count == len(model)
