"""Property-style check: parity stays solvable under churn.

Random interleavings of inserts, updates and deletes — sized to force
splits (small capacity) and merges (shrink enabled) — must leave every
group's parity consistent: *every* erasure pattern of up to ``k``
member buckets reconstructs exactly the live records.
"""

import itertools
import random

import pytest

from repro.sdds import LHStarRSFile


def churn(file, seed, operations):
    rng = random.Random(seed)
    alive = set()
    next_key = 0
    for _ in range(operations):
        roll = rng.random()
        if roll < 0.55 or not alive:
            key = next_key
            next_key += 1
            file.insert(key, rng.randbytes(rng.randrange(1, 40)) + b"\x00")
            alive.add(key)
        elif roll < 0.75:
            key = rng.choice(sorted(alive))
            file.insert(key, rng.randbytes(rng.randrange(1, 40)) + b"\x00")
        else:
            key = rng.choice(sorted(alive))
            assert file.delete(key) is True
            alive.discard(key)
    return alive


def group_members(file):
    """Live data-bucket addresses per parity group."""
    members = {}
    for address, bucket in file.buckets.items():
        if bucket.retired or bucket.pending:
            continue
        members.setdefault(file.group_of(address), []).append(address)
    return members


def assert_all_patterns_recoverable(file):
    k = file.parity_count
    checked = 0
    for group, members in group_members(file).items():
        for r in range(1, k + 1):
            for pattern in itertools.combinations(sorted(members), r):
                assert file.verify_recovery(list(pattern)) is True, (
                    f"group {group}: erasure pattern {pattern} does "
                    "not reconstruct the live records"
                )
                checked += 1
    assert checked > 0


class TestParityUnderChurn:
    @pytest.mark.parametrize("seed", [0, 1, 2, 7])
    def test_every_erasure_pattern_recoverable(self, seed):
        file = LHStarRSFile(
            bucket_capacity=4, group_size=4, parity_count=2,
            shrink=True, merge_threshold=0.3,
        )
        churn(file, seed=seed, operations=150)
        assert_all_patterns_recoverable(file)

    @pytest.mark.parametrize("seed", [3, 11])
    def test_single_parity_groups(self, seed):
        file = LHStarRSFile(
            bucket_capacity=2, group_size=2, parity_count=1,
            shrink=True, merge_threshold=0.3,
        )
        churn(file, seed=seed, operations=100)
        assert_all_patterns_recoverable(file)

    def test_shrink_exercises_merges(self):
        # The churn mix must actually reach both split and merge
        # machinery, or the property above is vacuous for merges.
        file = LHStarRSFile(
            bucket_capacity=4, group_size=4, parity_count=2,
            shrink=True, merge_threshold=0.3,
        )
        alive = churn(file, seed=2, operations=150)
        # Drain the file so shrink pressure actually fires merges.
        rng = random.Random(99)
        victims = sorted(alive)
        rng.shuffle(victims)
        for key in victims[: int(len(victims) * 0.8)]:
            assert file.delete(key) is True
        stats = file.network.stats
        assert stats.by_kind.get("split_records", 0) > 0
        assert stats.by_kind.get("merge_records", 0) > 0
        assert_all_patterns_recoverable(file)

    def test_contents_match_after_churn(self):
        file = LHStarRSFile(
            bucket_capacity=4, group_size=4, parity_count=2,
            shrink=True, merge_threshold=0.3,
        )
        alive = churn(file, seed=5, operations=150)
        for key in alive:
            assert file.lookup(key) is not None
        assert file.record_count == len(alive)
        assert_all_patterns_recoverable(file)
