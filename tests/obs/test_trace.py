"""The span tracer: nesting, counter deltas, events, JSONL round-trip."""

import io

import pytest

from repro.core import EncryptedSearchableStore, SchemeParameters
from repro.net import RetryPolicy, UnreliableNetwork
from repro.net.simulator import Network
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    emit,
    get_tracer,
    load_jsonl,
    render_tree,
    set_tracer,
    span,
    use_tracer,
)

PHONEBOOK = {
    4154099999: "415-409-9999 SCHWARZ THOMAS",
    4154091234: "415-409-1234 LITWIN WITOLD",
    4154095678: "415-409-5678 TSUI PETER",
    4154090007: "415-409-0007 ABOGADO ALEJANDRO",
}


def make_store(**kwargs) -> EncryptedSearchableStore:
    params = SchemeParameters.full(4, master_key=b"obs-test-key")
    return EncryptedSearchableStore(params, **kwargs)


class TestSpanBasics:
    def test_empty_span_has_zero_cost(self):
        net = Network()
        tracer = Tracer(network=net)
        with tracer.span("op") as sp:
            pass
        assert sp.start == sp.end == 0.0
        assert sp.stats.messages == 0 and sp.stats.bytes == 0

    def test_span_counts_messages_inside_window(self):
        store = make_store()
        tracer = Tracer(network=store.network)
        with tracer.span("window"):
            store.put(1, "415-409-9999 SCHWARZ THOMAS")
        (root,) = tracer.roots()
        assert root.stats.messages > 0
        assert root.stats.bytes > 0
        assert root.elapsed > 0
        # Unrelated later traffic must not leak into the closed span.
        before = root.stats.messages
        store.put(2, "415-409-1234 LITWIN WITOLD")
        assert root.stats.messages == before

    def test_nesting_parent_child_ids(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # Completion order: children first.
        assert [s.name for s in tracer.finished] == ["inner", "outer"]

    def test_exception_annotates_and_closes(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        (root,) = tracer.roots()
        assert root.attrs["error"] == "ValueError"
        assert tracer.current() is None

    def test_events_attach_to_innermost_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.event("tick", n=1)
        inner = next(s for s in tracer.finished if s.name == "inner")
        outer = next(s for s in tracer.finished if s.name == "outer")
        assert [e.name for e in inner.events] == ["tick"]
        assert outer.events == []

    def test_orphan_events_kept(self):
        tracer = Tracer()
        tracer.event("lonely")
        assert [e.name for e in tracer.orphan_events] == ["lonely"]

    def test_ring_buffer_evicts_oldest(self):
        tracer = Tracer(capacity=2)
        for index in range(5):
            with tracer.span(f"op{index}"):
                pass
        assert [s.name for s in tracer.finished] == ["op3", "op4"]
        assert tracer.evicted == 3

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)


class TestGlobalHooks:
    def test_no_tracer_means_null_span(self):
        assert get_tracer() is None
        assert span("anything", foo=1) is NULL_SPAN
        emit("nothing.listens")  # must not raise

    def test_null_span_is_inert(self):
        with span("untraced") as sp:
            sp.annotate(x=1)
            sp.event("e", 0.0)
        assert sp is NULL_SPAN

    def test_use_tracer_installs_and_restores(self):
        tracer = Tracer()
        with use_tracer(tracer):
            assert get_tracer() is tracer
            with span("traced"):
                emit("seen")
        assert get_tracer() is None
        (root,) = tracer.roots()
        assert [e.name for e in root.events] == ["seen"]

    def test_set_tracer_returns_previous(self):
        first, second = Tracer(), Tracer()
        assert set_tracer(first) is None
        assert set_tracer(second) is first
        assert set_tracer(None) is second


class TestInstrumentedScheme:
    def test_search_span_tree_and_annotations(self):
        store = make_store()
        tracer = Tracer(network=store.network)
        with use_tracer(tracer):
            for rid, text in PHONEBOOK.items():
                store.put(rid, text)
            result = store.search("SCHWARZ")
        names = {s.name for s in tracer.finished}
        assert "ess.put" in names and "ess.search" in names
        search_span = next(
            s for s in tracer.finished if s.name == "ess.search"
        )
        assert search_span.attrs["pattern"] == "SCHWARZ"
        assert search_span.attrs["matches"] == len(result.matches)
        assert search_span.stats.messages == result.cost.messages
        # Verification fetches nest under the search span.
        gets = [
            s for s in tracer.finished
            if s.name == "ess.get"
            and s.parent_id == search_span.span_id
        ]
        assert len(gets) == len(result.candidates)

    def test_search_span_equals_stats_diff(self):
        store = make_store()
        for rid, text in PHONEBOOK.items():
            store.put(rid, text)
        tracer = Tracer(network=store.network)
        before = store.network.stats.snapshot()
        with use_tracer(tracer):
            store.search("LITWIN")
        delta = store.network.stats.diff(before)
        total = sum(s.stats.messages for s in tracer.roots())
        assert total == delta.messages
        assert sum(s.stats.bytes for s in tracer.roots()) == delta.bytes

    def test_retry_events_recorded_under_loss(self):
        net = UnreliableNetwork(seed=11, loss_rate=0.15)
        store = make_store(
            network=net,
            retry_policy=RetryPolicy(timeout=0.05, max_retries=10),
        )
        tracer = Tracer(network=net)
        with use_tracer(tracer):
            for rid, text in PHONEBOOK.items():
                store.put(rid, text)
            result = store.search("SCHWARZ")
        assert result.matches == {4154099999}
        events = [
            e.name for s in tracer.finished for e in s.events
        ]
        assert "lh.retry" in events  # loss forced retransmissions
        retries = sum(s.stats.retries for s in tracer.roots())
        assert retries == net.stats.retries

    def test_split_events_attach_to_put_spans(self):
        store = make_store(bucket_capacity=4)
        tracer = Tracer(network=store.network)
        with use_tracer(tracer):
            for rid in range(40):
                store.put(rid, f"415-409-{rid:04d} NAME{rid:04d}")
        splits = [
            e for s in tracer.finished for e in s.events
            if e.name == "lh.split"
        ]
        assert splits  # 40 records through capacity-4 buckets split
        assert all("file" in e.attrs and "new" in e.attrs
                   for e in splits)


class TestJsonlRoundTrip:
    def trace_workload(self):
        store = make_store()
        tracer = Tracer(network=store.network)
        with use_tracer(tracer):
            for rid, text in PHONEBOOK.items():
                store.put(rid, text)
            store.search("SCHWARZ")
            store.search("TSUI")
            store.get(4154091234)
        return store, tracer

    def test_round_trip_preserves_everything(self):
        __, tracer = self.trace_workload()
        buffer = io.StringIO()
        count = tracer.export_jsonl(buffer)
        assert count == len(tracer.finished)
        restored = load_jsonl(buffer.getvalue().splitlines())
        assert len(restored) == count
        for original, loaded in zip(tracer.finished, restored):
            assert loaded.span_id == original.span_id
            assert loaded.parent_id == original.parent_id
            assert loaded.name == original.name
            assert loaded.attrs == original.attrs
            assert loaded.start == original.start
            assert loaded.end == original.end
            assert loaded.stats.messages == original.stats.messages
            assert loaded.stats.bytes == original.stats.bytes
            assert dict(loaded.stats.by_kind) == dict(
                original.stats.by_kind
            )
            assert [e.name for e in loaded.events] == [
                e.name for e in original.events
            ]

    def test_round_trip_span_sum_matches_stats_delta(self):
        """Acceptance: JSONL round-trip preserves the cost identity."""
        store = make_store()
        for rid, text in PHONEBOOK.items():
            store.put(rid, text)
        tracer = Tracer(network=store.network)
        before = store.network.stats.snapshot()
        with use_tracer(tracer):
            store.search("SCHWARZ")
        delta = store.network.stats.diff(before)
        buffer = io.StringIO()
        tracer.export_jsonl(buffer)
        restored = load_jsonl(buffer.getvalue().splitlines())
        ids = {s.span_id for s in restored}
        roots = [
            s for s in restored
            if s.parent_id is None or s.parent_id not in ids
        ]
        assert sum(s.stats.messages for s in roots) == delta.messages
        assert sum(s.stats.bytes for s in roots) == delta.bytes

    def test_export_to_path(self, tmp_path):
        __, tracer = self.trace_workload()
        path = tmp_path / "trace.jsonl"
        tracer.export_jsonl(str(path))
        assert len(load_jsonl(str(path))) == len(tracer.finished)


class TestRenderTree:
    def test_tree_shows_nesting_and_events(self):
        store = make_store()
        tracer = Tracer(network=store.network)
        with use_tracer(tracer):
            for rid, text in PHONEBOOK.items():
                store.put(rid, text)
            store.search("SCHWARZ")
        text = tracer.render_tree()
        assert "ess.search" in text
        assert "└─" in text or "├─" in text
        assert "msgs" in text

    def test_tree_of_loaded_spans(self):
        spans = [
            Span("a", span_id=1, parent_id=None, attrs={}),
            Span("b", span_id=2, parent_id=1, attrs={}),
        ]
        text = render_tree(spans)
        assert text.splitlines()[0].startswith("a")
        assert "b" in text.splitlines()[1]
