"""The metrics registry: instruments, dumps, hooks, network observer."""

import json

import pytest

from repro.net.simulator import Network, Node
from repro.net import UnreliableNetwork
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_metrics,
    inc,
    observe,
    set_gauge,
    set_metrics,
    use_metrics,
    watch_network,
)
from repro.sdds.lhstar import LHStarFile


class TestInstruments:
    def test_counter_monotone(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(3)
        assert counter.value == 4
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_last_write_wins(self):
        gauge = Gauge("g")
        gauge.set(0.5)
        gauge.set(0.25)
        assert gauge.value == 0.25

    def test_histogram_summary_exact(self):
        histogram = Histogram("h", bounds=(1.0, 10.0))
        for value in (0.5, 2.0, 20.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.total == 22.5
        assert histogram.minimum == 0.5
        assert histogram.maximum == 20.0
        assert histogram.mean == 7.5
        assert histogram.buckets == [1, 1, 1]

    def test_histogram_bounds_validated(self):
        with pytest.raises(ValueError):
            Histogram("h", bounds=(10.0, 1.0))

    def test_histogram_quantile_bucket_resolution(self):
        histogram = Histogram("h", bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 0.6, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.quantile(0.5) == 1.0
        assert histogram.quantile(1.0) == 100.0
        with pytest.raises(ValueError):
            histogram.quantile(2.0)


class TestRegistry:
    def test_create_on_first_use(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.gauge("y") is registry.gauge("y")
        assert registry.histogram("z") is registry.histogram("z")

    def test_dump_json_parses(self):
        registry = MetricsRegistry()
        registry.counter("a").inc(2)
        registry.gauge("b").set(1.5)
        registry.histogram("c").observe(0.01)
        data = json.loads(registry.dump_json())
        assert data["a"] == {"type": "counter", "value": 2}
        assert data["b"]["value"] == 1.5
        assert data["c"]["count"] == 1

    def test_dump_text_one_line_per_instrument(self):
        registry = MetricsRegistry()
        registry.counter("splits").inc()
        registry.gauge("load").set(0.8)
        registry.histogram("lat").observe(0.002)
        lines = registry.dump_text().splitlines()
        assert lines[0] == "counter splits 1"
        assert lines[1] == "gauge load 0.8"
        assert lines[2].startswith("histogram lat count=1")

    def test_clear(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.clear()
        assert registry.to_dict() == {}


class TestGlobalHooks:
    def test_hooks_are_noops_without_registry(self):
        assert get_metrics() is None
        inc("a")
        observe("b", 1.0)
        set_gauge("c", 2.0)  # none of these may raise

    def test_use_metrics_scopes_installation(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            inc("hits", 2)
            observe("sizes", 64.0)
            set_gauge("level", 3.0)
        assert get_metrics() is None
        assert registry.counter("hits").value == 2
        assert registry.histogram("sizes").count == 1
        assert registry.gauge("level").value == 3.0

    def test_set_metrics_returns_previous(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        assert set_metrics(first) is None
        assert set_metrics(second) is first
        assert set_metrics(None) is second


class TestLHStarInstrumentation:
    def test_split_and_load_metrics(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            file = LHStarFile(bucket_capacity=4)
            for key in range(40):
                file.insert(key, b"payload\x00")
        assert registry.counter("lh.split").value > 0
        assert registry.histogram("lh.bucket_load").count > 0
        gauge = registry.gauge(f"lh.buckets.{file.name}")
        assert gauge.value == file.live_bucket_count

    def test_retry_and_dedup_metrics_under_faults(self):
        registry = MetricsRegistry()
        net = UnreliableNetwork(seed=3, loss_rate=0.15,
                                duplication_rate=0.1)
        with use_metrics(registry):
            file = LHStarFile(network=net, bucket_capacity=8)
            for key in range(60):
                file.insert(key, b"payload\x00")
            assert all(
                file.lookup(key) is not None for key in range(60)
            )
        assert registry.counter("lh.retry").value == net.stats.retries
        assert registry.counter("lh.retry").value > 0


class TestNetworkObserver:
    def test_watch_network_counts_and_latency(self):
        class Echo(Node):
            def handle(self, message):
                if message.kind == "ping":
                    self.send(message.src, "pong", size=32)

        registry = MetricsRegistry()
        net = Network()
        net.attach(Echo("a"))
        net.attach(Echo("b"))
        watch_network(net, registry)
        net.send("a", "b", "ping", size=64)
        net.run()
        assert registry.counter("net.sent.ping").value == 1
        assert registry.counter("net.sent.pong").value == 1
        assert registry.counter("net.delivered").value == 2
        size = registry.histogram("net.message_size")
        assert size.count == 2 and size.total == 96
        latency = registry.histogram("net.delivery_latency")
        assert latency.count == 2 and latency.total > 0

    def test_watch_network_counts_drops(self):
        registry = MetricsRegistry()
        net = UnreliableNetwork(seed=1, loss_rate=1.0)
        file = LHStarFile(network=net, retry_policy=None)
        watch_network(net, registry)
        file.client.start_keyed("lookup", 7)
        net.run()
        assert registry.counter("net.dropped").value == 1

    def test_watch_network_requires_registry(self):
        with pytest.raises(ValueError):
            watch_network(Network())

    def test_watch_network_uses_installed_registry(self):
        registry = MetricsRegistry()
        net = Network()
        with use_metrics(registry):
            observer = watch_network(net)
        assert observer.registry is registry
