"""Cost-breakdown report: table shape and the root-span sum identity."""

from repro.core import EncryptedSearchableStore, SchemeParameters
from repro.obs.report import (
    cost_breakdown,
    kind_breakdown,
    render_report,
    report_from_jsonl,
)
from repro.obs.trace import Span, Tracer, use_tracer

PHONEBOOK = {
    4154099999: "415-409-9999 SCHWARZ THOMAS",
    4154091234: "415-409-1234 LITWIN WITOLD",
    4154095678: "415-409-5678 TSUI PETER",
}


def num(cell: str) -> float:
    """Parse a formatted table cell back into a number."""
    return float(cell.replace(",", ""))


def traced_workload():
    params = SchemeParameters.full(4, master_key=b"obs-report-key")
    store = EncryptedSearchableStore(params)
    tracer = Tracer(network=store.network)
    with use_tracer(tracer):
        for rid, text in PHONEBOOK.items():
            store.put(rid, text)
        store.search("SCHWARZ")
    return store, tracer


class TestCostBreakdown:
    def test_one_row_per_root_operation_plus_total(self):
        __, tracer = traced_workload()
        table = cost_breakdown(tracer.finished)
        operations = [row[0] for row in table.rows]
        assert operations == ["ess.put", "ess.search", "TOTAL"]
        put_row = table.rows[0]
        assert num(put_row[1]) == len(PHONEBOOK)  # count
        assert num(put_row[3]) == num(put_row[2]) / num(put_row[1])

    def test_total_row_equals_stats_delta(self):
        store, tracer = traced_workload()
        table = cost_breakdown(tracer.finished)
        total = table.rows[-1]
        assert total[0] == "TOTAL"
        assert num(total[2]) == store.network.stats.messages
        assert num(total[4]) == store.network.stats.bytes

    def test_nested_spans_not_double_counted(self):
        __, tracer = traced_workload()
        # The search's verification fetches appear as nested ess.get
        # spans; they must not get their own row.
        assert any(s.name == "ess.get" for s in tracer.finished)
        operations = [row[0] for row in cost_breakdown(tracer.finished).rows]
        assert "ess.get" not in operations

    def test_single_group_has_no_total_row(self):
        spans = [Span("solo", span_id=1, parent_id=None, attrs={})]
        table = cost_breakdown(spans)
        assert [row[0] for row in table.rows] == ["solo"]


class TestKindBreakdown:
    def test_wire_census_matches_stats_by_kind(self):
        store, tracer = traced_workload()
        table = kind_breakdown(tracer.finished)
        census = {
            row[0]: (num(row[1]), num(row[2])) for row in table.rows
        }
        assert census == {
            kind: (count, store.network.stats.bytes_by_kind[kind])
            for kind, count in store.network.stats.by_kind.items()
        }


class TestRendering:
    def test_render_report_contains_both_tables(self):
        __, tracer = traced_workload()
        text = render_report(tracer.finished)
        assert "Per-operation cost breakdown" in text
        assert "Wire census by message kind" in text
        assert "ess.search" in text

    def test_report_from_jsonl(self, tmp_path):
        __, tracer = traced_workload()
        path = tmp_path / "trace.jsonl"
        tracer.export_jsonl(str(path))
        assert report_from_jsonl(str(path)) == render_report(
            tracer.finished
        )


class TestCacheBreakdown:
    def _metrics(self):
        from repro.core.kernels import clear_codec_cache, fused_codec
        from repro.crypto.feistel import FeistelPRP
        from repro.obs.metrics import MetricsRegistry, use_metrics

        clear_codec_cache()
        registry = MetricsRegistry()
        with use_metrics(registry):
            fused_codec(FeistelPRP(b"report", 64), None, 1, 64)
            fused_codec(FeistelPRP(b"report", 64), None, 1, 64)
        return registry.to_dict()

    def test_rows_reflect_kernel_metrics(self):
        from repro.obs.report import cache_breakdown

        table = cache_breakdown(self._metrics())
        text = table.render()
        assert "Fused-kernel cache census" in text
        assert "codec tables" in text
        assert "search plans" in text
        codec_row = table.rows[0]
        assert codec_row[1] == "1"  # one hit
        assert codec_row[2] == "1"  # one miss
        assert codec_row[3] == "50%"
        assert codec_row[4] == "1"  # one build

    def test_empty_metrics_render_stable_shape(self):
        from repro.obs.report import cache_breakdown

        table = cache_breakdown({})
        assert len(table.rows) == 5
        assert [row[0] for row in table.rows] == [
            "codec tables", "search plans", "bucket haystacks",
            "scan automata", "gram indexes",
        ]
        assert table.rows[0][3] == "-"

    def test_main_accepts_metrics_json(self, tmp_path, capsys):
        import json

        from repro.obs.report import main

        __, tracer = traced_workload()
        trace_path = tmp_path / "trace.jsonl"
        tracer.export_jsonl(str(trace_path))
        metrics_path = tmp_path / "metrics.json"
        metrics_path.write_text(json.dumps(self._metrics()))
        assert main([str(trace_path), str(metrics_path)]) == 0
        out = capsys.readouterr().out
        assert "Fused-kernel cache census" in out
