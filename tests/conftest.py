"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.data.phonebook import Directory, generate_directory

# A leaner hypothesis profile: the suite has many property tests and
# some exercise moderately expensive machinery.
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def directory() -> Directory:
    """A small deterministic synthetic directory shared by all tests."""
    return generate_directory(2000, seed=2006)


@pytest.fixture(scope="session")
def sample_entries(directory):
    """A 200-entry sample, the workload of the FP-style tests."""
    return directory.sample(200, seed=7).entries


@pytest.fixture(scope="session")
def name_corpus(directory) -> list[bytes]:
    return [entry.name.encode("ascii") for entry in directory]
