"""Shared fixtures for the test suite."""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.data.phonebook import Directory, generate_directory

# A leaner hypothesis profile: the suite has many property tests and
# some exercise moderately expensive machinery.
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


def pytest_collection_modifyitems(config, items):
    """``live``-marked tests spawn real server processes; they only
    run when explicitly requested (``REPRO_LIVE_TESTS=1``, as the CI
    serving job sets) so the default tier-1 run stays hermetic."""
    if os.environ.get("REPRO_LIVE_TESTS") == "1":
        return
    skip_live = pytest.mark.skip(
        reason="live-backend test (set REPRO_LIVE_TESTS=1 to run)"
    )
    for item in items:
        if "live" in item.keywords:
            item.add_marker(skip_live)


class NetworkBackend:
    """A factory for :class:`Network` instances of one backend.

    ``make(sites=...)`` returns a fresh network; tests parametrize the
    ``network_backend`` fixture indirectly to run the same protocol
    episode over the simulator and over the live socket transport:

        @pytest.mark.parametrize(
            "network_backend",
            ["simulator", pytest.param("live", marks=pytest.mark.live)],
            indirect=True,
        )
        def test_something(network_backend): ...
    """

    kind = "simulator"

    def make(self, sites: int = 16, run_timeout: float = 60.0):
        from repro.net.simulator import Network

        return Network()

    def close(self) -> None:
        pass


class LiveNetworkBackend(NetworkBackend):
    kind = "live"

    def __init__(self) -> None:
        self._cluster = None

    def make(self, sites: int = 16, run_timeout: float = 60.0):
        from repro.net.live import LiveCluster

        if self._cluster is not None and self._cluster.buckets < sites:
            self._cluster.shutdown()
            self._cluster = None
        if self._cluster is None:
            self._cluster = LiveCluster(buckets=sites).start()
        return self._cluster.connect(run_timeout=run_timeout)

    def close(self) -> None:
        if self._cluster is not None:
            self._cluster.shutdown()
            self._cluster = None

    def log_paths(self):
        return self._cluster.log_paths() if self._cluster else {}


@pytest.fixture
def network_backend(request):
    """Network factory: ``simulator`` (default) or ``live``."""
    kind = getattr(request, "param", "simulator")
    backend = (LiveNetworkBackend() if kind == "live"
               else NetworkBackend())
    try:
        yield backend
    finally:
        backend.close()


@pytest.fixture(scope="session")
def directory() -> Directory:
    """A small deterministic synthetic directory shared by all tests."""
    return generate_directory(2000, seed=2006)


@pytest.fixture(scope="session")
def sample_entries(directory):
    """A 200-entry sample, the workload of the FP-style tests."""
    return directory.sample(200, seed=7).entries


@pytest.fixture(scope="session")
def name_corpus(directory) -> list[bytes]:
    return [entry.name.encode("ascii") for entry in directory]
