"""Collect every doctest in the library as part of the suite.

Module docstrings carry executable examples; this keeps them honest.
"""

import doctest
import importlib
import pkgutil

import pytest

import repro


def _all_modules():
    names = [repro.__name__]
    for module in pkgutil.walk_packages(repro.__path__,
                                        prefix="repro."):
        if module.name.endswith("__main__"):
            continue
        names.append(module.name)
    return names


@pytest.mark.parametrize("module_name", _all_modules())
def test_module_doctests(module_name):
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, (
        f"{results.failed} doctest failure(s) in {module_name}"
    )
