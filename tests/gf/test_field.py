"""Unit and property tests for GF(2^g) arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gf import GF2


class TestConstruction:
    def test_instances_are_cached(self):
        assert GF2(8) is GF2(8)

    def test_distinct_polynomials_are_distinct_fields(self):
        assert GF2(8) is not GF2(8, polynomial=0x11B)

    @pytest.mark.parametrize("g", range(1, 17))
    def test_all_supported_degrees_construct(self, g):
        field = GF2(g)
        assert field.order == 1 << g

    @pytest.mark.parametrize("g", [0, 17, -1])
    def test_unsupported_degrees_rejected(self, g):
        with pytest.raises(ValueError):
            GF2(g)

    def test_wrong_degree_polynomial_rejected(self):
        with pytest.raises(ValueError):
            GF2(8, polynomial=0x1011B)  # degree 16 poly for g=8


class TestKnownValues:
    def test_rijndael_example(self):
        # The classic FIPS-197 worked example: {57} x {83} = {c1}.
        field = GF2(8, polynomial=0x11B)
        assert field.mul(0x57, 0x83) == 0xC1

    def test_xtime(self):
        field = GF2(8, polynomial=0x11B)
        assert field.mul(0x57, 2) == 0xAE
        assert field.mul(0x80, 2) == 0x1B

    def test_gf4_multiplication_table(self):
        f = GF2(2)
        # GF(4) with x^2 + x + 1: 2*2 = 3, 2*3 = 1, 3*3 = 2.
        assert f.mul(2, 2) == 3
        assert f.mul(2, 3) == 1
        assert f.mul(3, 3) == 2

    def test_gf2_is_boolean_algebra(self):
        f = GF2(1)
        assert f.mul(1, 1) == 1
        assert f.add(1, 1) == 0


class TestAxioms:
    @pytest.mark.parametrize("g", [2, 4, 8])
    def test_exhaustive_inverses(self, g):
        field = GF2(g)
        for a in range(1, field.order):
            assert field.mul(a, field.inv(a)) == 1

    def test_zero_has_no_inverse(self):
        with pytest.raises(ZeroDivisionError):
            GF2(4).inv(0)

    def test_division_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            GF2(4).div(3, 0)

    def test_zero_divided(self):
        assert GF2(4).div(0, 5) == 0


@st.composite
def field_and_elements(draw, n=2):
    g = draw(st.sampled_from([2, 3, 4, 8]))
    field = GF2(g)
    values = [draw(st.integers(0, field.order - 1)) for __ in range(n)]
    return field, values


class TestProperties:
    @given(field_and_elements(3))
    def test_mul_associative(self, fe):
        field, (a, b, c) = fe
        assert field.mul(field.mul(a, b), c) == field.mul(a, field.mul(b, c))

    @given(field_and_elements(2))
    def test_mul_commutative(self, fe):
        field, (a, b) = fe
        assert field.mul(a, b) == field.mul(b, a)

    @given(field_and_elements(3))
    def test_distributive(self, fe):
        field, (a, b, c) = fe
        assert field.mul(a, b ^ c) == field.mul(a, b) ^ field.mul(a, c)

    @given(field_and_elements(1))
    def test_one_is_identity(self, fe):
        field, (a,) = fe
        assert field.mul(a, 1) == a

    @given(field_and_elements(2))
    def test_division_inverts_multiplication(self, fe):
        field, (a, b) = fe
        if b:
            assert field.div(field.mul(a, b), b) == a

    @given(field_and_elements(1), st.integers(-5, 10))
    def test_pow_matches_repeated_multiplication(self, fe, e):
        field, (a,) = fe
        if a == 0 and e < 0:
            return
        expected = 1
        for __ in range(abs(e)):
            expected = field.mul(expected, a if e >= 0 else field.inv(a)) \
                if a else 0
        if a == 0 and e == 0:
            expected = 1
        assert field.pow(a, e) == expected


class TestVectorHelpers:
    def test_dot_product(self):
        f = GF2(4)
        assert f.dot([1, 2], [3, 4]) == 3 ^ f.mul(2, 4)

    def test_dot_length_mismatch(self):
        with pytest.raises(ValueError):
            GF2(4).dot([1], [1, 2])

    def test_validate(self):
        f = GF2(4)
        assert f.validate(15) == 15
        with pytest.raises(ValueError):
            f.validate(16)

    def test_log_exp_roundtrip(self):
        f = GF2(8)
        for a in (1, 2, 77, 255):
            assert f.exp(f.log(a)) == a

    def test_log_of_zero(self):
        with pytest.raises(ValueError):
            GF2(8).log(0)
