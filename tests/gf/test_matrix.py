"""Tests for GF(2^g) linear algebra."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.gf import (
    GF2,
    Matrix,
    cauchy_matrix,
    default_cauchy_matrix,
    identity_matrix,
    random_nonsingular_matrix,
    vandermonde_matrix,
)


@pytest.fixture
def f8():
    return GF2(8)


class TestConstruction:
    def test_rectangular_ok(self, f8):
        m = Matrix(f8, [[1, 2, 3], [4, 5, 6]])
        assert (m.nrows, m.ncols) == (2, 3)

    def test_ragged_rejected(self, f8):
        with pytest.raises(ValueError):
            Matrix(f8, [[1, 2], [3]])

    def test_empty_rejected(self, f8):
        with pytest.raises(ValueError):
            Matrix(f8, [])

    def test_out_of_field_rejected(self, f8):
        with pytest.raises(ValueError):
            Matrix(f8, [[256]])

    def test_transpose(self, f8):
        m = Matrix(f8, [[1, 2, 3], [4, 5, 6]])
        assert m.transpose().rows == ((1, 4), (2, 5), (3, 6))


class TestAlgebra:
    def test_identity_multiplication(self, f8):
        m = Matrix(f8, [[3, 1], [7, 2]])
        eye = identity_matrix(f8, 2)
        assert m @ eye == m
        assert eye @ m == m

    def test_shape_mismatch(self, f8):
        a = Matrix(f8, [[1, 2]])
        with pytest.raises(ValueError):
            a @ a

    def test_vector_multiplication_matches_matmul(self, f8):
        m = Matrix(f8, [[3, 1], [7, 2]])
        row = Matrix(f8, [[5, 9]])
        assert (row @ m).rows[0] == m.mul_vector((5, 9))

    def test_determinant_of_singular(self, f8):
        m = Matrix(f8, [[1, 2], [1, 2]])
        assert m.determinant() == 0
        assert not m.is_invertible()
        with pytest.raises(ValueError):
            m.inverse()

    def test_rank(self, f8):
        # [[1,2],[2,4]] IS singular over GF(2^8): row2 = 2 * row1
        # (2*2 = x*x = 4, no reduction below degree 8).
        assert Matrix(f8, [[1, 2], [2, 4]]).rank() == 1
        assert Matrix(f8, [[1, 2], [2, 5]]).rank() == 2
        assert Matrix(f8, [[1, 2], [1, 2]]).rank() == 1

    def test_inverse_roundtrip(self, f8):
        m = Matrix(f8, [[1, 2, 3], [4, 5, 6], [7, 8, 10]])
        if m.is_invertible():
            assert m @ m.inverse() == identity_matrix(f8, 3)

    def test_determinant_multiplicative(self, f8):
        a = Matrix(f8, [[3, 1], [7, 2]])
        b = Matrix(f8, [[5, 6], [1, 9]])
        assert (a @ b).determinant() == f8.mul(
            a.determinant(), b.determinant()
        )


class TestFamilies:
    def test_cauchy_all_nonzero_and_invertible(self, f8):
        m = cauchy_matrix(f8, [0, 1, 2, 3], [4, 5, 6, 7])
        assert m.all_nonzero()
        assert m.is_invertible()

    def test_cauchy_rejects_overlap(self, f8):
        with pytest.raises(ValueError):
            cauchy_matrix(f8, [0, 1], [1, 2])

    def test_cauchy_rejects_duplicates(self, f8):
        with pytest.raises(ValueError):
            cauchy_matrix(f8, [0, 0], [1, 2])

    def test_default_cauchy_too_large(self):
        with pytest.raises(ValueError):
            default_cauchy_matrix(GF2(2), 3)

    def test_vandermonde_invertible_on_distinct_points(self, f8):
        m = vandermonde_matrix(f8, [1, 2, 3], 3)
        assert m.is_invertible()

    def test_vandermonde_duplicate_points(self, f8):
        with pytest.raises(ValueError):
            vandermonde_matrix(f8, [1, 1], 2)

    @pytest.mark.parametrize("g,k", [(2, 2), (2, 4), (4, 3), (8, 4)])
    def test_random_nonsingular(self, g, k):
        m = random_nonsingular_matrix(GF2(g), k, random.Random(3))
        assert m.is_invertible()

    def test_random_nonsingular_all_nonzero(self):
        m = random_nonsingular_matrix(
            GF2(4), 3, random.Random(5), require_all_nonzero=True
        )
        assert m.all_nonzero() and m.is_invertible()


@given(
    st.sampled_from([2, 4, 8]),
    st.integers(2, 4),
    st.integers(0, 2 ** 31),
)
def test_property_inverse_roundtrips_vectors(g, k, seed):
    field = GF2(g)
    rng = random.Random(seed)
    m = random_nonsingular_matrix(field, k, rng)
    vector = tuple(rng.randrange(field.order) for __ in range(k))
    dispersed = m.mul_vector(vector)
    assert m.inverse().mul_vector(dispersed) == vector
