"""Keep the prose honest: docs must reference code that exists.

Two checks over ``README.md`` and every ``docs/*.md``:

* every dotted ``repro.*`` reference resolves to an importable module
  or an attribute of one, and
* every relative markdown link points at a file in the repository.

This is what the CI ``docs`` job runs, so a rename that orphans a doc
reference fails the build instead of rotting quietly.
"""

import importlib
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent

DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda path: path.name,
)

# Dotted repro paths in prose or code blocks; trailing sentence
# punctuation is not part of the reference.
_REFERENCE = re.compile(r"\brepro(?:\.[A-Za-z_][A-Za-z0-9_]*)+")

# [label](target) markdown links, ignoring images' extra bang.
_LINK = re.compile(r"\[[^\]]+\]\(([^)\s]+)\)")


def _references(path: Path) -> set[str]:
    return set(_REFERENCE.findall(path.read_text()))


def _resolves(reference: str) -> bool:
    """Import the longest module prefix, then walk attributes."""
    parts = reference.split(".")
    for cut in range(len(parts), 0, -1):
        module_name = ".".join(parts[:cut])
        try:
            target = importlib.import_module(module_name)
        except ImportError:
            continue
        try:
            for attribute in parts[cut:]:
                target = getattr(target, attribute)
        except AttributeError:
            return False
        return True
    return False


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=[path.name for path in DOC_FILES]
)
def test_code_references_resolve(doc):
    broken = sorted(
        reference for reference in _references(doc)
        if not _resolves(reference)
    )
    assert not broken, (
        f"{doc.name} references nonexistent modules/symbols: {broken}"
    )


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=[path.name for path in DOC_FILES]
)
def test_relative_links_exist(doc):
    broken = []
    for target in _LINK.findall(doc.read_text()):
        if target.startswith(("http://", "https://", "#", "mailto:")):
            continue
        relative = target.split("#", 1)[0]
        if not relative:
            continue
        if not (doc.parent / relative).exists():
            broken.append(target)
    assert not broken, f"{doc.name} has dead relative links: {broken}"


def test_all_docs_present():
    """The files this suite audits actually exist."""
    for doc in DOC_FILES:
        assert doc.is_file()
    assert any(doc.name == "README.md" for doc in DOC_FILES)
