"""Round-trip tests for the live transport's wire codec.

Every message kind either transport carries must survive
encode → decode byte-exactly in behaviour: equal payload values,
preserved dict order (the wire checksum is order-sensitive), and —
for matcher-bearing scans — a decoded matcher whose verdicts are
identical to the original's.
"""

import string

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.compressed_index import (
    CompressedScanMatcher,
    MultiCompressedScanMatcher,
)
from repro.core.scheme import BatchHitReporter, _BatchHit
from repro.core.search import (
    IndexKeyCodec,
    MultiPlanScanMatcher,
    PlanScanMatcher,
    SearchPlan,
    SiteHit,
)
from repro.core.wordsearch import MultiWordScanMatcher, WordScanMatcher
from repro.crypto.swp import Trapdoor
from repro.net.faults import RetryPolicy
from repro.net.simulator import Message, wire_checksum
from repro.net.stats import NetworkStats
from repro.net.wire import (
    CHANNEL_CTRL,
    CHANNEL_DATA,
    KNOWN_KINDS,
    MESSAGE_KINDS,
    WIRE_VERSION,
    FrameDecoder,
    WireDecodeError,
    WireEncodeError,
    decode_frame_body,
    decode_message,
    decode_value,
    encode_frame,
    encode_message,
    encode_value,
    kind_table_markdown,
    protocol_kinds_in_source,
)
from repro.sdds.records import Record


def roundtrip(value):
    return decode_value(encode_value(value))


# -- generic values ----------------------------------------------------------

scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2 ** 512), max_value=2 ** 512),
    st.floats(allow_nan=False),
    st.text(string.printable, max_size=40),
    st.binary(max_size=60),
)

values = st.recursive(
    scalars,
    lambda inner: st.one_of(
        st.lists(inner, max_size=4),
        st.lists(inner, max_size=4).map(tuple),
        st.dictionaries(
            st.one_of(
                st.integers(min_value=-(2 ** 40), max_value=2 ** 40),
                st.text(string.ascii_letters, max_size=8),
                st.tuples(st.integers(min_value=0, max_value=99),
                          st.integers(min_value=0, max_value=99)),
            ),
            inner,
            max_size=4,
        ),
    ),
    max_leaves=20,
)


class TestValueCodec:
    @given(values)
    def test_roundtrip(self, value):
        assert roundtrip(value) == value

    @given(values)
    def test_deterministic(self, value):
        assert encode_value(value) == encode_value(value)

    def test_dict_order_preserved(self):
        forward = {"a": 1, "b": 2, "c": 3}
        backward = {"c": 3, "b": 2, "a": 1}
        assert list(roundtrip(forward)) == ["a", "b", "c"]
        assert list(roundtrip(backward)) == ["c", "b", "a"]
        assert encode_value(forward) != encode_value(backward)

    def test_tuple_list_distinguished(self):
        assert roundtrip((1, 2)) == (1, 2)
        assert roundtrip([1, 2]) == [1, 2]
        assert isinstance(roundtrip((1, 2)), tuple)
        assert isinstance(roundtrip([1, 2]), list)

    def test_set_roundtrip(self):
        assert roundtrip({1, 2, 3}) == {1, 2, 3}
        assert encode_value({3, 1, 2}) == encode_value({1, 2, 3})

    def test_memoryview_and_bytearray_encode_as_bytes(self):
        assert roundtrip(bytearray(b"xy")) == b"xy"
        assert roundtrip(memoryview(b"xy")) == b"xy"

    def test_unencodable_object_raises(self):
        with pytest.raises(WireEncodeError):
            encode_value(object())

    def test_unencodable_closure_matcher_raises(self):
        with pytest.raises(WireEncodeError):
            encode_value(lambda record: None)

    def test_truncated_rejected(self):
        data = encode_value({"key": 7, "content": b"abcdef"})
        for cut in range(1, len(data)):
            with pytest.raises(WireDecodeError):
                decode_value(data[:cut])

    def test_trailing_garbage_rejected(self):
        with pytest.raises(WireDecodeError):
            decode_value(encode_value(1) + b"x")


# -- typed protocol objects --------------------------------------------------


def sample_plan():
    return SearchPlan(
        pattern=b"NEEDLE",
        needles={(0, 0): (b"\x01\x02", b"\x03\x04"),
                 (0, 1): (b"\x01", b"\x03"),
                 (1, 0): (b"\x05\x06", b"\x07\x08"),
                 (1, 1): (b"\x05", b"\x06")},
        piece_width=1,
        sites=2,
        group_count=2,
        alignments=(0, 1),
        required_groups=2,
    )


class TestTypedObjects:
    def test_record(self):
        record = Record(rid=9, content=b"\x00\x01payload")
        back = roundtrip(record)
        assert back == record
        assert back.wire_size == record.wire_size

    def test_site_hit(self):
        hit = SiteHit(rid=4, group=1, site=0,
                      positions={0: [1, 5], 2: [3]})
        back = roundtrip(hit)
        assert back == hit
        assert back.wire_size == hit.wire_size

    def test_batch_hit(self):
        hit = _BatchHit(index=2,
                        hit=SiteHit(rid=1, group=0, site=1,
                                    positions={0: [0]}),
                        tagged=True)
        back = roundtrip(hit)
        assert back == hit
        assert back.wire_size == hit.wire_size

    def test_index_key_codec(self):
        codec = IndexKeyCodec(site_bits=2, group_bits=3)
        back = roundtrip(codec)
        assert back == codec
        assert back((5 << 5) | (6 << 2) | 1) == (5, 6, 1)

    def test_search_plan(self):
        plan = sample_plan()
        back = roundtrip(plan)
        assert back == plan
        assert back.request_size() == plan.request_size()

    @pytest.mark.parametrize("batched", [True, False])
    def test_plan_scan_matcher(self, batched):
        codec = IndexKeyCodec(site_bits=1, group_bits=1)
        matcher = PlanScanMatcher(sample_plan(), codec,
                                  batched=batched)
        back = roundtrip(matcher)
        assert back.plan == matcher.plan
        assert back.decode == codec
        assert (back.match_bucket is None) == (not batched)
        record = Record(rid=(7 << 2) | (0 << 1) | 0,
                        content=b"\x01\x02")
        assert back(record) == matcher(record)

    @pytest.mark.parametrize("tagged", [True, False])
    @pytest.mark.parametrize("batched", [True, False])
    def test_multi_plan_scan_matcher(self, tagged, batched):
        codec = IndexKeyCodec(site_bits=1, group_bits=1)
        plans = [sample_plan()] * (2 if tagged else 1)
        matcher = MultiPlanScanMatcher(
            plans, codec, BatchHitReporter(tagged=tagged),
            batched=batched,
        )
        back = roundtrip(matcher)
        assert back.plans == plans
        assert back.report == BatchHitReporter(tagged=tagged)
        assert (back.match_bucket is None) == (not batched)
        record = Record(rid=(3 << 2) | 0, content=b"\x01\x02")
        assert back(record) == matcher(record)

    def test_matcher_with_foreign_decode_refuses(self):
        matcher = PlanScanMatcher(sample_plan(), lambda key: (key, 0, 0))
        with pytest.raises(WireEncodeError):
            encode_value(matcher)

    def test_trapdoor_and_word_matcher(self):
        trapdoor = Trapdoor(pre_encrypted=b"X" * 20,
                            word_key=b"k" * 20)
        assert roundtrip(trapdoor) == trapdoor
        for fast_path in (True, False):
            matcher = WordScanMatcher(trapdoor, fast_path=fast_path)
            back = roundtrip(matcher)
            assert back.trapdoor == trapdoor
            assert back.fast_path == fast_path
            assert (back.match_bucket is None) == (not fast_path)

    def test_compressed_matcher(self):
        for batched in (True, False):
            matcher = CompressedScanMatcher((b"ab", b"cd"),
                                            batched=batched)
            back = roundtrip(matcher)
            assert back.needles == (b"ab", b"cd")
            assert (back.match_bucket is None) == (not batched)
            assert back(Record(rid=1, content=b"xxabxx")) == 1
            assert back(Record(rid=1, content=b"zz")) is None

    def test_multi_word_matcher(self):
        trapdoors = (
            Trapdoor(pre_encrypted=b"x" * 16, word_key=b"k" * 16),
            Trapdoor(pre_encrypted=b"y" * 16, word_key=b"j" * 16),
        )
        for fast_path in (True, False):
            matcher = MultiWordScanMatcher(trapdoors,
                                           fast_path=fast_path)
            back = roundtrip(matcher)
            assert back.trapdoors == trapdoors
            assert back.fast_path == fast_path
            assert (back.match_bucket is None) == (not fast_path)
            assert back.scan_key() == matcher.scan_key()

    def test_multi_compressed_matcher(self):
        groups = ((b"ab", b"cd"), (b"zz",))
        for batched in (True, False):
            matcher = MultiCompressedScanMatcher(groups,
                                                 batched=batched)
            back = roundtrip(matcher)
            assert back.needle_groups == groups
            assert (back.match_bucket is None) == (not batched)
            assert back(Record(rid=1, content=b"xxabxx")) == (1, (0,))
            assert back(Record(rid=2, content=b"zzcd")) == (2, (0, 1))
            assert back(Record(rid=3, content=b"qq")) is None

    def test_retry_policy(self):
        policy = RetryPolicy(timeout=1.5, backoff=3.0, max_retries=4,
                             jitter=0.0, seed=7)
        back = roundtrip(policy)
        assert back == policy
        assert back.delay(2) == policy.delay(2)

    def test_network_stats(self):
        stats = NetworkStats()
        stats.record("lookup", 64)
        stats.record("reply", 96)
        stats.retries = 3
        stats.crashed_drops = 1
        back = roundtrip(stats)
        assert back == stats
        assert back.diff(NetworkStats()).messages == 2


# -- whole messages, one per protocol kind -----------------------------------

CLIENT = ("client", "F", 0)
BUCKET = ("bucket", "F", 1)
COORD = ("coordinator", "F")
PARITY = ("parity", "F", 0, 0)


def payload_for(kind: str):
    """A representative payload for each protocol kind."""
    matcher = PlanScanMatcher(
        sample_plan(), IndexKeyCodec(site_bits=1, group_bits=1)
    )
    hit = SiteHit(rid=3, group=0, site=1, positions={0: [2]})
    records = [Record(rid=1, content=b"a"), Record(rid=2, content=b"bb")]
    return {
        "insert": {"key": 7, "op": 1, "client": CLIENT,
                   "content": b"value"},
        "lookup": {"key": 7, "op": 2, "client": CLIENT},
        "delete": {"key": 7, "op": 3, "client": CLIENT},
        "reply": {"op": 2, "ok": True, "content": b"value"},
        "iam": {"address": 3, "level": 2},
        "scan": {"op": 4, "client": CLIENT, "matcher": matcher,
                 "level": 1},
        "scan_reply": {"op": 4, "address": 1, "level": 2,
                       "hits": [hit], "forwarded": [(3, 2)]},
        "overflow": {"address": 0, "delta": 1},
        "underflow": {"address": 1},
        "load": {"address": 0, "delta": 1},
        "leave": {"address": 1},
        "split": {"new_address": 2, "new_level": 2},
        "split_records": {"records": records},
        "merge": {"target": 0, "level": 1},
        "merge_records": {"records": records, "level": 1},
        "probe": {"address": 1},
        "probe_ack": {"address": 1},
        "suspect": {"address": 1, "client": CLIENT},
        "await_recovery": {"address": 1, "client": CLIENT},
        "bucket_down": {"address": 1,
                        "group_dead": {1: [1, True]}},
        "bucket_up": {"address": 1},
        "bucket_recovered": {"address": 1},
        "recover": {"address": 1, "dead": [1]},
        "recover_install": {"records": records},
        "recover_done": {"address": 1},
        "group_fetch": {"gather": 5, "offset": 0,
                        "entries": {0: 11, 1: 12}},
        "group_data": {"gather": 5, "offset": 0,
                       "entries": {0: b"abc", 1: b""}},
        "parity_fetch": {"gather": 5, "ranks": [0, 1]},
        "parity_data": {"gather": 5, "index": 1,
                        "payloads": {0: b"xyz"}},
        "parity_delta": {"rank": 0, "offset": 1, "rid": 9,
                         "delta": b"\x0f\xf0", "length": 2},
        "degraded_lookup": {"op": 6, "client": CLIENT, "key": 7,
                            "address": 1, "dead": [1]},
        "degraded_scan": {"op": 7, "client": CLIENT,
                          "matcher": matcher, "address": 1,
                          "level": 2, "dead": [1]},
    }[kind]


class TestMessageCodec:
    @pytest.mark.parametrize(
        "kind", sorted(KNOWN_KINDS),
        ids=sorted(KNOWN_KINDS),
    )
    def test_every_kind_roundtrips(self, kind):
        payload = payload_for(kind)
        message = Message(src=CLIENT, dst=BUCKET, kind=kind,
                          payload=payload, size=96, hops=1,
                          checksum=wire_checksum(kind, payload, 96))
        back = decode_message(encode_message(message))
        assert back.src == message.src
        assert back.dst == message.dst
        assert back.kind == kind
        assert back.size == message.size
        assert back.hops == message.hops
        assert back.checksum == message.checksum
        # Matchers compare by behaviour, not equality; check the rest
        # of the payload by re-computing the order-sensitive checksum.
        assert wire_checksum(kind, back.payload, back.size) \
            == message.checksum

    def test_scan_matcher_behaviour_survives(self):
        message = Message(src=CLIENT, dst=BUCKET, kind="scan",
                          payload=payload_for("scan"), size=64)
        back = decode_message(encode_message(message))
        matcher = back.payload["matcher"]
        original = message.payload["matcher"]
        record = Record(rid=(3 << 2) | 0, content=b"\x01\x02")
        assert matcher(record) == original(record)


# -- framing -----------------------------------------------------------------


class TestFraming:
    def test_frame_roundtrip(self):
        for channel in (CHANNEL_DATA, CHANNEL_CTRL):
            frame = encode_frame(channel, {"ctrl": "ping", "n": 1})
            assert decode_frame_body(frame[4:]) \
                == (channel, {"ctrl": "ping", "n": 1})

    def test_bad_version_rejected(self):
        frame = bytearray(encode_frame(CHANNEL_DATA, 1))
        frame[4] = WIRE_VERSION + 1
        with pytest.raises(WireDecodeError):
            decode_frame_body(bytes(frame)[4:])

    def test_bad_channel_rejected(self):
        frame = bytearray(encode_frame(CHANNEL_DATA, 1))
        frame[5] = 9
        with pytest.raises(WireDecodeError):
            decode_frame_body(bytes(frame)[4:])
        with pytest.raises(WireEncodeError):
            encode_frame(9, 1)

    def test_decoder_reassembles_byte_by_byte(self):
        frames = [encode_frame(CHANNEL_CTRL, {"seq": i})
                  for i in range(3)]
        stream = b"".join(frames)
        decoder = FrameDecoder()
        seen = []
        for offset in range(len(stream)):
            decoder.feed(stream[offset:offset + 1])
            seen.extend(decoder.frames())
        assert seen == [(CHANNEL_CTRL, {"seq": i}) for i in range(3)]

    def test_decoder_handles_coalesced_reads(self):
        frames = b"".join(
            encode_frame(CHANNEL_DATA, [i, b"x" * i]) for i in range(5)
        )
        decoder = FrameDecoder()
        decoder.feed(frames)
        assert len(list(decoder.frames())) == 5

    def test_oversized_length_rejected(self):
        decoder = FrameDecoder()
        decoder.feed(b"\xff\xff\xff\xff")
        with pytest.raises(WireDecodeError):
            list(decoder.frames())


# -- adversarial robustness --------------------------------------------------


def _representative_frame() -> bytes:
    """One frame exercising every codec layer: nested containers,
    typed objects, bytes, and big ints."""
    return encode_frame(CHANNEL_DATA, {
        "kind": "insert",
        "key": 2 ** 96 + 17,
        "record": Record(rid=7, content=b"\x00\xffpayload"),
        "policy": RetryPolicy(timeout=0.25, max_retries=3),
        "nested": [None, True, {"deep": (b"\x01\x02",)}],
    })


class TestCodecRobustness:
    """A hostile byte stream must never hang the decoder or escape as
    anything but :class:`WireDecodeError` — truncation and corruption
    are facts of life on the live transport's sockets."""

    def test_every_body_truncation_decodes_or_raises_typed(self):
        body = _representative_frame()[4:]
        for cut in range(len(body)):
            try:
                decode_frame_body(body[:cut])
            except WireDecodeError:
                continue
            pytest.fail(f"truncation at byte {cut} decoded a "
                        "partial frame as complete")

    def test_every_stream_truncation_buffers_or_raises_typed(self):
        frame = _representative_frame()
        stream = frame * 2
        for cut in range(len(stream)):
            decoder = FrameDecoder()
            decoder.feed(stream[:cut])
            try:
                seen = list(decoder.frames())
            except WireDecodeError:
                continue
            # Whole frames before the cut decode; the tail buffers.
            assert len(seen) == cut // len(frame)

    @given(st.data())
    def test_byte_flips_decode_or_raise_typed(self, data):
        body = bytearray(_representative_frame()[4:])
        flips = data.draw(st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=len(body) - 1),
                st.integers(min_value=1, max_value=255),
            ),
            min_size=1, max_size=8,
        ))
        for position, mask in flips:
            body[position] ^= mask
        try:
            decode_frame_body(bytes(body))
        except WireDecodeError:
            pass

    @given(st.binary(max_size=256))
    def test_arbitrary_bytes_decode_or_raise_typed(self, junk):
        try:
            decode_frame_body(junk)
        except WireDecodeError:
            pass
        decoder = FrameDecoder()
        decoder.feed(junk)
        try:
            list(decoder.frames())
        except WireDecodeError:
            pass


# -- the normative kind registry ---------------------------------------------


class TestKindRegistry:
    def test_registry_matches_source(self):
        assert protocol_kinds_in_source() == KNOWN_KINDS

    def test_no_duplicate_kinds(self):
        kinds = [spec.kind for spec in MESSAGE_KINDS]
        assert len(kinds) == len(set(kinds))

    def test_table_lists_every_kind(self):
        table = kind_table_markdown()
        for spec in MESSAGE_KINDS:
            assert f"`{spec.kind}`" in table

    def test_payload_fixtures_cover_spec_fields(self):
        # The representative payloads above must carry exactly the
        # fields §11 declares (modulo the reply's optional fields).
        for spec in MESSAGE_KINDS:
            if spec.kind == "reply":
                continue
            declared = {name.rstrip("?") for name in spec.payload}
            assert set(payload_for(spec.kind)) == declared, spec.kind
