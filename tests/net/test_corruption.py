"""Payload corruption: wire checksums, billing, retry recovery."""

import pytest

from repro.net import (
    FaultModel,
    Message,
    Network,
    Node,
    RetryPolicy,
    UnreliableNetwork,
    wire_checksum,
)
from repro.sdds.lhstar import LHStarFile


class Collector(Node):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received: list[Message] = []

    def handle(self, message: Message) -> None:
        self.received.append(message)


def corrupt_net(rate=1.0, seed=0):
    net = UnreliableNetwork(seed=seed, corruption_rate=rate)
    net.attach(Collector("src"))
    sink = net.attach(Collector("sink"))
    return net, sink


class TestWireChecksum:
    def test_pure_function_of_message(self):
        payload = {"key": 7, "content": b"abc", "flag": True}
        assert wire_checksum("insert", payload, 64) == wire_checksum(
            "insert", dict(payload), 64
        )

    def test_sensitive_to_kind_payload_and_size(self):
        base = wire_checksum("insert", {"key": 7}, 64)
        assert wire_checksum("lookup", {"key": 7}, 64) != base
        assert wire_checksum("insert", {"key": 8}, 64) != base
        assert wire_checksum("insert", {"key": 7}, 65) != base

    def test_never_zero(self):
        """Zero is the 'not stamped' sentinel on Message."""
        for kind in ("a", "b", "c", "insert", "scan"):
            for size in (0, 1, 64, 4096):
                assert wire_checksum(kind, {}, size) != 0

    def test_opaque_objects_hash_by_type_only(self):
        """Matcher callables etc. contribute no memory addresses, so
        the value is stable across processes."""
        assert wire_checksum(
            "scan", {"matcher": lambda r: r}, 64
        ) == wire_checksum("scan", {"matcher": lambda x: None}, 64)

    def test_rate_validated(self):
        with pytest.raises(ValueError):
            FaultModel(corruption_rate=1.5)


class TestCorruptionDelivery:
    def test_corrupted_copy_discarded_and_billed(self):
        net, sink = corrupt_net(rate=1.0)
        net.send("src", "sink", "data", {"n": 1}, size=100)
        assert net.run() == 0
        assert sink.received == []
        assert net.stats.corrupted == 1
        # Charged to the sender: the bytes crossed the wire.
        assert net.stats.messages == 1

    def test_zero_rate_messages_unstamped(self):
        net, sink = corrupt_net(rate=0.0)
        net.send("src", "sink", "data", {"n": 1})
        net.run()
        assert sink.received[0].checksum == 0
        assert net.stats.corrupted == 0

    def test_reliable_kinds_never_corrupted(self):
        net, sink = corrupt_net(rate=1.0)
        net.send("src", "sink", "split", {"n": 1})
        assert net.run() == 1
        assert sink.received[0].kind == "split"
        assert net.stats.corrupted == 0

    def test_zero_rate_random_stream_untouched(self):
        """Adding the corruption draw must not shift old seeds'
        loss/duplication schedules."""
        legacy = FaultModel(seed=9, loss_rate=0.3,
                            duplication_rate=0.2)
        modern = FaultModel(seed=9, loss_rate=0.3,
                            duplication_rate=0.2, corruption_rate=0.0)
        draws = []
        for model in (legacy, modern):
            model_draws = []
            for __ in range(100):
                model_draws.append(model.drops())
                model_draws.append(model.duplicates())
                model_draws.append(model.corrupts())
            draws.append(model_draws)
        assert draws[0] == draws[1]

    def test_seeded_corruption_deterministic(self):
        outcomes = []
        for __ in range(2):
            net, sink = corrupt_net(rate=0.4, seed=21)
            for n in range(40):
                net.send("src", "sink", "data", {"n": n})
            net.run()
            outcomes.append(
                ([m.payload["n"] for m in sink.received],
                 net.stats.corrupted)
            )
        assert outcomes[0] == outcomes[1]
        assert outcomes[0][1] > 0


class TestCorruptionRecovery:
    def test_keyed_ops_recover_through_retry(self):
        """Corruption degrades cost, never correctness: every op
        lands exactly once, paid for by retransmissions."""
        net = UnreliableNetwork(seed=3, corruption_rate=0.3)
        file = LHStarFile(
            name="f", network=net, bucket_capacity=4,
            retry_policy=RetryPolicy(timeout=0.05, backoff=2.0,
                                     max_retries=8),
        )
        for key in range(24):
            file.insert(key, bytes([key]) * 8)
        for key in range(24):
            assert file.lookup(key) == bytes([key]) * 8
        assert net.stats.corrupted > 0
        assert net.stats.retries > 0

    def test_corrupted_scan_reply_retried(self):
        net = UnreliableNetwork(seed=5, corruption_rate=0.25)
        file = LHStarFile(
            name="f", network=net, bucket_capacity=4,
            retry_policy=RetryPolicy(timeout=0.05, backoff=2.0,
                                     max_retries=8),
        )
        for key in range(16):
            file.insert(key, b"V" + bytes([key]))
        hits = file.scan(
            lambda record: record.rid
            if record.content.startswith(b"V") else None
        )
        assert sorted(hits) == list(range(16))
