"""Vectorised message rounds ≡ per-message dispatch.

A round groups the contiguous same-arrival slice of *batchable*
messages into one ``handle_batch`` call per destination; billing,
gate checks and observer callbacks stay per message.  These tests pin
the grouping rules and the bit-identity of stats with the flag on or
off — including under partitions and crashes — and the LH* scan memo
that rides on the rounds.
"""

from repro.net.simulator import Message, Network, Node
from repro.net.stats import NetworkStats
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.sdds.lhstar import LHStarFile


class Collector(Node):
    """Records how deliveries were grouped."""

    BATCHABLE_KINDS = frozenset({"ping"})

    def __init__(self, node_id):
        super().__init__(node_id)
        self.deliveries: list[list[int]] = []

    def handle(self, message: Message) -> None:
        self.deliveries.append([message.payload["tag"]])

    def handle_batch(self, messages: list[Message]) -> None:
        self.deliveries.append([m.payload["tag"] for m in messages])


def burst(network, collectors, tags):
    """One same-arrival burst: tag ``t`` goes to collector ``t % n``."""
    for tag in tags:
        network.send(
            f"src-{tag}", collectors[tag % len(collectors)].node_id,
            "ping", {"tag": tag}, size=8,
        )


def fresh(vectorised, n_collectors=2, **kwargs):
    network = Network(vectorised_rounds=vectorised, **kwargs)
    collectors = [
        network.attach(Collector(f"c{i}")) for i in range(n_collectors)
    ]
    for tag in range(8):
        network.attach(Collector(f"src-{tag}"))
    return network, collectors


class TestGrouping:
    def test_same_arrival_burst_batches_per_destination(self):
        network, collectors = fresh(True)
        burst(network, collectors, range(6))
        network.run()
        # Destinations in first-appearance order, pop order within.
        assert collectors[0].deliveries == [[0, 2, 4]]
        assert collectors[1].deliveries == [[1, 3, 5]]

    def test_flag_off_pins_per_message_dispatch(self):
        network, collectors = fresh(False)
        burst(network, collectors, range(6))
        network.run()
        assert collectors[0].deliveries == [[0], [2], [4]]
        assert collectors[1].deliveries == [[1], [3], [5]]

    def test_lone_message_stays_scalar(self):
        network, collectors = fresh(True)
        burst(network, collectors, [0])
        network.run()
        assert collectors[0].deliveries == [[0]]

    def test_non_batchable_kind_breaks_the_round(self):
        class Strict(Collector):
            BATCHABLE_KINDS = frozenset()

        network = Network(vectorised_rounds=True)
        batchable = network.attach(Collector("c0"))
        strict = network.attach(Strict("c1"))
        for tag in range(4):
            network.attach(Collector(f"src-{tag}"))
        # Interleave: strict's message lands mid-slice and stops the
        # collection; the tail forms its own round.
        for tag, dst in ((0, "c0"), (1, "c1"), (2, "c0"), (3, "c0")):
            network.send(f"src-{tag}", dst, "ping", {"tag": tag}, size=8)
        network.run()
        assert batchable.deliveries == [[0], [2, 3]]
        assert strict.deliveries == [[1]]

    def test_different_arrivals_never_merge(self):
        network, collectors = fresh(True)
        burst(network, collectors, [0, 2])
        network.run()
        burst(network, collectors, [4])
        network.run()
        assert collectors[0].deliveries == [[0, 2], [4]]


class TestStatsIdentity:
    def drive(self, vectorised):
        network, collectors = fresh(vectorised)
        network.partition("src-1", "c1")
        burst(network, collectors, range(6))
        network.crash("c0")
        burst(network, collectors, range(6))
        network.run()
        network.restore("c0")
        burst(network, collectors, range(6))
        network.run()
        return network, collectors

    def test_partition_and_crash_gates_bill_identically(self):
        on_net, on_cols = self.drive(True)
        off_net, off_cols = self.drive(False)
        assert on_net.stats == off_net.stats
        assert on_net.stats.partitioned_drops > 0
        assert on_net.stats.crashed_drops > 0
        # Same multiset of delivered tags per destination.
        for a, b in zip(on_cols, off_cols):
            assert sorted(
                tag for batch in a.deliveries for tag in batch
            ) == sorted(tag for batch in b.deliveries for tag in batch)

    def test_observer_sees_per_message_events(self):
        class Recorder:
            def __init__(self):
                self.events = []

            def on_send(self, kind, size):
                self.events.append(("send", kind, size))

            def on_drop(self, kind, size):
                self.events.append(("drop", kind, size))

            def on_deliver(self, kind, size, latency):
                self.events.append(("deliver", kind, size))

        logs = []
        for vectorised in (True, False):
            network, collectors = fresh(vectorised)
            network.partition("src-1", "c1")
            recorder = Recorder()
            network.observer = recorder
            burst(network, collectors, range(6))
            network.run()
            logs.append(recorder.events)
        assert logs[0] == logs[1]


class TestScanRounds:
    def build_file(self, vectorised):
        network = Network(vectorised_rounds=vectorised)
        file = LHStarFile(name="rounds", network=network,
                          bucket_capacity=2)
        for rid in range(16):
            file.insert(rid, b"R-%02d" % rid)
        return network, file

    def test_scan_answers_and_stats_identical(self):
        from repro.core.compressed_index import CompressedScanMatcher

        results = []
        for vectorised in (True, False):
            network, file = self.build_file(vectorised)
            before = network.stats.snapshot()
            hits = sorted(
                file.scan(CompressedScanMatcher((b"R-",)),
                          request_size=4)
            )
            results.append((hits, network.stats.diff(before)))
        (on_hits, on_cost), (off_hits, off_cost) = results
        assert on_hits == off_hits == sorted(range(16))
        assert on_cost == off_cost

    def test_scan_memo_reuses_hits_on_vectorised_networks(self):
        from repro.core.compressed_index import CompressedScanMatcher

        network, file = self.build_file(True)
        registry = MetricsRegistry()
        with use_metrics(registry):
            first = sorted(file.scan(
                CompressedScanMatcher((b"R-0",)), request_size=4
            ))
            assert registry.counter("lh.scan.memo_hit").value == 0
            again = sorted(file.scan(
                CompressedScanMatcher((b"R-0",)), request_size=4
            ))
        assert first == again == sorted(range(10))
        assert registry.counter("lh.scan.memo_hit").value > 0

    def test_scan_memo_invalidated_by_mutation(self):
        from repro.core.compressed_index import CompressedScanMatcher

        network, file = self.build_file(True)
        matcher = CompressedScanMatcher((b"R-",))
        assert sorted(file.scan(matcher, request_size=4)) == sorted(
            range(16)
        )
        file.insert(99, b"R-99")
        file.delete(0)
        assert sorted(file.scan(matcher, request_size=4)) == sorted(
            list(range(1, 16)) + [99]
        )

    def test_scan_memo_disabled_on_per_message_networks(self):
        from repro.core.compressed_index import CompressedScanMatcher

        network, file = self.build_file(False)
        registry = MetricsRegistry()
        with use_metrics(registry):
            for _ in range(2):
                file.scan(CompressedScanMatcher((b"R-",)),
                          request_size=4)
        assert registry.counter("lh.scan.memo_hit").value == 0


def test_default_nodes_keep_strict_dispatch():
    assert Node.BATCHABLE_KINDS == frozenset()


def test_network_stats_equality_is_field_wise():
    assert NetworkStats() == NetworkStats()
