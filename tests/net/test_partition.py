"""Link-level partitions: severed links, billing, and recovery."""

import pytest

from repro.errors import SDDSError, UnknownNodeError
from repro.net import Message, Network, Node


class Collector(Node):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received: list[Message] = []

    def handle(self, message: Message) -> None:
        self.received.append(message)


def pair():
    net = Network()
    a = net.attach(Collector("a"))
    b = net.attach(Collector("b"))
    return net, a, b


class TestPartitionApi:
    def test_symmetric_by_default(self):
        net, _, _ = pair()
        net.partition("a", "b")
        assert net.is_partitioned("a", "b")
        assert net.is_partitioned("b", "a")

    def test_asymmetric(self):
        net, _, _ = pair()
        net.partition("a", "b", symmetric=False)
        assert net.is_partitioned("a", "b")
        assert not net.is_partitioned("b", "a")

    def test_groups_of_ids(self):
        net = Network()
        for name in ("a", "b", "c", "d"):
            net.attach(Collector(name))
        net.partition(["a", "b"], ["c", "d"])
        assert net.is_partitioned("a", "c")
        assert net.is_partitioned("b", "d")
        assert not net.is_partitioned("a", "b")

    def test_tuple_is_a_single_node_id(self):
        """Node ids are tuples; only real collections are groups."""
        net = Network()
        net.attach(Collector(("bucket", "f", 0)))
        net.attach(Collector(("bucket", "f", 1)))
        net.partition(("bucket", "f", 0), ("bucket", "f", 1))
        assert net.is_partitioned(("bucket", "f", 0),
                                  ("bucket", "f", 1))

    def test_heal_specific_and_all(self):
        net, _, _ = pair()
        net.partition("a", "b")
        net.heal("a", "b")
        assert not net.is_partitioned("a", "b")
        net.partition("a", "b")
        net.heal()
        assert not net.is_partitioned("a", "b")

    def test_heal_needs_both_groups_or_none(self):
        net, _, _ = pair()
        with pytest.raises(ValueError):
            net.heal("a")

    def test_self_link_never_severed(self):
        net, _, _ = pair()
        net.partition(["a", "b"], ["a", "b"])
        assert not net.is_partitioned("a", "a")
        assert net.is_partitioned("a", "b")


class TestPartitionDelivery:
    def test_message_dropped_and_billed(self):
        net, _, b = pair()
        net.partition("a", "b")
        net.send("a", "b", "data", size=100)
        assert net.run() == 0
        assert b.received == []
        assert net.stats.partitioned_drops == 1
        # Charged to the sender like any wire message.
        assert net.stats.messages == 1
        assert net.stats.bytes == 100

    def test_asymmetric_leaves_reverse_path(self):
        net, a, b = pair()
        net.partition("a", "b", symmetric=False)
        net.send("a", "b", "data")
        net.send("b", "a", "data")
        assert net.run() == 1
        assert a.received and not b.received

    def test_checked_at_arrival_instant(self):
        """A message in flight when the cable is cut is lost; one in
        flight when it is spliced back is delivered."""
        net, _, b = pair()
        net.send("a", "b", "doomed")
        net.partition("a", "b")
        assert net.run() == 0
        assert net.stats.partitioned_drops == 1
        net.send("a", "b", "saved")
        net.heal()
        assert net.run() == 1
        assert [m.kind for m in b.received] == ["saved"]

    def test_detach_purges_partitions(self):
        net, _, _ = pair()
        net.partition("a", "b")
        net.detach("a")
        net.attach(Collector("a"))
        assert not net.is_partitioned("a", "b")

    def test_client_retry_survives_partition_window(self):
        """An LH* keyed op retried across a heal completes exactly."""
        from repro.net import FaultModel, RetryPolicy
        from repro.sdds.lhstar import LHStarFile

        net = Network(faults=FaultModel())
        file = LHStarFile(
            name="f", network=net, bucket_capacity=8,
            retry_policy=RetryPolicy(timeout=0.05, backoff=2.0,
                                     max_retries=6),
        )
        file.insert(1, b"alpha")
        net.partition(file.client.node_id, [file.bucket_id(0)])
        # Heal mid-retry: schedule the splice as a timer so the
        # client's backoff finds the link restored.
        net.schedule(0.2, net.heal)
        file.insert(2, b"beta")
        assert file.lookup(2) == b"beta"
        assert net.stats.partitioned_drops > 0
        assert net.stats.retries > 0


class TestUnknownNodeError:
    def test_send_raises_typed_error(self):
        net, _, _ = pair()
        with pytest.raises(UnknownNodeError):
            net.send("a", "ghost", "data")

    def test_crash_and_detach_raise_typed_error(self):
        net, _, _ = pair()
        with pytest.raises(UnknownNodeError):
            net.crash("ghost")
        with pytest.raises(UnknownNodeError):
            net.detach("ghost")

    def test_typed_error_is_both_families(self):
        """SDDSError for new callers, KeyError for historic ones."""
        net, _, _ = pair()
        with pytest.raises(SDDSError):
            net.send("a", "ghost", "data")
        with pytest.raises(KeyError):
            net.send("a", "ghost", "data")

    def test_message_is_not_repr_quoted(self):
        try:
            Network().crash("ghost")
        except UnknownNodeError as error:
            assert str(error) == "unknown node 'ghost'"
