"""Fault injection: seeded loss/duplication and the retry policy."""

import pytest

from repro.net import (
    RELIABLE_KINDS,
    FaultModel,
    LatencyModel,
    Message,
    Network,
    Node,
    RetryPolicy,
    UnreliableNetwork,
)


class Collector(Node):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received: list[Message] = []

    def handle(self, message: Message) -> None:
        self.received.append(message)


def lossy_net(**kwargs):
    net = UnreliableNetwork(**kwargs)
    sink = net.attach(Collector("sink"))
    net.attach(Collector("src"))
    return net, sink


class TestFaultModel:
    def test_rates_validated(self):
        with pytest.raises(ValueError):
            FaultModel(loss_rate=1.5)
        with pytest.raises(ValueError):
            FaultModel(duplication_rate=-0.1)

    def test_seeded_decisions_are_deterministic(self):
        a = FaultModel(seed=5, loss_rate=0.3, duplication_rate=0.2)
        b = FaultModel(seed=5, loss_rate=0.3, duplication_rate=0.2)
        assert [a.drops() for _ in range(50)] == [
            b.drops() for _ in range(50)
        ]

    def test_different_seeds_differ(self):
        a = FaultModel(seed=1, loss_rate=0.5)
        b = FaultModel(seed=2, loss_rate=0.5)
        assert [a.drops() for _ in range(64)] != [
            b.drops() for _ in range(64)
        ]

    def test_structural_kinds_protected(self):
        model = FaultModel(loss_rate=1.0)
        for kind in RELIABLE_KINDS:
            assert not model.applies(kind)
        assert model.applies("insert")
        assert model.applies("scan_reply")

    def test_custom_reliable_kinds(self):
        model = FaultModel(loss_rate=1.0, reliable_kinds=frozenset({"x"}))
        assert not model.applies("x")
        assert model.applies("split")


class TestLoss:
    def test_dropped_message_never_delivered(self):
        net, sink = lossy_net(loss_rate=1.0)
        husk = net.send("src", "sink", "data", size=100)
        assert husk.arrival_time == float("inf")
        assert net.run() == 0
        assert sink.received == []

    def test_drop_charged_to_sender(self):
        """The datagram went onto the wire; the sender pays for it."""
        net, _ = lossy_net(loss_rate=1.0)
        net.send("src", "sink", "data", size=100)
        assert net.stats.messages == 1
        assert net.stats.bytes == 100
        assert net.stats.dropped == 1

    def test_reliable_kind_survives_total_loss(self):
        net, sink = lossy_net(loss_rate=1.0)
        net.send("src", "sink", "split_records", size=100)
        assert net.run() == 1
        assert net.stats.dropped == 0
        assert sink.received[0].kind == "split_records"

    def test_loss_is_seed_deterministic(self):
        def fates(seed):
            net, sink = lossy_net(seed=seed, loss_rate=0.4)
            for n in range(40):
                net.send("src", "sink", "data", {"n": n})
            net.run()
            return [m.payload["n"] for m in sink.received]

        assert fates(9) == fates(9)
        assert fates(9) != fates(10)


class TestDuplication:
    def test_duplicate_delivered_twice_and_counted(self):
        net, sink = lossy_net(duplication_rate=1.0)
        net.send("src", "sink", "data", {"n": 1}, size=80)
        assert net.run() == 2
        assert [m.payload["n"] for m in sink.received] == [1, 1]
        # The copy hit the wire too: both copies are charged.
        assert net.stats.messages == 2
        assert net.stats.bytes == 160
        assert net.stats.duplicated == 1

    def test_copy_arrives_after_original(self):
        net, sink = lossy_net(duplication_rate=1.0)
        net.send("src", "sink", "data")
        net.run()
        first, second = sink.received
        assert first.arrival_time < second.arrival_time

    def test_duplicate_preserves_same_link_fifo(self):
        """A landed duplicate pushes the link clock forward, so a
        later send on the same link still arrives after it."""
        net, sink = lossy_net(duplication_rate=1.0)
        net.send("src", "sink", "data", {"n": 1})
        net.send("src", "sink", "data", {"n": 2})
        net.run()
        order = [m.payload["n"] for m in sink.received]
        assert order == [1, 1, 2, 2]
        times = [m.arrival_time for m in sink.received]
        assert times == sorted(times)
        assert len(set(times)) == len(times)

    def test_every_wire_copy_billed(self):
        """Messaging cost counts datagrams, not logical sends."""
        net, _ = lossy_net(duplication_rate=1.0)
        for _ in range(5):
            net.send("src", "sink", "data", size=64)
        net.run()
        assert net.stats.messages == 10
        assert net.stats.bytes == 640
        assert net.stats.duplicated == 5


class TestZeroRatesAreFree:
    def test_identical_to_reliable_network(self):
        """loss=dup=0 must be bit-identical to a plain Network."""

        class Echo(Node):
            def handle(self, message):
                if message.kind == "ping":
                    self.send(message.src, "pong", size=32)

        def exchange(net):
            net.attach(Echo("echo"))
            net.attach(Collector("client"))
            for _ in range(20):
                net.send("client", "echo", "ping", size=200)
            net.run()
            return (net.stats.messages, net.stats.bytes, net.now)

        reliable = exchange(Network())
        faulty = exchange(
            UnreliableNetwork(seed=3, loss_rate=0.0,
                              duplication_rate=0.0)
        )
        assert reliable == faulty
        assert reliable[0] == 40


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)

    def test_exponential_backoff(self):
        policy = RetryPolicy(timeout=0.1, backoff=2.0, max_retries=4)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.4)
        assert policy.delay(3) == pytest.approx(0.8)

    def test_flat_backoff_allowed(self):
        policy = RetryPolicy(timeout=0.1, backoff=1.0)
        assert policy.delay(5) == pytest.approx(0.1)


class TestRetryJitter:
    def test_default_is_exact_exponential(self):
        """jitter=0 must reproduce the historic deterministic delays
        bit-for-bit — no RNG draw on this path."""
        policy = RetryPolicy(timeout=0.1, backoff=2.0)
        assert policy.delay(0) == 0.1
        assert policy.delay(3) == 0.1 * 2.0 ** 3

    def test_jitter_validated(self):
        with pytest.raises(ValueError):
            RetryPolicy(jitter=-0.1)

    def test_jittered_delay_bounded(self):
        policy = RetryPolicy(timeout=0.1, backoff=2.0, jitter=0.5,
                             seed=7)
        for attempt in range(6):
            base = 0.1 * 2.0 ** attempt
            delay = policy.delay(attempt)
            assert base <= delay <= base * 1.5

    def test_jitter_decorrelates_attempts(self):
        policy = RetryPolicy(timeout=0.1, backoff=1.0, jitter=1.0,
                             seed=7)
        delays = [policy.delay(0) for _ in range(8)]
        assert len(set(delays)) > 1

    def test_jitter_is_seed_deterministic(self):
        def sequence(seed):
            policy = RetryPolicy(timeout=0.1, backoff=2.0,
                                 jitter=0.5, seed=seed)
            return [policy.delay(a % 4) for a in range(12)]

        assert sequence(11) == sequence(11)
        assert sequence(11) != sequence(12)
