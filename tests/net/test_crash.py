"""Node crash faults at the simulator level.

Covers `Network.crash`/`restore` (message drops billed as
``crashed_drops``, timer freezing), the lazy `CrashFaultModel`
schedule, and the regression that messages addressed to a detached
node are counted instead of crashing the event loop.
"""

import pytest

from repro.net import CrashFaultModel, Message, Network, NetworkStats, Node


class Collector(Node):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received: list[Message] = []

    def handle(self, message: Message) -> None:
        self.received.append(message)


class Echo(Collector):
    def handle(self, message: Message) -> None:
        super().handle(message)
        if message.kind == "ping":
            self.send(message.src, "pong")


def pair():
    net = Network()
    a = net.attach(Echo("a"))
    b = net.attach(Echo("b"))
    return net, a, b


class TestCrashRestore:
    def test_crash_drops_messages_and_bills_them(self):
        net, a, b = pair()
        net.crash("b")
        net.send("a", "b", "ping", size=100)
        net.run()
        assert b.received == []
        assert net.stats.crashed_drops == 1
        # The message was still charged to the wire.
        assert net.stats.messages == 1
        assert net.stats.bytes == 100

    def test_crash_unknown_node_raises(self):
        net, _, _ = pair()
        with pytest.raises(KeyError):
            net.crash("ghost")

    def test_crash_is_idempotent(self):
        net, _, _ = pair()
        net.crash("b")
        net.crash("b")
        assert net.is_crashed("b")

    def test_restore_resumes_delivery(self):
        net, a, b = pair()
        net.crash("b")
        net.send("a", "b", "ping")
        net.run()
        assert net.restore("b")
        net.send("a", "b", "ping")
        net.run()
        assert [m.kind for m in b.received] == ["ping"]

    def test_restore_of_live_node_is_noop(self):
        net, _, _ = pair()
        assert not net.restore("b")

    def test_crashed_node_does_not_send(self):
        # A crash only intercepts *delivery*; the protocol layer must
        # not make a crashed node act.  Messages already in flight
        # FROM the node still arrive (they left before the crash).
        net, a, b = pair()
        net.send("a", "b", "ping")
        net.crash("a")  # crash the sender before the pong returns
        net.run()
        assert [m.kind for m in b.received] == ["ping"]
        # b's pong died at a's door.
        assert net.stats.crashed_drops == 1
        assert a.received == []


class TestTimerFreezing:
    def test_owned_timer_frozen_while_crashed(self):
        net, a, b = pair()
        fired = []
        net.schedule(0.1, lambda: fired.append("b"), owner="b")
        net.crash("b")
        net.send("a", "a", "tick")
        net.run()
        assert fired == []

    def test_frozen_timer_fires_after_restore(self):
        net, a, b = pair()
        fired = []
        net.schedule(0.1, lambda: fired.append("b"), owner="b")
        net.crash("b")
        net.send("a", "a", "tick")
        net.run()
        net.restore("b")
        net.send("a", "a", "tick")
        net.run()
        assert fired == ["b"]
        # The timer never fires before the virtual clock reaches it.
        assert net.now >= 0.1

    def test_cancelled_frozen_timer_stays_dead(self):
        net, a, b = pair()
        fired = []
        timer = net.schedule(0.1, lambda: fired.append("b"), owner="b")
        net.crash("b")
        net.send("a", "a", "tick")
        net.run()
        timer.cancel()
        net.restore("b")
        net.send("a", "a", "tick")
        net.run()
        assert fired == []

    def test_unowned_timers_unaffected_by_crashes(self):
        net, a, b = pair()
        fired = []
        net.schedule(0.05, lambda: fired.append("anon"))
        net.crash("b")
        net.run()
        assert fired == ["anon"]

    def test_detach_discards_frozen_timers(self):
        net, a, b = pair()
        fired = []
        net.schedule(0.1, lambda: fired.append("b"), owner="b")
        net.crash("b")
        net.send("a", "a", "tick")
        net.run()
        net.detach("b")
        assert not net.restore("b")
        net.send("a", "a", "tick")
        net.run()
        assert fired == []


class TestDetachedDestinationRegression:
    def test_message_to_detached_node_is_counted_not_fatal(self):
        # Regression: delivery to a detached destination used to
        # raise KeyError out of Network.run(), killing the whole
        # event loop; now it is billed like a crashed drop.
        net, a, b = pair()
        net.send("a", "b", "ping")
        net.detach("b")
        net.run()  # must not raise
        assert net.stats.crashed_drops == 1

    def test_stats_snapshot_diff_carry_crashed_drops(self):
        net, a, b = pair()
        before = net.stats.snapshot()
        net.crash("b")
        net.send("a", "b", "ping")
        net.run()
        delta = net.stats.diff(before)
        assert delta.crashed_drops == 1
        net.stats.reset()
        assert net.stats.crashed_drops == 0


class TestCrashFaultModel:
    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            CrashFaultModel(mttf=0)
        with pytest.raises(ValueError):
            CrashFaultModel(mttr=-1)
        with pytest.raises(ValueError):
            CrashFaultModel(horizon=0)

    def test_plan_is_deterministic(self):
        a = CrashFaultModel(seed=3, mttf=5.0, mttr=1.0, horizon=50.0)
        b = CrashFaultModel(seed=3, mttf=5.0, mttr=1.0, horizon=50.0)
        assert a.plan(["x", "y"]) == b.plan(["x", "y"])
        assert a._events == b._events

    def test_events_apply_lazily_with_traffic(self):
        # The schedule must not be drained ahead of the workload: a
        # crash planned at t=1.0 is invisible to a run that only
        # reaches t~0.001.
        crashes = CrashFaultModel(seed=0)
        crashes.schedule_crash(1.0, "b")
        net = Network(crashes=crashes)
        net.attach(Echo("a"))
        b = net.attach(Echo("b"))
        net.send("a", "b", "ping")
        net.run()
        assert not net.is_crashed("b")
        assert [m.kind for m in b.received] == ["ping"]
        # A later message past the crash time triggers the event.
        net.schedule(2.0, lambda: None)
        net.send("a", "b", "ping")
        net.run()
        assert net.is_crashed("b")

    def test_crash_then_restore_cycle(self):
        crashes = CrashFaultModel(seed=0)
        crashes.schedule_crash(0.5, "b")
        crashes.schedule_restore(1.0, "b")
        net = Network(crashes=crashes)
        net.attach(Echo("a"))
        b = net.attach(Echo("b"))
        net.schedule(0.6, lambda: net.send("a", "b", "ping"))
        net.schedule(1.5, lambda: net.send("a", "b", "ping"))
        net.run()
        # First ping died (node down at 0.6), second arrived.
        assert len(b.received) == 1
        assert net.stats.crashed_drops == 1
        assert crashes.crashes == 1
        assert crashes.restores == 1

    def test_gate_vetoes_crash_and_suppresses_restore(self):
        crashes = CrashFaultModel(seed=0)
        crashes.schedule_crash(0.5, "b")
        crashes.schedule_restore(1.0, "b")
        crashes.gate = lambda node_id: False
        net = Network(crashes=crashes)
        net.attach(Echo("a"))
        net.attach(Echo("b"))
        net.schedule(2.0, lambda: None)
        net.run()
        assert not net.is_crashed("b")
        assert crashes.crashes == 0
        assert crashes.skipped == 1
        assert crashes.restores == 0

    def test_events_emit_into_installed_tracer(self):
        # Regression: net.crash/net.restore events used to pass a
        # ``time`` attr that collided with Tracer.event's positional
        # argument, crashing any traced run with scheduled faults.
        from repro.obs import Tracer, use_tracer

        crashes = CrashFaultModel(seed=0)
        crashes.schedule_crash(0.5, "b")
        crashes.schedule_restore(1.0, "b")
        net = Network(crashes=crashes)
        net.attach(Echo("a"))
        net.attach(Echo("b"))
        tracer = Tracer(network=net)
        with use_tracer(tracer):
            with tracer.span("workload"):
                net.schedule(2.0, lambda: None)
                net.run()
        span = tracer.finished[-1]
        names = [e.name for e in span.events]
        assert "net.crash" in names and "net.restore" in names

    def test_plan_draws_within_horizon(self):
        crashes = CrashFaultModel(seed=11, mttf=3.0, mttr=0.5,
                                  horizon=30.0)
        planned = crashes.plan(["n1", "n2", "n3"])
        assert planned >= 1
        assert all(at < 30.0 for at, *_ in crashes._events)
