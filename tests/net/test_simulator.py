"""The discrete-event network core."""

import pytest

from repro.net import LatencyModel, Message, Network, Node


class Echo(Node):
    """Replies to every 'ping' with a 'pong'."""

    def handle(self, message: Message) -> None:
        if message.kind == "ping":
            self.send(message.src, "pong", {"n": message.payload["n"]})


class Collector(Node):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received: list[Message] = []

    def handle(self, message: Message) -> None:
        self.received.append(message)


class TestTopology:
    def test_attach_and_contains(self):
        net = Network()
        net.attach(Collector("c"))
        assert "c" in net

    def test_duplicate_id_rejected(self):
        net = Network()
        net.attach(Collector("c"))
        with pytest.raises(ValueError):
            net.attach(Collector("c"))

    def test_detach(self):
        net = Network()
        net.attach(Collector("c"))
        net.detach("c")
        assert "c" not in net

    def test_send_to_unknown_node(self):
        net = Network()
        with pytest.raises(KeyError):
            net.send("a", "b", "kind")

    def test_unattached_node_cannot_send(self):
        node = Collector("orphan")
        with pytest.raises(RuntimeError):
            node.send("x", "kind")


class TestDelivery:
    def test_request_reply(self):
        net = Network()
        net.attach(Echo("echo"))
        client = net.attach(Collector("client"))
        net.send("client", "echo", "ping", {"n": 1})
        delivered = net.run()
        assert delivered == 2
        assert client.received[0].kind == "pong"
        assert client.received[0].payload["n"] == 1

    def test_fifo_between_same_pair_same_size(self):
        net = Network()
        sink = net.attach(Collector("sink"))
        net.attach(Collector("src"))
        for n in range(10):
            net.send("src", "sink", "data", {"n": n})
        net.run()
        assert [m.payload["n"] for m in sink.received] == list(range(10))

    def test_pairwise_fifo_despite_sizes(self):
        """TCP semantics: messages on one (src, dst) link never
        reorder, even when a later message is much smaller."""
        net = Network(LatencyModel(fixed=0.0, bandwidth_bytes_per_s=1000))
        sink = net.attach(Collector("sink"))
        net.attach(Collector("src"))
        net.send("src", "sink", "big", size=10_000)
        net.send("src", "sink", "small", size=1)
        net.run()
        assert [m.kind for m in sink.received] == ["big", "small"]

    def test_cross_link_overtaking(self):
        """Messages from different sources are free to overtake."""
        net = Network(LatencyModel(fixed=0.0, bandwidth_bytes_per_s=1000))
        sink = net.attach(Collector("sink"))
        net.attach(Collector("slow-src"))
        net.attach(Collector("fast-src"))
        net.send("slow-src", "sink", "big", size=10_000)
        net.send("fast-src", "sink", "small", size=1)
        net.run()
        assert [m.kind for m in sink.received] == ["small", "big"]

    def test_clock_advances(self):
        net = Network()
        net.attach(Collector("sink"))
        net.attach(Collector("src"))
        net.send("src", "sink", "data", size=128)
        net.run()
        assert net.now > 0

    def test_run_event_cap(self):
        class Bouncer(Node):
            def handle(self, message):
                self.send(self.node_id, "loop")

        net = Network()
        net.attach(Bouncer("b"))
        net.send("b", "b", "loop")
        with pytest.raises(RuntimeError):
            net.run(max_events=100)

    def test_reset_clock(self):
        net = Network()
        net.attach(Collector("sink"))
        net.attach(Collector("src"))
        net.send("src", "sink", "x")
        net.run()
        net.reset_clock()
        assert net.now == 0.0

    def test_reset_clock_with_inflight_rejected(self):
        net = Network()
        net.attach(Collector("sink"))
        net.send("sink", "sink", "x")
        with pytest.raises(RuntimeError):
            net.reset_clock()


class TestStats:
    def test_counters(self):
        net = Network()
        net.attach(Collector("sink"))
        net.attach(Collector("src"))
        net.send("src", "sink", "a", size=100)
        net.send("src", "sink", "b", size=50)
        assert net.stats.messages == 2
        assert net.stats.bytes == 150
        assert net.stats.by_kind["a"] == 1

    def test_snapshot_delta(self):
        net = Network()
        net.attach(Collector("sink"))
        net.attach(Collector("src"))
        net.send("src", "sink", "a", size=10)
        before = net.stats.snapshot()
        net.send("src", "sink", "a", size=30)
        delta = net.stats.delta(before)
        assert delta.messages == 1
        assert delta.bytes == 30

    def test_reset(self):
        net = Network()
        net.attach(Collector("sink"))
        net.send("sink", "sink", "x")
        net.stats.reset()
        assert net.stats.messages == 0


class TestLatencyModel:
    def test_formula(self):
        model = LatencyModel(fixed=0.001, bandwidth_bytes_per_s=1000)
        assert model.latency(500) == pytest.approx(0.501)
