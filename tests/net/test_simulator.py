"""The discrete-event network core."""

import pytest

from repro.net import LatencyModel, Message, Network, Node


class Echo(Node):
    """Replies to every 'ping' with a 'pong'."""

    def handle(self, message: Message) -> None:
        if message.kind == "ping":
            self.send(message.src, "pong", {"n": message.payload["n"]})


class Collector(Node):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received: list[Message] = []

    def handle(self, message: Message) -> None:
        self.received.append(message)


class TestTopology:
    def test_attach_and_contains(self):
        net = Network()
        net.attach(Collector("c"))
        assert "c" in net

    def test_duplicate_id_rejected(self):
        net = Network()
        net.attach(Collector("c"))
        with pytest.raises(ValueError):
            net.attach(Collector("c"))

    def test_detach(self):
        net = Network()
        net.attach(Collector("c"))
        net.detach("c")
        assert "c" not in net

    def test_detach_purges_link_clocks(self):
        """No stale pairwise-FIFO floors survive a detach — a node
        re-attached under the same id starts with fresh links."""
        net = Network()
        net.attach(Collector("a"))
        net.attach(Collector("b"))
        net.send("a", "b", "x")
        net.send("b", "a", "y")
        net.run()
        assert net._link_clock
        net.detach("b")
        assert not any("b" in link for link in net._link_clock)

    def test_reattached_node_starts_with_fresh_fifo_floor(self):
        net = Network()
        net.attach(Collector("a"))
        net.attach(Collector("b"))
        slow = net.send("a", "b", "x", size=10_000_000)
        net.detach("b")
        net.attach(Collector("b"))
        fast = net.send("a", "b", "x", size=1)
        # Without the purge the fast message would be pinned just past
        # the slow one's FIFO floor; the new link owes it nothing.
        assert fast.arrival_time == pytest.approx(
            net.latency.latency(1)
        )
        assert fast.arrival_time < slow.arrival_time

    def test_send_to_unknown_node(self):
        net = Network()
        with pytest.raises(KeyError):
            net.send("a", "b", "kind")

    def test_unattached_node_cannot_send(self):
        node = Collector("orphan")
        with pytest.raises(RuntimeError):
            node.send("x", "kind")


class TestDelivery:
    def test_request_reply(self):
        net = Network()
        net.attach(Echo("echo"))
        client = net.attach(Collector("client"))
        net.send("client", "echo", "ping", {"n": 1})
        delivered = net.run()
        assert delivered == 2
        assert client.received[0].kind == "pong"
        assert client.received[0].payload["n"] == 1

    def test_fifo_between_same_pair_same_size(self):
        net = Network()
        sink = net.attach(Collector("sink"))
        net.attach(Collector("src"))
        for n in range(10):
            net.send("src", "sink", "data", {"n": n})
        net.run()
        assert [m.payload["n"] for m in sink.received] == list(range(10))

    def test_pairwise_fifo_despite_sizes(self):
        """TCP semantics: messages on one (src, dst) link never
        reorder, even when a later message is much smaller."""
        net = Network(LatencyModel(fixed=0.0, bandwidth_bytes_per_s=1000))
        sink = net.attach(Collector("sink"))
        net.attach(Collector("src"))
        net.send("src", "sink", "big", size=10_000)
        net.send("src", "sink", "small", size=1)
        net.run()
        assert [m.kind for m in sink.received] == ["big", "small"]

    def test_cross_link_overtaking(self):
        """Messages from different sources are free to overtake."""
        net = Network(LatencyModel(fixed=0.0, bandwidth_bytes_per_s=1000))
        sink = net.attach(Collector("sink"))
        net.attach(Collector("slow-src"))
        net.attach(Collector("fast-src"))
        net.send("slow-src", "sink", "big", size=10_000)
        net.send("fast-src", "sink", "small", size=1)
        net.run()
        assert [m.kind for m in sink.received] == ["small", "big"]

    def test_clock_advances(self):
        net = Network()
        net.attach(Collector("sink"))
        net.attach(Collector("src"))
        net.send("src", "sink", "data", size=128)
        net.run()
        assert net.now > 0

    def test_run_event_cap(self):
        class Bouncer(Node):
            def handle(self, message):
                self.send(self.node_id, "loop")

        net = Network()
        net.attach(Bouncer("b"))
        net.send("b", "b", "loop")
        with pytest.raises(RuntimeError):
            net.run(max_events=100)

    def test_reset_clock(self):
        net = Network()
        net.attach(Collector("sink"))
        net.attach(Collector("src"))
        net.send("src", "sink", "x")
        net.run()
        net.reset_clock()
        assert net.now == 0.0

    def test_reset_clock_with_inflight_rejected(self):
        net = Network()
        net.attach(Collector("sink"))
        net.send("sink", "sink", "x")
        with pytest.raises(RuntimeError):
            net.reset_clock()


class TestTimers:
    def test_timer_fires_at_virtual_time(self):
        net = Network()
        fired_at = []
        net.schedule(0.5, lambda: fired_at.append(net.now))
        net.run()
        assert fired_at == [0.5]
        assert net.now == 0.5

    def test_timers_interleave_with_messages(self):
        net = Network()
        sink = net.attach(Collector("sink"))
        net.attach(Collector("src"))
        order = []
        net.schedule(10.0, lambda: order.append("late"))
        net.send("src", "sink", "data")  # sub-millisecond latency
        net.schedule(0.0, lambda: order.append("early"))
        sink.handle = lambda message: order.append("message")
        net.run()
        assert order == ["early", "message", "late"]

    def test_timer_callback_may_send(self):
        net = Network()
        sink = net.attach(Collector("sink"))
        net.attach(Collector("src"))
        net.schedule(1.0, lambda: net.send("src", "sink", "delayed"))
        delivered = net.run()
        assert delivered == 1
        assert sink.received[0].kind == "delayed"
        assert sink.received[0].send_time == 1.0

    def test_cancelled_timer_leaves_no_trace(self):
        """Arming and cancelling a timeout must not perturb the clock
        — the retry layer's happy path stays bit-identical."""
        net = Network()
        net.attach(Collector("sink"))
        net.attach(Collector("src"))
        boom = net.schedule(99.0, lambda: pytest.fail("fired"))
        net.send("src", "sink", "data")
        boom.cancel()
        net.run()
        assert not boom.fired
        assert net.now < 1.0

    def test_run_does_not_count_timers_as_deliveries(self):
        net = Network()
        net.schedule(0.1, lambda: None)
        assert net.run() == 0

    def test_negative_delay_rejected(self):
        net = Network()
        with pytest.raises(ValueError):
            net.schedule(-0.1, lambda: None)

    def test_reset_clock_tolerates_cancelled_timers(self):
        net = Network()
        timer = net.schedule(5.0, lambda: None)
        timer.cancel()
        net.reset_clock()
        assert net.now == 0.0

    def test_reset_clock_rejects_live_timer(self):
        net = Network()
        net.schedule(5.0, lambda: None)
        with pytest.raises(RuntimeError):
            net.reset_clock()


class TestStats:
    def test_counters(self):
        net = Network()
        net.attach(Collector("sink"))
        net.attach(Collector("src"))
        net.send("src", "sink", "a", size=100)
        net.send("src", "sink", "b", size=50)
        assert net.stats.messages == 2
        assert net.stats.bytes == 150
        assert net.stats.by_kind["a"] == 1

    def test_snapshot_delta(self):
        net = Network()
        net.attach(Collector("sink"))
        net.attach(Collector("src"))
        net.send("src", "sink", "a", size=10)
        before = net.stats.snapshot()
        net.send("src", "sink", "a", size=30)
        delta = net.stats.delta(before)
        assert delta.messages == 1
        assert delta.bytes == 30

    def test_reset(self):
        net = Network()
        net.attach(Collector("sink"))
        net.send("sink", "sink", "x")
        net.stats.reset()
        assert net.stats.messages == 0


class TestLatencyModel:
    def test_formula(self):
        model = LatencyModel(fixed=0.001, bandwidth_bytes_per_s=1000)
        assert model.latency(500) == pytest.approx(0.501)
