"""The live serving tier: real processes, real sockets, same answers.

The acceptance bar for the live backend is *parity*: one put / get /
search / split episode must produce identical answers **and**
identical billed wire bytes on the simulator and on the live cluster
(every message is billed once, at its sender, at its declared size —
on both backends).  On top of parity, the PR-1 retry and PR-3
crash-detection semantics must hold over real sockets: crashing a
bucket process behaves exactly like ``Network.crash`` in the
simulator, and restoring it reintegrates the bucket.

Cluster-spawning tests are marked ``live`` and skip unless
``REPRO_LIVE_TESTS=1`` (the CI ``serving`` job sets it); the config
and routing helpers at the top run everywhere.
"""

from __future__ import annotations

import pytest

from repro.core import EncryptedSearchableStore, SchemeParameters
from repro.errors import BucketUnavailableError
from repro.net.faults import RetryPolicy
from repro.net.serve import ClusterConfig, peer_of
from repro.net.simulator import Network

live = pytest.mark.live

#: Sites for episode tests — comfortably above the highest bucket
#: address the deterministic episode reaches.
EPISODE_SITES = 16

TEXTS = {
    rid: (
        f"record number {rid} with shared token alpha"
        if rid % 3 == 0
        else f"record number {rid} beta"
    )
    for rid in range(10)
}


def run_episode(network):
    """One put/get/search episode that forces splits on both files
    (bucket_capacity=4 with 10 records and their index streams)."""
    params = SchemeParameters.full(4)
    store = EncryptedSearchableStore(
        params, network=network, bucket_capacity=4, name="ep"
    )
    for rid, text in TEXTS.items():
        store.put(rid, text)
    fetched = store.get(4)
    result = store.search("alpha")
    return fetched, sorted(result.matches), network.stats.snapshot()


def run_shrink_episode(network):
    """A grow-then-shrink episode: splits force the file out, deletes
    force merges (tombstones, merge shipments, level drops) back over
    the data plane, and the survivors must still answer."""
    from repro.sdds.lhstar import LHStarFile

    file = LHStarFile(
        name="shr", network=network, bucket_capacity=4, shrink=True
    )
    for key in range(12):
        file.insert(key, b"s%d" % key)
    for key in range(8):
        file.delete(key)
    network.run()
    answers = tuple(file.lookup(key) for key in range(12))
    return answers, network.stats.snapshot()


def dump_either(network, file):
    """Bucket dump in the ``LiveNetwork.dump_buckets`` shape on
    either backend."""
    dump = getattr(network, "dump_buckets", None)
    if dump is not None:
        return dump(file.name)
    from repro.chaos.invariants import dump_buckets_sim

    return dump_buckets_sim(file)


class TestClusterConfig:
    def test_roundtrip(self, tmp_path):
        config = ClusterConfig("127.0.0.1", 9000, [9001, 9002])
        path = tmp_path / "cluster.json"
        config.dump(str(path))
        loaded = ClusterConfig.load(str(path))
        assert loaded.host == config.host
        assert loaded.coordinator == config.coordinator
        assert loaded.buckets == config.buckets

    def test_peer_addresses(self):
        config = ClusterConfig("127.0.0.1", 9000, [9001, 9002])
        assert config.peer_address(("coordinator",)) == (
            "127.0.0.1", 9000
        )
        assert config.peer_address(("bucket", 1)) == ("127.0.0.1", 9002)

    def test_peer_of_maps_node_families(self):
        assert peer_of(("bucket", "f", 3)) == ("bucket", 3)
        assert peer_of(("coordinator", "f")) == ("coordinator",)
        assert peer_of(("client", "f", 0)) is None
        assert peer_of("opaque") is None


@pytest.mark.parametrize(
    "network_backend",
    ["simulator", pytest.param("live", marks=live)],
    indirect=True,
)
class TestEitherBackend:
    """The same protocol episodes, runnable on either backend."""

    def test_put_get_search_split(self, network_backend):
        network = network_backend.make(sites=EPISODE_SITES)
        fetched, matches, stats = run_episode(network)
        assert fetched == TEXTS[4]
        assert matches == [0, 3, 6, 9]
        # the episode's bucket_capacity=4 forces real splits
        assert stats.by_kind["split"] > 0
        assert stats.by_kind["iam"] > 0

    def test_lhstar_facade_ops(self, network_backend):
        from repro.sdds.lhstar import LHStarFile

        network = network_backend.make(sites=EPISODE_SITES)
        file = LHStarFile(
            name="ops", network=network, bucket_capacity=4
        )
        for key in range(12):
            file.insert(key, b"v%d" % key)
        assert file.lookup(5) == b"v5"
        assert file.lookup(99) is None
        assert file.delete(5) is True
        assert file.lookup(5) is None

    def test_run_concurrent(self, network_backend):
        from repro.sdds.lhstar import LHStarFile

        network = network_backend.make(sites=EPISODE_SITES)
        file = LHStarFile(
            name="conc", network=network, bucket_capacity=4
        )
        inserts = [("insert", key, b"c%d" % key) for key in range(10)]
        file.run_concurrent(inserts, concurrency=3)
        lookups = [("lookup", key) for key in range(10)]
        results = file.run_concurrent(lookups, concurrency=3)
        assert results == [b"c%d" % key for key in range(10)]


@live
class TestWireCostParity:
    def test_episode_bills_identical_bytes(self, tmp_path):
        """The ISSUE acceptance criterion: identical answers and
        identical billed wire bytes on both backends."""
        from repro.net.live import LiveCluster

        sim_answer = run_episode(Network())
        with LiveCluster(
            buckets=EPISODE_SITES, log_dir=tmp_path
        ) as cluster:
            live_answer = run_episode(cluster.connect())
        fetched_s, matches_s, stats_s = sim_answer
        fetched_l, matches_l, stats_l = live_answer
        assert fetched_l == fetched_s
        assert matches_l == matches_s
        # full stats equality: messages, bytes, per-kind counters,
        # drop/retry counters — the live wire bills exactly like the
        # simulated one.
        assert stats_l == stats_s


@live
class TestCrashSemantics:
    def test_crash_detection_and_reintegration(self):
        """PR-1 retries and PR-3 crash detection over real sockets:
        crash a bucket process's node, watch retries escalate to the
        coordinator, get a BucketUnavailableError, then restore and
        observe the bucket serve again."""
        from repro.net.live import LiveCluster

        policy = RetryPolicy(timeout=0.08, backoff=2.0, max_retries=3)
        with LiveCluster(buckets=4) as cluster:
            network = cluster.connect()
            from repro.sdds.lhstar import LHStarFile

            file = LHStarFile(
                name="crash", network=network, bucket_capacity=8,
                retry_policy=policy,
            )
            for key in range(6):
                file.insert(key, b"r%d" % key)
            dump = network.dump_buckets("crash")
            target = next(
                address for address, bucket in dump.items()
                if any(record.rid == 2
                       for record in bucket["records"])
            )
            network.crash(file.bucket_id(target))
            assert network.is_crashed(file.bucket_id(target))
            with pytest.raises(BucketUnavailableError):
                file.lookup(2)
            assert network.stats.retries == policy.max_retries
            assert network.stats.crashed_drops > 0
            state = network.coordinator_state("crash")
            assert str(target) in {str(k) for k in state["dead"]} or (
                target in state["dead"]
            )
            assert network.restore(file.bucket_id(target)) is True
            assert file.lookup(2) == b"r2"
            state = network.coordinator_state("crash")
            assert not state["dead"]

    def test_records_survive_crash(self):
        from repro.net.live import LiveCluster
        from repro.sdds.lhstar import LHStarFile

        with LiveCluster(buckets=2) as cluster:
            network = cluster.connect()
            file = LHStarFile(
                name="surv", network=network, bucket_capacity=16,
                retry_policy=RetryPolicy(timeout=0.05, max_retries=2),
            )
            file.insert(1, b"one")
            network.crash(file.bucket_id(0))
            with pytest.raises(BucketUnavailableError):
                file.lookup(1)
            network.restore(file.bucket_id(0))
            assert file.lookup(1) == b"one"


@live
class TestScopeGuards:
    def test_v3_hosts_shrink_and_load_factor_policies(self):
        """v3 lifts the last v2 fences: a shrinking file and a
        load-factor split policy attach and serve over sockets
        instead of raising LiveUnsupportedError."""
        from repro.net.live import LiveCluster
        from repro.sdds.lhstar import LHStarFile

        with LiveCluster(buckets=4) as cluster:
            network = cluster.connect()
            shrinking = LHStarFile(
                name="sh", network=network, bucket_capacity=4,
                shrink=True,
            )
            for key in range(12):
                shrinking.insert(key, b"s%d" % key)
            for key in range(8):
                shrinking.delete(key)
            network.run()
            assert shrinking.lookup(8) == b"s8"
            assert shrinking.lookup(0) is None
            assert network.stats.by_kind["merge"] > 0
            controlled = LHStarFile(
                name="lf", network=network, bucket_capacity=4,
                split_policy="load_factor",
            )
            for key in range(8):
                controlled.insert(key, b"c%d" % key)
            assert controlled.lookup(3) == b"c3"

    def test_remaining_scope_raises(self):
        """The one attach-time fence left in v3: parity placement
        needs parity_count <= group_size."""
        from repro.net.live import LiveCluster, LiveUnsupportedError
        from repro.sdds.lhstar_rs import LHStarRSFile

        with LiveCluster(buckets=4) as cluster:
            with pytest.raises(LiveUnsupportedError):
                LHStarRSFile(
                    name="pp", network=cluster.connect(),
                    group_size=2, parity_count=3,
                )

    def test_high_availability_store_is_hosted(self):
        """v2 lifts the v1 scope guard: LH*_RS parity buckets are
        hosted by bucket processes, so the HA store just works."""
        from repro.net.live import LiveCluster

        with LiveCluster(buckets=8) as cluster:
            store = EncryptedSearchableStore(
                SchemeParameters.full(4),
                network=cluster.connect(),
                high_availability=True,
                name="ha",
            )
            store.put(1, "record number one alpha")
            assert store.get(1) == "record number one alpha"
            parity = cluster.connect().dump_parity(
                store.record_file.name
            )
            assert parity, "no parity slots hosted anywhere"

    def test_cluster_grows_on_demand(self):
        """A split past the provisioned site count spawns a new site
        process instead of dying with LiveBackendError (the v1
        behaviour this replaces)."""
        from repro.net.live import LiveCluster
        from repro.sdds.lhstar import LHStarFile

        with LiveCluster(buckets=1) as cluster:
            network = cluster.connect(run_timeout=30.0)
            file = LHStarFile(
                name="tiny", network=network, bucket_capacity=2,
                retry_policy=RetryPolicy(timeout=0.2, max_retries=4),
            )
            for key in range(12):
                file.insert(key, b"x%d" % key)
            for key in range(12):
                assert file.lookup(key) == b"x%d" % key
            assert len(cluster.config.buckets) > 1
            state = network.coordinator_state("tiny")
            assert (1 << state["i"]) + state["n"] > 1


class TestStartupHardening:
    def test_try_ping_unreachable_port_is_false(self):
        import socket as socket_module

        from repro.net.live import LiveCluster

        sock = socket_module.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()
        assert LiveCluster._try_ping("127.0.0.1", port) is False

    def test_partial_startup_tears_down_spawned_processes(
        self, monkeypatch
    ):
        """A failed startup must not leak orphan site processes: the
        already-spawned ones are shut down before the error
        propagates."""
        from repro.net.live import LiveBackendError, LiveCluster

        spawned = []
        original_spawn = LiveCluster._spawn

        def tracking_spawn(self, key, role, index):
            original_spawn(self, key, role, index)
            spawned.append(self._procs[key])

        def failing_probe(self, key, deadline):
            raise LiveBackendError("injected probe failure")

        monkeypatch.setattr(LiveCluster, "_spawn", tracking_spawn)
        monkeypatch.setattr(
            LiveCluster, "_probe_ready", failing_probe
        )
        cluster = LiveCluster(buckets=2)
        with pytest.raises(LiveBackendError,
                           match="injected probe failure"):
            cluster.start()
        assert spawned, "startup never spawned anything"
        for proc in spawned:
            assert proc.poll() is not None, "orphan site process"
        assert not cluster._procs


@live
class TestCrashRestoreSymmetry:
    """crash() and restore() raise the same typed errors for the
    same bad targets (the v1 asymmetry this PR fixes)."""

    def test_typed_errors_match(self):
        from repro.errors import UnknownNodeError
        from repro.net.live import LiveCluster, LiveUnsupportedError

        with LiveCluster(buckets=2) as cluster:
            network = cluster.connect()
            for verb in (network.crash, network.restore):
                # A bucket address no site was provisioned for.
                with pytest.raises(UnknownNodeError):
                    verb(("bucket", "x", 99))
                # An in-range site that has never heard of the node.
                with pytest.raises(UnknownNodeError):
                    verb(("bucket", "nofile", 0))
                # Clients live in this process, not on a site.
                with pytest.raises(LiveUnsupportedError):
                    verb(("client", "x", 0))
                # Opaque ids are not routable at all.
                with pytest.raises(LiveUnsupportedError):
                    verb("opaque")

    def test_restore_reports_whether_it_was_crashed(self):
        from repro.net.live import LiveCluster
        from repro.sdds.lhstar import LHStarFile

        with LiveCluster(buckets=2) as cluster:
            network = cluster.connect()
            file = LHStarFile(name="rs", network=network,
                              bucket_capacity=8)
            file.insert(1, b"one")
            target = file.bucket_id(0)
            assert network.restore(target) is False
            network.crash(target)
            assert network.restore(target) is True


@live
class TestFaultInjection:
    def test_seeded_loss_is_billed_and_survived(self):
        """Ctrl-plane fault injection: seeded loss drops data-plane
        messages inside the site processes, bills them as dropped,
        and the client retry path still lands every operation."""
        from repro.net.live import LiveCluster
        from repro.sdds.lhstar import LHStarFile

        with LiveCluster(buckets=4) as cluster:
            network = cluster.connect()
            network.enable_faults(seed=7)
            network.faults.loss_rate = 0.15
            file = LHStarFile(
                name="fz", network=network, bucket_capacity=4,
                retry_policy=RetryPolicy(timeout=0.2, backoff=2.0,
                                         max_retries=6),
            )
            for key in range(12):
                file.insert(key, b"w%d" % key)
            for key in range(12):
                assert file.lookup(key) == b"w%d" % key
            assert network.stats.dropped > 0
            assert network.stats.retries > 0

    def test_partition_and_heal(self):
        """partition()/heal() land inside the bucket processes and
        bill severed-link deliveries as partitioned_drops — the
        simulator's semantics, over sockets."""
        from repro.net.faults import RetryExhaustedError
        from repro.net.live import LiveCluster
        from repro.sdds.lhstar import LHStarFile

        with LiveCluster(buckets=2) as cluster:
            network = cluster.connect()
            file = LHStarFile(
                name="pz", network=network, bucket_capacity=8,
                retry_policy=RetryPolicy(timeout=0.1, max_retries=2),
            )
            file.insert(1, b"one")
            network.partition(file.client_id(0), file.bucket_id(0))
            assert network.is_partitioned(
                file.client_id(0), file.bucket_id(0)
            )
            with pytest.raises(
                (RetryExhaustedError, BucketUnavailableError)
            ):
                file.lookup(1)
            assert network.stats.partitioned_drops > 0
            network.heal()
            assert file.lookup(1) == b"one"

    def test_heal_argument_contract_matches_simulator(self):
        from repro.net.live import LiveCluster

        with LiveCluster(buckets=2) as cluster:
            network = cluster.connect()
            with pytest.raises(ValueError):
                network.heal(("client", "x", 0))


@live
class TestLiveRecovery:
    def test_group_member_crash_recovers_over_sockets(self):
        """The tentpole acceptance: a live LH*_RS group survives a
        member crash — suspect, probe, spare spawn, parity gather and
        recover_install all run over TCP and are billed."""
        from repro.net.live import LiveCluster
        from repro.sdds.lhstar_rs import LHStarRSFile

        with LiveCluster(buckets=8) as cluster:
            network = cluster.connect(run_timeout=30.0)
            file = LHStarRSFile(
                name="ha", network=network, bucket_capacity=4,
                group_size=4, parity_count=2,
                retry_policy=RetryPolicy(timeout=0.15, backoff=2.0,
                                         max_retries=2),
            )
            for key in range(10):
                file.insert(key, b"v%d" % key)
            before = network.stats.snapshot()
            network.crash(file.bucket_id(0))
            # Reads against the dead bucket route degraded through
            # the parity layer and trigger the recovery chain.
            for key in range(10):
                assert file.lookup(key) == b"v%d" % key
            network.run()
            state = network.coordinator_state("ha")
            assert not state["dead"], state
            delta = network.stats.snapshot().diff(before)
            assert delta.by_kind["recover"] >= 1
            assert delta.by_kind["group_fetch"] >= 1
            assert delta.by_kind["recover_install"] >= 1
            assert delta.by_kind["recover_done"] >= 1
            # The respawned spare serves its key range again.
            for key in range(10):
                assert file.lookup(key) == b"v%d" % key


@live
class TestLiveChaos:
    def test_seeded_episode_matches_simulator(self):
        """The episode-level acceptance: a seeded chaos episode with
        loss + partition + crash windows passes every invariant
        oracle on the live backend and reports the same acked set
        and search answers as the identically seeded simulator
        episode."""
        from dataclasses import replace

        from repro.chaos.nemesis import NemesisProfile
        from repro.chaos.runner import EpisodeConfig, run_episode

        profile = NemesisProfile(
            loss_rate=0.1, loss_windows=1,
            duplication_rate=0.1, duplication_windows=1,
            corruption_rate=0.1, corruption_windows=1,
            latency_extra=0.005, latency_windows=1,
            partition_windows=1, crash_windows=1,
            window=0.4, horizon=2.5,
        )
        config = EpisodeConfig(
            records=12, ops=30, backend="live", live_sites=12,
            profile=profile,
        )
        live_report = run_episode(3, config)
        sim_report = run_episode(
            3, replace(config, backend="simulator")
        )
        assert live_report.ok, [
            v.to_dict() for v in live_report.violations
        ]
        assert sim_report.ok
        assert live_report.acked == sim_report.acked
        assert live_report.searches == sim_report.searches
        assert live_report.nemesis["applied"] == len(
            live_report.events
        )

    def test_elasticity_episode_matches_simulator(self):
        """Membership chaos parity: merge-pressure/join windows, a
        graceful leave and a tombstone crash+rejoin composed with
        loss, duplication, a partition and a crash window — the live
        episode must pass every invariant oracle and report the same
        acked set and search answers as the seeded simulator twin."""
        from dataclasses import replace

        from repro.chaos.nemesis import NemesisProfile
        from repro.chaos.runner import EpisodeConfig, run_episode

        profile = NemesisProfile(
            loss_rate=0.05, loss_windows=1,
            duplication_rate=0.02, duplication_windows=1,
            corruption_rate=0.0, latency_windows=0,
            partition_windows=1, crash_windows=1,
            merge_pressure_windows=2, join_windows=1,
            leave_events=1, rejoin_windows=1,
            window=0.6, horizon=2.5,
        )
        config = EpisodeConfig(
            records=12, ops=30, backend="live", live_sites=12,
            profile=profile, shrink=True, merge_threshold=0.6,
        )
        live_report = run_episode(3, config)
        sim_report = run_episode(
            3, replace(config, backend="simulator")
        )
        assert live_report.ok, [
            v.to_dict() for v in live_report.violations
        ]
        assert sim_report.ok
        assert live_report.acked == sim_report.acked
        assert live_report.searches == sim_report.searches


@live
class TestLiveElasticity:
    """The v3 tentpole over real processes: shrink parity, graceful
    leave, tombstone reaping, and crash+rejoin of retired
    addresses."""

    def test_shrink_episode_bills_identical_bytes(self, tmp_path):
        """The ISSUE acceptance criterion for shrink: a seeded
        grow-then-shrink episode produces identical answers and
        identical billed wire bytes on both backends — merges,
        tombstones and level drops are billed protocol traffic."""
        from repro.net.live import LiveCluster

        sim_answers, stats_s = run_shrink_episode(Network())
        with LiveCluster(
            buckets=EPISODE_SITES, log_dir=tmp_path
        ) as cluster:
            live_answers, stats_l = run_shrink_episode(
                cluster.connect()
            )
        assert live_answers == sim_answers
        assert stats_s.by_kind["merge"] > 0
        assert stats_s.by_kind["merge_records"] > 0
        assert stats_l == stats_s

    def test_graceful_leave_migrates_online(self):
        """Graceful site leave: the drained bucket's records move to
        a fresh spare under the same identity over billed traffic,
        and keyed reads never error during or after the
        migration."""
        from repro.net.live import LiveCluster
        from repro.sdds.lhstar import LHStarFile

        with LiveCluster(buckets=8) as cluster:
            network = cluster.connect()
            file = LHStarFile(
                name="lv", network=network, bucket_capacity=4,
            )
            for key in range(12):
                file.insert(key, b"m%d" % key)
            state = network.coordinator_state("lv")
            address = (1 << state["i"]) + state["n"] - 1
            before = network.stats.snapshot()
            assert file.leave(address) is True
            delta = network.stats.snapshot().diff(before)
            assert delta.by_kind["leave"] >= 1
            assert delta.by_kind["recover_install"] >= 1
            assert delta.by_kind["recover_done"] >= 1
            for key in range(12):
                assert file.lookup(key) == b"m%d" % key
            state = network.coordinator_state("lv")
            assert not state["dead"]

    def test_decommission_and_reap_tombstones(self):
        """After merges leave tombstones and the operator syncs
        client images, the tombstones can be decommissioned and
        their site processes reaped; the survivors keep serving and
        routing to a reaped address is a typed error."""
        from repro.net.live import LiveBackendError, LiveCluster
        from repro.sdds.lhstar import LHStarFile

        with LiveCluster(buckets=8) as cluster:
            network = cluster.connect()
            file = LHStarFile(
                name="rp", network=network, bucket_capacity=4,
                shrink=True,
            )
            for key in range(12):
                file.insert(key, b"t%d" % key)
            for key in range(10):
                file.delete(key)
            network.run()
            dump = network.dump_buckets("rp")
            retired = sorted(
                address for address, info in dump.items()
                if info["retired"]
            )
            assert retired, "shrink produced no tombstones"
            file.sync_client_images()
            for address in retired:
                network.decommission("rp", address)
            for key in (10, 11):
                assert file.lookup(key) == b"t%d" % key
            with pytest.raises(LiveBackendError,
                               match="was decommissioned"):
                network.send(
                    file.client_id(0), file.bucket_id(retired[0]),
                    "lookup", {"key": 10}, size=32,
                )
            for address in retired:
                cluster.reap_site(address)
                assert ("bucket", address) not in cluster._procs
            network.run()
            for key in (10, 11):
                assert file.lookup(key) == b"t%d" % key

    def test_crash_and_rejoin_of_retired_address(self):
        """A tombstone's process can crash and rejoin like any other
        site: reads keep working while it is down (synced images
        route around it) and the coordinator ends clean after the
        restore."""
        from repro.net.live import LiveCluster
        from repro.sdds.lhstar import LHStarFile

        with LiveCluster(buckets=8) as cluster:
            network = cluster.connect()
            file = LHStarFile(
                name="rj", network=network, bucket_capacity=4,
                shrink=True,
            )
            for key in range(12):
                file.insert(key, b"j%d" % key)
            for key in range(10):
                file.delete(key)
            network.run()
            dump = network.dump_buckets("rj")
            retired = sorted(
                address for address, info in dump.items()
                if info["retired"]
            )
            assert retired
            file.sync_client_images()
            tombstone = file.bucket_id(retired[-1])
            network.crash(tombstone)
            for key in (10, 11):
                assert file.lookup(key) == b"j%d" % key
            assert network.restore(tombstone) is True
            network.run()
            for key in (10, 11):
                assert file.lookup(key) == b"j%d" % key
            state = network.coordinator_state("rj")
            assert not state["dead"]


@pytest.mark.parametrize(
    "network_backend",
    ["simulator", pytest.param("live", marks=live)],
    indirect=True,
)
class TestRetiredTombstoneRaces:
    """Stale split/merge shipments arriving at a retired bucket are
    re-shipped along the merge-target chain — the race an in-flight
    split loses against a concurrent merge.  Crafted by hand because
    the fault layer exempts structural kinds on both backends."""

    def _tombstoned_file(self, network):
        from repro.sdds.lhstar import LHStarFile

        file = LHStarFile(
            name="race", network=network, bucket_capacity=4,
            shrink=True,
        )
        for key in range(12):
            file.insert(key, b"r%d" % key)
        for key in range(10):
            file.delete(key)
        network.run()
        retired = sorted(
            address
            for address, info in dump_either(network, file).items()
            if info["retired"]
        )
        assert retired, "shrink produced no tombstones"
        return file, retired

    @staticmethod
    def _locate(network, file, rid):
        return [
            (address, info["retired"])
            for address, info in dump_either(network, file).items()
            if any(record.rid == rid for record in info["records"])
        ]

    def test_stale_merge_records_reship_to_live_target(
        self, network_backend
    ):
        from repro.sdds.records import Record

        network = network_backend.make(sites=EPISODE_SITES)
        file, retired = self._tombstoned_file(network)
        network.send(
            file.client_id(0), file.bucket_id(retired[-1]),
            "merge_records",
            {"records": [Record(1000, b"raced")], "level": 0},
            size=64,
        )
        network.run()
        # Exactly one copy, parked on a live bucket — the tombstone
        # chain (which may pass through other tombstones) forwarded
        # it instead of swallowing or resurrecting it.
        assert self._locate(network, file, 1000) == [(0, False)]

    def test_duplicated_stale_split_records_stay_single(
        self, network_backend
    ):
        from repro.sdds.records import Record

        network = network_backend.make(sites=EPISODE_SITES)
        file, retired = self._tombstoned_file(network)
        for __ in range(2):  # the duplication fault, by hand
            network.send(
                file.client_id(0), file.bucket_id(retired[-1]),
                "split_records",
                {"records": [Record(1001, b"twice")]},
                size=64,
            )
        network.run()
        assert self._locate(network, file, 1001) == [(0, False)]

    def test_reship_rides_out_a_loss_window(self, network_backend):
        """Structural kinds are exempt from seeded loss on both
        backends, so the re-ship lands even under loss_rate=1."""
        from repro.sdds.records import Record

        network = network_backend.make(sites=EPISODE_SITES)
        file, retired = self._tombstoned_file(network)
        enable = getattr(network, "enable_faults", None)
        if enable is not None:
            enable(seed=1)
            network.faults.loss_rate = 1.0
        else:
            from repro.net.faults import FaultModel

            network.faults = FaultModel(seed=1, loss_rate=1.0)
        network.send(
            file.client_id(0), file.bucket_id(retired[-1]),
            "merge_records",
            {"records": [Record(1002, b"lossy")], "level": 0},
            size=64,
        )
        network.run()
        assert self._locate(network, file, 1002) == [(0, False)]


@live
class TestCodecCachePersistence:
    def test_codec_tables_persist_across_cluster_runs(
        self, tmp_path, monkeypatch
    ):
        """Two consecutive cluster episodes against one cache
        directory: the first run writes the fused tables, the second
        loads them from disk instead of rebuilding (cold-start win).
        ``LiveCluster`` exports the same directory to every site
        process, so server-side codec users share it too."""
        from repro.core.kernels import (
            CODEC_CACHE_ENV,
            clear_codec_cache,
        )
        from repro.net.live import LiveCluster
        from repro.obs.metrics import MetricsRegistry, use_metrics

        cache = tmp_path / "codec-cache"
        cache.mkdir()
        monkeypatch.setenv(CODEC_CACHE_ENV, str(cache))
        # 2-byte chunks: a 16-bit raw domain, inside the fused bound.
        params = SchemeParameters.full(2)

        def put_some(network):
            store = EncryptedSearchableStore(
                params, network=network, bucket_capacity=8,
                name="cc",
            )
            for rid, text in list(TEXTS.items())[:4]:
                store.put(rid, text)
            return store.get(0)

        clear_codec_cache()
        with LiveCluster(buckets=4, codec_cache_dir=cache) as cluster:
            first = put_some(cluster.connect())
        files = list(cache.glob("codec-v*.bin"))
        assert files, "no codec tables were persisted"

        clear_codec_cache()
        registry = MetricsRegistry()
        with use_metrics(registry):
            with LiveCluster(
                buckets=4, codec_cache_dir=cache
            ) as cluster:
                second = put_some(cluster.connect())
        assert first == second == TEXTS[0]
        assert registry.counter("kernels.codec.disk_hit").value > 0
        clear_codec_cache()
