"""AES validated against the FIPS-197 appendix C vectors."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.aes import AES

PLAINTEXT = bytes.fromhex("00112233445566778899aabbccddeeff")

VECTORS = [
    # (key hex, expected ciphertext hex) — FIPS-197 appendix C.1-C.3.
    (
        "000102030405060708090a0b0c0d0e0f",
        "69c4e0d86a7b0430d8cdb78070b4c55a",
    ),
    (
        "000102030405060708090a0b0c0d0e0f1011121314151617",
        "dda97ca4864cdfe06eaf70a0ec0d7191",
    ),
    (
        "000102030405060708090a0b0c0d0e0f"
        "101112131415161718191a1b1c1d1e1f",
        "8ea2b7ca516745bfeafc49904b496089",
    ),
]


class TestVectors:
    @pytest.mark.parametrize("key_hex,ct_hex", VECTORS)
    def test_fips197_encrypt(self, key_hex, ct_hex):
        aes = AES(bytes.fromhex(key_hex))
        assert aes.encrypt_block(PLAINTEXT) == bytes.fromhex(ct_hex)

    @pytest.mark.parametrize("key_hex,ct_hex", VECTORS)
    def test_fips197_decrypt(self, key_hex, ct_hex):
        aes = AES(bytes.fromhex(key_hex))
        assert aes.decrypt_block(bytes.fromhex(ct_hex)) == PLAINTEXT

    def test_appendix_b_vector(self):
        # FIPS-197 appendix B: a different key/plaintext pair.
        aes = AES(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        ct = aes.encrypt_block(
            bytes.fromhex("3243f6a8885a308d313198a2e0370734")
        )
        assert ct == bytes.fromhex("3925841d02dc09fbdc118597196a0b32")


class TestInterface:
    def test_rejects_bad_key_length(self):
        with pytest.raises(ValueError):
            AES(b"short")

    def test_rejects_bad_block_length(self):
        aes = AES(bytes(16))
        with pytest.raises(ValueError):
            aes.encrypt_block(b"x" * 15)
        with pytest.raises(ValueError):
            aes.decrypt_block(b"x" * 17)

    def test_deterministic(self):
        aes = AES(bytes(16))
        assert aes.encrypt_block(bytes(16)) == aes.encrypt_block(bytes(16))

    def test_key_sensitivity(self):
        a = AES(bytes(16)).encrypt_block(bytes(16))
        b = AES(bytes(15) + b"\x01").encrypt_block(bytes(16))
        assert a != b


@given(
    st.binary(min_size=16, max_size=16),
    st.sampled_from([16, 24, 32]),
)
def test_property_roundtrip(block, key_len):
    aes = AES(bytes(range(key_len)))
    assert aes.decrypt_block(aes.encrypt_block(block)) == block


@given(st.binary(min_size=16, max_size=16), st.integers(0, 127))
def test_property_avalanche(block, bit):
    """Flipping one plaintext bit flips many ciphertext bits."""
    aes = AES(b"\xAB" * 16)
    flipped = bytearray(block)
    flipped[bit // 8] ^= 1 << (bit % 8)
    a = aes.encrypt_block(block)
    b = aes.encrypt_block(bytes(flipped))
    distance = sum(
        bin(x ^ y).count("1") for x, y in zip(a, b)
    )
    assert distance >= 30  # ideal is ~64 of 128; 30 is a loose floor
