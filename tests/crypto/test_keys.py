"""Key hierarchy derivation."""

import pytest

from repro.crypto.keys import KeyHierarchy


class TestKeyHierarchy:
    def test_determinism(self):
        a = KeyHierarchy(b"master")
        b = KeyHierarchy(b"master")
        assert a.record_store_key() == b.record_store_key()
        assert a.chunking_key(3) == b.chunking_key(3)
        assert a.record_nonce(42) == b.record_nonce(42)

    def test_master_separation(self):
        a = KeyHierarchy(b"master-1")
        b = KeyHierarchy(b"master-2")
        assert a.record_store_key() != b.record_store_key()

    def test_label_separation(self):
        kh = KeyHierarchy(b"master")
        keys = {
            kh.record_store_key(),
            kh.chunking_key(0),
            kh.chunking_key(1),
            kh.subkey("other"),
        }
        assert len(keys) == 4

    def test_nonce_length_and_uniqueness(self):
        kh = KeyHierarchy(b"master")
        nonces = {kh.record_nonce(r) for r in range(100)}
        assert len(nonces) == 100
        assert all(len(n) == 8 for n in nonces)

    def test_key_length_options(self):
        assert len(KeyHierarchy(b"m", key_length=32).record_store_key()) == 32

    def test_validation(self):
        with pytest.raises(ValueError):
            KeyHierarchy(b"")
        with pytest.raises(ValueError):
            KeyHierarchy(b"m", key_length=17)
        with pytest.raises(ValueError):
            KeyHierarchy(b"m").chunking_key(-1)
        with pytest.raises(ValueError):
            KeyHierarchy(b"m").record_nonce(-5)
