"""The small-domain PRP: bijectivity is the load-bearing property."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.feistel import FeistelPRP

KEY = b"feistel-test-key"


class TestBijectivity:
    @pytest.mark.parametrize(
        "domain", [2, 3, 7, 16, 100, 256, 1000, 4096]
    )
    def test_exhaustive_permutation(self, domain):
        """encrypt is a bijection of the whole domain."""
        prp = FeistelPRP(KEY, domain)
        images = [prp.encrypt(x) for x in range(domain)]
        assert sorted(images) == list(range(domain))
        for x in range(domain):
            assert prp.decrypt(prp.encrypt(x)) == x

    def test_odd_domain_cycle_walking(self):
        # 100 is not a power of two: cycle-walking must stay in-domain.
        prp = FeistelPRP(KEY, 100)
        for x in range(100):
            assert 0 <= prp.encrypt(x) < 100


class TestKeying:
    def test_different_keys_different_permutations(self):
        a = FeistelPRP(b"key-a", 256)
        b = FeistelPRP(b"key-b", 256)
        assert any(a.encrypt(x) != b.encrypt(x) for x in range(256))

    def test_deterministic_across_instances(self):
        a = FeistelPRP(KEY, 65536)
        b = FeistelPRP(KEY, 65536)
        for x in (0, 1, 999, 65535):
            assert a.encrypt(x) == b.encrypt(x)


class TestValidation:
    def test_domain_too_small(self):
        with pytest.raises(ValueError):
            FeistelPRP(KEY, 1)

    def test_too_few_rounds(self):
        with pytest.raises(ValueError):
            FeistelPRP(KEY, 256, rounds=3)

    def test_out_of_domain_input(self):
        prp = FeistelPRP(KEY, 100)
        with pytest.raises(ValueError):
            prp.encrypt(100)
        with pytest.raises(ValueError):
            prp.decrypt(-1)


class TestEcbSemantics:
    def test_equal_inputs_equal_outputs(self):
        """The searchability property Stage 1 requires."""
        prp = FeistelPRP(KEY, 2 ** 16)
        assert prp.encrypt(12345) == prp.encrypt(12345)


@given(
    st.integers(2, 2 ** 20),
    st.data(),
)
def test_property_roundtrip(domain, data):
    prp = FeistelPRP(KEY, domain)
    value = data.draw(st.integers(0, domain - 1))
    image = prp.encrypt(value)
    assert 0 <= image < domain
    assert prp.decrypt(image) == value


@given(st.integers(2, 2 ** 32), st.data())
def test_property_wide_domains(domain, data):
    prp = FeistelPRP(b"wide", domain)
    value = data.draw(st.integers(0, domain - 1))
    assert prp.decrypt(prp.encrypt(value)) == value


class TestPermutationTable:
    def test_table_matches_encrypt(self):
        prp = FeistelPRP(KEY, 1000)  # non-power-of-2: cycle-walking
        table = prp.permutation_table()
        assert table is not None
        assert sorted(table) == list(range(1000))
        for value in range(0, 1000, 37):
            assert table[value] == prp.encrypt(value)

    def test_table_power_of_two_domain(self):
        prp = FeistelPRP(KEY, 2 ** 10)
        table = prp.permutation_table()
        assert [table[v] for v in range(64)] == [
            prp.encrypt(v) for v in range(64)
        ]

    def test_wide_domain_has_no_table(self):
        prp = FeistelPRP(KEY, 2 ** 24)
        assert prp.permutation_table() is None

    def test_encrypt_stream_equals_scalar(self):
        prp = FeistelPRP(KEY, 2 ** 12)
        values = [(i * 977) % prp.domain_size for i in range(500)]
        assert prp.encrypt_stream(values) == [
            prp.encrypt(v) for v in values
        ]

    def test_encrypt_stream_falls_back_on_wide_domain(self):
        prp = FeistelPRP(KEY, 2 ** 24)
        values = [0, 1, 2 ** 20]
        assert prp.encrypt_stream(values) == [
            prp.encrypt(v) for v in values
        ]

    def test_encrypt_stream_validates_range(self):
        prp = FeistelPRP(KEY, 64)
        with pytest.raises(ValueError):
            prp.encrypt_stream([0, -1])
        with pytest.raises(ValueError):
            prp.encrypt_stream([0, 64])

    def test_encrypt_stream_empty(self):
        assert FeistelPRP(KEY, 64).encrypt_stream([]) == []
