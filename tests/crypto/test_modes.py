"""Block-cipher modes and padding."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.modes import (
    CbcCipher,
    CtrCipher,
    EcbCipher,
    pkcs7_pad,
    pkcs7_unpad,
)

KEY = bytes(range(16))
IV = bytes(range(16, 32))
NONCE = bytes(8)


class TestPkcs7:
    def test_pad_to_block(self):
        assert pkcs7_pad(b"abc", 8) == b"abc" + bytes([5] * 5)

    def test_exact_block_gets_full_pad(self):
        assert pkcs7_pad(b"x" * 8, 8) == b"x" * 8 + bytes([8] * 8)

    def test_unpad_roundtrip(self):
        for n in range(0, 33):
            data = bytes(range(n % 256))[:n]
            assert pkcs7_unpad(pkcs7_pad(data)) == data

    @pytest.mark.parametrize("bad", [b"", b"x" * 15, b"x" * 17])
    def test_unpad_rejects_bad_length(self, bad):
        with pytest.raises(ValueError):
            pkcs7_unpad(bad)

    def test_unpad_rejects_zero_pad_byte(self):
        with pytest.raises(ValueError):
            pkcs7_unpad(b"x" * 15 + b"\x00")

    def test_unpad_rejects_inconsistent_bytes(self):
        block = b"x" * 14 + bytes([1, 2])  # says 2 pad bytes but first is 1
        with pytest.raises(ValueError):
            pkcs7_unpad(block)

    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            pkcs7_pad(b"x", 0)


class TestEcb:
    def test_roundtrip(self):
        ecb = EcbCipher(KEY)
        assert ecb.decrypt(ecb.encrypt(b"hello ecb")) == b"hello ecb"

    def test_determinism_leaks_block_equality(self):
        """The defining ECB property the paper builds on."""
        ecb = EcbCipher(KEY)
        ct = ecb.encrypt(b"A" * 16 + b"A" * 16)
        assert ct[:16] == ct[16:32]

    def test_rejects_ragged_ciphertext(self):
        with pytest.raises(ValueError):
            EcbCipher(KEY).decrypt(b"x" * 17)


class TestCbcNistVectors:
    def test_sp800_38a_f2_1_first_block(self):
        """NIST SP 800-38A F.2.1 (CBC-AES128.Encrypt), block 1.

        Our CBC appends PKCS#7 padding, so only the first ciphertext
        block is comparable to the unpadded vector — and it pins the
        whole chain (IV handling + AES) exactly.
        """
        cbc = CbcCipher(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        iv = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex("6bc1bee22e409f96e93d7e117393172a")
        ciphertext = cbc.encrypt(plaintext, iv)
        assert ciphertext[:16] == bytes.fromhex(
            "7649abac8119b246cee98e9b12e9197d"
        )

    def test_sp800_38a_f2_1_chain(self):
        """Blocks 1-2 of the same vector (chaining correctness)."""
        cbc = CbcCipher(bytes.fromhex("2b7e151628aed2a6abf7158809cf4f3c"))
        iv = bytes.fromhex("000102030405060708090a0b0c0d0e0f")
        plaintext = bytes.fromhex(
            "6bc1bee22e409f96e93d7e117393172a"
            "ae2d8a571e03ac9c9eb76fac45af8e51"
        )
        ciphertext = cbc.encrypt(plaintext, iv)
        assert ciphertext[:32] == bytes.fromhex(
            "7649abac8119b246cee98e9b12e9197d"
            "5086cb9b507219ee95db113a917678b2"
        )


class TestCbc:
    def test_roundtrip(self):
        cbc = CbcCipher(KEY)
        msg = b"a longer message spanning blocks" * 3
        assert cbc.decrypt(cbc.encrypt(msg, IV), IV) == msg

    def test_equal_blocks_hidden(self):
        cbc = CbcCipher(KEY)
        ct = cbc.encrypt(b"A" * 32, IV)
        assert ct[:16] != ct[16:32]

    def test_iv_matters(self):
        cbc = CbcCipher(KEY)
        assert cbc.encrypt(b"msg", IV) != cbc.encrypt(b"msg", bytes(16))

    def test_bad_iv_length(self):
        with pytest.raises(ValueError):
            CbcCipher(KEY).encrypt(b"msg", b"short")

    def test_empty_ciphertext_rejected(self):
        with pytest.raises(ValueError):
            CbcCipher(KEY).decrypt(b"", IV)


class TestCtr:
    def test_roundtrip_any_length(self):
        ctr = CtrCipher(KEY)
        for n in (0, 1, 15, 16, 17, 100):
            msg = bytes(range(256))[:n]
            assert ctr.decrypt(ctr.encrypt(msg, NONCE), NONCE) == msg

    def test_length_preserving(self):
        ctr = CtrCipher(KEY)
        assert len(ctr.encrypt(b"abc", NONCE)) == 3

    def test_nonce_separation(self):
        ctr = CtrCipher(KEY)
        other = b"\x01" + bytes(7)
        assert ctr.encrypt(b"same", NONCE) != ctr.encrypt(b"same", other)

    def test_bad_nonce_length(self):
        with pytest.raises(ValueError):
            CtrCipher(KEY).encrypt(b"x", b"short")


@given(st.binary(max_size=200))
def test_property_cbc_roundtrip(msg):
    cbc = CbcCipher(KEY)
    assert cbc.decrypt(cbc.encrypt(msg, IV), IV) == msg


@given(st.binary(max_size=200), st.binary(min_size=8, max_size=8))
def test_property_ctr_roundtrip(msg, nonce):
    ctr = CtrCipher(KEY)
    assert ctr.decrypt(ctr.encrypt(msg, nonce), nonce) == msg
