"""HMAC (RFC 4231 vectors), HKDF and the integer PRF."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.prf import hkdf_derive, hmac_sha256, prf_int


class TestHmacVectors:
    def test_rfc4231_case_1(self):
        mac = hmac_sha256(b"\x0b" * 20, b"Hi There")
        assert mac == bytes.fromhex(
            "b0344c61d8db38535ca8afceaf0bf12b"
            "881dc200c9833da726e9376c2e32cff7"
        )

    def test_rfc4231_case_2(self):
        mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?")
        assert mac == bytes.fromhex(
            "5bdcc146bf60754e6a042426089575c7"
            "5a003f089d2739839dec58b964ec3843"
        )

    def test_rfc4231_case_3(self):
        mac = hmac_sha256(b"\xaa" * 20, b"\xdd" * 50)
        assert mac == bytes.fromhex(
            "773ea91e36800e46854db8ebd09181a7"
            "2959098b3ef8c122d9635514ced565fe"
        )

    def test_long_key_is_hashed(self):
        # Keys over the block size are pre-hashed (RFC 2104).
        long_key = b"k" * 100
        short_equivalent = hmac_sha256(long_key, b"msg")
        assert len(short_equivalent) == 32


class TestHkdfRfc5869:
    def test_case_1(self):
        """RFC 5869 appendix A.1 (SHA-256)."""
        okm = hkdf_derive(
            master=bytes.fromhex("0b" * 22),
            info=bytes.fromhex("f0f1f2f3f4f5f6f7f8f9"),
            length=42,
            salt=bytes.fromhex("000102030405060708090a0b0c"),
        )
        assert okm == bytes.fromhex(
            "3cb25f25faacd57a90434f64d0362f2a"
            "2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865"
        )

    def test_case_3(self):
        """RFC 5869 appendix A.3: empty salt and info."""
        okm = hkdf_derive(
            master=bytes.fromhex("0b" * 22),
            info=b"",
            length=42,
            salt=b"",
        )
        assert okm == bytes.fromhex(
            "8da4e775a563c18f715f802a063c5a31"
            "b8a11f5c5ee1879ec3454e5f3c738d2d"
            "9d201395faa4b61a96c8"
        )


class TestHkdf:
    def test_deterministic(self):
        assert hkdf_derive(b"m", b"ctx") == hkdf_derive(b"m", b"ctx")

    def test_context_separation(self):
        assert hkdf_derive(b"m", b"a") != hkdf_derive(b"m", b"b")

    def test_master_separation(self):
        assert hkdf_derive(b"m1", b"ctx") != hkdf_derive(b"m2", b"ctx")

    @pytest.mark.parametrize("length", [1, 16, 32, 33, 64, 100])
    def test_lengths(self, length):
        out = hkdf_derive(b"m", b"ctx", length)
        assert len(out) == length

    def test_prefix_consistency(self):
        """Longer derivations extend shorter ones (HKDF stream)."""
        assert hkdf_derive(b"m", b"c", 16) == hkdf_derive(b"m", b"c", 48)[:16]

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            hkdf_derive(b"m", b"c", 0)


class TestPrfInt:
    @pytest.mark.parametrize("bits", [1, 7, 8, 13, 64, 256, 300])
    def test_range(self, bits):
        for i in range(20):
            v = prf_int(b"key", bytes([i]), bits)
            assert 0 <= v < (1 << bits)

    def test_deterministic(self):
        assert prf_int(b"k", b"m", 32) == prf_int(b"k", b"m", 32)

    def test_message_sensitivity(self):
        assert prf_int(b"k", b"m1", 64) != prf_int(b"k", b"m2", 64)

    def test_invalid_bits(self):
        with pytest.raises(ValueError):
            prf_int(b"k", b"m", 0)


@given(st.binary(max_size=64), st.binary(max_size=64))
def test_property_hmac_is_function(key, msg):
    assert hmac_sha256(key, msg) == hmac_sha256(key, msg)
    assert len(hmac_sha256(key, msg)) == 32
