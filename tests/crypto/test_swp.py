"""The Song-Wagner-Perrig word-search cipher."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.crypto.swp import CHECK_BYTES, WORD_BYTES, SwpCipher, Trapdoor

KEY = b"swp-test-master"


@pytest.fixture
def swp():
    return SwpCipher(KEY)


class TestEncryptDecrypt:
    def test_roundtrip(self, swp):
        cells = swp.encrypt_words(7, ["SCHWARZ", "THOMAS"])
        assert swp.decrypt_words(7, cells) == ["SCHWARZ", "THOMAS"]

    def test_cells_fixed_width(self, swp):
        cells = swp.encrypt_words(1, ["A", "LONGERWORD"])
        assert all(len(c) == WORD_BYTES for c in cells)

    def test_same_word_different_positions_differ(self, swp):
        """Positional masking: no ECB-style repetition leak."""
        cells = swp.encrypt_words(1, ["SAME", "SAME"])
        assert cells[0] != cells[1]

    def test_same_word_different_documents_differ(self, swp):
        a = swp.encrypt_word(1, 0, "WORD")
        b = swp.encrypt_word(2, 0, "WORD")
        assert a != b

    def test_overlong_word_hashed(self, swp):
        word = "X" * 40
        cell = swp.encrypt_word(1, 0, word)
        slot = swp.decrypt_word(1, 0, cell)
        assert len(slot) == WORD_BYTES  # digest form

    def test_empty_key_rejected(self):
        with pytest.raises(ValueError):
            SwpCipher(b"")


class TestSearch:
    def test_trapdoor_matches_own_word(self, swp):
        cells = swp.encrypt_words(9, ["ALPHA", "BETA", "ALPHA"])
        trapdoor = swp.trapdoor("ALPHA")
        hits = [i for i, c in enumerate(cells)
                if SwpCipher.match(c, trapdoor)]
        assert hits == [0, 2]

    def test_trapdoor_rejects_other_words(self, swp):
        cells = swp.encrypt_words(9, ["ALPHA", "BETA"])
        trapdoor = swp.trapdoor("GAMMA")
        assert not any(SwpCipher.match(c, trapdoor) for c in cells)

    def test_no_substring_matching(self, swp):
        """SWP is word-level only — the paper's reason to build the
        chunk scheme instead."""
        cells = swp.encrypt_words(9, ["SCHWARZ"])
        assert not SwpCipher.match(cells[0], swp.trapdoor("SCHWAR"))

    def test_match_needs_only_the_trapdoor(self, swp):
        """The server-side check is a static method with no keys."""
        cell = swp.encrypt_word(3, 0, "WORD")
        trapdoor = swp.trapdoor("WORD")
        clone = Trapdoor(trapdoor.pre_encrypted, trapdoor.word_key)
        assert SwpCipher.match(cell, clone)

    def test_malformed_cell(self, swp):
        with pytest.raises(ValueError):
            SwpCipher.match(b"short", swp.trapdoor("X"))

    def test_keys_separate_instances(self):
        a, b = SwpCipher(b"k1"), SwpCipher(b"k2")
        cell = a.encrypt_word(1, 0, "WORD")
        assert not SwpCipher.match(cell, b.trapdoor("WORD"))

    def test_false_positive_probability_is_tiny(self, swp):
        """2^-32 per cell: 10,000 foreign cells should never match."""
        cells = swp.encrypt_words(5, [f"W{i}" for i in range(10_000)])
        trapdoor = swp.trapdoor("ABSENT")
        assert not any(SwpCipher.match(c, trapdoor) for c in cells)

    def test_check_width(self):
        assert CHECK_BYTES * 8 == 32


@given(
    st.lists(
        st.text(alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789",
                min_size=1, max_size=14),
        min_size=1, max_size=12,
    ),
    st.integers(0, 2 ** 32),
)
def test_property_roundtrip_and_search(words, doc_id):
    swp = SwpCipher(KEY)
    cells = swp.encrypt_words(doc_id, words)
    assert swp.decrypt_words(doc_id, cells) == words
    for target in set(words):
        trapdoor = swp.trapdoor(target)
        hits = {i for i, c in enumerate(cells)
                if SwpCipher.match(c, trapdoor)}
        expected = {i for i, w in enumerate(words) if w == target}
        assert hits == expected
