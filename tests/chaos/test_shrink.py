"""The delta-debugging shrinker, end to end.

The acceptance criterion: an intentionally broken invariant —
injected here through a registered *sabotage* nemesis action that
silently destroys an acked record behind the parity code's back —
must be (a) caught by the oracle battery, (b) shrunk to a minimal
schedule of at most 3 fault events, and (c) reproduced by replaying
the serialized minimal schedule.
"""

import pytest

from repro.chaos.nemesis import (
    FaultEvent,
    NemesisProfile,
    dump_schedule,
    load_schedule,
    register_action,
)
from repro.chaos.runner import EpisodeConfig, run_episode
from repro.chaos.shrink import make_reproducer, shrink_schedule

#: No composed faults: the schedule under test is hand-built.
QUIET = EpisodeConfig(
    records=8, ops=10,
    profile=NemesisProfile(
        loss_rate=0.0, loss_windows=0,
        duplication_rate=0.0, duplication_windows=0,
        corruption_rate=0.0, corruption_windows=0,
        latency_extra=0.0, latency_windows=0,
        partition_windows=0, crash_windows=0,
        horizon=10.0,
    ),
)

SEED = 2


def _sabotage(nemesis, network, event):
    """Destroy one acked record in the lowest-address non-empty
    data bucket — an invariant breakage no fault model can cause."""
    buckets = sorted(
        (
            node_id for node_id in network.nodes
            if isinstance(node_id, tuple)
            and node_id[:2] == ("bucket", "ess-store")
        ),
        key=lambda node_id: node_id[2],
    )
    for node_id in buckets:
        records = getattr(network.nodes[node_id], "records", None)
        if records:
            records.pop(min(records))
            return


register_action("sabotage", _sabotage)


def decoys():
    """Harmless filler the shrinker must strip away."""
    return [
        FaultEvent(at=at, action="latency", duration=0.5,
                   params={"extra": 0.005})
        for at in (1.0, 2.0, 3.0, 4.0, 6.0, 7.0)
    ]


class TestShrinkMechanics:
    def test_bails_when_full_schedule_does_not_reproduce(self):
        result = shrink_schedule(decoys(), lambda events: False)
        assert not result.reproduced
        assert result.evaluations == 1

    def test_minimises_to_the_culprit_subset(self):
        """Pure ddmin check against a synthetic predicate: any
        schedule containing both marked events reproduces."""
        culprits = [
            FaultEvent(at=5.0, action="loss", duration=1.0,
                       params={"rate": 0.9}),
            FaultEvent(at=8.0, action="crash", params={"node": "x"}),
        ]
        schedule = decoys() + culprits

        def reproduces(events):
            return all(c in events for c in culprits)

        result = shrink_schedule(schedule, reproduces)
        assert result.reproduced
        assert sorted(result.events, key=lambda e: e.at) == culprits

    def test_respects_evaluation_budget(self):
        result = shrink_schedule(
            decoys() * 4, lambda events: True, max_evaluations=5
        )
        assert result.evaluations <= 5


class TestSabotagePipeline:
    def test_caught_shrunk_and_replayed(self):
        schedule = sorted(
            decoys() + [FaultEvent(at=8.5, action="sabotage")],
            key=lambda e: e.at,
        )

        # (a) Caught: the oracle battery flags the broken invariant.
        report = run_episode(SEED, config=QUIET, events=schedule)
        assert not report.ok
        invariants = {v.invariant for v in report.violations}
        assert invariants & {
            "acked-durability", "scan-coverage", "parity-consistency"
        }, invariants

        # (b) Shrunk: <= 3 events (here exactly the sabotage event).
        invariant = report.violations[0].invariant
        shrunk = shrink_schedule(
            schedule, make_reproducer(SEED, QUIET, invariant)
        )
        assert shrunk.reproduced
        assert len(shrunk.events) <= 3
        assert [e.action for e in shrunk.events] == ["sabotage"]

        # (c) Replayed: the serialized minimal schedule reproduces
        # the same violation from disk.
        import io

        buffer = io.StringIO()
        dump_schedule(shrunk.events, buffer)
        buffer.seek(0)
        replayed = run_episode(
            SEED, config=QUIET, events=load_schedule(buffer)
        )
        assert not replayed.ok
        assert invariant in {
            v.invariant for v in replayed.violations
        }

    def test_decoys_alone_are_clean(self):
        """Control: without the sabotage event, all oracles hold."""
        report = run_episode(SEED, config=QUIET, events=decoys())
        assert report.ok, [v.to_dict() for v in report.violations]
