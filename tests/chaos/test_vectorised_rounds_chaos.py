"""Vectorised message rounds under chaos.

The round dispatcher regroups same-arrival scan traffic into batched
handler calls, but billing, fault rolls and gate checks stay per
message — so a chaos episode must be **byte-identical** with the flag
on or off: same seeded loss/crash schedule, same counters, same
violations, same post-heal answers.  These tests drive the standard
episode runner both ways and diff the full reports.
"""

from dataclasses import replace

import pytest

from repro.chaos.nemesis import NemesisProfile
from repro.chaos.runner import EpisodeConfig, run_episode

#: Loss + crash: drops roll at send time and crash gates roll per
#: message inside a round — the two fault classes that would drift
#: first if the round dispatcher double- or under-billed anything.
LOSSY_PROFILE = NemesisProfile(
    loss_rate=0.15, loss_windows=2,
    duplication_rate=0.0, duplication_windows=0,
    corruption_rate=0.0, corruption_windows=0,
    latency_extra=0.0, latency_windows=0,
    partition_windows=0,
    crash_windows=2,
    window=1.5, horizon=12.0,
)

LOSSY = EpisodeConfig(records=10, ops=24, profile=LOSSY_PROFILE)


class TestVectorisedRoundsUnderChaos:
    @pytest.mark.parametrize("seed", [0, 2])
    def test_oracles_hold_with_rounds_on(self, seed):
        report = run_episode(seed, config=LOSSY)
        assert report.ok, [v.to_dict() for v in report.violations]
        assert report.nemesis["applied"] > 0

    @pytest.mark.parametrize("seed", [1, 4])
    def test_episode_identical_with_rounds_off(self, seed):
        """Same seed, flag flipped: the reports must agree on every
        field — schedule, stats, acked set, searches, spans."""
        vectorised = run_episode(seed, config=LOSSY)
        scalar = run_episode(
            seed, config=replace(LOSSY, vectorised_rounds=False)
        )
        assert vectorised.ok and scalar.ok
        a = vectorised.episode_dict()
        b = scalar.episode_dict()
        assert a.pop("config")["vectorised_rounds"] is True
        assert b.pop("config")["vectorised_rounds"] is False
        assert a == b
