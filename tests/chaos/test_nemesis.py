"""Nemesis schedules: composition, windows, serialization."""

import io

import pytest

from repro.chaos.nemesis import (
    FaultEvent,
    Nemesis,
    NemesisProfile,
    compose_schedule,
    dump_schedule,
    load_schedule,
    register_action,
)
from repro.net import FaultModel, LatencyModel, Message, Network, Node


class Collector(Node):
    def __init__(self, node_id):
        super().__init__(node_id)
        self.received: list[Message] = []

    def handle(self, message: Message) -> None:
        self.received.append(message)


def chaos_net(*names):
    net = Network(faults=FaultModel())
    for name in names or ("a", "b"):
        net.attach(Collector(name))
    return net


class TestCompose:
    def test_same_seed_same_schedule(self):
        profile = NemesisProfile()
        pairs = [([("c",)], [("bucket", "f", 0)])]
        targets = [("bucket", "f", 0), ("bucket", "f", 1)]
        a = compose_schedule(7, profile, targets, pairs)
        b = compose_schedule(7, profile, targets, pairs)
        assert a == b
        assert a != compose_schedule(8, profile, targets, pairs)

    def test_all_classes_present(self):
        events = compose_schedule(
            3, NemesisProfile(),
            crash_targets=[("bucket", "f", 0)],
            partition_pairs=[([("c",)], [("bucket", "f", 0)])],
        )
        assert {event.action for event in events} == {
            "loss", "duplication", "corruption", "latency",
            "partition", "crash",
        }

    def test_windows_respect_profile_span(self):
        profile = NemesisProfile(warmup=5.0, horizon=9.0)
        events = compose_schedule(1, profile)
        assert events
        assert all(5.0 <= event.at <= 9.0 for event in events)

    def test_zeroed_class_is_absent(self):
        profile = NemesisProfile(loss_rate=0.0, loss_windows=0)
        events = compose_schedule(1, profile)
        assert not [e for e in events if e.action == "loss"]


class TestWindows:
    def test_rate_window_opens_and_restores(self):
        net = chaos_net()
        nemesis = Nemesis([
            FaultEvent(at=1.0, action="loss", duration=2.0,
                       params={"rate": 0.5}),
        ]).attach(net)
        nemesis.advance(net, 0.5)
        assert net.faults.loss_rate == 0.0
        nemesis.advance(net, 1.5)
        assert net.faults.loss_rate == 0.5
        nemesis.advance(net, 4.0)
        assert net.faults.loss_rate == 0.0
        assert nemesis.applied == 1

    def test_overlapping_windows_take_max(self):
        net = chaos_net()
        nemesis = Nemesis([
            FaultEvent(at=1.0, action="loss", duration=4.0,
                       params={"rate": 0.2}),
            FaultEvent(at=2.0, action="loss", duration=1.0,
                       params={"rate": 0.6}),
        ]).attach(net)
        nemesis.advance(net, 2.5)
        assert net.faults.loss_rate == 0.6
        nemesis.advance(net, 3.5)
        assert net.faults.loss_rate == 0.2

    def test_latency_spike_restores_base_model(self):
        net = chaos_net()
        base = net.latency
        nemesis = Nemesis([
            FaultEvent(at=1.0, action="latency", duration=1.0,
                       params={"extra": 0.05}),
        ]).attach(net)
        nemesis.advance(net, 1.2)
        assert net.latency.latency(0) == pytest.approx(
            base.latency(0) + 0.05
        )
        nemesis.advance(net, 3.0)
        assert net.latency is base

    def test_partition_window_heals_on_close(self):
        net = chaos_net("a", "b")
        nemesis = Nemesis([
            FaultEvent(at=1.0, action="partition", duration=1.0,
                       params={"a": ["a"], "b": ["b"],
                               "symmetric": True}),
        ]).attach(net)
        nemesis.advance(net, 1.5)
        assert net.is_partitioned("a", "b")
        nemesis.advance(net, 2.5)
        assert not net.is_partitioned("a", "b")

    def test_partition_groups_retuplified_from_json(self):
        """Node ids round-trip JSON as nested lists; the handler must
        turn each *element* back into a tuple id."""
        node_id = ("bucket", "f", 0)
        net = Network(faults=FaultModel())
        net.attach(Collector("c"))
        net.attach(Collector(node_id))
        nemesis = Nemesis([
            FaultEvent(at=1.0, action="partition", duration=1.0,
                       params={"a": ["c"],
                               "b": [["bucket", "f", 0]],
                               "symmetric": True}),
        ]).attach(net)
        nemesis.advance(net, 1.5)
        assert net.is_partitioned("c", node_id)

    def test_crash_window_with_gate_veto(self):
        net = chaos_net("a", "b")
        nemesis = Nemesis([
            FaultEvent(at=1.0, action="crash", duration=1.0,
                       params={"node": "a"}),
            FaultEvent(at=1.0, action="crash", duration=1.0,
                       params={"node": "b"}),
        ]).attach(net)
        nemesis.gate = lambda node_id: node_id != "b"
        nemesis.advance(net, 1.5)
        assert net.is_crashed("a")
        assert not net.is_crashed("b")
        assert nemesis.crashes == 1
        assert nemesis.skipped_crashes == 1
        nemesis.advance(net, 3.0)
        assert not net.is_crashed("a")
        assert nemesis.restores == 1

    def test_quiesce_closes_everything(self):
        net = chaos_net("a", "b")
        nemesis = Nemesis([
            FaultEvent(at=1.0, action="loss", duration=50.0,
                       params={"rate": 0.9}),
            FaultEvent(at=1.0, action="partition", duration=50.0,
                       params={"a": ["a"], "b": ["b"],
                               "symmetric": True}),
            FaultEvent(at=99.0, action="loss", duration=1.0,
                       params={"rate": 0.9}),
        ]).attach(net)
        nemesis.advance(net, 2.0)
        nemesis.quiesce(net)
        assert net.faults.loss_rate == 0.0
        assert not net.is_partitioned("a", "b")
        assert nemesis.expired == 1

    def test_attach_requires_fault_model(self):
        with pytest.raises(ValueError):
            Nemesis([]).attach(Network())

    def test_unknown_action_rejected(self):
        net = chaos_net()
        nemesis = Nemesis([
            FaultEvent(at=1.0, action="flood", duration=0.0),
        ]).attach(net)
        with pytest.raises(ValueError, match="unknown nemesis"):
            nemesis.advance(net, 2.0)

    def test_custom_action_registry(self):
        fired = []
        register_action(
            "beacon",
            lambda nemesis, network, event: fired.append("open"),
            lambda nemesis, network, event: fired.append("close"),
        )
        net = chaos_net()
        nemesis = Nemesis([
            FaultEvent(at=1.0, action="beacon", duration=1.0),
        ]).attach(net)
        nemesis.advance(net, 3.0)
        assert fired == ["open", "close"]


class TestSerialization:
    def test_round_trip(self):
        events = compose_schedule(
            5, NemesisProfile(),
            crash_targets=[("bucket", "f", 0)],
            partition_pairs=[
                ([["client", "f", 0]], [["bucket", "f", 1]])
            ],
        )
        buffer = io.StringIO()
        dump_schedule(events, buffer)
        buffer.seek(0)
        assert load_schedule(buffer) == events

    def test_round_trip_through_file(self, tmp_path):
        events = [
            FaultEvent(at=1.5, action="loss", duration=0.5,
                       params={"rate": 0.3}),
        ]
        path = tmp_path / "schedule.json"
        dump_schedule(events, str(path))
        assert load_schedule(str(path)) == events

    def test_version_checked(self):
        buffer = io.StringIO('{"version": 99, "events": []}')
        with pytest.raises(ValueError, match="version"):
            load_schedule(buffer)
