"""Chaos episodes: determinism, oracles, and the episode report."""

import io
import json
from dataclasses import replace

import pytest

from repro.chaos.nemesis import NemesisProfile
from repro.chaos.runner import (
    EpisodeConfig,
    run_episode,
    write_report,
)
from repro.obs.trace import load_jsonl

#: A small-but-composed profile: every fault class, short horizon.
SMALL_PROFILE = NemesisProfile(
    loss_rate=0.2, loss_windows=1,
    duplication_rate=0.2, duplication_windows=1,
    corruption_rate=0.2, corruption_windows=1,
    latency_extra=0.01, latency_windows=1,
    partition_windows=1,
    crash_windows=1,
    window=1.0, horizon=12.0,
)

SMALL = EpisodeConfig(records=8, ops=16, profile=SMALL_PROFILE)

CORRUPTION_ONLY = EpisodeConfig(
    records=8, ops=16,
    profile=NemesisProfile(
        loss_rate=0.0, loss_windows=0,
        duplication_rate=0.0, duplication_windows=0,
        latency_extra=0.0, latency_windows=0,
        partition_windows=0, crash_windows=0,
        corruption_rate=0.3, corruption_windows=3,
        window=2.0, horizon=12.0,
    ),
)


class TestDeterminism:
    def test_same_seed_same_report(self):
        """The acceptance criterion: an episode is a pure function of
        (seed, config) — byte-identical reports on re-run."""
        first = run_episode(4, config=SMALL)
        second = run_episode(4, config=SMALL)
        assert first.episode_dict() == second.episode_dict()
        assert [s.to_dict() for s in first.spans] == [
            s.to_dict() for s in second.spans
        ]

    def test_different_seed_different_chaos(self):
        a = run_episode(1, config=SMALL)
        b = run_episode(2, config=SMALL)
        assert [e.to_dict() for e in a.events] != [
            e.to_dict() for e in b.events
        ]


class TestComposedEpisodes:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_oracles_hold_under_composed_nemesis(self, seed):
        report = run_episode(seed, config=SMALL)
        assert report.ok, [v.to_dict() for v in report.violations]
        assert report.ops_applied + report.ops_failed == SMALL.ops
        assert report.nemesis["applied"] > 0

    def test_replayed_schedule_used_verbatim(self):
        base = run_episode(5, config=SMALL)
        replayed = run_episode(5, config=SMALL, events=base.events)
        assert replayed.episode_dict() == base.episode_dict()


class TestCorruptionOnly:
    def test_degrades_cost_never_correctness(self):
        """The acceptance criterion: a corruption-only episode ends
        with zero violations and a nonzero corrupted counter."""
        report = run_episode(3, config=CORRUPTION_ONLY)
        assert report.ok, [v.to_dict() for v in report.violations]
        assert report.stats["corrupted"] > 0
        assert report.stats["retries"] > 0
        assert report.stats["crashed_drops"] == 0
        assert report.stats["partitioned_drops"] == 0


class TestReportFormat:
    def test_episode_line_then_spans(self):
        report = run_episode(0, config=SMALL)
        buffer = io.StringIO()
        write_report(report, buffer)
        lines = buffer.getvalue().splitlines()
        episode = json.loads(lines[0])
        assert episode["type"] == "episode"
        assert episode["seed"] == 0
        assert episode["schedule"] == [
            e.to_dict() for e in report.events
        ]
        assert set(episode["stats"]) == {
            "messages", "bytes", "dropped", "duplicated", "retries",
            "crashed_drops", "partitioned_drops", "corrupted",
            "by_kind",
        }
        assert len(lines) == 1 + len(report.spans)

    def test_span_lines_load_as_pr2_spans(self, tmp_path):
        report = run_episode(0, config=SMALL)
        path = tmp_path / "episode.jsonl"
        write_report(report, str(path))
        with open(path, encoding="utf-8") as handle:
            handle.readline()  # the episode line
            spans = load_jsonl(handle)
        assert len(spans) == len(report.spans)


class TestInjectedViolationIsCaught:
    def test_monotone_level_oracle_fires(self):
        """An intentionally broken invariant must surface as a
        violation, not pass silently."""
        from repro.chaos.invariants import LevelMonitor

        monitor = LevelMonitor("f")
        monitor.observe((1, 1), deleted=False)
        monitor.observe((1, 0), deleted=False)  # level regressed
        assert monitor.violations
        assert monitor.violations[0].invariant == "monotone-level"
