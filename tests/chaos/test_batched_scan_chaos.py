"""Batched bucket scans under chaos.

The haystack fast path caches a derived view of bucket contents, so
the dangerous failure mode is staleness: a crash recovery, forwarded
split, or partition-delayed insert that mutates records without
dropping the cached blob.  These tests drive the standard episode
runner (crash + partition schedules) and pin two facts:

1. Episodes with batched scans enabled pass the full oracle battery
   — including the fault-free-twin search comparison — and the
   haystack cache demonstrably *worked* (builds, hits, and
   fault-driven invalidations all nonzero).
2. A batched episode is **byte-identical** to the same seeded episode
   with the escape hatch thrown (``fast_path=False``): same schedule,
   same counters, same violations (none).  The fast path changes
   nothing observable, even mid-crash.
"""

from dataclasses import replace

import pytest

from repro.chaos.nemesis import NemesisProfile
from repro.chaos.runner import EpisodeConfig, run_episode
from repro.obs.metrics import MetricsRegistry, use_metrics

#: Crash + partition only: the two fault classes that rebuild or
#: reroute bucket contents behind the scan path's back.
CRASHY_PROFILE = NemesisProfile(
    loss_rate=0.0, loss_windows=0,
    duplication_rate=0.0, duplication_windows=0,
    corruption_rate=0.0, corruption_windows=0,
    latency_extra=0.0, latency_windows=0,
    partition_windows=2,
    crash_windows=2,
    window=1.5, horizon=12.0,
)

CRASHY = EpisodeConfig(records=10, ops=24, profile=CRASHY_PROFILE)


class TestBatchedScansSurviveChaos:
    @pytest.mark.parametrize("seed", [0, 3])
    def test_oracles_hold_and_haystacks_exercised(self, seed):
        registry = MetricsRegistry()
        with use_metrics(registry):
            report = run_episode(seed, config=CRASHY)
        assert report.ok, [v.to_dict() for v in report.violations]
        assert report.nemesis["applied"] > 0
        # The episode actually went through the batched path, and the
        # chaos actually forced cache rebuilds.
        assert registry.counter("lh.haystack.build").value > 0
        assert registry.counter("lh.haystack.hit").value > 0
        assert registry.counter("lh.haystack.invalidate").value > 0

    def test_batched_episode_identical_to_scalar(self):
        """The escape hatch is a pure no-op under chaos: same seeded
        crash/partition schedule, same message counts, same answers."""
        batched = run_episode(1, config=CRASHY)
        scalar = run_episode(
            1, config=replace(CRASHY, fast_path=False)
        )
        assert batched.ok and scalar.ok
        a = batched.episode_dict()
        b = scalar.episode_dict()
        assert a.pop("config")["fast_path"] is True
        assert b.pop("config")["fast_path"] is False
        assert a == b
