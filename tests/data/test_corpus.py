"""Record formatting per the paper's Figure 4."""

import pytest

from repro.data.corpus import (
    NAME_FIELD_WIDTH,
    format_record,
    last_name_of,
    parse_record,
    phone_to_rid,
)


class TestFormat:
    def test_figure4_shape(self):
        text = format_record("ADRIAN CORTEZ", "415-409-0271")
        assert text.startswith("ADRIAN CORTEZ%")
        assert text.endswith("415-409-0271$$")
        assert len(text) == NAME_FIELD_WIDTH + 12 + 2

    def test_full_width_name(self):
        name = "X" * NAME_FIELD_WIDTH
        text = format_record(name, "415-409-0000")
        assert "%" not in text

    def test_overlong_name_rejected(self):
        with pytest.raises(ValueError):
            format_record("X" * (NAME_FIELD_WIDTH + 1), "415-409-0000")


class TestParse:
    def test_roundtrip(self):
        text = format_record("AFDAHL E", "415-409-0817")
        assert parse_record(text) == ("AFDAHL E", "415-409-0817")

    def test_roundtrip_with_ampersand(self):
        name = "ABOGADO ALEJANDRO & CATH"
        text = format_record(name, "415-409-1111")
        assert parse_record(text) == (name, "415-409-1111")

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_record("not a record")


class TestHelpers:
    def test_last_name(self):
        assert last_name_of("AKIMOTO YOSHIMI") == "AKIMOTO"
        assert last_name_of("YU") == "YU"

    def test_phone_to_rid(self):
        assert phone_to_rid("415-409-0019") == 4154090019

    def test_phone_to_rid_rejects_letters(self):
        with pytest.raises(ValueError):
            phone_to_rid("415-409-ABCD")
