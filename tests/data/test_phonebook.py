"""The synthetic directory generator and its paper-shape calibration."""

from collections import Counter

import pytest

from repro.analysis.ngrams import ngram_counts
from repro.data.corpus import NAME_FIELD_WIDTH
from repro.data.phonebook import generate_directory


class TestGeneration:
    def test_deterministic(self):
        a = generate_directory(500, seed=1)
        b = generate_directory(500, seed=1)
        assert [e.name for e in a] == [e.name for e in b]

    def test_seed_sensitivity(self):
        a = generate_directory(500, seed=1)
        b = generate_directory(500, seed=2)
        assert [e.name for e in a] != [e.name for e in b]

    def test_size(self):
        assert len(generate_directory(123)) == 123

    def test_rids_unique(self):
        directory = generate_directory(25_000)
        rids = [e.rid for e in directory]
        assert len(set(rids)) == len(rids)

    def test_names_fit_field(self):
        directory = generate_directory(3000)
        assert all(len(e.name) <= NAME_FIELD_WIDTH for e in directory)

    def test_record_text_shape(self):
        entry = generate_directory(1).entries[0]
        assert entry.record_text.endswith("$$")
        assert entry.phone in entry.record_text

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            generate_directory(0)

    def test_phone_wraps_to_new_exchange(self):
        directory = generate_directory(10_001)
        assert directory.entries[10_000].phone.startswith("415-410-")


class TestDirectoryApi:
    def test_sample_deterministic(self, directory):
        a = directory.sample(50, seed=3)
        b = directory.sample(50, seed=3)
        assert [e.rid for e in a] == [e.rid for e in b]

    def test_sample_too_large(self, directory):
        with pytest.raises(ValueError):
            directory.sample(len(directory) + 1)

    def test_records(self, directory):
        records = directory.sample(10, seed=1).records()
        assert len(records) == 10
        assert all(r.content.endswith(b"$$\x00") for r in records)

    def test_last_names(self, directory):
        names = directory.last_names()
        assert all(" " not in n for n in names)


class TestCalibration:
    """The paper-shape guarantees the benches rely on (DESIGN.md)."""

    @pytest.fixture(scope="class")
    def letters(self):
        directory = generate_directory(30_000, seed=2006)
        counts = ngram_counts([e.name for e in directory], 1)
        return Counter({k: v for k, v in counts.items() if k.isalpha()})

    def test_top_letters_match_paper_set(self, letters):
        top6 = {gram for gram, __ in letters.most_common(6)}
        assert top6 == {"A", "E", "N", "R", "I", "O"}

    def test_a_is_most_frequent(self, letters):
        assert letters.most_common(1)[0][0] == "A"

    def test_digram_shape(self):
        directory = generate_directory(30_000, seed=2006)
        counts = ngram_counts([e.name for e in directory], 2)
        alpha = Counter({k: v for k, v in counts.items() if k.isalpha()})
        top5 = {gram for gram, __ in alpha.most_common(5)}
        # Paper's top digrams: AN, ER, AR, ON, IN — require the core 4.
        assert {"AN", "ER", "AR", "ON"} <= top5 | {
            gram for gram, __ in alpha.most_common(8)
        }

    def test_trigram_shape(self):
        directory = generate_directory(30_000, seed=2006)
        counts = ngram_counts([e.name for e in directory], 3)
        alpha = Counter({k: v for k, v in counts.items() if k.isalpha()})
        top8 = {gram for gram, __ in alpha.most_common(8)}
        # Paper's top trigrams: CHA, MAR, SON, ONG, ANG.
        assert {"MAR", "SON", "CHA", "ANG"} <= top8

    def test_short_asian_names_present(self):
        """The false-positive drivers the paper names must exist."""
        directory = generate_directory(30_000, seed=2006)
        surnames = Counter(directory.last_names())
        for name in ("YU", "WU", "LI", "LE", "OU", "IP", "BA",
                     "WOO", "KIM", "LEE", "LIM", "MAI", "MAK", "LEW"):
            assert surnames[name] > 0, f"missing short surname {name}"


class TestWarsawStyle:
    def test_style_validated(self):
        with pytest.raises(ValueError):
            generate_directory(10, style="paris")

    def test_deterministic(self):
        a = generate_directory(300, seed=3, style="warsaw")
        b = generate_directory(300, seed=3, style="warsaw")
        assert [e.name for e in a] == [e.name for e in b]

    def test_surnames_are_long(self):
        directory = generate_directory(5000, seed=2006, style="warsaw")
        surnames = directory.last_names()
        short = sum(1 for s in surnames if len(s) <= 3)
        # The counterfactual's whole point: almost no short surnames.
        assert short / len(surnames) < 0.03

    def test_distinct_from_sf(self):
        sf = generate_directory(300, seed=1, style="sf")
        warsaw = generate_directory(300, seed=1, style="warsaw")
        assert set(sf.last_names()) != set(warsaw.last_names())

    def test_mean_surname_length_higher(self):
        sf = generate_directory(5000, seed=2006, style="sf")
        warsaw = generate_directory(5000, seed=2006, style="warsaw")
        mean = lambda names: sum(map(len, names)) / len(names)
        assert mean(warsaw.last_names()) > mean(sf.last_names()) + 2
