"""Conjunctive search and key rotation."""

import pytest

from repro.core import (
    ConfigurationError,
    EncryptedSearchableStore,
    FrequencyEncoder,
    SchemeParameters,
)

RECORDS = {
    1: "SCHWARZ THOMAS SANTA CLARA",
    2: "LITWIN WITOLD PARIS DAUPHINE",
    3: "TSUI PETER SANTA CLARA",
    4: "SCHWARZ PETER MILANO",
}


def make_store(**kwargs):
    store = EncryptedSearchableStore(SchemeParameters.full(4), **kwargs)
    for rid, text in RECORDS.items():
        store.put(rid, text)
    return store


class TestConjunctiveSearch:
    def test_intersection_semantics(self):
        store = make_store()
        result = store.search_all(["SCHWARZ", "PETER"])
        assert result.matches == frozenset({4})

    def test_three_way(self):
        store = make_store()
        result = store.search_all(["SANTA", "CLARA", "PETER"])
        assert result.matches == frozenset({3})

    def test_single_pattern_equals_search(self):
        store = make_store()
        assert (
            store.search_all(["SCHWARZ"]).matches
            == store.search("SCHWARZ").matches
        )

    def test_disjoint_patterns(self):
        store = make_store()
        assert store.search_all(["LITWIN", "SCHWARZ"]).matches == \
            frozenset()

    def test_one_round_cost(self):
        """All patterns in one scan: cheaper than sequential rounds."""
        store = make_store()
        combined = store.search_all(["SANTA", "CLARA"],
                                    verify=False).cost.messages
        separate = (
            store.search("SANTA", verify=False).cost.messages
            + store.search("CLARA", verify=False).cost.messages
        )
        assert combined < separate

    def test_empty_pattern_list(self):
        store = make_store()
        with pytest.raises(ConfigurationError):
            store.search_all([])

    def test_pattern_label(self):
        store = make_store()
        result = store.search_all(["SANTA", "CLARA"])
        assert result.pattern == "SANTA AND CLARA"


class TestRekey:
    def test_search_works_after_rotation(self):
        store = make_store()
        store.rekey(b"rotated-master-key")
        for rid, text in RECORDS.items():
            name = text.split(" ")[0]
            assert rid in store.search(name).matches
            assert store.get(rid) == text

    def test_ciphertexts_actually_change(self):
        store = make_store()
        old = {
            r.rid: r.content for r in store.record_file.all_records()
        }
        old_index = {
            r.rid: r.content for r in store.index_file.all_records()
        }
        store.rekey(b"rotated-master-key")
        new = {
            r.rid: r.content for r in store.record_file.all_records()
        }
        new_index = {
            r.rid: r.content for r in store.index_file.all_records()
        }
        assert all(old[rid] != new[rid] for rid in old)
        changed = sum(
            1 for rid in old_index if old_index[rid] != new_index[rid]
        )
        assert changed == len(old_index)

    def test_rekey_with_encoder(self):
        params = SchemeParameters.full(4, n_codes=32)
        texts = [t.encode() for t in RECORDS.values()]
        store = EncryptedSearchableStore(
            params, encoder=FrequencyEncoder.train(texts, 4, 32)
        )
        for rid, text in RECORDS.items():
            store.put(rid, text)
        store.rekey(b"second-key")
        assert 1 in store.search("SCHWARZ").matches

    def test_empty_key_rejected(self):
        store = make_store()
        with pytest.raises(ConfigurationError):
            store.rekey(b"")

    def test_rekey_isolates_old_key(self):
        """After rotation a pipeline keyed with the old master no
        longer matches the stored index streams."""
        store = make_store()
        from repro.core.index import IndexPipeline
        old_pipeline = IndexPipeline(SchemeParameters.full(4))
        store.rekey(b"rotated")
        plan = old_pipeline.plan_query(b"SCHWARZ ")
        hit = False
        for record in store.index_file.all_records():
            rid, group, site = store.decode_index_key(record.rid)
            if plan.match_site(group, site, record.content):
                hit = True
        assert not hit
