"""Searchable pair compression (the [M97] direction of §8)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compression import PairCompressor
from repro.core.errors import ConfigurationError


@pytest.fixture(scope="module")
def compressor(name_corpus):
    return PairCompressor.train(name_corpus[:800], max_pairs=48)


@pytest.fixture(scope="module")
def lossy_compressor(name_corpus):
    return PairCompressor.train(
        name_corpus[:800], max_pairs=48, lossy_codes=32
    )


class TestTraining:
    def test_empty_corpus(self):
        with pytest.raises(ConfigurationError):
            PairCompressor.train([])

    def test_partition_is_disjoint(self, compressor):
        assert not (compressor.left & compressor.right)

    def test_pairs_respect_partition(self, compressor):
        for a, b in compressor.pair_codes:
            assert a in compressor.left
            assert b in compressor.right

    def test_compresses_the_corpus(self, compressor, name_corpus):
        ratio = compressor.compression_ratio(name_corpus[:800])
        assert ratio < 0.95

    def test_describe(self, compressor):
        assert "pairs" in compressor.describe()


class TestEncoding:
    def test_deterministic(self, compressor):
        assert compressor.encode(b"SCHWARZ") == compressor.encode(
            b"SCHWARZ"
        )

    def test_unseen_symbols_encodable(self, compressor):
        assert compressor.encode(b"\x01\x02\x03")  # no crash

    def test_local_segmentation(self, compressor):
        """The invariant search relies on: appending a suffix never
        changes how the earlier pairs were segmented, except possibly
        at the single boundary code."""
        a = compressor.encode(b"SCHWARZ")
        b = compressor.encode(b"SCHWARZ THOMAS")
        assert b[:len(a) - 1] == a[:len(a) - 1]


class TestSearch:
    def test_finds_stored_pattern(self, compressor):
        record = compressor.encode(b"ARBELAEZ LIBIA MARIA")
        assert compressor.search(record, b"LIBIA")

    def test_no_false_negative_on_edges(self, compressor):
        record = compressor.encode(b"XANDER MARTINEZ")
        for pattern in (b"ANDER", b"MARTINE", b"ARTINEZ", b"NDER M"):
            assert compressor.search(record, pattern), pattern

    def test_rejects_most_absent_patterns(self, compressor):
        record = compressor.encode(b"ARBELAEZ LIBIA")
        assert not compressor.search(record, b"ZZZZZZZZ")

    def test_variants_bounded(self, compressor):
        assert len(compressor.pattern_variants(b"MARTINEZ")) <= 4

    def test_empty_pattern_rejected(self, compressor):
        with pytest.raises(ConfigurationError):
            compressor.pattern_variants(b"")

    def test_lossy_mode_keeps_recall(self, lossy_compressor,
                                     name_corpus):
        for text in name_corpus[:50]:
            record = lossy_compressor.encode(text)
            pattern = text[2:9]
            if len(pattern) >= 4:
                assert lossy_compressor.search(record, pattern)

    def test_lossy_mode_compresses_alphabet(self, lossy_compressor):
        stream = lossy_compressor.encode(b"SCHWARZ THOMAS")
        assert all(b < 32 for b in stream)

    def test_wide_code_space_two_byte_path(self):
        """Over 256 codes the stream packs 2 bytes/code and search
        must switch to aligned matching."""
        # A synthetic corpus engineered for many mergeable pairs:
        # left symbols 0..15, right symbols 128..143 -> 256 candidate
        # pairs, plus 32 singles = code space > 256.
        corpus = [
            bytes([a, 128 + b]) * 4
            for a in range(16)
            for b in range(16)
        ]
        compressor = PairCompressor.train(
            corpus, max_pairs=250, min_pair_count=2
        )
        assert compressor._output_space() > 256
        assert compressor.code_width == 2
        text = corpus[37]
        stream = compressor.encode(text)
        assert len(stream) % 2 == 0
        assert compressor.search(stream, text[2:6])
        assert not compressor.search(stream, bytes([7, 200, 9, 201]))


@settings(max_examples=30)
@given(st.data())
def test_property_100_percent_recall(name_corpus, data):
    """Any substring of an encoded record is always found."""
    compressor = PairCompressor.train(name_corpus[:300], max_pairs=40)
    text = data.draw(st.sampled_from(name_corpus[:300]))
    if len(text) < 5:
        return
    start = data.draw(st.integers(0, len(text) - 4))
    length = data.draw(st.integers(3, len(text) - start))
    pattern = text[start:start + length]
    record = compressor.encode(text)
    assert compressor.search(record, pattern)


@settings(max_examples=20)
@given(st.data())
def test_property_recall_across_records(name_corpus, data):
    """A pattern from record A is found in every record containing it."""
    corpus = name_corpus[:200]
    compressor = PairCompressor.train(corpus, max_pairs=40)
    text = data.draw(st.sampled_from(corpus))
    if len(text) < 6:
        return
    pattern = text[:5]
    for other in corpus[:60]:
        if pattern in other:
            assert compressor.search(compressor.encode(other), pattern)
