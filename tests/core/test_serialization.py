"""Round-trips of persisted scheme artifacts."""

import pytest

from repro.core import FrequencyEncoder, SchemeParameters
from repro.core.compression import PairCompressor
from repro.core.errors import ConfigurationError
from repro.core.serialization import (
    compressor_from_json,
    compressor_to_json,
    encoder_from_json,
    encoder_to_json,
    params_from_dict,
    params_to_dict,
)


class TestParams:
    @pytest.mark.parametrize(
        "params",
        [
            SchemeParameters.full(4),
            SchemeParameters.full(4, n_codes=64, dispersal=2),
            SchemeParameters.reduced(8, 4, drop_partial_chunks=True),
            SchemeParameters.full(2, encrypt=False,
                                  master_key=b"\x00\xffbinary"),
        ],
    )
    def test_roundtrip(self, params):
        assert params_from_dict(params_to_dict(params)) == params

    def test_bad_version(self):
        data = params_to_dict(SchemeParameters.full(4))
        data["version"] = 99
        with pytest.raises(ConfigurationError):
            params_from_dict(data)

    def test_dict_is_json_compatible(self):
        import json
        text = json.dumps(params_to_dict(SchemeParameters.full(4)))
        assert params_from_dict(json.loads(text)) == \
            SchemeParameters.full(4)


class TestEncoder:
    def test_roundtrip_behaviour(self, name_corpus):
        encoder = FrequencyEncoder.train(name_corpus[:300], 2, 16)
        restored = encoder_from_json(encoder_to_json(encoder))
        assert restored.chunk_size == encoder.chunk_size
        assert restored.n_codes == encoder.n_codes
        for text in name_corpus[:50]:
            assert (
                restored.encode_nonoverlapping(text, 0)
                == encoder.encode_nonoverlapping(text, 0)
            )

    def test_unseen_chunk_fallback_survives(self, name_corpus):
        encoder = FrequencyEncoder.train(name_corpus[:300], 2, 16)
        restored = encoder_from_json(encoder_to_json(encoder))
        assert restored.encode_chunk(b"\x01\x02") == \
            encoder.encode_chunk(b"\x01\x02")

    def test_training_counts_preserved(self, name_corpus):
        encoder = FrequencyEncoder.train(name_corpus[:300], 1, 8)
        restored = encoder_from_json(encoder_to_json(encoder))
        assert restored.bucket_loads() == encoder.bucket_loads()

    def test_binary_chunks_survive(self):
        encoder = FrequencyEncoder.train(
            [bytes([0, 255, 0, 255, 7, 9])], 2, 2
        )
        restored = encoder_from_json(encoder_to_json(encoder))
        assert restored.assignment == encoder.assignment


class TestPropertyRoundTrips:
    from hypothesis import given
    from hypothesis import strategies as st

    @given(
        st.sampled_from([2, 4, 8]),
        st.sampled_from([None, 16, 64, 256]),
        st.booleans(),
        st.booleans(),
        st.sampled_from(["auto", "any"]),
        st.binary(min_size=1, max_size=32),
    )
    def test_random_params_roundtrip(self, s, n_codes, encrypt,
                                     drop, aggregation, key):
        from repro.core.errors import ConfigurationError

        try:
            params = SchemeParameters.full(
                s, n_codes=n_codes, encrypt=encrypt,
                drop_partial_chunks=drop, aggregation=aggregation,
                master_key=key,
            )
        except ConfigurationError:
            return  # invalid combination; nothing to round-trip
        assert params_from_dict(params_to_dict(params)) == params


class TestCompressor:
    def test_roundtrip_behaviour(self, name_corpus):
        compressor = PairCompressor.train(name_corpus[:300],
                                          max_pairs=32)
        restored = compressor_from_json(compressor_to_json(compressor))
        for text in name_corpus[:50]:
            assert restored.encode(text) == compressor.encode(text)
            if len(text) >= 6:
                assert restored.pattern_variants(text[1:6]) == \
                    compressor.pattern_variants(text[1:6])

    def test_lossy_map_roundtrip(self, name_corpus):
        compressor = PairCompressor.train(
            name_corpus[:300], max_pairs=32, lossy_codes=16
        )
        restored = compressor_from_json(compressor_to_json(compressor))
        assert restored.lossy_map == compressor.lossy_map
        for text in name_corpus[:30]:
            assert restored.encode(text) == compressor.encode(text)
