"""Stage-3 dispersion."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.dispersion import Disperser
from repro.core.errors import ConfigurationError
from repro.gf import GF2, Matrix, identity_matrix


class TestConstruction:
    def test_defaults_to_cauchy(self):
        # GF(2^4) hosts a 2x2 Cauchy matrix: all-nonzero, invertible.
        d = Disperser(k=2, piece_bits=4)
        assert d.matrix.all_nonzero()
        assert d.matrix.is_invertible()

    def test_small_field_default_still_invertible(self):
        # The paper's Table-2 geometry (k=4 over GF(2^2)) cannot host
        # a Cauchy matrix (needs 2k=8 distinct points, field has 4);
        # the fallback random non-singular matrix may contain zeros.
        d = Disperser(k=4, piece_bits=2)
        assert d.matrix.is_invertible()

    def test_seeded_random_matrix(self):
        a = Disperser(k=4, piece_bits=2, seed=1)
        b = Disperser(k=4, piece_bits=2, seed=1)
        assert a.matrix == b.matrix
        c = Disperser(k=4, piece_bits=2, seed=2)
        assert a.matrix != c.matrix

    def test_explicit_matrix(self):
        field = GF2(4)
        m = identity_matrix(field, 2)
        d = Disperser(k=2, piece_bits=4, matrix=m)
        assert d.disperse(0xAB) == (0xA, 0xB)

    def test_singular_matrix_rejected(self):
        field = GF2(4)
        singular = Matrix(field, [[1, 1], [1, 1]])
        with pytest.raises(ConfigurationError):
            Disperser(k=2, piece_bits=4, matrix=singular)

    def test_wrong_shape_rejected(self):
        field = GF2(4)
        with pytest.raises(ConfigurationError):
            Disperser(k=3, piece_bits=4, matrix=identity_matrix(field, 2))

    def test_wrong_field_rejected(self):
        with pytest.raises(ConfigurationError):
            Disperser(k=2, piece_bits=4,
                      matrix=identity_matrix(GF2(8), 2))

    def test_k_too_small(self):
        with pytest.raises(ConfigurationError):
            Disperser(k=1, piece_bits=4)

    def test_small_field_fallback(self):
        """GF(2) cannot host a 4x4 Cauchy matrix; fallback must work."""
        d = Disperser(k=4, piece_bits=1)
        assert d.matrix.is_invertible()


class TestSplitJoin:
    def test_split_big_endian(self):
        d = Disperser(k=4, piece_bits=2)
        assert d.split(0b11_10_01_00) == (3, 2, 1, 0)

    def test_join_inverts_split(self):
        d = Disperser(k=4, piece_bits=2)
        for value in range(256):
            assert d.join(d.split(value)) == value

    def test_split_range_check(self):
        d = Disperser(k=2, piece_bits=2)
        with pytest.raises(ValueError):
            d.split(16)

    def test_join_length_check(self):
        d = Disperser(k=2, piece_bits=2)
        with pytest.raises(ValueError):
            d.join((1,))


class TestDispersion:
    def test_roundtrip_exhaustive(self):
        d = Disperser(k=4, piece_bits=2, seed=3)
        for value in range(256):
            assert d.recover(d.disperse(value)) == value

    def test_equality_preserved(self):
        """Equal chunks disperse to equal piece vectors (searchability),
        distinct chunks to distinct vectors (invertibility)."""
        d = Disperser(k=2, piece_bits=4)
        images = {d.disperse(v) for v in range(256)}
        assert len(images) == 256

    def test_every_piece_depends_on_whole_chunk(self):
        """The paper's design point: 'a dispersed symbol d_i is
        calculated from the whole chunk and not just a piece'."""
        d = Disperser(k=2, piece_bits=4)  # Cauchy: all nonzero coeffs
        # Vary only the low piece; the first output must change too.
        a = d.disperse(0x00)
        b = d.disperse(0x01)
        assert a[0] != b[0]

    def test_stream_dispersal_shapes(self):
        d = Disperser(k=4, piece_bits=2)
        streams = d.disperse_stream(list(range(10)))
        assert len(streams) == 4
        assert all(len(s) == 10 for s in streams)

    def test_stream_consistency_with_single(self):
        d = Disperser(k=4, piece_bits=2, seed=9)
        values = [7, 7, 200, 0]
        streams = d.disperse_stream(values)
        for i, value in enumerate(values):
            assert tuple(s[i] for s in streams) == d.disperse(value)

    def test_pack_stream_widths(self):
        d8 = Disperser(k=2, piece_bits=8)
        assert d8.piece_width == 1
        assert len(d8.pack_stream([1, 2, 3])) == 3
        d12 = Disperser(k=2, piece_bits=12)
        assert d12.piece_width == 2
        assert len(d12.pack_stream([1, 2, 3])) == 6

    def test_recover_length_check(self):
        d = Disperser(k=2, piece_bits=2)
        with pytest.raises(ValueError):
            d.recover((1,))


@given(
    st.sampled_from([(2, 2), (2, 8), (4, 2), (4, 4), (3, 4), (8, 2)]),
    st.integers(0, 2 ** 31),
    st.data(),
)
def test_property_roundtrip(geometry, seed, data):
    k, piece_bits = geometry
    d = Disperser(k=k, piece_bits=piece_bits, seed=seed % 100)
    value = data.draw(st.integers(0, (1 << d.chunk_bits) - 1))
    pieces = d.disperse(value)
    assert len(pieces) == k
    assert all(0 <= p < (1 << piece_bits) for p in pieces)
    assert d.recover(pieces) == value


class TestRangeValidation:
    """Regression: with a built lookup table, an out-of-range value
    must still raise — Python's negative indexing would otherwise
    silently return the dispersal of ``domain + value``."""

    def test_negative_value_rejected_with_table(self):
        d = Disperser(k=2, piece_bits=4)
        assert d.dispersal_table() is not None
        with pytest.raises(ValueError):
            d.disperse(-1)

    def test_overflow_value_rejected_with_table(self):
        d = Disperser(k=2, piece_bits=4)
        d.dispersal_table()
        with pytest.raises(ValueError):
            d.disperse(1 << d.chunk_bits)

    def test_negative_value_rejected_without_table(self):
        d = Disperser(k=2, piece_bits=12)  # 24-bit domain: no table
        assert d.dispersal_table() is None
        with pytest.raises(ValueError):
            d.disperse(-1)

    def test_disperse_stream_rejects_out_of_range(self):
        d = Disperser(k=2, piece_bits=4)
        with pytest.raises(ValueError):
            d.disperse_stream([3, -1, 7])
        with pytest.raises(ValueError):
            d.disperse_stream([3, 1 << d.chunk_bits])

    def test_disperse_stream_matches_disperse(self):
        d = Disperser(k=4, piece_bits=4, seed=9)
        values = list(range(0, 1 << d.chunk_bits, 257))
        streams = d.disperse_stream(values)
        for i, value in enumerate(values):
            assert tuple(s[i] for s in streams) == d.disperse(value)
