"""End-to-end crash demo: the encrypted store under bucket failures.

A seeded :class:`~repro.net.CrashFaultModel` kills data buckets (at
most ``k`` per parity group, enforced by ``crash_gate``) while a
workload of puts, gets and substring searches runs.  The scheme must
answer every query exactly as a fault-free twin does, recover lost
buckets online through messages, and account every recovery byte.
"""

import pytest

from repro.core import EncryptedSearchableStore, SchemeParameters
from repro.net import CrashFaultModel, Network, RetryPolicy
from repro.obs import Tracer, use_tracer

FAST = RetryPolicy(timeout=0.05, backoff=2.0, max_retries=3)

CORPUS = {
    1: "SCHWARZ THOMAS",
    2: "LITWIN WITOLD",
    3: "TSUI PETER",
    4: "ABOGADO ALEJANDRO",
    5: "MOUSSA RIM",
    6: "NEIMAT MARIE ANNE",
    7: "SCHNEIDER DONOVAN",
    8: "ANDERSON MARGARET",
    9: "ARMSTRONG STEPHEN",
    10: "SCHOLTEN HENDRIK",
    11: "PETERSEN INGRID",
    12: "WHITACRE ERIC",
    13: "LINDGREN ASTRID",
    14: "ARCHER ELIZABETH",
    15: "THOMPSON SCHOLAR",
    16: "WINTERBOTTOM ANNE",
}

PATTERNS = ["SCHW", "ARCH", "PETER", "ANNE", "WITO"]


def build_store(network=None):
    return EncryptedSearchableStore(
        SchemeParameters.full(4),
        network=network,
        bucket_capacity=4,
        high_availability=True,
        retry_policy=FAST,
        group_size=4,
        parity_count=2,
    )


def fault_free_expectations():
    baseline = build_store()
    for rid, text in CORPUS.items():
        baseline.put(rid, text)
    gets = {rid: baseline.get(rid) for rid in CORPUS}
    searches = {p: baseline.search(p).matches for p in PATTERNS}
    return gets, searches


class TestCrashWorkload:
    def test_matches_fault_free_run(self):
        expected_gets, expected_searches = fault_free_expectations()

        crashes = CrashFaultModel(seed=7, mttf=0.3, mttr=0.15,
                                  horizon=300.0)
        net = Network(crashes=crashes)
        store = build_store(network=net)
        rids = sorted(CORPUS)
        for rid in rids[:6]:
            store.put(rid, CORPUS[rid])
        # Arm the schedule once both files exist: the gate keeps every
        # group within its parity budget, so no crash is fatal.
        gates = (store.record_file.crash_gate(),
                 store.index_file.crash_gate())
        crashes.gate = lambda node_id: any(g(node_id) for g in gates)
        targets = [store.record_file.bucket_id(a) for a in range(16)]
        targets += [store.index_file.bucket_id(a) for a in range(16)]
        crashes.plan(targets)
        for rid in rids[6:]:
            store.put(rid, CORPUS[rid])
        got = {rid: store.get(rid) for rid in CORPUS}
        found = {p: store.search(p).matches for p in PATTERNS}
        assert got == expected_gets
        assert found == expected_searches
        # The run really was faulty, and every drop was accounted.
        assert crashes.crashes > 0
        assert net.stats.crashed_drops > 0

    def test_search_survives_index_bucket_crash(self):
        store = build_store()
        for rid, text in CORPUS.items():
            store.put(rid, text)
        expected = {p: store.search(p).matches for p in PATTERNS}
        victim = next(
            a for a, b in store.index_file.buckets.items()
            if not b.retired and b.records
        )
        store.network.crash(store.index_file.bucket_id(victim))
        assert {p: store.search(p).matches for p in PATTERNS} == expected
        assert store.index_file.verify_recovery([victim])

    def test_recovery_traced_and_billed(self):
        store = build_store()
        for rid, text in CORPUS.items():
            store.put(rid, text)
        record_file = store.record_file
        victim, bucket = next(
            (a, b) for a, b in record_file.buckets.items()
            if not b.retired and b.records
        )
        rid = next(iter(bucket.records))
        tracer = Tracer(network=store.network)
        before = store.network.stats.snapshot()
        with use_tracer(tracer):
            store.network.crash(record_file.bucket_id(victim))
            assert store.get(rid) == CORPUS[rid]
        delta = store.network.stats.diff(before)
        # Reconstruction ran online and through the wire.
        for kind in ("recover", "group_fetch", "recover_install",
                     "recover_done"):
            assert delta.by_kind.get(kind, 0) > 0, kind
        spans = [s for s in tracer.finished if s.name == "lh.recover"]
        assert len(spans) == 1
        span = spans[0]
        assert span.attrs["bucket"] == victim
        assert span.stats.bytes > 0
        assert span.stats.by_kind.get("group_fetch", 0) > 0
        # The spare now holds the records and parity still checks out.
        assert victim not in record_file.coordinator.dead
        assert record_file.verify_recovery([victim])
