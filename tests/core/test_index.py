"""The index pipeline: stage composition, keys and query planning."""

import pytest

from repro.core.config import SchemeParameters
from repro.core.encoder import FrequencyEncoder
from repro.core.errors import ConfigurationError, QueryTooShortError
from repro.core.index import IndexPipeline

CORPUS = [b"SCHWARZ THOMAS", b"LITWIN WITOLD", b"TSUI PETER",
          b"ABOGADO ALEJANDRO"]


def encoder_for(params):
    return FrequencyEncoder.train(CORPUS, params.chunk_size, params.n_codes)


class TestConstruction:
    def test_encoder_presence_must_match_config(self):
        with pytest.raises(ConfigurationError):
            IndexPipeline(SchemeParameters.full(4, n_codes=8))
        with pytest.raises(ConfigurationError):
            IndexPipeline(
                SchemeParameters.full(4),
                FrequencyEncoder.train(CORPUS, 4, 8),
            )

    def test_encoder_geometry_must_match(self):
        params = SchemeParameters.full(4, n_codes=8)
        with pytest.raises(ConfigurationError):
            IndexPipeline(params, FrequencyEncoder.train(CORPUS, 2, 8))
        with pytest.raises(ConfigurationError):
            IndexPipeline(params, FrequencyEncoder.train(CORPUS, 4, 16))


class TestIndexStreams:
    def test_one_stream_per_group_and_site(self):
        params = SchemeParameters.full(4, n_codes=64, dispersal=2)
        pipeline = IndexPipeline(params, encoder_for(params))
        streams = pipeline.build_index_streams(b"SCHWARZ THOMAS\x00")
        assert set(streams) == {
            (g, s) for g in range(4) for s in range(2)
        }

    def test_stream_lengths_match_chunk_counts(self):
        params = SchemeParameters.full(4)
        pipeline = IndexPipeline(params)
        streams = pipeline.build_index_streams(b"A" * 8)
        # offset 0: 2 chunks x 4 bytes; offset 1: 3 chunks x 4 bytes.
        assert len(streams[(0, 0)]) == 8
        assert len(streams[(1, 0)]) == 12

    def test_ecb_determinism_within_chunking(self):
        """Equal chunks produce equal stored values (searchability)."""
        params = SchemeParameters.full(4)
        pipeline = IndexPipeline(params)
        streams = pipeline.build_index_streams(b"ABCDABCD")
        stream = streams[(0, 0)]
        assert stream[:4] == stream[4:8]

    def test_chunkings_use_independent_keys(self):
        """The same chunk value encrypts differently per chunking."""
        params = SchemeParameters.full(4)
        pipeline = IndexPipeline(params)
        v = pipeline.chunk_value(b"ABCD")
        assert (
            pipeline._prps[0].encrypt(v) != pipeline._prps[1].encrypt(v)
        )

    def test_plain_mode_stores_raw_values(self):
        params = SchemeParameters.full(4, encrypt=False)
        pipeline = IndexPipeline(params)
        streams = pipeline.build_index_streams(b"ABCD")
        assert streams[(0, 0)] == b"ABCD"

    def test_drop_partial_shrinks_streams(self):
        keep = IndexPipeline(SchemeParameters.full(4))
        drop = IndexPipeline(
            SchemeParameters.full(4, drop_partial_chunks=True)
        )
        content = b"ABCDEFG"  # 7 symbols: offset-1 has 2 partials
        kept = keep.build_index_streams(content)[(1, 0)]
        dropped = drop.build_index_streams(content)[(1, 0)]
        assert len(dropped) < len(kept)

    def test_stage2_compresses(self):
        params = SchemeParameters.full(4, n_codes=64)
        pipeline = IndexPipeline(params, encoder_for(params))
        raw = IndexPipeline(SchemeParameters.full(4))
        content = b"SCHWARZ THOMAS\x00"
        assert (
            len(pipeline.build_index_streams(content)[(0, 0)])
            < len(raw.build_index_streams(content)[(0, 0)])
        )


class TestQueryPlans:
    def test_plan_shape_full_layout(self):
        params = SchemeParameters.full(4)
        pipeline = IndexPipeline(params)
        plan = pipeline.plan_query(b"SCHWARZ")
        assert plan.group_count == 4
        assert plan.alignments == (0, 1, 2, 3)
        assert plan.sites == 1
        assert set(plan.needles) == {
            (g, a) for g in range(4) for a in range(4)
        }

    def test_short_pattern_drops_alignments(self):
        params = SchemeParameters.full(4)
        pipeline = IndexPipeline(params)
        plan = pipeline.plan_query(b"ABCD")
        assert plan.alignments == (0,)
        assert plan.required_groups == 1

    def test_too_short_pattern_rejected(self):
        params = SchemeParameters.reduced(8, 4)
        pipeline = IndexPipeline(params)
        with pytest.raises(QueryTooShortError):
            pipeline.plan_query(b"EIGHTCHA"[:8])

    def test_required_groups_scales_with_alignments(self):
        params = SchemeParameters.full(4)
        pipeline = IndexPipeline(params)
        assert pipeline.plan_query(b"ABCDEFG").required_groups == 4
        assert pipeline.plan_query(b"ABCDE").required_groups == 2

    def test_reduced_layout_required_one(self):
        params = SchemeParameters.reduced(8, 4)
        pipeline = IndexPipeline(params)
        plan = pipeline.plan_query(b"ALEJANDRO")
        assert plan.required_groups == 1
        assert plan.alignments == (0, 1)

    def test_needles_differ_across_groups(self):
        params = SchemeParameters.full(4)
        pipeline = IndexPipeline(params)
        plan = pipeline.plan_query(b"SCHWARZ ")
        assert plan.needles[(0, 0)] != plan.needles[(1, 0)]
