"""Stage-2 encoder: training, the Figure-5 rule, encoding semantics."""

from collections import Counter

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.encoder import (
    FrequencyEncoder,
    census_chunks,
    least_loaded_assignment,
)
from repro.core.errors import ConfigurationError

#: The paper's Figure 5: (symbol, quantity, assigned encoding).
FIGURE_5 = [
    (" ", 503, 0), ("A", 495, 1), ("E", 407, 2), ("N", 383, 3),
    ("R", 350, 4), ("I", 300, 5), ("O", 287, 6), ("L", 258, 7),
    ("S", 258, 7), ("T", 200, 6), ("H", 186, 5), ("M", 178, 4),
    ("C", 159, 3), ("D", 150, 2), ("U", 112, 5), ("G", 108, 6),
    ("Y", 97, 1), ("B", 87, 0), ("K", 74, 7), ("J", 72, 4),
    ("P", 71, 3), ("F", 59, 2), ("W", 49, 7), ("V", 45, 0),
    ("Z", 29, 1), ("&", 14, 6), ("X", 6, 5), ("Q", 5, 4),
    ("'", 1, 5), ("-", 1, 5),
]


class TestCensus:
    def test_nonoverlapping_offset_zero(self):
        # The paper's example: "LITWIN WITOLD" at n=4 ->
        # ("LITW", "IN W", "ITOL"), odd tail dropped.
        counts = census_chunks([b"LITWIN WITOLD"], 4)
        assert counts == Counter({b"LITW": 1, b"IN W": 1, b"ITOL": 1})

    def test_counts_accumulate_across_texts(self):
        counts = census_chunks([b"ABAB", b"AB"], 2)
        assert counts[b"AB"] == 3

    def test_short_text_contributes_nothing(self):
        assert census_chunks([b"A"], 2) == Counter()

    def test_invalid_chunk_size(self):
        with pytest.raises(ConfigurationError):
            census_chunks([b"AB"], 0)


class TestFigure5:
    def test_exact_reproduction(self):
        """The greedy rule reproduces the paper's Figure 5 exactly."""
        counts = Counter(
            {symbol.encode(): count for symbol, count, __ in FIGURE_5}
        )
        assignment = least_loaded_assignment(counts, 8)
        for symbol, __, code in FIGURE_5:
            assert assignment[symbol.encode()] == code, symbol

    def test_loads_balanced(self):
        counts = Counter(
            {symbol.encode(): count for symbol, count, __ in FIGURE_5}
        )
        assignment = least_loaded_assignment(counts, 8)
        loads = [0] * 8
        for symbol, count, __ in FIGURE_5:
            loads[assignment[symbol.encode()]] += count
        total = sum(loads)
        for load in loads:
            assert abs(load - total / 8) / (total / 8) < 0.06

    def test_too_few_codes(self):
        with pytest.raises(ConfigurationError):
            least_loaded_assignment(Counter({b"A": 1}), 1)


class TestTraining:
    def test_train_and_encode(self):
        enc = FrequencyEncoder.train([b"ABABAC"], 1, 2)
        # A (3 occurrences) gets its own bucket; all codes in range.
        assert enc.encode_chunk(b"A") in (0, 1)
        assert enc.encode_chunk(b"B") != enc.encode_chunk(b"A")

    def test_train_empty_corpus(self):
        with pytest.raises(ConfigurationError):
            FrequencyEncoder.train([], 2, 8)

    def test_lossiness(self):
        """More chunks than codes forces collisions — the FP source."""
        corpus = [bytes([c]) * 2 for c in range(65, 91)]
        enc = FrequencyEncoder.train(corpus, 1, 4)
        codes = {enc.encode_chunk(bytes([c])) for c in range(65, 91)}
        assert codes == {0, 1, 2, 3}

    def test_unseen_chunk_deterministic(self):
        enc = FrequencyEncoder.train([b"AAAA"], 2, 8)
        assert enc.encode_chunk(b"ZZ") == enc.encode_chunk(b"ZZ")
        assert 0 <= enc.encode_chunk(b"ZZ") < 8

    def test_wrong_chunk_size_input(self):
        enc = FrequencyEncoder.train([b"AAAA"], 2, 8)
        with pytest.raises(ValueError):
            enc.encode_chunk(b"AAA")

    def test_invalid_n_codes(self):
        with pytest.raises(ConfigurationError):
            FrequencyEncoder.train([b"AB"], 1, 1 << 17)

    def test_assignment_validation(self):
        with pytest.raises(ConfigurationError):
            FrequencyEncoder(1, 4, {b"AB": 0})  # wrong chunk length
        with pytest.raises(ConfigurationError):
            FrequencyEncoder(1, 4, {b"A": 4})  # code out of range


class TestEncodingForms:
    @pytest.fixture
    def enc(self, name_corpus):
        return FrequencyEncoder.train(name_corpus[:300], 1, 8)

    def test_encode_symbols_length_preserving(self, enc):
        stream = enc.encode_symbols(b"SCHWARZ")
        assert len(stream) == 7
        assert all(b < 8 for b in stream)

    def test_encode_symbols_needs_chunk_one(self, name_corpus):
        enc2 = FrequencyEncoder.train(name_corpus[:300], 2, 8)
        with pytest.raises(ConfigurationError):
            enc2.encode_symbols(b"AB")

    def test_nonoverlapping_offsets(self, name_corpus):
        enc2 = FrequencyEncoder.train(name_corpus[:300], 2, 16)
        s0 = enc2.encode_nonoverlapping(b"ABCDE", 0)
        s1 = enc2.encode_nonoverlapping(b"ABCDE", 1)
        assert len(s0) == 2  # AB, CD
        assert len(s1) == 2  # BC, DE

    def test_nonoverlapping_bad_offset(self, name_corpus):
        enc2 = FrequencyEncoder.train(name_corpus[:300], 2, 16)
        with pytest.raises(ConfigurationError):
            enc2.encode_nonoverlapping(b"ABCD", 2)

    def test_sliding_strides_recover_every_offset(self, name_corpus):
        """One sliding pass over the text contains every offset's
        non-overlapping values as a stride slice."""
        enc4 = FrequencyEncoder.train(name_corpus[:300], 4, 16)
        for text in (b"ARBELAEZ LIBIA MARIA", b"ABCDEFG", b"ABC", b""):
            sliding = enc4.encode_values_sliding(text)
            for offset in range(4):
                assert sliding[offset::4] == (
                    enc4.encode_values_nonoverlapping(text, offset)
                ), (text, offset)

    def test_sliding_counts_every_window(self, name_corpus):
        enc2 = FrequencyEncoder.train(name_corpus[:300], 2, 16)
        assert len(enc2.encode_values_sliding(b"ABCDE")) == 4
        assert enc2.encode_values_sliding(b"A") == []

    def test_sliding_step(self, name_corpus):
        enc2 = FrequencyEncoder.train(name_corpus[:300], 2, 16)
        assert enc2.encode_values_sliding(b"ABCDEF", step=2) == (
            enc2.encode_values_nonoverlapping(b"ABCDEF", 0)
        )
        with pytest.raises(ConfigurationError):
            enc2.encode_values_sliding(b"ABCD", step=0)

    def test_substring_search_compatibility(self, enc):
        """Encoded query occurs in encoded record wherever the raw
        query occurs in the raw record (100% recall at stage 2)."""
        record = b"ARBELAEZ LIBIA MARIA"
        query = b"LIBIA"
        assert enc.encode_symbols(query) in enc.encode_symbols(record)

    def test_wide_code_space_packs_two_bytes(self, name_corpus):
        enc = FrequencyEncoder.train(name_corpus[:300], 2, 1000)
        assert enc.code_width == 2
        stream = enc.encode_nonoverlapping(b"ABCD", 0)
        assert len(stream) == 4  # 2 chunks x 2 bytes

    def test_compression_ratio(self, name_corpus):
        enc = FrequencyEncoder.train(name_corpus[:300], 4, 16)
        assert enc.compression_ratio() == pytest.approx(4 / 32)

    def test_assignment_table_sorted(self, enc):
        table = enc.assignment_table()
        counts = [count for __, count, __ in table]
        assert counts == sorted(counts, reverse=True)

    def test_bucket_loads_sum_to_training_mass(self, enc):
        assert sum(enc.bucket_loads()) == sum(enc.training_counts.values())


@given(
    st.lists(st.binary(min_size=2, max_size=20), min_size=1, max_size=30),
    st.sampled_from([2, 4, 8, 16]),
)
def test_property_recall_preserved_by_encoding(texts, n_codes):
    """Equal raw chunks encode equal — searchability is never lost."""
    enc = FrequencyEncoder.train(texts, 1, n_codes)
    for text in texts:
        encoded = enc.encode_symbols(text)
        for i in range(len(text)):
            for j in range(i + 1, len(text) + 1):
                assert enc.encode_symbols(text[i:j]) == encoded[i:j]
