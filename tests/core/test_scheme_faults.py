"""The complete scheme over an unreliable network.

The acceptance bar for the robustness layer: with 5% message loss and
1% duplication, a full bulk_load -> search -> delete workload finishes
with 100% recall and an exact record count, with the injected faults
and the recovery retries visible in the network statistics.
"""

import pytest

from repro.core import EncryptedSearchableStore, SchemeParameters
from repro.net import Network, RetryPolicy, UnreliableNetwork

RECORDS = {
    rid: text
    for rid, text in enumerate(
        f"415-409-{rid:04d} {name}"
        for rid, name in enumerate(
            ["SCHWARZ THOMAS", "LITWIN WITOLD", "TSUI PETER",
             "ABOGADO ALEJANDRO", "ADAMSON MARK", "SCHWARZ ANNA",
             "BERGER HANS", "SCHWARTZ NOT QUITE"] * 4
        )
    )
}

FAST = RetryPolicy(timeout=0.05, backoff=2.0, max_retries=8)


def faulty_store(seed=42, loss=0.05, dup=0.01):
    network = UnreliableNetwork(
        seed=seed, loss_rate=loss, duplication_rate=dup
    )
    return EncryptedSearchableStore(
        SchemeParameters.full(4),
        network=network,
        bucket_capacity=16,
        retry_policy=FAST,
    )


class TestWorkloadUnderFaults:
    @pytest.fixture(scope="class")
    def loaded(self):
        store = faulty_store()
        store.bulk_load(RECORDS)
        return store

    def test_bulk_load_exact_counts(self, loaded):
        assert loaded.record_file.record_count == len(RECORDS)
        assert len(loaded) == len(RECORDS)

    def test_search_full_recall(self, loaded):
        expected = frozenset(
            rid for rid, text in RECORDS.items() if "SCHWARZ " in text
        )
        result = loaded.search("SCHWARZ ")
        assert result.matches == expected
        assert result.false_positives == frozenset()

    def test_faults_and_recovery_visible_in_stats(self, loaded):
        stats = loaded.network.stats
        assert stats.dropped > 0
        assert stats.duplicated > 0
        assert stats.retries > 0

    def test_delete_half_exact_counts(self):
        store = faulty_store(seed=7)
        store.bulk_load(RECORDS)
        victims = [rid for rid in RECORDS if rid % 2 == 0]
        for rid in victims:
            assert store.delete(rid)
        assert store.record_file.record_count == (
            len(RECORDS) - len(victims)
        )
        for rid in victims:
            assert store.get(rid) is None
        survivor = next(rid for rid in RECORDS if rid % 2)
        assert store.get(survivor) == RECORDS[survivor]


class TestZeroLossEquivalence:
    def test_scheme_byte_identical_on_zero_rate_network(self):
        """A zero-rate fault model must leave the whole encrypted
        search workload byte-identical to the reliable network."""

        def workload(network):
            store = EncryptedSearchableStore(
                SchemeParameters.full(4),
                network=network,
                bucket_capacity=16,
            )
            store.bulk_load({
                rid: RECORDS[rid] for rid in list(RECORDS)[:12]
            })
            store.search("SCHWARZ")
            store.delete(0)
            return (network.stats.messages, network.stats.bytes,
                    network.now, network.stats.retries)

        reliable = workload(Network())
        faulty = workload(
            UnreliableNetwork(seed=5, loss_rate=0.0,
                              duplication_rate=0.0)
        )
        assert reliable == faulty
