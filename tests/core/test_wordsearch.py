"""The SWP word-search store (the paper's §8 adaptation)."""

import pytest

from repro.core.wordsearch import EncryptedWordStore, tokenize

KEY = b"wordsearch-test"

RECORDS = {
    1: "415-409-9999 SCHWARZ THOMAS",
    2: "415-409-1234 LITWIN WITOLD",
    3: "415-409-5678 SCHWARZ PETER & THOMAS",
}


@pytest.fixture
def store():
    store = EncryptedWordStore(KEY)
    for rid, text in RECORDS.items():
        store.put(rid, text)
    return store


class TestTokenize:
    def test_words_and_numbers(self):
        assert tokenize("415-409-9999 SCHWARZ & T") == [
            "415-409-9999", "SCHWARZ", "&", "T",
        ]

    def test_hyphenated_number_is_one_token(self):
        assert tokenize("415-409-9999") == ["415-409-9999"]


class TestStore:
    def test_get_roundtrip(self, store):
        assert store.get(1) == RECORDS[1]
        assert store.get(99) is None

    def test_word_search(self, store):
        result = store.search("SCHWARZ")
        assert result.matches == frozenset({1, 3})

    def test_positions_reported(self, store):
        result = store.search("THOMAS")
        assert result.positions[1] == (2,)
        assert result.positions[3] == (4,)

    def test_no_substring_search(self, store):
        assert store.search("SCHWAR").matches == frozenset()

    def test_absent_word(self, store):
        assert store.search("NOBODY").matches == frozenset()

    def test_repeated_word_positions(self, store):
        store.put(4, "YU YU HAKUSHO YU")
        result = store.search("YU")
        assert result.positions[4] == (0, 1, 3)

    def test_delete(self, store):
        assert store.delete(1)
        assert store.search("LITWIN").matches == frozenset({2})
        assert store.search("THOMAS").matches == frozenset({3})
        assert not store.delete(1)

    def test_len(self, store):
        assert len(store) == 3

    def test_cost_accounting(self, store):
        result = store.search("SCHWARZ")
        assert result.cost.messages > 0

    def test_index_cells_leak_no_plaintext(self, store):
        for record in store.index_file.all_records():
            assert b"SCHWARZ" not in record.content
            assert b"THOMAS" not in record.content

    def test_owner_can_decrypt_index(self, store):
        assert store.decrypt_index_of(1) == [
            "415-409-9999", "SCHWARZ", "THOMAS"
        ]

    def test_decrypt_index_missing(self, store):
        with pytest.raises(KeyError):
            store.decrypt_index_of(404)

    def test_key_separation(self):
        a = EncryptedWordStore(b"key-a")
        a.put(1, "SECRET WORD")
        b = EncryptedWordStore(b"key-b")
        b.put(1, "SECRET WORD")
        # b's trapdoors do not match a's cells.
        cell_a = a.index_file.lookup(1)[:16]
        from repro.crypto.swp import SwpCipher
        assert not SwpCipher.match(cell_a, b._swp.trapdoor("SECRET"))
