"""The SWP word-search store (the paper's §8 adaptation)."""

import pytest

from repro.core.errors import RecordNotFoundError, SchemeError
from repro.core.wordsearch import (
    EncryptedWordStore,
    WordScanMatcher,
    tokenize,
)
from repro.crypto.swp import WORD_BYTES, SwpCipher
from repro.errors import ReproError

KEY = b"wordsearch-test"

RECORDS = {
    1: "415-409-9999 SCHWARZ THOMAS",
    2: "415-409-1234 LITWIN WITOLD",
    3: "415-409-5678 SCHWARZ PETER & THOMAS",
}


@pytest.fixture
def store():
    store = EncryptedWordStore(KEY)
    for rid, text in RECORDS.items():
        store.put(rid, text)
    return store


class TestTokenize:
    def test_words_and_numbers(self):
        assert tokenize("415-409-9999 SCHWARZ & T") == [
            "415-409-9999", "SCHWARZ", "&", "T",
        ]

    def test_hyphenated_number_is_one_token(self):
        assert tokenize("415-409-9999") == ["415-409-9999"]


class TestStore:
    def test_get_roundtrip(self, store):
        assert store.get(1) == RECORDS[1]
        assert store.get(99) is None

    def test_word_search(self, store):
        result = store.search("SCHWARZ")
        assert result.matches == frozenset({1, 3})

    def test_positions_reported(self, store):
        result = store.search("THOMAS")
        assert result.positions[1] == (2,)
        assert result.positions[3] == (4,)

    def test_no_substring_search(self, store):
        assert store.search("SCHWAR").matches == frozenset()

    def test_absent_word(self, store):
        assert store.search("NOBODY").matches == frozenset()

    def test_repeated_word_positions(self, store):
        store.put(4, "YU YU HAKUSHO YU")
        result = store.search("YU")
        assert result.positions[4] == (0, 1, 3)

    def test_delete(self, store):
        assert store.delete(1)
        assert store.search("LITWIN").matches == frozenset({2})
        assert store.search("THOMAS").matches == frozenset({3})
        assert not store.delete(1)

    def test_len(self, store):
        assert len(store) == 3

    def test_cost_accounting(self, store):
        result = store.search("SCHWARZ")
        assert result.cost.messages > 0

    def test_index_cells_leak_no_plaintext(self, store):
        for record in store.index_file.all_records():
            assert b"SCHWARZ" not in record.content
            assert b"THOMAS" not in record.content

    def test_owner_can_decrypt_index(self, store):
        assert store.decrypt_index_of(1) == [
            "415-409-9999", "SCHWARZ", "THOMAS"
        ]

    def test_decrypt_index_missing(self, store):
        """Regression: used to raise a bare ``KeyError``; the typed
        error keeps that base for legacy callers but joins the
        ``ReproError`` family."""
        with pytest.raises(RecordNotFoundError) as excinfo:
            store.decrypt_index_of(404)
        assert isinstance(excinfo.value, KeyError)
        assert isinstance(excinfo.value, SchemeError)
        assert isinstance(excinfo.value, ReproError)
        # No KeyError repr-quoting of the message.
        assert str(excinfo.value) == "no index record for rid 404"

    def test_overwrite_replaces_index_wholesale(self, store):
        """put() on a present rid: old words must never match again,
        even when the new text is shorter (fewer cells)."""
        store.put(1, "REPLACED")
        assert store.get(1) == "REPLACED"
        assert store.search("SCHWARZ").matches == frozenset({3})
        assert 1 not in store.search("415-409-9999").matches
        assert store.search("REPLACED").matches == frozenset({1})
        assert len(store) == 3

    def test_overwrite_after_search_invalidates_haystack(self):
        """The batched-scan haystack is built by the first search and
        must be dropped by the overwrite."""
        store = EncryptedWordStore(KEY, bucket_capacity=64)
        for rid, text in RECORDS.items():
            store.put(rid, text)
        assert store.search("SCHWARZ").matches == frozenset({1, 3})
        store.put(1, "GOODBYE")
        assert store.search("SCHWARZ").matches == frozenset({3})
        assert store.search("GOODBYE").matches == frozenset({1})

    def test_key_separation(self):
        a = EncryptedWordStore(b"key-a")
        a.put(1, "SECRET WORD")
        b = EncryptedWordStore(b"key-b")
        b.put(1, "SECRET WORD")
        # b's trapdoors do not match a's cells.
        cell_a = a.index_file.lookup(1)[:16]
        assert not SwpCipher.match(cell_a, b._swp.trapdoor("SECRET"))


class TestBatchedMatching:
    """Fused SWP cell matching ≡ the per-cell reference loop."""

    def _cells_and_trapdoor(self):
        swp = SwpCipher(b"batch-match")
        words = ["ALPHA", "BETA", "ALPHA", "GAMMA", "ALPHA"]
        cells = b"".join(swp.encrypt_words(9, words))
        return cells, swp.trapdoor("ALPHA"), swp.trapdoor("OMEGA")

    def test_match_positions_equals_per_cell_match(self):
        cells, hit_td, miss_td = self._cells_and_trapdoor()
        for trapdoor in (hit_td, miss_td):
            reference = [
                p for p in range(len(cells) // WORD_BYTES)
                if SwpCipher.match(
                    cells[WORD_BYTES * p:WORD_BYTES * (p + 1)], trapdoor
                )
            ]
            assert SwpCipher.match_positions(cells, trapdoor) == reference
        assert SwpCipher.match_positions(cells, hit_td) == [0, 2, 4]

    def test_empty_blob(self):
        _, trapdoor, _ = self._cells_and_trapdoor()
        assert SwpCipher.match_positions(b"", trapdoor) == []

    def test_malformed_blob_rejected(self):
        _, trapdoor, _ = self._cells_and_trapdoor()
        with pytest.raises(ValueError):
            SwpCipher.match_positions(b"short", trapdoor)

    def test_matcher_forms_agree(self):
        from repro.sdds.haystack import BucketHaystack
        from repro.sdds.records import Record

        swp = SwpCipher(b"matcher-forms")
        records = {
            rid: Record(rid, b"".join(swp.encrypt_words(rid, words)))
            for rid, words in {
                1: ["HELLO", "WORLD"],
                2: ["WORLD"],
                3: ["NOPE"],
                4: [],
            }.items()
        }
        trapdoor = swp.trapdoor("WORLD")
        fused = WordScanMatcher(trapdoor)
        reference = WordScanMatcher(trapdoor, fast_path=False)
        assert reference.match_bucket is None
        scalar_hits = [
            hit for record in records.values()
            if (hit := reference(record)) is not None
        ]
        assert fused.match_bucket(BucketHaystack(records)) == scalar_hits
        assert [fused(r) for r in records.values()] == [
            reference(r) for r in records.values()
        ]
