"""Anchored (start/end) searches — the paper's 'Schwarz ' with a
leading space and a trailing zero, done as a first-class query."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EncryptedSearchableStore, SchemeParameters

RECORDS = {
    1: "SCHWARZ THOMAS",
    2: "THOMAS SCHWARZ",
    3: "SCHWARZMANN THOMAS",
    4: "MAX SCHWARZ JR",
    5: "THOMAS",
}


@pytest.fixture(scope="module")
def store():
    store = EncryptedSearchableStore(SchemeParameters.full(4))
    for rid, text in RECORDS.items():
        store.put(rid, text)
    return store


class TestEndAnchor:
    def test_matches_only_suffixes(self, store):
        result = store.search("SCHWARZ", anchor_end=True)
        assert result.matches == frozenset({2})

    def test_unanchored_matches_all_occurrences(self, store):
        result = store.search("SCHWARZ")
        assert result.matches == frozenset({1, 2, 3, 4})

    def test_end_anchor_allows_short_patterns(self, store):
        """Zero-extension makes short suffix queries legal."""
        result = store.search("JR", anchor_end=True)
        assert result.matches == frozenset({4})

    def test_whole_record_as_suffix(self, store):
        result = store.search("THOMAS", anchor_end=True)
        assert result.matches == frozenset({1, 3, 5})


class TestStartAnchor:
    def test_matches_only_prefixes(self, store):
        result = store.search("THOMAS", anchor_start=True)
        assert result.matches == frozenset({2, 5})

    def test_prefix_of_longer_word(self, store):
        result = store.search("SCHWARZ", anchor_start=True)
        assert result.matches == frozenset({1, 3})

    def test_no_match(self, store):
        result = store.search("WARZ", anchor_start=True)
        assert result.matches == frozenset()


class TestCombined:
    def test_exact_record_match(self, store):
        result = store.search("THOMAS", anchor_start=True,
                              anchor_end=True)
        assert result.matches == frozenset({5})

    def test_anchors_with_drop_partial(self):
        store = EncryptedSearchableStore(
            SchemeParameters.full(4, drop_partial_chunks=True)
        )
        for rid, text in RECORDS.items():
            store.put(rid, text)
        result = store.search("THOMAS", anchor_start=True)
        assert result.matches == frozenset({2, 5})

    def test_start_anchor_on_reduced_layout(self):
        """Regression: the start-anchor filter used to hardcode
        (group 0, alignment 0); the anchor is now derived from the
        layout, so §2.5 reduced layouts anchor correctly too."""
        store = EncryptedSearchableStore(
            SchemeParameters.reduced(8, 2)
        )
        for rid, text in RECORDS.items():
            store.put(rid, text)
        result = store.search("THOMAS SCHW", anchor_start=True)
        assert result.matches == frozenset({2})
        prefix = store.search("SCHWARZMANN", anchor_start=True)
        assert prefix.matches == frozenset({3})

    def test_start_anchor_on_reduced_drop_partial_layout(self):
        store = EncryptedSearchableStore(
            SchemeParameters.reduced(8, 2, drop_partial_chunks=True)
        )
        for rid, text in RECORDS.items():
            store.put(rid, text)
        result = store.search("THOMAS SCHW", anchor_start=True)
        assert result.matches == frozenset({2})


NAME_ALPHABET = "ABCDEFGHIJKLMNOPQRSTUVWXYZ "


@settings(max_examples=12)
@given(
    st.lists(
        st.text(alphabet=NAME_ALPHABET, min_size=6, max_size=20),
        min_size=2, max_size=6, unique=True,
    ),
    st.data(),
)
def test_property_anchored_recall(texts, data):
    """End- and start-anchored searches never miss a true match."""
    store = EncryptedSearchableStore(SchemeParameters.full(4))
    for rid, text in enumerate(texts):
        store.put(rid, text)
    rid = data.draw(st.integers(0, len(texts) - 1))
    text = texts[rid]
    cut = data.draw(st.integers(1, len(text) - 1))
    suffix, prefix = text[cut:], text[:max(cut, 4)]
    if suffix:
        result = store.search(suffix, anchor_end=True)
        expected = {r for r, t in enumerate(texts) if t.endswith(suffix)}
        assert expected <= result.matches
        assert result.matches == expected  # verify filters exactly
    result = store.search(prefix, anchor_start=True)
    expected = {r for r, t in enumerate(texts) if t.startswith(prefix)}
    assert result.matches == expected
