"""Unit tests for the multi-needle scan automaton.

The gram index must be a *drop-in* for the per-needle sweeps: same
hits, same order, for every needle — plus the routing thresholds, the
kernel-registry LRU, and the memory accounting the census reports.
"""

import pytest

from repro.core.automaton import (
    INDEX_MAX_BLOB,
    INDEX_MAX_NEEDLE,
    INDEX_MIN_NEEDLES,
    ScanAutomaton,
    gram_index,
    needles_automaton,
    plan_signature,
    plans_automaton,
)
from repro.core.kernels import (
    AUTOMATON_CACHE_CAPACITY,
    automaton_cache_size,
    clear_automaton_cache,
    scan_automaton,
)
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.sdds.haystack import BucketHaystack

SEGMENTS = [
    (3, b"ABABCDCD"),
    (7, b"ZZABZZAB"),
    (9, b"CDCDCDCD"),
    (11, b"A"),          # shorter than most needles
    (12, b""),           # empty segment
]

NEEDLES = [b"AB", b"CD", b"ZZ", b"XY", b"ABAB", b"DCDC", b"A"]


def hay():
    return BucketHaystack.from_segments(SEGMENTS)


def indexed_automaton(length):
    """An automaton whose single lane crossed the index threshold."""
    return ScanAutomaton([(None, length)] * INDEX_MIN_NEEDLES)


class TestGramIndexEquivalence:
    @pytest.mark.parametrize("width", [1, 2])
    @pytest.mark.parametrize("needle", NEEDLES)
    def test_lookup_matches_find_all(self, needle, width):
        automaton = indexed_automaton(len(needle))
        assert automaton.uses_index(None, len(needle), len(hay().blob))
        assert list(automaton.lookup(hay(), None, needle, width)) == list(
            hay().find_all(needle, width)
        ), (needle, width)

    @pytest.mark.parametrize("needle", NEEDLES)
    def test_lookup_records_matches_find_records(self, needle):
        automaton = indexed_automaton(len(needle))
        assert list(automaton.lookup_records(hay(), needle)) == list(
            hay().find_records(needle)
        ), needle

    def test_grams_never_straddle_segments(self):
        # "AB" at the end of rid 3 and "CD" at the start of rid 9 form
        # no cross-segment gram; neither does rid 11's lone "A" with
        # anything after it.
        automaton = indexed_automaton(2)
        assert list(automaton.lookup(hay(), None, b"DZ", 1)) == []
        assert list(automaton.lookup(hay(), None, b"DA", 1)) == []

    def test_fallback_and_index_agree_below_threshold(self):
        sparse = ScanAutomaton([(None, 2)])  # 1 needle: fallback
        dense = indexed_automaton(2)
        assert not sparse.uses_index(None, 2, len(hay().blob))
        for needle in (b"AB", b"CD", b"XY"):
            assert list(sparse.lookup(hay(), None, needle, 1)) == list(
                dense.lookup(hay(), None, needle, 1)
            ), needle


class TestRouting:
    def test_min_needles_threshold(self):
        below = ScanAutomaton([(None, 2)] * (INDEX_MIN_NEEDLES - 1))
        at = ScanAutomaton([(None, 2)] * INDEX_MIN_NEEDLES)
        assert not below.uses_index(None, 2, 100)
        assert at.uses_index(None, 2, 100)

    def test_lanes_are_independent(self):
        automaton = ScanAutomaton(
            [((0, 0), 2)] * INDEX_MIN_NEEDLES + [((0, 1), 2)]
        )
        assert automaton.uses_index((0, 0), 2, 100)
        assert not automaton.uses_index((0, 1), 2, 100)
        assert not automaton.uses_index((1, 0), 2, 100)

    def test_needle_length_ceiling(self):
        long = INDEX_MAX_NEEDLE + 1
        automaton = ScanAutomaton([(None, long)] * INDEX_MIN_NEEDLES)
        assert not automaton.uses_index(None, long, 100)

    def test_blob_ceiling(self):
        automaton = indexed_automaton(2)
        assert automaton.uses_index(None, 2, INDEX_MAX_BLOB)
        assert not automaton.uses_index(None, 2, INDEX_MAX_BLOB + 1)


class TestCaches:
    def test_kernel_registry_lru_and_metrics(self):
        clear_automaton_cache()
        registry = MetricsRegistry()
        with use_metrics(registry):
            first = scan_automaton(("t", 1), lambda: object())
            again = scan_automaton(("t", 1), lambda: object())
        assert first is again
        assert registry.counter("kernels.automaton.miss").value == 1
        assert registry.counter("kernels.automaton.hit").value == 1
        assert registry.histogram(
            "kernels.automaton.build_seconds"
        ).count == 1
        # Eviction: oldest entries leave at capacity.
        for extra in range(AUTOMATON_CACHE_CAPACITY):
            scan_automaton(("t", "fill", extra), lambda: object())
        assert automaton_cache_size() == AUTOMATON_CACHE_CAPACITY
        refreshed = scan_automaton(("t", 1), lambda: object())
        assert refreshed is not first  # evicted, rebuilt
        clear_automaton_cache()
        assert automaton_cache_size() == 0

    def test_gram_index_memo_and_metrics(self):
        haystack = hay()
        registry = MetricsRegistry()
        with use_metrics(registry):
            first = gram_index(haystack, 2, 1)
            again = gram_index(haystack, 2, 1)
            other = gram_index(haystack, 2, 2)
        assert first is again
        assert other is not first
        assert registry.counter("lh.haystack.automaton.build").value == 2
        assert registry.counter("lh.haystack.automaton.hit").value == 1
        assert registry.histogram(
            "lh.haystack.automaton.bytes"
        ).count == 2

    def test_memory_bytes_reports_cached_views(self):
        haystack = hay()
        base = haystack.memory_bytes()
        index = gram_index(haystack, 2, 1)
        assert index.memory_bytes() > 0
        assert haystack.memory_bytes() >= base + index.memory_bytes()

    def test_plans_and_needles_automata_cached_by_value(self):
        clear_automaton_cache()
        a = needles_automaton((b"AB", b"CD"))
        b = needles_automaton((b"AB", b"CD"))
        c = needles_automaton((b"AB",))
        assert a is b
        assert c is not a

    def test_plan_signature_is_hashable_and_value_stable(self):
        from repro.core.search import SearchPlan

        plan = SearchPlan(
            pattern=b"AB", needles={(0, 0): (b"A", b"B")},
            piece_width=1, sites=2, group_count=1,
            alignments=(0,), required_groups=(0,),
        )
        twin = SearchPlan(
            pattern=b"AB", needles={(0, 0): (b"A", b"B")},
            piece_width=1, sites=2, group_count=1,
            alignments=(0,), required_groups=(0,),
        )
        assert plan_signature(plan) == plan_signature(twin)
        assert hash(plan_signature(plan)) == hash(plan_signature(twin))
        assert plans_automaton([plan]) is plans_automaton([twin])
