"""16-bit symbol support — the paper's 'typically either 8-bit ASCII
symbols or 16-bit Unicode symbols'."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ConfigurationError,
    EncryptedSearchableStore,
    FrequencyEncoder,
    SchemeParameters,
)
from repro.core.chunking import query_series, record_chunks

RECORDS = {
    1: "SCHWÄRZ THOMAS",
    2: "Γιώργος Παπαδόπουλος",
    3: "北京市 朝阳区",
    4: "ŁITWIN WITOLD",
    5: "ŁUKASZ ŁITWINOWICZ",
}


def utf16(text: str) -> bytes:
    return text.encode("utf-16-be")


class TestWideChunking:
    def test_boundaries_respect_symbols(self):
        chunks = record_chunks(utf16("ABCD"), 2, 0, symbol_width=2)
        assert chunks == [utf16("AB"), utf16("CD")]

    def test_offset_pads_whole_symbols(self):
        chunks = record_chunks(utf16("ABCD"), 2, 1, symbol_width=2)
        assert chunks[0] == b"\x00\x00" + utf16("A")
        assert chunks[1] == utf16("BC")
        assert chunks[2] == utf16("D") + b"\x00\x00"

    def test_never_splits_a_code_unit(self):
        text = utf16("北京市朝阳区")
        for offset in range(3):
            for chunk in record_chunks(text, 3, offset, symbol_width=2):
                assert len(chunk) % 2 == 0

    def test_ragged_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            record_chunks(b"\x00A\x00", 2, 0, symbol_width=2)

    def test_query_series_symbol_aligned(self):
        series = query_series(utf16("ABCDE"), 2, 1, symbol_width=2)
        assert series == [utf16("BC"), utf16("DE")]

    def test_query_series_ragged_rejected(self):
        with pytest.raises(ConfigurationError):
            query_series(b"\x00A\x00", 2, 0, symbol_width=2)


class TestWideConfig:
    def test_chunk_bits_scale_with_width(self):
        narrow = SchemeParameters.full(4)
        wide = SchemeParameters.full(4, symbol_width=2)
        assert wide.chunk_bits == 2 * narrow.chunk_bits
        assert wide.chunk_bytes == 8

    def test_invalid_width(self):
        with pytest.raises(ConfigurationError):
            SchemeParameters.full(4, symbol_width=3)

    def test_serialization_roundtrip(self):
        from repro.core.serialization import (
            params_from_dict,
            params_to_dict,
        )
        p = SchemeParameters.full(4, symbol_width=2)
        assert params_from_dict(params_to_dict(p)) == p


@pytest.fixture(scope="module")
def wide_store():
    store = EncryptedSearchableStore(
        SchemeParameters.full(3, symbol_width=2)
    )
    for rid, text in RECORDS.items():
        store.put(rid, text)
    return store


class TestUnicodeStore:
    def test_roundtrip(self, wide_store):
        for rid, text in RECORDS.items():
            assert wide_store.get(rid) == text

    def test_search_greek(self, wide_store):
        assert wide_store.search("Παπαδόπουλος").matches == \
            frozenset({2})

    def test_search_cjk(self, wide_store):
        assert wide_store.search("朝阳区").matches == frozenset({3})

    def test_search_latin_extended(self, wide_store):
        result = wide_store.search("ŁITWIN")
        assert result.matches == frozenset({4, 5})

    def test_search_umlaut(self, wide_store):
        assert wide_store.search("SCHWÄRZ").matches == frozenset({1})

    def test_no_cross_width_false_hits(self, wide_store):
        assert wide_store.search("XYZ").matches == frozenset()

    def test_zero_byte_code_units_survive(self):
        """U+0100 ends in a 0x00 byte; content decoding must not eat
        it as a terminator."""
        store = EncryptedSearchableStore(
            SchemeParameters.full(3, symbol_width=2)
        )
        text = "ĀĂĄ"  # U+0100, U+0102, U+0104 — all low bytes vary
        tricky = "AĀ"  # ends with U+0100: trailing byte is 0x00
        store.put(9, tricky)
        assert store.get(9) == tricky
        store.put(10, text)
        assert store.get(10) == text

    def test_anchored_unicode(self, wide_store):
        result = wide_store.search("Γιώργος", anchor_start=True)
        assert result.matches == frozenset({2})

    def test_stage2_with_wide_symbols(self):
        params = SchemeParameters.full(2, n_codes=64, symbol_width=2)
        corpus = [utf16(t) for t in RECORDS.values()]
        encoder = FrequencyEncoder.train(corpus, 4, 64)  # 4 bytes/chunk
        store = EncryptedSearchableStore(params, encoder=encoder)
        for rid, text in RECORDS.items():
            store.put(rid, text)
        assert 3 in store.search("朝阳区").matches


NAME_ALPHABET = "ΑΒΓΔΕΖΗΘΛΜΝΞΠΡΣΤΥΦΧΨΩ京北市东 "


@settings(max_examples=10)
@given(
    st.lists(
        st.text(alphabet=NAME_ALPHABET, min_size=5, max_size=14),
        min_size=1, max_size=5, unique=True,
    ),
    st.data(),
)
def test_property_unicode_recall(texts, data):
    store = EncryptedSearchableStore(
        SchemeParameters.full(3, symbol_width=2)
    )
    for rid, text in enumerate(texts):
        store.put(rid, text)
    rid = data.draw(st.integers(0, len(texts) - 1))
    text = texts[rid]
    start = data.draw(st.integers(0, len(text) - 3))
    length = data.draw(st.integers(3, len(text) - start))
    pattern = text[start:start + length]
    expected = {r for r, t in enumerate(texts) if pattern in t}
    assert expected <= store.search(pattern).matches