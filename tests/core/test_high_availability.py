"""High-availability deployments: both files on LH*_RS."""

import pytest

from repro.core import EncryptedSearchableStore, SchemeParameters
from repro.sdds.lhstar_rs import LHStarRSFile


@pytest.fixture(scope="module")
def ha_store():
    store = EncryptedSearchableStore(
        SchemeParameters.full(4), high_availability=True
    )
    for rid, text in {
        1: "SCHWARZ THOMAS",
        2: "LITWIN WITOLD",
        3: "TSUI PETER",
        4: "ABOGADO ALEJANDRO",
    }.items():
        store.put(rid, text)
    return store


class TestHighAvailability:
    def test_both_files_are_rs(self, ha_store):
        assert isinstance(ha_store.record_file, LHStarRSFile)
        assert isinstance(ha_store.index_file, LHStarRSFile)

    def test_search_works(self, ha_store):
        assert 1 in ha_store.search("SCHWARZ").matches

    def test_record_bucket_recoverable(self, ha_store):
        victim = next(iter(ha_store.record_file.buckets))
        assert ha_store.record_file.verify_recovery([victim])

    def test_index_bucket_recoverable(self, ha_store):
        """The paper's §5: index records live in LH*_RS too — losing
        an index bucket must not lose searchability."""
        for victim in list(ha_store.index_file.buckets)[:3]:
            assert ha_store.index_file.verify_recovery([victim])

    def test_degraded_record_read(self, ha_store):
        ciphertext = ha_store.record_file.degraded_lookup(2)
        assert ciphertext == ha_store.record_file.lookup(2)

    def test_parity_traffic_counted(self, ha_store):
        assert ha_store.network.stats.by_kind["parity_delta"] > 0

    def test_elapsed_reported(self, ha_store):
        result = ha_store.search("WITOLD")
        assert result.elapsed > 0
