"""Stage-1 geometry, pinned against the paper's worked examples."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.chunking import (
    StorageLayout,
    all_query_series,
    query_series,
    record_chunks,
)
from repro.core.errors import ConfigurationError, QueryTooShortError

ALPHABET = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ"


class TestPaperSection22:
    """The example of section 2.2: s=4 over the alphabet."""

    def test_first_chunking(self):
        chunks = record_chunks(ALPHABET, 4, 0)
        assert chunks == [
            b"ABCD", b"EFGH", b"IJKL", b"MNOP", b"QRST", b"UVWX",
            b"YZ\x00\x00",
        ]

    def test_second_chunking(self):
        # "(000A), (BCDE), (FGHI), (JKLM), (NOPQ), (RSTU), (VWXY), (Z000)"
        chunks = record_chunks(ALPHABET, 4, 1)
        assert chunks[0] == b"\x00\x00\x00A"
        assert chunks[1] == b"BCDE"
        assert chunks[-1] == b"Z\x00\x00\x00"
        assert len(chunks) == 8

    def test_third_chunking(self):
        chunks = record_chunks(ALPHABET, 4, 2)
        assert chunks[0] == b"\x00\x00AB"
        assert chunks[1] == b"CDEF"
        assert chunks[-1] == b"WXYZ"
        assert len(chunks) == 7

    def test_fourth_chunking(self):
        chunks = record_chunks(ALPHABET, 4, 3)
        assert chunks[0] == b"\x00ABC"
        assert chunks[1] == b"DEFG"
        assert chunks[-1] == b"XYZ\x00"


class TestPaperSection24:
    """The search example of section 2.4: "BCDEFGHIJK", s=4."""

    def test_all_chunkings_of_the_query(self):
        pattern = b"BCDEFGHIJK"
        series = all_query_series(pattern, 4, 4)
        assert series[0] == [b"BCDE", b"FGHI"]
        assert series[1] == [b"CDEF", b"GHIJ"]
        assert series[2] == [b"DEFG", b"HIJK"]
        assert series[3] == [b"EFGH"]

    def test_each_series_hits_exactly_one_chunking(self):
        """'each chunked search string has a hit in exactly one index
        record' — for the alphabet record and this query."""
        pattern = b"BCDEFGHIJK"
        hits = []
        for alignment in range(4):
            series = query_series(pattern, 4, alignment)
            for offset in range(4):
                chunks = record_chunks(ALPHABET, 4, offset)
                for p in range(len(chunks) - len(series) + 1):
                    if chunks[p:p + len(series)] == series:
                        hits.append((alignment, offset, p))
        assert len(hits) == 4
        assert len({offset for __, offset, __ in hits}) == 4


class TestRecordChunks:
    def test_padding_symbol_is_zero(self):
        assert record_chunks(b"AB", 4, 0) == [b"AB\x00\x00"]

    def test_exact_multiple_no_padding(self):
        assert record_chunks(b"ABCD", 4, 0) == [b"ABCD"]

    def test_drop_partial_first_and_last(self):
        chunks = record_chunks(b"ABCDEFG", 4, 1, drop_partial=True)
        assert chunks == [b"BCDE"]

    def test_drop_partial_keeps_complete_tail(self):
        chunks = record_chunks(b"ABCDE", 4, 1, drop_partial=True)
        assert chunks == [b"BCDE"]

    def test_empty_record(self):
        assert record_chunks(b"", 4, 0) == []
        assert record_chunks(b"", 4, 1) == [b"\x00\x00\x00" + b"\x00"]

    def test_invalid_offset(self):
        with pytest.raises(ConfigurationError):
            record_chunks(b"AB", 4, 4)

    def test_invalid_chunk_size(self):
        with pytest.raises(ConfigurationError):
            record_chunks(b"AB", 0, 0)


class TestQuerySeries:
    def test_alignment_trims_edges(self):
        assert query_series(b"ABCDEFGH", 4, 1) == [b"BCDE"]

    def test_too_short_raises(self):
        with pytest.raises(QueryTooShortError):
            query_series(b"ABC", 4, 0)

    def test_alignment_out_of_range(self):
        with pytest.raises(ConfigurationError):
            query_series(b"ABCDEFGH", 4, 4)

    def test_no_padding_ever(self):
        """Query series contain only complete chunks (section 2.3)."""
        for alignment in range(4):
            for series in [query_series(b"ABCDEFGHIJ", 4, alignment)]:
                assert all(len(c) == 4 for c in series)
                assert all(b"\x00" not in c for c in series)


class TestStorageLayout:
    def test_full_layout(self):
        layout = StorageLayout.full(4)
        assert layout.offsets == (0, 1, 2, 3)
        assert layout.alignments == 4
        assert layout.stride == 1
        assert layout.required_groups == 4
        assert layout.min_query_length == 4

    def test_reduced_4_of_8(self):
        """Section 2.5's first example: s=8, 4 storage sites."""
        layout = StorageLayout.reduced(8, 4)
        assert layout.offsets == (0, 2, 4, 6)
        assert layout.alignments == 2
        assert layout.required_groups == 1
        assert layout.min_query_length == 9  # "at least s+1"

    def test_reduced_2_of_8(self):
        """Section 2.5's second example: s=8, 2 storage sites."""
        layout = StorageLayout.reduced(8, 2)
        assert layout.offsets == (0, 4)
        assert layout.alignments == 4
        assert layout.min_query_length == 11  # "now s+3"

    def test_sites_must_divide_chunk_size(self):
        with pytest.raises(ConfigurationError):
            StorageLayout.reduced(8, 3)

    def test_offsets_must_be_uniform(self):
        with pytest.raises(ConfigurationError):
            StorageLayout(chunk_size=8, offsets=(0, 1, 4), alignments=1)

    def test_offsets_must_start_at_zero(self):
        with pytest.raises(ConfigurationError):
            StorageLayout(chunk_size=4, offsets=(1, 3), alignments=2)

    def test_alignments_bounds(self):
        with pytest.raises(ConfigurationError):
            StorageLayout(chunk_size=8, offsets=(0, 4), alignments=3)

    def test_query_alignments_filter_short_patterns(self):
        layout = StorageLayout.full(4)
        # Length 4: only alignment 0 produces a complete chunk.
        assert layout.query_alignments(4) == [0]
        assert layout.query_alignments(7) == [0, 1, 2, 3]

    def test_check_query_length(self):
        layout = StorageLayout.reduced(8, 4)
        with pytest.raises(QueryTooShortError):
            layout.check_query_length(8)
        layout.check_query_length(9)

    def test_storage_blowup(self):
        assert StorageLayout.full(8).storage_blowup() == 8.0
        assert StorageLayout.reduced(8, 2).storage_blowup() == 2.0


@given(
    st.binary(min_size=0, max_size=60),
    st.integers(1, 8),
    st.data(),
)
def test_property_chunks_reassemble(content, s, data):
    """Concatenating the chunks of offset o reproduces the record
    (with zero padding at the edges)."""
    offset = data.draw(st.integers(0, s - 1))
    chunks = record_chunks(content, s, offset)
    joined = b"".join(chunks)
    lead = (s - offset) % s if offset else 0
    stripped = joined[lead:lead + len(content)]
    assert stripped == content
    assert all(len(c) == s for c in chunks)


@given(
    st.binary(min_size=8, max_size=40),
    st.integers(1, 6),
    st.data(),
)
def test_property_series_chunks_align_with_record(pattern, s, data):
    """If a pattern occurs in a record at position p, then the series
    with alignment a = (offset - p) mod s matches chunk-aligned in the
    chunking with that offset — the scheme's recall argument."""
    prefix = data.draw(st.binary(min_size=0, max_size=20))
    suffix = data.draw(st.binary(min_size=0, max_size=20))
    record = prefix + pattern + suffix
    p = len(prefix)
    offset = data.draw(st.integers(0, s - 1))
    alignment = (offset - p) % s
    if len(pattern) - alignment < s:
        return  # this alignment has no complete chunk; others cover it
    series = query_series(pattern, s, alignment)
    chunks = record_chunks(record, s, offset)
    found = any(
        chunks[q:q + len(series)] == series
        for q in range(len(chunks) - len(series) + 1)
    )
    assert found
