"""Scheme parameter validation and derived quantities."""

import pytest

from repro.core.config import SchemeParameters
from repro.core.errors import ConfigurationError


class TestConstructors:
    def test_full(self):
        p = SchemeParameters.full(4)
        assert p.chunk_size == 4
        assert p.layout.group_count == 4

    def test_reduced(self):
        p = SchemeParameters.reduced(8, 4)
        assert p.layout.offsets == (0, 2, 4, 6)


class TestDerived:
    def test_raw_chunk_bits(self):
        assert SchemeParameters.full(4).chunk_bits == 32

    def test_encoded_chunk_bits(self):
        assert SchemeParameters.full(4, n_codes=64).chunk_bits == 6
        assert SchemeParameters.full(4, n_codes=65).chunk_bits == 7
        assert SchemeParameters.full(4, n_codes=256).chunk_bits == 8

    def test_piece_bits(self):
        p = SchemeParameters.full(4, n_codes=64, dispersal=2)
        assert p.piece_bits == 3
        assert p.piece_width == 1

    def test_piece_width_raw(self):
        assert SchemeParameters.full(4).piece_width == 4
        assert SchemeParameters.full(4, dispersal=2).piece_width == 2

    def test_value_domain(self):
        assert SchemeParameters.full(2).value_domain == 1 << 16

    def test_index_sites_per_record(self):
        """Figure 3: two chunkings x four dispersal sites = 8."""
        p = SchemeParameters.reduced(8, 2, n_codes=256, dispersal=4)
        assert p.index_sites_per_record == 8

    def test_min_query_length(self):
        assert SchemeParameters.full(4).min_query_length == 4
        assert SchemeParameters.reduced(8, 4).min_query_length == 9

    def test_describe_mentions_stages(self):
        text = SchemeParameters.full(4, n_codes=64, dispersal=2).describe()
        assert "64 codes" in text and "k=2" in text


class TestValidation:
    def test_dispersal_must_divide_chunk_bits(self):
        # 32 bits, k=5 does not divide.
        with pytest.raises(ConfigurationError):
            SchemeParameters.full(4, dispersal=5)

    def test_dispersal_divides_encoded_bits(self):
        # 6 bits with k=4 does not divide.
        with pytest.raises(ConfigurationError):
            SchemeParameters.full(4, n_codes=64, dispersal=4)
        SchemeParameters.full(4, n_codes=64, dispersal=3)  # 2-bit pieces

    def test_piece_bits_cap(self):
        # raw s=8 -> 64 bits; k=2 -> 32-bit pieces > GF(2^16).
        with pytest.raises(ConfigurationError):
            SchemeParameters.full(8, dispersal=2)

    def test_n_codes_bounds(self):
        with pytest.raises(ConfigurationError):
            SchemeParameters.full(4, n_codes=1)
        with pytest.raises(ConfigurationError):
            SchemeParameters.full(4, n_codes=(1 << 16) + 1)

    def test_dispersal_bounds(self):
        with pytest.raises(ConfigurationError):
            SchemeParameters.full(4, dispersal=0)

    def test_master_key_required(self):
        with pytest.raises(ConfigurationError):
            SchemeParameters.full(4, master_key=b"")

    def test_frozen(self):
        p = SchemeParameters.full(4)
        with pytest.raises(AttributeError):
            p.dispersal = 2  # type: ignore[misc]

    def test_aggregation_validated(self):
        with pytest.raises(ConfigurationError):
            SchemeParameters.full(4, aggregation="most")
        SchemeParameters.full(4, aggregation="any")


class TestAggregationOption:
    def test_any_forces_or_rule(self):
        from repro.core.index import IndexPipeline

        auto = IndexPipeline(SchemeParameters.full(4))
        forced = IndexPipeline(
            SchemeParameters.full(4, aggregation="any")
        )
        assert auto.plan_query(b"ABCDEFG").required_groups == 4
        assert forced.plan_query(b"ABCDEFG").required_groups == 1

    def test_any_increases_candidates_never_misses(self):
        from repro.core import EncryptedSearchableStore

        texts = {1: "SCHWARZ THOMAS", 2: "LITWIN WITOLD"}
        strict = EncryptedSearchableStore(SchemeParameters.full(4))
        loose = EncryptedSearchableStore(
            SchemeParameters.full(4, aggregation="any")
        )
        for rid, text in texts.items():
            strict.put(rid, text)
            loose.put(rid, text)
        for query in ("SCHWARZ", "WITOLD"):
            s = strict.search(query, verify=False)
            l = loose.search(query, verify=False)
            assert s.candidates <= l.candidates
