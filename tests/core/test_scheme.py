"""The complete scheme: integration tests and the recall invariant."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    EncryptedSearchableStore,
    FrequencyEncoder,
    QueryTooShortError,
    SchemeParameters,
)
from repro.net import Network

RECORDS = {
    7: "415-409-9999 SCHWARZ THOMAS",
    8: "415-409-1234 LITWIN WITOLD",
    9: "415-409-5678 TSUI PETER",
    10: "415-409-0007 ABOGADO ALEJANDRO & CATHERINE",
    11: "415-409-0008 ADAMSON MARK",
}


def store_with(params, encoder=None):
    store = EncryptedSearchableStore(params, encoder=encoder)
    for rid, text in RECORDS.items():
        store.put(rid, text)
    return store


@pytest.fixture(scope="module")
def full_store():
    return store_with(SchemeParameters.full(4))


class TestPutGet:
    def test_roundtrip(self, full_store):
        assert full_store.get(7) == RECORDS[7]

    def test_missing(self, full_store):
        assert full_store.get(999) is None

    def test_record_store_holds_ciphertext_only(self, full_store):
        """No plaintext byte sequence survives at any storage site."""
        for record in full_store.record_file.all_records():
            assert b"SCHWARZ" not in record.content
            assert b"LITWIN" not in record.content

    def test_index_streams_do_not_leak_plaintext(self, full_store):
        for record in full_store.index_file.all_records():
            assert b"SCHW" not in record.content
            assert b"415-" not in record.content

    def test_len(self, full_store):
        assert len(full_store) == len(RECORDS)

    def test_delete_removes_everything(self):
        store = store_with(SchemeParameters.full(4))
        index_before = len(store.index_file.all_records())
        assert store.delete(7)
        assert store.get(7) is None
        assert store.search("SCHWARZ").matches == frozenset()
        assert len(store.index_file.all_records()) == index_before - 4
        assert not store.delete(7)


class TestSearchFullLayout:
    def test_exact_match(self, full_store):
        result = full_store.search("SCHWARZ")
        assert result.matches == frozenset({7})
        assert result.false_positives == frozenset()

    def test_multi_record_match(self, full_store):
        result = full_store.search("415-409")
        assert result.matches == frozenset(RECORDS)

    def test_no_match(self, full_store):
        result = full_store.search("XYZW")
        assert result.candidates == frozenset()
        assert result.precision == 1.0

    def test_substring_inside_word(self, full_store):
        # ADAMS occurs inside ADAMSON — the paper counts that as a
        # true occurrence.
        result = full_store.search("ADAMS")
        assert 11 in result.matches

    def test_pattern_with_spaces(self, full_store):
        result = full_store.search(" SCHWARZ ")
        assert result.matches == frozenset({7})

    def test_too_short_query(self, full_store):
        with pytest.raises(QueryTooShortError):
            full_store.search("ABC")

    def test_unverified_search(self, full_store):
        result = full_store.search("SCHWARZ", verify=False)
        assert result.matches == result.candidates

    def test_cost_accounting(self, full_store):
        result = full_store.search("SCHWARZ")
        assert result.cost.messages > 0
        assert result.cost.by_kind["scan"] >= 1


class TestSearchOtherLayouts:
    def test_reduced_layout(self):
        store = store_with(SchemeParameters.reduced(8, 4))
        result = store.search("ALEJANDRO")
        assert 10 in result.matches

    def test_reduced_min_length_enforced(self):
        store = store_with(SchemeParameters.reduced(8, 4))
        with pytest.raises(QueryTooShortError):
            store.search("SCHWARZ ")  # length 8 < 9

    def test_stage2_recall(self):
        params = SchemeParameters.full(4, n_codes=32)
        encoder = FrequencyEncoder.train(
            [t.encode() for t in RECORDS.values()], 4, 32
        )
        store = store_with(params, encoder)
        for rid, text in RECORDS.items():
            name = text.split(" ", 1)[1][:7]
            assert rid in store.search(name).matches

    def test_stage3_recall_and_equivalence(self):
        """Dispersion with all-k intersection adds no candidates."""
        texts = [t.encode() for t in RECORDS.values()]
        enc = FrequencyEncoder.train(texts, 4, 64)
        base = store_with(SchemeParameters.full(4, n_codes=64), enc)
        k2 = store_with(
            SchemeParameters.full(4, n_codes=64, dispersal=2), enc
        )
        for pattern in ("SCHWARZ", "WITOLD", "ALEJANDRO", "THOMAS"):
            a = base.search(pattern)
            b = k2.search(pattern)
            assert a.matches == b.matches
            assert a.candidates == b.candidates

    def test_drop_partial_still_finds_interior(self):
        store = store_with(
            SchemeParameters.full(4, drop_partial_chunks=True)
        )
        assert 7 in store.search("SCHWARZ").matches

    def test_high_availability_store(self):
        store = EncryptedSearchableStore(
            SchemeParameters.full(4), high_availability=True
        )
        store.put(1, "415-409-0001 SCHWARZ THOMAS")
        assert 1 in store.search("SCHWARZ").matches
        assert store.record_file.verify_recovery(
            [next(iter(store.record_file.buckets))]
        )


class TestIndexKeys:
    def test_key_roundtrip(self, full_store):
        for rid in (0, 7, 12345):
            for group in range(4):
                key = full_store.index_key(rid, group, 0)
                assert full_store.decode_index_key(key) == (rid, group, 0)

    def test_paper_figure3_key_width(self):
        """2 chunkings x 4 dispersal sites -> 3 suffix bits."""
        params = SchemeParameters.reduced(8, 2, dispersal=4)
        store = EncryptedSearchableStore(params)
        assert store._suffix_bits == 3

    def test_index_records_spread_across_buckets(self):
        store = EncryptedSearchableStore(
            SchemeParameters.full(4), bucket_capacity=8
        )
        for rid, text in RECORDS.items():
            store.put(rid, text)
        for rid in (100, 101, 102, 103):
            store.put(rid, f"415-409-{rid:04d} FILLER NAME")
        if store.index_file.bucket_count >= 4:
            buckets_used = {
                address
                for address, bucket in store.index_file.buckets.items()
                if any(
                    store.decode_index_key(k)[0] == 7
                    for k in bucket.records
                )
            }
            assert len(buckets_used) > 1


class TestFootprint:
    def test_footprint_counts(self, full_store):
        fp = full_store.footprint()
        assert fp.index_records == 4 * len(RECORDS)
        assert fp.record_bytes > 0
        assert fp.overhead > 0

    def test_stage2_reduces_overhead(self):
        texts = [t.encode() for t in RECORDS.values()]
        raw = store_with(SchemeParameters.full(4))
        enc = FrequencyEncoder.train(texts, 4, 64)
        small = store_with(SchemeParameters.full(4, n_codes=64), enc)
        assert small.footprint().index_bytes < raw.footprint().index_bytes

    def test_trained_constructor(self):
        texts = [t.encode() for t in RECORDS.values()]
        store = EncryptedSearchableStore.with_trained_encoder(
            SchemeParameters.full(4, n_codes=32), texts
        )
        store.put(7, RECORDS[7])
        assert 7 in store.search("SCHWARZ").matches


NAME_ALPHABET = "ABCDEFGHIJKLMNOPQRSTUVWXYZ "


@settings(max_examples=12)
@given(
    st.lists(
        st.text(alphabet=NAME_ALPHABET, min_size=6, max_size=24),
        min_size=1,
        max_size=8,
        unique=True,
    ),
    st.data(),
)
def test_property_no_false_negatives(texts, data):
    """THE invariant: any substring of a stored record is found.

    Random corpora, random in-record substrings, full layout with
    Stage 1 ECB on — search must return the containing record."""
    store = EncryptedSearchableStore(SchemeParameters.full(4))
    for rid, text in enumerate(texts):
        store.put(rid, text)
    rid = data.draw(st.integers(0, len(texts) - 1))
    text = texts[rid]
    start = data.draw(st.integers(0, len(text) - 4))
    length = data.draw(st.integers(4, len(text) - start))
    pattern = text[start:start + length]
    result = store.search(pattern)
    assert rid in result.matches
    # And recall holds for every record containing the pattern.
    expected = {r for r, t in enumerate(texts) if pattern in t}
    assert expected <= result.matches
