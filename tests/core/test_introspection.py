"""Introspection surface: footprint() accounting and explain() edges."""

from repro.core import EncryptedSearchableStore, SchemeParameters
from repro.core.scheme import StorageFootprint

PHONEBOOK = {
    1: "415-409-9999 SCHWARZ THOMAS",
    2: "415-409-1234 LITWIN WITOLD",
    3: "415-409-5678 TSUI PETER",
}


def make_store(**params_kwargs) -> EncryptedSearchableStore:
    params = SchemeParameters.full(
        4, master_key=b"introspection-key", **params_kwargs
    )
    return EncryptedSearchableStore(params)


class TestFootprint:
    def test_empty_store_is_all_zero(self):
        footprint = make_store().footprint()
        assert footprint == StorageFootprint(0, 0, 0)
        assert footprint.overhead == 0.0

    def test_counts_both_files(self):
        store = make_store()
        for rid, text in PHONEBOOK.items():
            store.put(rid, text)
        footprint = store.footprint()
        assert footprint.record_bytes > 0
        assert footprint.index_bytes > 0
        # One index record per stored record per alignment group.
        assert footprint.index_records > 0
        assert footprint.overhead == (
            footprint.index_bytes / footprint.record_bytes
        )

    def test_delete_returns_footprint_to_zero(self):
        store = make_store()
        for rid, text in PHONEBOOK.items():
            store.put(rid, text)
        for rid in PHONEBOOK:
            assert store.delete(rid)
        assert store.footprint() == StorageFootprint(0, 0, 0)

    def test_overwrite_does_not_grow_index(self):
        store = make_store()
        store.put(1, PHONEBOOK[1])
        first = store.footprint()
        store.put(1, PHONEBOOK[1])
        assert store.footprint() == first

    def test_dispersal_multiplies_index_entries(self):
        plain = make_store()
        dispersed = make_store(dispersal=2)
        for rid, text in PHONEBOOK.items():
            plain.put(rid, text)
            dispersed.put(rid, text)
        assert (
            dispersed.footprint().index_records
            > plain.footprint().index_records
        )

    def test_overhead_is_zero_protected(self):
        assert StorageFootprint(0, 512, 4).overhead == 0.0


class TestExplainOutput:
    def test_reports_symbol_count_and_scheme(self):
        store = make_store()
        text = store.explain("SCHWARZ")
        assert "'SCHWARZ' (7 symbols)" in text
        assert "scheme:" in text
        assert store.params.describe() in text

    def test_needle_payload_matches_plan(self):
        store = make_store()
        plan = store.pipeline.plan_query(b"SCHWARZ")
        text = store.explain("SCHWARZ")
        assert f"{plan.request_size()} bytes per site" in text

    def test_no_dispersal_line_for_single_site(self):
        assert "dispersal sites" not in make_store().explain("SCHWARZ")

    def test_explain_sends_no_messages(self):
        store = make_store()
        for rid, text in PHONEBOOK.items():
            store.put(rid, text)
        before = store.network.stats.snapshot()
        store.explain("SCHWARZ")
        delta = store.network.stats.diff(before)
        assert delta.messages == 0 and delta.bytes == 0
