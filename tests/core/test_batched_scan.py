"""Batched bucket scans ≡ per-record reference scans, byte for byte.

PR-5 pinned fused *client-side* codecs to the reference path; this
suite pins the *server-side* batched scan the same way.  Matchers that
expose ``match_bucket`` run each needle once over the bucket's
concatenated haystack — the grids here assert the resulting hits,
candidate sets, answers and wire costs are identical to the scalar
per-record loop, across chunk sizes, dispersal, Stage-2 on/off and
both §8 stores, and that the haystack cache survives every record
mutation (insert, overwrite, delete, split, merge).
"""

import pytest

from repro.core import (
    CompressedSearchStore,
    EncryptedSearchableStore,
    EncryptedWordStore,
    FrequencyEncoder,
    SchemeParameters,
)
from repro.core.search import PlanScanMatcher
from repro.sdds.haystack import BucketHaystack
from repro.sdds.lhstar import LHStarFile
from repro.sdds.records import Record

TEXTS = [
    "SCHWARZ THOMAS J 453-2234",
    "LITWIN WITOLD 123-4567",
    "AAAABBBBCCCCDDDD",
    "X",
    "MARTINEZ-GARCIA ANA 999-0000",
    "THOMPSON SCHOLAR 555-0001",
]

PATTERNS = ["SCHWARZ ", "WITOLD 12", "ABCDEFGHIJKL", "AAAABBBB",
            "THOMAS J", "999-0000"]

# Store configurations spanning raw/Stage-2 domains, dispersal on/off,
# full and reduced layouts, 1- and 2-byte pieces.
GRID = [
    lambda: (SchemeParameters.full(4, n_codes=64), 64),
    lambda: (SchemeParameters.full(4, n_codes=64, dispersal=2), 64),
    lambda: (SchemeParameters.reduced(8, 4, n_codes=256, dispersal=4),
             256),
    lambda: (SchemeParameters.full(4, n_codes=1000), 1000),
    lambda: (SchemeParameters.full(2), None),
    lambda: (SchemeParameters.full(2, dispersal=2), None),
    # Large raw domain: no fused codec, but batching still applies.
    lambda: (SchemeParameters.full(4), None),
]


def build_store(make, fast_path, bucket_capacity=8, automaton=True):
    params, n_codes = make()
    encoder = (
        FrequencyEncoder.train(
            [t.encode("ascii") for t in TEXTS],
            params.chunk_bytes, n_codes,
        )
        if n_codes is not None
        else None
    )
    store = EncryptedSearchableStore(
        params, encoder=encoder, bucket_capacity=bucket_capacity,
        fast_path=fast_path, automaton=automaton,
    )
    for rid, text in enumerate(TEXTS):
        store.put(rid, text)
    return store


def assert_stores_agree(fast, reference, patterns=PATTERNS):
    minimum = fast.params.min_query_length
    patterns = [p for p in patterns if len(p) >= minimum]
    assert patterns, "grid entry left no searchable pattern"
    for pattern in patterns:
        a = fast.search(pattern)
        b = reference.search(pattern)
        assert a.candidates == b.candidates, pattern
        assert a.matches == b.matches, pattern
        assert a.cost.bytes == b.cost.bytes, pattern
        assert a.cost.messages == b.cost.messages, pattern


class TestChunkIndexEquivalence:
    @pytest.mark.parametrize("make", GRID)
    def test_answers_and_wire_costs_identical(self, make):
        fast = build_store(make, fast_path=True)
        reference = build_store(make, fast_path=False)
        assert_stores_agree(fast, reference)
        assert fast.network.stats.bytes == reference.network.stats.bytes

    def test_batch_and_conjunctive_entry_points(self):
        make = GRID[1]
        fast = build_store(make, fast_path=True)
        reference = build_store(make, fast_path=False)
        fa = fast.search_batch(["SCHWARZ ", "WITOLD 12"])
        rb = reference.search_batch(["SCHWARZ ", "WITOLD 12"])
        for pattern in fa:
            assert fa[pattern].candidates == rb[pattern].candidates
            assert fa[pattern].cost.bytes == rb[pattern].cost.bytes
        a = fast.search_all(["SCHWARZ ", "THOMAS J"])
        b = reference.search_all(["SCHWARZ ", "THOMAS J"])
        assert a.matches == b.matches
        assert a.cost.bytes == b.cost.bytes

    def test_mutations_invalidate_haystacks(self):
        """Search / mutate / search: the batched store must track the
        reference store through inserts, overwrites and deletes."""
        make = GRID[0]
        fast = build_store(make, fast_path=True)
        reference = build_store(make, fast_path=False)
        for store in (fast, reference):
            store.search("SCHWARZ ")          # haystacks built
            store.put(99, "FRESH RECORD ONE")  # insert
            store.put(0, "REPLACED CONTENT")   # overwrite rid 0
            store.delete(1)                    # delete
        assert_stores_agree(
            fast, reference,
            ["SCHWARZ ", "FRESH RE", "REPLACED", "WITOLD 12"],
        )
        # Retired content must no longer match anywhere.
        assert fast.search("THOMAS J").candidates == (
            reference.search("THOMAS J").candidates
        )


class TestWordStoreEquivalence:
    def test_answers_positions_and_costs_identical(self):
        stores = [
            EncryptedWordStore(b"word-equiv", bucket_capacity=4,
                               fast_path=fast_path)
            for fast_path in (True, False)
        ]
        for store in stores:
            for rid, text in enumerate(TEXTS):
                store.put(rid, text)
        fast, reference = stores
        for word in ("SCHWARZ", "THOMAS", "453-2234", "MISSING",
                     "AAAABBBBCCCCDDDD"):
            a = fast.search(word)
            b = reference.search(word)
            assert a.matches == b.matches, word
            assert a.positions == b.positions, word
            assert a.cost.bytes == b.cost.bytes, word
            assert a.cost.messages == b.cost.messages, word
        assert fast.network.stats.bytes == reference.network.stats.bytes

    def test_mutations_tracked(self):
        stores = [
            EncryptedWordStore(b"word-mut", bucket_capacity=4,
                               fast_path=fast_path)
            for fast_path in (True, False)
        ]
        for store in stores:
            for rid, text in enumerate(TEXTS):
                store.put(rid, text)
            store.search("THOMAS")
            store.put(0, "GOODBYE WORLD")   # overwrite
            store.delete(1)
            store.put(50, "THOMAS AGAIN")
        fast, reference = stores
        for word in ("THOMAS", "SCHWARZ", "GOODBYE", "WITOLD"):
            assert fast.search(word).matches == (
                reference.search(word).matches
            ), word


class TestCompressedEquivalence:
    def test_answers_and_costs_identical(self):
        corpus = [t.encode("ascii") for t in TEXTS]
        stores = [
            CompressedSearchStore(b"csi-equiv", corpus,
                                  bucket_capacity=4,
                                  fast_path=fast_path)
            for fast_path in (True, False)
        ]
        for store in stores:
            for rid, text in enumerate(TEXTS):
                store.put(rid, text)
        fast, reference = stores
        # Fast and reference paths must build identical index streams
        # (translate table ≡ per-code PRP loop) ...
        assert {
            r.rid: r.content for r in fast.index_file.all_records()
        } == {
            r.rid: r.content for r in reference.index_file.all_records()
        }
        # ... and answer identically at identical wire cost.
        for pattern in ("CHWAR", "WITOLD", "BBBBCC", "ZZZ"):
            a = fast.search(pattern)
            b = reference.search(pattern)
            assert a.candidates == b.candidates, pattern
            assert a.matches == b.matches, pattern
            assert a.cost.bytes == b.cost.bytes, pattern

    def test_mutations_tracked(self):
        corpus = [t.encode("ascii") for t in TEXTS]
        stores = [
            CompressedSearchStore(b"csi-mut", corpus,
                                  bucket_capacity=4,
                                  fast_path=fast_path)
            for fast_path in (True, False)
        ]
        for store in stores:
            for rid, text in enumerate(TEXTS):
                store.put(rid, text)
            store.search("THOMAS")
            store.put(0, "REPLACEMENT TEXT")
            store.delete(2)
        fast, reference = stores
        for pattern in ("THOMAS", "PLACEMEN", "BBBBCC"):
            assert fast.search(pattern).candidates == (
                reference.search(pattern).candidates
            ), pattern


class TestAutomatonEquivalence:
    """Three-rung ladder: automaton ≡ per-needle ≡ scalar.

    ``automaton=False`` pins batched scans to the per-needle sweeps
    (the middle rung); ``fast_path=False`` pins the scalar per-record
    loop.  Answers and wire costs must be byte-identical across all
    three on every layout, for single searches and ``search_batch``.
    """

    def _ladder(self, make):
        return (
            build_store(make, fast_path=True, automaton=True),
            build_store(make, fast_path=True, automaton=False),
            build_store(make, fast_path=False),
        )

    @pytest.mark.parametrize("make", GRID)
    def test_search_grid(self, make):
        automaton, per_needle, scalar = self._ladder(make)
        minimum = automaton.params.min_query_length
        patterns = [p for p in PATTERNS if len(p) >= minimum]
        assert patterns, "grid entry left no searchable pattern"
        for pattern in patterns:
            a, b, c = (
                store.search(pattern)
                for store in (automaton, per_needle, scalar)
            )
            assert a.candidates == b.candidates == c.candidates, pattern
            assert a.matches == b.matches == c.matches, pattern
            assert a.cost.bytes == b.cost.bytes == c.cost.bytes, pattern
            assert a.cost.messages == b.cost.messages == (
                c.cost.messages
            ), pattern
        assert automaton.network.stats.bytes == (
            per_needle.network.stats.bytes
        ) == scalar.network.stats.bytes

    @pytest.mark.parametrize("make", GRID)
    def test_search_batch_grid(self, make):
        automaton, per_needle, scalar = self._ladder(make)
        minimum = automaton.params.min_query_length
        patterns = [p for p in PATTERNS if len(p) >= minimum]
        results = [
            store.search_batch(patterns)
            for store in (automaton, per_needle, scalar)
        ]
        for pattern in patterns:
            a, b, c = (per_store[pattern] for per_store in results)
            assert a.candidates == b.candidates == c.candidates, pattern
            assert a.matches == b.matches == c.matches, pattern
            assert a.cost.bytes == b.cost.bytes == c.cost.bytes, pattern
            assert a.cost.messages == b.cost.messages == (
                c.cost.messages
            ), pattern

    def test_mutations_invalidate_gram_indexes(self):
        """The gram index lives in the haystack's view memo, so any
        record mutation must drop it with the haystack."""
        make = GRID[1]
        automaton, per_needle, scalar = self._ladder(make)
        for store in (automaton, per_needle, scalar):
            store.search_batch(["SCHWARZ ", "WITOLD 12"])  # indexes built
            store.put(99, "FRESH RECORD ONE")
            store.put(0, "REPLACED CONTENT")
            store.delete(1)
        patterns = ["SCHWARZ ", "FRESH RE", "REPLACED", "WITOLD 12"]
        assert_stores_agree(automaton, per_needle, patterns)
        assert_stores_agree(automaton, scalar, patterns)

    def test_compressed_ladder_and_batch(self):
        corpus = [t.encode("ascii") for t in TEXTS]
        stores = [
            CompressedSearchStore(b"csi-auto", corpus,
                                  bucket_capacity=4,
                                  fast_path=fast_path,
                                  automaton=automaton)
            for fast_path, automaton in (
                (True, True), (True, False), (False, True),
            )
        ]
        for store in stores:
            for rid, text in enumerate(TEXTS):
                store.put(rid, text)
        patterns = ["CHWAR", "WITOLD", "BBBBCC", "ZZZ", "THOMAS"]
        singles = [
            {p: store.search(p) for p in patterns} for store in stores
        ]
        batches = [store.search_batch(patterns) for store in stores]
        for pattern in patterns:
            a, b, c = (per_store[pattern] for per_store in singles)
            assert a.candidates == b.candidates == c.candidates, pattern
            assert a.matches == b.matches == c.matches, pattern
            assert a.cost.bytes == b.cost.bytes == c.cost.bytes, pattern
            x, y, z = (per_store[pattern] for per_store in batches)
            assert x.candidates == y.candidates == z.candidates, pattern
            assert x.matches == y.matches == z.matches, pattern
            assert x.candidates == a.candidates, pattern
            assert x.matches == a.matches, pattern
            assert x.cost.bytes == y.cost.bytes == z.cost.bytes, pattern

    def test_word_store_batch_matches_singles(self):
        stores = [
            EncryptedWordStore(b"word-batch", bucket_capacity=4,
                               fast_path=fast_path)
            for fast_path in (True, False)
        ]
        for store in stores:
            for rid, text in enumerate(TEXTS):
                store.put(rid, text)
        fast, reference = stores
        words = ["SCHWARZ", "THOMAS", "453-2234", "MISSING", "ANA"]
        fast_batch = fast.search_batch(words)
        reference_batch = reference.search_batch(words)
        for word in words:
            single = fast.search(word)
            a = fast_batch[word]
            b = reference_batch[word]
            assert a.matches == b.matches == single.matches, word
            assert a.positions == b.positions == single.positions, word
            assert a.cost.bytes == b.cost.bytes, word
            assert a.cost.messages == b.cost.messages, word


class TestMatcherUnit:
    """PlanScanMatcher: per-record and per-bucket forms agree."""

    def _bucket(self, store):
        """Harvest every index record of a store into one dict, as if
        the whole file were a single bucket."""
        return {
            record.rid: record
            for record in store.index_file.all_records()
        }

    def test_per_record_vs_match_bucket(self):
        store = build_store(GRID[1], fast_path=True,
                            bucket_capacity=1024)
        records = self._bucket(store)
        for pattern in PATTERNS:
            plan = store.pipeline.plan_query(pattern.encode("ascii"))
            matcher = PlanScanMatcher(plan, store.decode_index_key)
            scalar = [
                hit for record in records.values()
                if (hit := matcher(record)) is not None
            ]
            batched = matcher.match_bucket(BucketHaystack(records))
            assert [
                (h.rid, h.group, h.site, h.positions) for h in scalar
            ] == [
                (h.rid, h.group, h.site, h.positions) for h in batched
            ], pattern

    def test_batched_disabled_when_fast_path_off(self):
        store = build_store(GRID[0], fast_path=False)
        plan = store.pipeline.plan_query(b"SCHWARZ ")
        matcher = PlanScanMatcher(plan, store.decode_index_key,
                                  batched=False)
        assert matcher.match_bucket is None
        assert getattr(matcher, "match_bucket", None) is None


class TestMergeInvalidation:
    def test_shrinking_file_keeps_batched_scans_exact(self):
        """Deletes that trigger merges (bucket retirement + record
        re-absorption) must drop stale haystacks."""
        from repro.core.compressed_index import CompressedScanMatcher

        file = LHStarFile(name="shrinker", bucket_capacity=4,
                          shrink=True)
        for rid in range(32):
            file.insert(rid, b"PAYLOAD-%03d" % rid)
        needle = b"PAYLOAD"
        batched = CompressedScanMatcher((needle,))
        scalar = CompressedScanMatcher((needle,), batched=False)
        assert sorted(file.scan(batched, request_size=8)) == sorted(
            file.scan(scalar, request_size=8)
        )
        for rid in range(24):        # force merges
            file.delete(rid)
        assert sorted(file.scan(batched, request_size=8)) == sorted(
            file.scan(scalar, request_size=8)
        ) == sorted(range(24, 32))

    def test_split_invalidation(self):
        """Scans straddling splits see exactly the resident records."""
        from repro.core.compressed_index import CompressedScanMatcher

        file = LHStarFile(name="splitter", bucket_capacity=2)
        matcher = CompressedScanMatcher((b"R-",))
        expected: list[int] = []
        for rid in range(20):
            file.insert(rid, b"R-%02d" % rid)
            expected.append(rid)
            assert sorted(file.scan(matcher, request_size=4)) == expected

    def test_multi_needle_automaton_across_split_and_merge(self):
        """Enough same-length needles to engage the gram index, swept
        across splits and merges: the index must die with each stale
        haystack, matching the per-needle and scalar rungs exactly."""
        from repro.core.compressed_index import (
            MultiCompressedScanMatcher,
        )

        groups = tuple(
            (b"PAY%d" % digit,) for digit in range(5)
        )  # 5 needles of one length on the shared lane: index engaged
        ladder = [
            MultiCompressedScanMatcher(groups),
            MultiCompressedScanMatcher(groups, automaton=False),
            MultiCompressedScanMatcher(groups, batched=False),
        ]
        file = LHStarFile(name="auto-churn", bucket_capacity=4,
                          shrink=True)
        for rid in range(32):
            file.insert(rid, b"xxPAY%dxx" % (rid % 5))
        first = [
            sorted(file.scan(matcher, request_size=16))
            for matcher in ladder
        ]
        assert first[0] == first[1] == first[2]
        for rid in range(24):        # force merges
            file.delete(rid)
        after = [
            sorted(file.scan(matcher, request_size=16))
            for matcher in ladder
        ]
        assert after[0] == after[1] == after[2]
        assert [rid for rid, _groups in after[0]] == list(range(24, 32))
