"""Cost accounting invariants across the search entry points.

Regressions for two bookkeeping bugs: ``search_batch``/``search_all``
used to snapshot cost *before* verification while ``search`` snapshots
after (so batch costs silently excluded the candidate fetches), and
scan-reply hit accounting billed every structured hit a flat 8 bytes
regardless of its positions payload.
"""

import pytest

from repro.core import (
    CompressedSearchStore,
    EncryptedSearchableStore,
    EncryptedWordStore,
    SchemeParameters,
)
from repro.core.search import SiteHit
from repro.sdds.lhstar import _hit_size

RECORDS = {
    1: "SCHWARZ THOMAS",
    2: "LITWIN WITOLD",
    3: "THOMAS SCHWARZ",
    4: "TSUI PETER",
    5: "SCHWARZMANN THOMAS",
}


def fresh_store():
    store = EncryptedSearchableStore(SchemeParameters.full(4))
    for rid, text in RECORDS.items():
        store.put(rid, text)
    return store


class TestEntryPointParity:
    def test_single_vs_batch_total_cost(self):
        """search(p) and search_batch([p]) do identical work and must
        report identical totals — including verification."""
        single = fresh_store().search("SCHWARZ")
        batch = fresh_store().search_batch(["SCHWARZ"])["SCHWARZ"]
        assert single.matches == batch.matches
        assert single.cost.messages == batch.cost.messages
        assert single.cost.bytes == batch.cost.bytes
        assert single.scan_cost.bytes == batch.scan_cost.bytes
        assert single.verify_cost.bytes == batch.verify_cost.bytes
        assert single.elapsed == pytest.approx(batch.elapsed)

    def test_batch_cost_includes_verification(self):
        """The old bug: per-pattern batch results carried only the
        scan-round cost.  Candidates exist, so verification fetched
        records and the total must exceed the scan alone."""
        result = fresh_store().search_batch(["SCHWARZ"])["SCHWARZ"]
        assert result.candidates
        assert result.verify_cost.messages > 0
        assert result.cost.messages > result.scan_cost.messages

    def test_batch_results_share_round_totals(self):
        """One scan round + one shared verification pass: every
        pattern in the batch reports the same (shared) totals."""
        results = fresh_store().search_batch(["SCHWARZ", "THOMAS"])
        a, b = results["SCHWARZ"], results["THOMAS"]
        assert a.cost.messages == b.cost.messages
        assert a.scan_cost.bytes == b.scan_cost.bytes
        assert a.elapsed == b.elapsed

    def test_search_all_cost_includes_verification(self):
        result = fresh_store().search_all(["SCHWARZ", "THOMAS"])
        assert result.matches == frozenset({1, 3, 5})
        assert result.verify_cost.messages > 0
        assert result.cost.messages == (
            result.scan_cost.messages + result.verify_cost.messages
        )

    def test_scan_plus_verify_equals_total(self):
        result = fresh_store().search("SCHWARZ")
        assert result.cost.messages == (
            result.scan_cost.messages + result.verify_cost.messages
        )
        assert result.cost.bytes == (
            result.scan_cost.bytes + result.verify_cost.bytes
        )

    def test_unverified_search_has_zero_verify_cost(self):
        result = fresh_store().search("SCHWARZ", verify=False)
        assert result.verify_cost.messages == 0
        assert result.cost.bytes == result.scan_cost.bytes

    def test_search_short_accounts_verification(self):
        store = fresh_store()
        result = store.search_short("TSU")
        assert result.matches == frozenset({4})
        assert result.cost.messages == (
            result.scan_cost.messages + result.verify_cost.messages
        )
        assert result.verify_cost.messages > 0


class TestSection8RequestBilling:
    """The §8 stores bill the real serialized query, not a constant.

    Regressions for two bookkeeping bugs: the word store hardcoded
    ``request_size=32 + 16`` regardless of the trapdoor's actual wire
    size, and the compressed index billed the bare sum of needle bytes
    with no framing (variants have differing lengths, so the payload
    is not decodable without length prefixes).
    """

    def test_word_search_bills_trapdoor_wire_size(self):
        store = EncryptedWordStore(b"billing-words")
        for rid, text in RECORDS.items():
            store.put(rid, text)
        trapdoor = store._swp.trapdoor("SCHWARZ")
        # X (16B pre-encrypted word) + k (16B word key).
        assert trapdoor.wire_size == 32
        result = store.search("SCHWARZ")
        scans = result.cost.by_kind["scan"]
        assert scans > 0
        assert result.cost.bytes_by_kind["scan"] == (
            scans * trapdoor.wire_size
        )

    def test_compressed_search_bills_framed_needles(self):
        corpus = [t.encode("ascii") for t in RECORDS.values()]
        store = CompressedSearchStore(b"billing-csi", corpus)
        for rid, text in RECORDS.items():
            store.put(rid, text)
        pattern = "SCHWARZ"
        needles = [
            store._encrypt_stream(variant)
            for variant in store.compressor.pattern_variants(
                pattern.encode("ascii")
            )
        ]
        framed = 1 + sum(2 + len(n) for n in needles)
        # Framing must cost more than the bare needle bytes the old
        # accounting billed.
        assert framed > sum(len(n) for n in needles)
        result = store.search(pattern)
        scans = result.cost.by_kind["scan"]
        assert scans > 0
        assert result.cost.bytes_by_kind["scan"] == scans * framed


class TestHitSizeAccounting:
    def test_site_hit_billed_by_wire_size(self):
        hit = SiteHit(rid=1, group=0, site=0,
                      positions={0: [0, 4], 2: [1]})
        # 8B rid + 1B group + 1B site, per alignment 2B tag + 4B/pos.
        assert hit.wire_size == 10 + (2 + 8) + (2 + 4)
        assert _hit_size(hit) == hit.wire_size

    def test_hit_size_grows_with_positions(self):
        small = SiteHit(rid=1, group=0, site=0, positions={0: [0]})
        large = SiteHit(rid=1, group=0, site=0,
                        positions={0: list(range(50))})
        assert _hit_size(large) > _hit_size(small)

    def test_containers_accounted_elementwise(self):
        hit = SiteHit(rid=1, group=0, site=0, positions={})
        assert _hit_size((b"abc", hit)) == 3 + hit.wire_size
        assert _hit_size([1, 2, 3]) == 24

    def test_bytes_and_scalars(self):
        assert _hit_size(b"abcd") == 4
        assert _hit_size(bytearray(b"ab")) == 2
        assert _hit_size(7) == 8

    def test_scan_reply_bytes_reflect_hits(self):
        """A matching pattern's scan replies carry hit payloads; the
        same-length non-matching pattern's replies are bare headers."""
        store = fresh_store()
        hit = store.search("SCHWARZ", verify=False)
        miss = store.search("QQQQQQQ", verify=False)
        assert hit.candidates and not miss.candidates
        hit_reply = hit.scan_cost.bytes_by_kind["scan_reply"]
        miss_reply = miss.scan_cost.bytes_by_kind["scan_reply"]
        assert hit_reply > miss_reply
