"""The §2.3 short-string kludge."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EncryptedSearchableStore, SchemeParameters

RECORDS = {
    1: "YU MING",
    2: "WU KEVIN",
    3: "YUEN PETER",
    4: "LAYU THOMAS",
    5: "NGUYEN ANH",
}


@pytest.fixture(scope="module")
def store():
    store = EncryptedSearchableStore(SchemeParameters.full(4))
    for rid, text in RECORDS.items():
        store.put(rid, text)
    return store


class TestSearchShort:
    def test_finds_all_occurrences(self, store):
        """'YU' occurs in YU, YUEN and LAYU — all must surface."""
        result = store.search_short("YU")
        assert result.matches == frozenset({1, 3, 4})

    def test_record_final_occurrence_found(self):
        store = EncryptedSearchableStore(SchemeParameters.full(4))
        store.put(9, "THOMAS YU")  # 'YU' right before the terminator
        assert 9 in store.search_short("YU").matches

    def test_three_symbol_pattern(self, store):
        result = store.search_short("MIN")
        assert result.matches == frozenset({1})

    def test_full_length_pattern_delegates(self, store):
        normal = store.search("YUEN")
        short = store.search_short("YUEN")
        assert short.matches == normal.matches
        assert short.cost.messages == pytest.approx(
            normal.cost.messages, abs=normal.cost.messages
        )

    def test_wastefulness_is_measurable(self, store):
        """The paper's caveat: the kludge is expensive on the wire.

        Batching keeps the message count flat (one scan round), but
        the needle payload fans out with the alphabet — the byte
        counter shows the waste, and its size alone tells a snooper
        the query was short (the paper's security caveat)."""
        short = store.search_short("YU")
        normal = store.search("YUEN")
        assert short.cost.bytes > 50 * normal.cost.bytes

    def test_no_match(self, store):
        assert store.search_short("QX").matches == frozenset()


NAMES = st.text(alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZ ", min_size=4,
                max_size=16)


@settings(max_examples=8)
@given(st.lists(NAMES, min_size=1, max_size=4, unique=True), st.data())
def test_property_short_search_recall(texts, data):
    store = EncryptedSearchableStore(SchemeParameters.full(4))
    for rid, text in enumerate(texts):
        store.put(rid, text)
    rid = data.draw(st.integers(0, len(texts) - 1))
    text = texts[rid]
    start = data.draw(st.integers(0, len(text) - 2))
    pattern = text[start:start + 2]
    result = store.search_short(pattern)
    expected = {r for r, t in enumerate(texts) if pattern in t}
    assert expected <= result.matches
    assert result.matches == expected