"""The query-plan explainer."""

import pytest

from repro.core import (
    EncryptedSearchableStore,
    FrequencyEncoder,
    QueryTooShortError,
    SchemeParameters,
)


def trained_store():
    texts = [b"SCHWARZ THOMAS", b"LITWIN WITOLD", b"MARTINEZ MARIA"]
    store = EncryptedSearchableStore(
        SchemeParameters.full(4, n_codes=32),
        encoder=FrequencyEncoder.train(texts, 4, 32),
    )
    for rid, text in enumerate(texts):
        store.put(rid, text.decode())
    return store


class TestExplain:
    def test_mentions_rule_and_alignments(self):
        text = trained_store().explain("MARTINEZ")
        assert ">= 4 of 4 chunking groups" in text
        assert "alignments used: [0, 1, 2, 3]" in text

    def test_fp_estimate_with_encoder(self):
        assert "random-text FP estimate" in \
            trained_store().explain("MARTINEZ")

    def test_no_estimate_without_encoder(self):
        store = EncryptedSearchableStore(SchemeParameters.full(4))
        assert "FP estimate" not in store.explain("SCHWARZ")

    def test_short_pattern_raises(self):
        with pytest.raises(QueryTooShortError):
            trained_store().explain("ABC")

    def test_reduced_layout_rule(self):
        store = EncryptedSearchableStore(SchemeParameters.reduced(8, 4))
        text = store.explain("ALEJANDRO")
        assert ">= 1 of 4 chunking groups" in text

    def test_dispersal_mentioned(self):
        store = EncryptedSearchableStore(
            SchemeParameters.full(4, dispersal=2)
        )
        assert "all 2 dispersal sites" in store.explain("SCHWARZ")
