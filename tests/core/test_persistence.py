"""Whole-store persistence, corpus loading, batched queries."""

import json

import pytest

from repro.core import (
    ConfigurationError,
    EncryptedSearchableStore,
    FrequencyEncoder,
    SchemeParameters,
)
from repro.core.serialization import store_from_json, store_to_json
from repro.data.phonebook import Directory

RECORDS = {
    1: "SCHWARZ THOMAS",
    2: "LITWIN WITOLD",
    3: "TSUI PETER",
}


def make_store():
    texts = [t.encode() for t in RECORDS.values()]
    store = EncryptedSearchableStore(
        SchemeParameters.full(4, n_codes=32),
        encoder=FrequencyEncoder.train(texts, 4, 32),
    )
    for rid, text in RECORDS.items():
        store.put(rid, text)
    return store


class TestStorePersistence:
    def test_roundtrip_search(self):
        dump = store_to_json(make_store())
        restored = store_from_json(dump)
        for rid, text in RECORDS.items():
            assert restored.get(rid) == text
            name = text.split(" ")[0]
            assert rid in restored.search(name).matches

    def test_dump_contains_no_plaintext(self):
        dump = store_to_json(make_store())
        assert "SCHWARZ" not in dump
        assert "LITWIN" not in dump

    def test_restored_store_is_mutable(self):
        restored = store_from_json(store_to_json(make_store()))
        restored.put(9, "NEW RECORD HERE")
        assert 9 in restored.search("RECORD").matches
        assert restored.delete(1)

    def test_bucket_capacity_override(self):
        restored = store_from_json(
            store_to_json(make_store()), bucket_capacity=2
        )
        assert restored.get(2) == RECORDS[2]

    def test_version_check(self):
        data = json.loads(store_to_json(make_store()))
        data["version"] = 0
        with pytest.raises(ConfigurationError):
            store_from_json(json.dumps(data))


class TestDirectoryLoading:
    def test_tab_separated(self):
        directory = Directory.from_lines([
            "SCHWARZ THOMAS\t415-409-0001",
            "",
            "LITWIN WITOLD\t415-409-0002",
        ])
        assert len(directory) == 2
        assert directory.entries[0].last_name == "SCHWARZ"
        assert directory.entries[1].rid == 4154090002

    def test_figure4_format(self):
        from repro.data.corpus import format_record
        lines = [format_record("AKIMOTO YOSHIMI", "415-409-0019")]
        directory = Directory.from_lines(lines)
        assert directory.entries[0].name == "AKIMOTO YOSHIMI"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Directory.from_lines(["", "  "])


class TestSearchBatch:
    def test_matches_individual_searches(self):
        store = make_store()
        patterns = ["SCHWARZ", "WITOLD", "PETE"]
        batch = store.search_batch(patterns)
        for pattern in patterns:
            assert batch[pattern].matches == \
                store.search(pattern).matches

    def test_one_round_cheaper_than_sequential(self):
        store = make_store()
        patterns = ["SCHWARZ", "WITOLD", "PETER", "THOMAS"]
        batch_msgs = store.search_batch(
            patterns, verify=False
        )["SCHWARZ"].cost.messages
        sequential = sum(
            store.search(p, verify=False).cost.messages
            for p in patterns
        )
        assert batch_msgs < sequential

    def test_duplicate_patterns_deduplicated(self):
        store = make_store()
        batch = store.search_batch(["SCHWARZ", "SCHWARZ"])
        assert set(batch) == {"SCHWARZ"}

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            make_store().search_batch([])
