"""Fused-codec kernels: fast path ≡ reference path, byte for byte.

The whole value of :mod:`repro.core.kernels` rests on one invariant —
the fused tables are an *optimisation*, never a semantic change.  The
grid here sweeps (chunk bits, dispersal k, piece bits, Stage-2 on/off,
alignment-populating pattern lengths) and asserts the fused pipeline
and the per-chunk reference pipeline produce identical index streams
and identical query needles.  Cache-keying tests pin that distinct
keys, matrices and parameters never share a table.
"""

import pytest

from repro.core import (
    FrequencyEncoder,
    IndexPipeline,
    SchemeParameters,
)
from repro.core.dispersion import Disperser
from repro.core.kernels import (
    CODEC_CACHE_ENV,
    _load_codec_table,
    clear_codec_cache,
    codec_cache_size,
    fused_codec,
    set_codec_cache_dir,
)
from repro.crypto.feistel import FeistelPRP
from repro.gf import GF2, identity_matrix
from repro.obs.metrics import MetricsRegistry, use_metrics

TEXTS = [
    b"SCHWARZ THOMAS J 453-2234\x00",
    b"LITWIN WITOLD 123-4567\x00",
    b"AAAABBBBCCCCDDDD\x00",
    b"X\x00",
    b"MARTINEZ-GARCIA ANA 999-0000\x00",
]

PATTERNS = [b"SCHWARZ ", b"WITOLD 12", b"ABCDEFGHIJKL", b"AAAABBBB"]

# (params-factory, n_codes) covering raw/Stage-2 chunk domains of
# 6..16 bits, k in {1, 2, 4}, piece widths 1 and 2 bytes, full and
# reduced layouts.
GRID = [
    # Stage 2 on: 6-bit codes, k=1 and k=2 (translate-table path)
    (lambda: SchemeParameters.full(4, n_codes=64), 64),
    (lambda: SchemeParameters.full(4, n_codes=64, dispersal=2), 64),
    # Stage 2 on: 8-bit codes, k=4 over GF(2^2)
    (lambda: SchemeParameters.reduced(8, 4, n_codes=256, dispersal=4),
     256),
    # Stage 2 on: >256 codes -> 2-byte pieces (array packing path)
    (lambda: SchemeParameters.full(4, n_codes=1000), 1000),
    (lambda: SchemeParameters.full(4, n_codes=1000, dispersal=2), 1000),
    # Raw 8-bit and 16-bit chunks (byte-row path), with dispersal
    (lambda: SchemeParameters.full(1), None),
    (lambda: SchemeParameters.full(2), None),
    (lambda: SchemeParameters.full(2, dispersal=2), None),
    # ECB off: identity Stage 1 still fuses
    (lambda: SchemeParameters.full(4, n_codes=64, encrypt=False), 64),
    # Large raw domain: must fall back to the reference path
    (lambda: SchemeParameters.full(4), None),
]


def _pipelines(make_params, n_codes):
    params = make_params()
    encoder = (
        FrequencyEncoder.train(TEXTS, params.chunk_bytes, n_codes)
        if n_codes is not None
        else None
    )
    reference_encoder = (
        FrequencyEncoder.train(TEXTS, params.chunk_bytes, n_codes)
        if n_codes is not None
        else None
    )
    return (
        IndexPipeline(params, encoder),
        IndexPipeline(params, reference_encoder, fast_path=False),
    )


class TestEquivalence:
    @pytest.mark.parametrize("make_params,n_codes", GRID)
    def test_index_streams_byte_identical(self, make_params, n_codes):
        fast, reference = _pipelines(make_params, n_codes)
        for text in TEXTS:
            assert (
                fast.build_index_streams(text)
                == reference.build_index_streams(text)
            )

    @pytest.mark.parametrize("make_params,n_codes", GRID)
    def test_query_needles_byte_identical(self, make_params, n_codes):
        from repro.core.errors import QueryTooShortError

        fast, reference = _pipelines(make_params, n_codes)
        for pattern in PATTERNS:
            try:
                expected = reference.plan_query(pattern)
            except QueryTooShortError:
                with pytest.raises(QueryTooShortError):
                    fast.plan_query(pattern)
                continue
            plan = fast.plan_query(pattern)
            assert plan.needles == expected.needles
            assert plan.alignments == expected.alignments
            assert plan.required_groups == expected.required_groups

    def test_sliding_build_matches_reference_for_all_lengths(self):
        """The sliding-window record-build fast path: shared one-pass
        extraction plus padded head/tail reconstruction must equal the
        per-group ``record_chunks`` reference for every content length
        and both partial-chunk policies."""
        sample = b"SCHWARZ THOMAS J 453-2234\x00"
        for drop_partial in (False, True):
            params = SchemeParameters.full(
                4, n_codes=64, drop_partial_chunks=drop_partial,
            )
            encoder = FrequencyEncoder.train(TEXTS, 4, 64)
            fast = IndexPipeline(params, encoder)
            reference = IndexPipeline(
                params, FrequencyEncoder.train(TEXTS, 4, 64),
                fast_path=False,
            )
            for length in range(len(sample)):
                text = sample[:length]
                assert (
                    fast.build_index_streams(text)
                    == reference.build_index_streams(text)
                ), (drop_partial, length)

    def test_fallback_for_large_domain(self):
        # 32-bit raw chunks exceed the fused bound: no codec.
        pipeline = IndexPipeline(SchemeParameters.full(4))
        assert pipeline.codec(0) is None

    def test_fast_path_off_never_builds(self):
        pipeline = IndexPipeline(
            SchemeParameters.full(2), fast_path=False
        )
        assert pipeline.codec(0) is None

    def test_warm_builds_every_group(self):
        pipeline = IndexPipeline(SchemeParameters.full(2))
        pipeline.warm()
        for group in range(pipeline.params.layout.group_count):
            assert pipeline.codec(group) is not None


class TestCacheKeying:
    def setup_method(self):
        clear_codec_cache()

    def test_same_key_and_parameters_share_a_table(self):
        prp = FeistelPRP(b"key-a", 64)
        first = fused_codec(prp, None, piece_width=1, domain=64)
        second = fused_codec(
            FeistelPRP(b"key-a", 64), None, piece_width=1, domain=64
        )
        assert first is second
        assert codec_cache_size() == 1

    def test_different_keys_never_share(self):
        a = fused_codec(
            FeistelPRP(b"key-a", 64), None, piece_width=1, domain=64
        )
        b = fused_codec(
            FeistelPRP(b"key-b", 64), None, piece_width=1, domain=64
        )
        assert a is not b
        assert a.site_streams([5]) != b.site_streams([5])

    def test_different_rounds_never_share(self):
        a = fused_codec(
            FeistelPRP(b"key-a", 64, rounds=10), None, 1, 64
        )
        b = fused_codec(
            FeistelPRP(b"key-a", 64, rounds=12), None, 1, 64
        )
        assert a is not b

    def test_different_matrices_never_share(self):
        prp = FeistelPRP(b"key-a", 256)
        cauchy = Disperser(k=2, piece_bits=4)
        identity = Disperser(
            k=2, piece_bits=4, matrix=identity_matrix(GF2(4), 2)
        )
        a = fused_codec(prp, cauchy, piece_width=1, domain=256)
        b = fused_codec(prp, identity, piece_width=1, domain=256)
        assert a is not b
        assert a.site_streams([0xAB]) != b.site_streams([0xAB])

    def test_no_prp_and_prp_never_share(self):
        a = fused_codec(None, None, piece_width=1, domain=64)
        b = fused_codec(
            FeistelPRP(b"key-a", 64), None, piece_width=1, domain=64
        )
        assert a is not b

    def test_oversized_domain_returns_none(self):
        prp = FeistelPRP(b"key-a", 1 << 24)
        assert fused_codec(prp, None, 3, 1 << 24) is None

    def test_metrics_exported(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            prp = FeistelPRP(b"key-m", 64)
            fused_codec(prp, None, 1, 64)
            fused_codec(FeistelPRP(b"key-m", 64), None, 1, 64)
        assert registry.counter("kernels.codec.miss").value == 1
        assert registry.counter("kernels.codec.hit").value == 1
        assert registry.histogram(
            "kernels.codec.build_seconds"
        ).count == 1


class TestPlanCache:
    def test_repeated_pattern_reuses_plan(self):
        registry = MetricsRegistry()
        pipeline = IndexPipeline(SchemeParameters.full(2))
        with use_metrics(registry):
            first = pipeline.plan_query(b"ABCD")
            second = pipeline.plan_query(b"ABCD")
        assert first is second
        assert pipeline.plan_cache_size() == 1
        assert registry.counter("kernels.plan.miss").value == 1
        assert registry.counter("kernels.plan.hit").value == 1

    def test_distinct_patterns_get_distinct_plans(self):
        pipeline = IndexPipeline(SchemeParameters.full(2))
        assert (
            pipeline.plan_query(b"ABCD")
            is not pipeline.plan_query(b"ABCE")
        )
        assert pipeline.plan_cache_size() == 2

    def test_cache_is_bounded(self):
        from repro.core.index import PLAN_CACHE_CAPACITY

        pipeline = IndexPipeline(SchemeParameters.full(2))
        for value in range(PLAN_CACHE_CAPACITY + 16):
            pipeline.plan_query(b"AB%04d" % value)
        assert pipeline.plan_cache_size() == PLAN_CACHE_CAPACITY


class TestStoreEquivalence:
    """Scheme level: a fused store is indistinguishable on the wire."""

    def test_search_answers_and_wire_costs_identical(self):
        from repro.core import EncryptedSearchableStore

        params = SchemeParameters.full(
            4, n_codes=64, dispersal=2, master_key=b"kernel-equiv"
        )
        stores = []
        for fast_path in (True, False):
            encoder = FrequencyEncoder.train(TEXTS, 4, 64)
            store = EncryptedSearchableStore(
                params, encoder=encoder, bucket_capacity=8,
                fast_path=fast_path,
            )
            for rid, text in enumerate(TEXTS):
                store.put(rid, text.rstrip(b"\x00").decode("ascii"))
            stores.append(store)
        fast, reference = stores
        fast_index = {
            r.rid: r.content for r in fast.index_file.all_records()
        }
        reference_index = {
            r.rid: r.content for r in reference.index_file.all_records()
        }
        assert fast_index == reference_index
        for pattern in ("SCHWARZ ", "WITOLD 12"):
            a = fast.search(pattern)
            b = reference.search(pattern)
            assert a.candidates == b.candidates
            assert a.matches == b.matches
        assert fast.network.stats.messages == (
            reference.network.stats.messages
        )
        assert fast.network.stats.bytes == reference.network.stats.bytes


class TestDiskCache:
    """Persisted codec tables: load ≡ build, damage-tolerant."""

    def setup_method(self):
        clear_codec_cache()

    def teardown_method(self):
        set_codec_cache_dir(None)
        clear_codec_cache()

    def test_off_by_default(self, tmp_path):
        fused_codec(FeistelPRP(b"key-d", 64), None, 1, 64)
        assert list(tmp_path.iterdir()) == []

    def test_roundtrip_is_byte_identical(self, tmp_path):
        set_codec_cache_dir(tmp_path)
        values = list(range(64)) * 3
        registry = MetricsRegistry()
        with use_metrics(registry):
            built = fused_codec(FeistelPRP(b"key-d", 64), None, 1, 64)
            clear_codec_cache()
            loaded = fused_codec(FeistelPRP(b"key-d", 64), None, 1, 64)
        assert built is not loaded
        assert built.site_streams(values) == loaded.site_streams(values)
        assert registry.counter("kernels.codec.disk_write").value == 1
        assert registry.counter("kernels.codec.disk_hit").value == 1
        assert registry.counter("kernels.codec.disk_miss").value == 1
        assert registry.histogram(
            "kernels.codec.build_seconds"
        ).count == 1  # the load produced no build

    def test_roundtrip_with_dispersal_and_wide_pieces(self, tmp_path):
        set_codec_cache_dir(tmp_path)
        for disperser, piece_width, domain in (
            (Disperser(k=2, piece_bits=4), 1, 256),
            (Disperser(k=2, piece_bits=8), 2, 1 << 16),
        ):
            clear_codec_cache()
            prp = FeistelPRP(b"key-w", domain)
            built = fused_codec(prp, disperser, piece_width, domain)
            clear_codec_cache()
            loaded = fused_codec(prp, disperser, piece_width, domain)
            probe = [0, 1, domain - 1, domain // 2]
            assert built.site_streams(probe) == loaded.site_streams(
                probe
            )
            assert loaded.sites == disperser.k

    def test_distinct_keys_get_distinct_files(self, tmp_path):
        set_codec_cache_dir(tmp_path)
        fused_codec(FeistelPRP(b"key-a", 64), None, 1, 64)
        fused_codec(FeistelPRP(b"key-b", 64), None, 1, 64)
        assert len(list(tmp_path.glob("codec-v*.bin"))) == 2

    def test_corrupt_file_rebuilds_cleanly(self, tmp_path):
        set_codec_cache_dir(tmp_path)
        reference = fused_codec(FeistelPRP(b"key-c", 64), None, 1, 64)
        streams = reference.site_streams(list(range(64)))
        (path,) = tmp_path.glob("codec-v*.bin")
        path.write_bytes(path.read_bytes()[:17])
        clear_codec_cache()
        registry = MetricsRegistry()
        with use_metrics(registry):
            rebuilt = fused_codec(
                FeistelPRP(b"key-c", 64), None, 1, 64
            )
        assert rebuilt.site_streams(list(range(64))) == streams
        assert registry.counter("kernels.codec.disk_miss").value == 1
        # the rebuild rewrote a healthy file
        loadable = _load_codec_table(path, 64, 1, 1)
        assert loadable is not None

    def test_env_var_activates_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv(CODEC_CACHE_ENV, str(tmp_path))
        fused_codec(FeistelPRP(b"key-e", 64), None, 1, 64)
        assert len(list(tmp_path.glob("codec-v*.bin"))) == 1
