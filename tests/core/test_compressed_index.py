"""The compression-based index store (§8's third design)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.compressed_index import CompressedSearchStore
from repro.core.errors import ConfigurationError

RECORDS = {
    1: "SCHWARZ THOMAS",
    2: "LITWIN WITOLD",
    3: "ARBELAEZ LIBIA MARIA",
    4: "MARTINEZ MARIA",
}


@pytest.fixture(scope="module")
def store():
    corpus = [t.encode("ascii") for t in RECORDS.values()]
    store = CompressedSearchStore(b"csi-test-key", corpus)
    for rid, text in RECORDS.items():
        store.put(rid, text)
    return store


class TestBasics:
    def test_get_roundtrip(self, store):
        assert store.get(1) == RECORDS[1]
        assert store.get(99) is None

    def test_search_interior_fragment(self, store):
        assert store.search("CHWAR").matches == frozenset({1})

    def test_search_across_word_boundary(self, store):
        assert store.search("EZ MARIA").matches == frozenset({4})
        assert store.search("A MARIA").matches == frozenset({3})

    def test_search_no_match(self, store):
        result = store.search("QQQQ")
        assert result.matches == frozenset()

    def test_multi_record_match(self, store):
        assert store.search("MARIA").matches == frozenset({3, 4})

    def test_delete(self):
        corpus = [t.encode("ascii") for t in RECORDS.values()]
        store = CompressedSearchStore(b"k", corpus)
        for rid, text in RECORDS.items():
            store.put(rid, text)
        assert store.delete(4)
        assert store.search("MARTINEZ").matches == frozenset()
        assert not store.delete(4)

    def test_overwrite_replaces_index_wholesale(self):
        """put() on a present rid: retired content must never match
        again — including after a search has built bucket haystacks."""
        corpus = [t.encode("ascii") for t in RECORDS.values()]
        store = CompressedSearchStore(b"k-ow", corpus)
        for rid, text in RECORDS.items():
            store.put(rid, text)
        assert store.search("MARIA").candidates == frozenset({3, 4})
        store.put(3, "SOMETHING ELSE")
        assert store.get(3) == "SOMETHING ELSE"
        assert store.search("MARIA").matches == frozenset({4})
        assert 3 not in store.search("ARBELAEZ").candidates
        assert store.search("SOMETHING").matches == frozenset({3})
        assert len(store) == len(RECORDS)

    def test_fast_and_reference_encrypt_identically(self):
        corpus = [t.encode("ascii") for t in RECORDS.values()]
        fast = CompressedSearchStore(b"same-key", corpus)
        reference = CompressedSearchStore(b"same-key", corpus,
                                          fast_path=False)
        assert fast._code_map is not None
        assert reference._code_map is None
        stream = bytes(range(256)) * 3
        assert fast._encrypt_stream(stream) == (
            reference._encrypt_stream(stream)
        )

    def test_index_leaks_no_plaintext(self, store):
        for record in store.index_file.all_records():
            assert b"SCHWARZ" not in record.content
            assert b"MARIA" not in record.content

    def test_index_smaller_than_records(self, store):
        record_bytes = sum(len(t) for t in RECORDS.values())
        assert store.index_bytes() < record_bytes

    def test_key_separation(self):
        corpus = [t.encode("ascii") for t in RECORDS.values()]
        a = CompressedSearchStore(b"key-a", corpus)
        b = CompressedSearchStore(b"key-b", corpus)
        a.put(1, RECORDS[1])
        b.put(1, RECORDS[1])
        stream_a = a.index_file.lookup(1)
        stream_b = b.index_file.lookup(1)
        assert stream_a != stream_b

    def test_wide_code_space_rejected(self):
        corpus = [
            bytes([x, 128 + y]) * 4 for x in range(16) for y in range(16)
        ]
        with pytest.raises(ConfigurationError):
            CompressedSearchStore(b"k", corpus, max_pairs=250)

    def test_lossy_mode(self):
        corpus = [t.encode("ascii") for t in RECORDS.values()]
        store = CompressedSearchStore(b"k", corpus, lossy_codes=16)
        for rid, text in RECORDS.items():
            store.put(rid, text)
        # Recall survives lossy bucketing; precision may not.
        assert 1 in store.search("SCHWARZ").matches


NAMES = st.text(alphabet="ABCDEFGHIJKLMNOPQRSTUVWXYZ ", min_size=6,
                max_size=18)


@settings(max_examples=10)
@given(st.lists(NAMES, min_size=2, max_size=6, unique=True), st.data())
def test_property_recall(texts, data):
    corpus = [t.encode("ascii") for t in texts]
    store = CompressedSearchStore(b"prop-key", corpus)
    for rid, text in enumerate(texts):
        store.put(rid, text)
    rid = data.draw(st.integers(0, len(texts) - 1))
    text = texts[rid]
    start = data.draw(st.integers(0, len(text) - 3))
    length = data.draw(st.integers(3, len(text) - start))
    pattern = text[start:start + length]
    result = store.search(pattern)
    expected = {r for r, t in enumerate(texts) if pattern in t}
    assert expected <= result.matches
    assert result.matches == expected  # verify gives exactness