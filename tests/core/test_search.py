"""Aligned matching and hit aggregation."""

import pytest

from repro.core.search import HitAggregator, SearchPlan, SiteHit, aligned_find


class TestAlignedFind:
    def test_aligned_hit(self):
        assert aligned_find(b"ABCDEF", b"CD", 2) == [1]

    def test_unaligned_occurrence_rejected(self):
        assert aligned_find(b"ABCDEF", b"BC", 2) == []

    def test_multiple_hits(self):
        assert aligned_find(b"ABABAB", b"AB", 2) == [0, 1, 2]

    def test_overlapping_occurrences_filtered_by_alignment(self):
        assert aligned_find(b"AAAA", b"AA", 2) == [0, 1]

    def test_width_one_finds_everything(self):
        assert aligned_find(b"AAAA", b"AA", 1) == [0, 1, 2]

    def test_empty_needle_rejected(self):
        with pytest.raises(ValueError):
            aligned_find(b"AB", b"", 1)

    def test_bad_width(self):
        with pytest.raises(ValueError):
            aligned_find(b"AB", b"A", 0)

    def test_needle_longer_than_haystack(self):
        assert aligned_find(b"AB", b"ABCD", 2) == []


def make_plan(sites=2, groups=2, alignments=(0, 1), required=2):
    """A hand-built plan whose needles are trivially inspectable."""
    needles = {}
    for group in range(groups):
        for alignment in alignments:
            needles[(group, alignment)] = tuple(
                bytes([group * 16 + alignment * 4 + site])
                for site in range(sites)
            )
    return SearchPlan(
        pattern=b"q",
        needles=needles,
        piece_width=1,
        sites=sites,
        group_count=groups,
        alignments=tuple(alignments),
        required_groups=required,
    )


class TestMatchSite:
    def test_reports_per_alignment_positions(self):
        plan = make_plan()
        # Site (0,0): needle for alignment 0 is bytes([0]), for 1 is
        # bytes([4]).
        stream = bytes([9, 0, 4, 0])
        hits = plan.match_site(0, 0, stream)
        assert hits[0] == [1, 3]
        assert hits[1] == [2]

    def test_no_hits_is_empty(self):
        plan = make_plan()
        assert plan.match_site(0, 0, bytes([99, 98])) == {}

    def test_request_size_counts_all_needles(self):
        plan = make_plan(sites=2, groups=2, alignments=(0, 1))
        assert plan.request_size() == 8  # 2*2*2 needles of 1 byte


class TestAggregation:
    def test_group_requires_all_sites_same_position(self):
        plan = make_plan(sites=2, groups=1, alignments=(0,), required=1)
        agg = HitAggregator(plan)
        agg.add(SiteHit(rid=1, group=0, site=0, positions={0: [3, 5]}))
        agg.add(SiteHit(rid=1, group=0, site=1, positions={0: [5, 9]}))
        assert agg.candidates() == {1}  # intersect at 5

    def test_group_rejects_disjoint_positions(self):
        plan = make_plan(sites=2, groups=1, alignments=(0,), required=1)
        agg = HitAggregator(plan)
        agg.add(SiteHit(rid=1, group=0, site=0, positions={0: [3]}))
        agg.add(SiteHit(rid=1, group=0, site=1, positions={0: [4]}))
        assert agg.candidates() == set()

    def test_group_rejects_missing_site(self):
        plan = make_plan(sites=2, groups=1, alignments=(0,), required=1)
        agg = HitAggregator(plan)
        agg.add(SiteHit(rid=1, group=0, site=0, positions={0: [3]}))
        assert agg.candidates() == set()

    def test_alignments_do_not_mix(self):
        """Sites must agree per alignment, not across alignments."""
        plan = make_plan(sites=2, groups=1, alignments=(0, 1), required=1)
        agg = HitAggregator(plan)
        agg.add(SiteHit(rid=1, group=0, site=0, positions={0: [3]}))
        agg.add(SiteHit(rid=1, group=0, site=1, positions={1: [3]}))
        assert agg.candidates() == set()

    def test_required_groups_threshold(self):
        plan = make_plan(sites=1, groups=2, alignments=(0,), required=2)
        agg = HitAggregator(plan)
        agg.add(SiteHit(rid=1, group=0, site=0, positions={0: [1]}))
        assert agg.candidates() == set()  # only 1 of 2 groups
        agg.add(SiteHit(rid=1, group=1, site=0, positions={0: [7]}))
        assert agg.candidates() == {1}

    def test_or_rule(self):
        plan = make_plan(sites=1, groups=2, alignments=(0,), required=1)
        agg = HitAggregator(plan)
        agg.add(SiteHit(rid=5, group=1, site=0, positions={0: [0]}))
        assert agg.candidates() == {5}

    def test_multiple_rids_independent(self):
        plan = make_plan(sites=1, groups=1, alignments=(0,), required=1)
        agg = HitAggregator(plan)
        agg.add(SiteHit(rid=1, group=0, site=0, positions={0: [0]}))
        agg.add(SiteHit(rid=2, group=0, site=0, positions={0: [1]}))
        assert agg.candidates() == {1, 2}

    def test_group_hits_diagnostics(self):
        plan = make_plan(sites=1, groups=2, alignments=(0,), required=1)
        agg = HitAggregator(plan)
        agg.add(SiteHit(rid=1, group=1, site=0, positions={0: [0]}))
        assert agg.group_hits(1) == [1]
        assert agg.group_hits(99) == []
