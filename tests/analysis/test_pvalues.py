"""χ² p-values and the incomplete-gamma helper."""

import math
import random
from collections import Counter

import pytest

from repro.analysis.chisq import chi_square_p_value, chi_square_uniform
from repro.analysis.randomness import regularized_gamma_q


class TestRegularizedGamma:
    def test_boundaries(self):
        assert regularized_gamma_q(1.0, 0.0) == 1.0

    def test_exponential_special_case(self):
        # Q(1, x) = exp(-x).
        for x in (0.1, 1.0, 3.0, 10.0):
            assert regularized_gamma_q(1.0, x) == pytest.approx(
                math.exp(-x), rel=1e-9
            )

    def test_half_degree_special_case(self):
        # Q(1/2, x) = erfc(sqrt(x)).
        for x in (0.2, 1.0, 4.0):
            assert regularized_gamma_q(0.5, x) == pytest.approx(
                math.erfc(math.sqrt(x)), rel=1e-9
            )

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            regularized_gamma_q(0.0, 1.0)
        with pytest.raises(ValueError):
            regularized_gamma_q(1.0, -1.0)


class TestChiSquarePValue:
    def test_uniform_data_high_p(self):
        rng = random.Random(1)
        counts = Counter(rng.randrange(16) for __ in range(16_000))
        chi = chi_square_uniform(counts, 16)
        assert chi_square_p_value(chi, 16) > 0.001

    def test_skewed_data_low_p(self):
        counts = Counter({0: 900, 1: 50, 2: 25, 3: 25})
        chi = chi_square_uniform(counts, 4)
        assert chi_square_p_value(chi, 4) < 1e-6

    def test_chi_equal_df_is_moderate(self):
        # chi^2 == df sits near the distribution's centre.
        p = chi_square_p_value(15.0, 16)
        assert 0.3 < p < 0.6

    def test_validation(self):
        with pytest.raises(ValueError):
            chi_square_p_value(1.0, 1)
        with pytest.raises(ValueError):
            chi_square_p_value(-1.0, 4)


class TestPickling:
    def test_gf2_pickles_through_cache(self):
        import pickle

        from repro.gf import GF2

        field = GF2(8)
        clone = pickle.loads(pickle.dumps(field))
        assert clone is field  # cache-backed reconstruction
