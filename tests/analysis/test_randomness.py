"""The NIST-style randomness battery."""

import random

import pytest

from repro.analysis.randomness import (
    approximate_entropy_test,
    bits_of,
    block_frequency_test,
    cumulative_sums_test,
    longest_run_test,
    monobit_test,
    randomness_battery,
    runs_test,
    serial_test,
)


@pytest.fixture(scope="module")
def random_bytes():
    return random.Random(42).randbytes(4096)


@pytest.fixture(scope="module")
def biased_bytes():
    """Heavily biased: mostly zero bits."""
    rng = random.Random(42)
    return bytes(rng.choice([0, 0, 0, 1]) for __ in range(4096))


class TestBitsOf:
    def test_msb_first(self):
        assert bits_of(b"\x80") == [1, 0, 0, 0, 0, 0, 0, 0]
        assert bits_of(b"\x01") == [0, 0, 0, 0, 0, 0, 0, 1]

    def test_length(self):
        assert len(bits_of(b"abc")) == 24


class TestOnRandomData:
    def test_battery_passes(self, random_bytes):
        results = randomness_battery(random_bytes)
        passed = sum(1 for r in results if r.passed)
        assert passed >= 6  # allow one marginal failure at alpha=0.01

    def test_p_values_in_range(self, random_bytes):
        for result in randomness_battery(random_bytes):
            assert 0.0 <= result.p_value <= 1.0


class TestOnBiasedData:
    def test_monobit_rejects(self, biased_bytes):
        assert not monobit_test(bits_of(biased_bytes)).passed

    def test_runs_rejects(self, biased_bytes):
        assert not runs_test(bits_of(biased_bytes)).passed

    def test_battery_mostly_rejects(self, biased_bytes):
        results = randomness_battery(biased_bytes)
        failed = sum(1 for r in results if not r.passed)
        assert failed >= 5


class TestOnPathologicalData:
    def test_alternating_bits_fail_runs(self):
        data = b"\x55" * 1024  # 01010101...
        assert monobit_test(bits_of(data)).passed  # perfectly balanced
        assert not runs_test(bits_of(data)).passed  # way too many runs

    def test_constant_fails_everything(self):
        data = b"\x00" * 1024
        results = randomness_battery(data)
        assert all(not r.passed for r in results)

    def test_text_fails(self):
        data = (b"SCHWARZ LITWIN TSUI " * 60)[:1024]
        results = randomness_battery(data)
        assert sum(1 for r in results if not r.passed) >= 4


class TestIndividualTests:
    def test_block_frequency_short_stream(self):
        with pytest.raises(ValueError):
            block_frequency_test([0, 1] * 10, block_size=128)

    def test_longest_run_short_stream(self):
        with pytest.raises(ValueError):
            longest_run_test([0, 1] * 8)

    def test_serial_on_random(self, random_bytes):
        assert serial_test(bits_of(random_bytes)).p_value > 0.001

    def test_approximate_entropy_on_random(self, random_bytes):
        assert approximate_entropy_test(bits_of(random_bytes)).passed

    def test_cumulative_sums_on_random(self, random_bytes):
        assert cumulative_sums_test(bits_of(random_bytes)).passed

    def test_battery_needs_enough_data(self):
        with pytest.raises(ValueError):
            randomness_battery(b"short")
