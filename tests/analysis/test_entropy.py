"""Entropy estimators."""

import math
from collections import Counter

import pytest

from repro.analysis.entropy import (
    conditional_entropy_rate,
    ngram_entropy,
    redundancy,
    shannon_entropy,
)


class TestShannon:
    def test_uniform(self):
        counts = Counter({i: 5 for i in range(8)})
        assert shannon_entropy(counts) == pytest.approx(3.0)

    def test_degenerate(self):
        assert shannon_entropy(Counter({"a": 10})) == 0.0

    def test_fair_coin(self):
        assert shannon_entropy(Counter({0: 7, 1: 7})) == pytest.approx(1.0)

    def test_empty(self):
        with pytest.raises(ValueError):
            shannon_entropy(Counter())

    def test_bounded_by_log_alphabet(self):
        counts = Counter({"a": 3, "b": 9, "c": 1})
        assert shannon_entropy(counts) <= math.log2(3) + 1e-12


class TestNgramEntropy:
    def test_matches_shannon(self):
        assert ngram_entropy(["ABAB"], 1) == pytest.approx(1.0)

    def test_conditional_rate_decreases_for_structured_text(self):
        texts = ["ABABABABAB"] * 20
        h1 = conditional_entropy_rate(texts, 1)
        h2 = conditional_entropy_rate(texts, 2)
        assert h2 < h1  # knowing the previous symbol predicts the next

    def test_conditional_rate_n1(self):
        texts = ["AB"]
        assert conditional_entropy_rate(texts, 1) == pytest.approx(1.0)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            conditional_entropy_rate(["AB"], 0)


class TestRedundancy:
    def test_uniform_stream_has_zero_redundancy(self):
        counts = Counter({i: 4 for i in range(16)})
        assert redundancy(counts, 16) == pytest.approx(0.0)

    def test_degenerate_stream_fully_redundant(self):
        assert redundancy(Counter({0: 99}), 16) == pytest.approx(1.0)

    def test_invalid_alphabet(self):
        with pytest.raises(ValueError):
            redundancy(Counter({0: 1}), 1)

    def test_names_are_redundant(self, name_corpus):
        counts = Counter()
        for text in name_corpus[:500]:
            counts.update(bytes([b]) for b in text)
        # English-like name text over the observed alphabet is far
        # from uniform (the property Stage 2 exists to remove).
        assert redundancy(counts, len(counts)) > 0.10
