"""The frequency-analysis attacker model."""

import random
from collections import Counter

import pytest

from repro.analysis.attack import frequency_match_attack, partial_chunk_attack
from repro.crypto.feistel import FeistelPRP


def skewed_stream(rng, n=4000):
    """A plaintext stream with a strong frequency profile."""
    symbols = list(range(32))
    weights = [2 ** max(0, 10 - i) for i in range(32)]
    return rng.choices(symbols, weights, k=n)


class TestAttack:
    def test_breaks_plain_substitution_on_skewed_data(self):
        """A substitution cipher on skewed data falls to rank matching."""
        rng = random.Random(1)
        plain = skewed_stream(rng)
        prp = FeistelPRP(b"attack-test", 32)
        cipher = [prp.encrypt(p) for p in plain]
        outcome = frequency_match_attack(
            cipher, Counter(plain), truth=prp.decrypt
        )
        # The top symbols dominate the stream and have well-separated
        # frequencies, so most positions decode.
        assert outcome.symbol_accuracy > 0.6

    def test_fails_on_uniform_data(self):
        """Flat frequencies leave rank matching near chance.

        The attacker's model comes from an *independent* sample of the
        same (uniform) source: rank orders are then uncorrelated and
        matching collapses.  (With the very same stream as the model,
        ranks would match tautologically.)
        """
        rng = random.Random(2)
        plain = [rng.randrange(64) for __ in range(6000)]
        model_sample = [rng.randrange(64) for __ in range(6000)]
        prp = FeistelPRP(b"attack-test", 64)
        cipher = [prp.encrypt(p) for p in plain]
        outcome = frequency_match_attack(
            cipher, Counter(model_sample), truth=prp.decrypt
        )
        assert outcome.symbol_accuracy < 0.25

    def test_perfect_on_identity_with_distinct_counts(self):
        stream = [0] * 5 + [1] * 3 + [2] * 1
        outcome = frequency_match_attack(
            stream, Counter(stream), truth=lambda c: c
        )
        assert outcome.symbol_accuracy == 1.0
        assert outcome.codebook_accuracy == 1.0

    def test_guesses_exposed(self):
        stream = [7] * 4
        outcome = frequency_match_attack(
            stream, Counter({5: 10}), truth=lambda c: 5
        )
        assert outcome.guesses == {7: 5}
        assert outcome.symbol_accuracy == 1.0

    def test_empty_stream_rejected(self):
        with pytest.raises(ValueError):
            frequency_match_attack([], Counter({1: 1}), truth=lambda c: c)


class TestPartialChunkAttack:
    def test_boundary_chunks_leak(self):
        """Section 2.1: padded first chunks have a tiny alphabet and
        fall to frequency analysis far more easily than full chunks."""
        rng = random.Random(3)
        # First chunks of offset-1 chunkings: (0,...,0,r0), i.e. the
        # effective alphabet is the single leading symbol.
        first_symbols = rng.choices(
            range(26), [2 ** max(0, 8 - i) for i in range(26)], k=2000
        )
        prp = FeistelPRP(b"edge", 26)
        cipher = [prp.encrypt(s) for s in first_symbols]
        outcome = partial_chunk_attack(
            cipher, Counter(first_symbols), truth=prp.decrypt
        )
        assert outcome.symbol_accuracy > 0.6
