"""The analytical FP model vs simulation."""

import random

import pytest

from repro.analysis.model import (
    code_distribution,
    collision_index,
    expected_fp_count,
    minimum_query_codes,
    spurious_match_probability,
)
from repro.core.encoder import FrequencyEncoder


class TestPrimitives:
    def test_collision_index_uniform(self):
        assert collision_index([0.25] * 4) == pytest.approx(0.25)

    def test_collision_index_skewed_higher(self):
        assert collision_index([0.7, 0.1, 0.1, 0.1]) > 0.25

    def test_distribution_sums_to_one(self, name_corpus):
        encoder = FrequencyEncoder.train(name_corpus[:300], 1, 8)
        assert sum(code_distribution(encoder)) == pytest.approx(1.0)

    def test_spurious_probability_monotone_in_query_length(self):
        dist = [0.125] * 8
        probs = [
            spurious_match_probability(dist, [0] * k, 30)
            for k in (1, 2, 4, 6)
        ]
        assert probs == sorted(probs, reverse=True)

    def test_too_long_query_never_matches(self):
        assert spurious_match_probability([0.5, 0.5], [0] * 10, 5) == 0.0

    def test_empty_query_rejected(self):
        with pytest.raises(ValueError):
            spurious_match_probability([1.0], [], 5)


class TestModelVsSimulation:
    def test_accurate_on_independent_text(self):
        """On shuffled (independence-restored) corpora the random-text
        model predicts the measured FP count closely."""
        rng = random.Random(11)
        alphabet = b"ABCDEFGHIJKLMNOPQR"
        records = [
            bytes(rng.choice(alphabet) for __ in range(20))
            for __ in range(300)
        ]
        queries = [record[:4] for record in records[:60]]
        encoder = FrequencyEncoder.train(records, 1, 8)
        encoded = [encoder.encode_symbols(r) for r in records]
        measured = 0
        for query in queries:
            needle = encoder.encode_symbols(query)
            for record, stream in zip(records, encoded):
                if needle in stream and query not in record:
                    measured += 1
        predicted = expected_fp_count(
            encoder, queries, [len(r) for r in records]
        )
        assert predicted > 0
        # Prediction within a factor of 2 of the simulation.
        assert predicted / 2 <= measured <= predicted * 2

    def test_real_corpus_exceeds_baseline(self, sample_entries):
        """Name corpora are structured: measured FPs exceed the
        independent-text baseline (the 'Yu'/'Woo' effect)."""
        from repro.bench.falsepos import fp_symbol_encoding
        names = [e.name.encode("ascii") for e in sample_entries]
        encoder = FrequencyEncoder.train(names, 1, 8)
        outcome = fp_symbol_encoding(sample_entries, 8, encoder=encoder)
        predicted = expected_fp_count(
            encoder,
            [e.last_name.encode("ascii") for e in sample_entries],
            [len(n) for n in names],
        )
        assert outcome.false_positives > predicted


class TestPlanningHelper:
    def test_minimum_query_codes_monotone_in_budget(self):
        dist = [0.125] * 8
        strict = minimum_query_codes(dist, 30, 1000, tolerated_fp=0.1)
        loose = minimum_query_codes(dist, 30, 1000, tolerated_fp=100.0)
        assert strict >= loose

    def test_skew_needs_longer_queries(self):
        flat = minimum_query_codes([0.125] * 8, 30, 1000)
        skewed = minimum_query_codes(
            [0.65] + [0.05] * 7, 30, 1000
        )
        assert skewed >= flat

    def test_invalid_budget(self):
        with pytest.raises(ValueError):
            minimum_query_codes([1.0], 30, 10, tolerated_fp=0)
