"""Collusion analysis of dispersal sites."""

import random

import pytest

from repro.analysis.collusion import coalition_view, collusion_sweep
from repro.core.dispersion import Disperser


@pytest.fixture(scope="module")
def skewed_values():
    rng = random.Random(7)
    weights = [2 ** max(0, 8 - v // 16) for v in range(256)]
    return rng.choices(range(256), weights, k=4000)


@pytest.fixture(scope="module")
def disperser():
    return Disperser(k=4, piece_bits=2, seed=3)


class TestCoalitionView:
    def test_single_site_sees_least(self, disperser, skewed_values):
        view = coalition_view(disperser, skewed_values, [0])
        assert view.known_bits == 2
        assert not view.full_reconstruction

    def test_full_coalition_reconstructs(self, disperser, skewed_values):
        view = coalition_view(disperser, skewed_values, [0, 1, 2, 3])
        assert view.full_reconstruction
        assert view.known_bits == 8

    def test_structure_returns_with_coalition_size(
        self, disperser, skewed_values
    ):
        """The paper's caveat, measured: more colluders, more leak."""
        distinct = [
            coalition_view(disperser, skewed_values,
                           list(range(size))).distinct_ratio
            for size in (1, 2, 4)
        ]
        # With one site, many chunks collide into few piece values;
        # with all sites the stream regains full chunk distinctness.
        assert distinct[0] < distinct[1] <= distinct[2] * 1.001

    def test_known_bits_monotone(self, disperser, skewed_values):
        bits = [
            coalition_view(disperser, skewed_values,
                           list(range(size))).known_bits
            for size in (1, 2, 3, 4)
        ]
        assert bits == sorted(bits)

    def test_validation(self, disperser, skewed_values):
        with pytest.raises(ValueError):
            coalition_view(disperser, skewed_values, [])
        with pytest.raises(ValueError):
            coalition_view(disperser, skewed_values, [9])
        with pytest.raises(ValueError):
            coalition_view(disperser, [], [0])

    def test_duplicate_sites_deduplicated(self, disperser,
                                          skewed_values):
        view = coalition_view(disperser, skewed_values, [1, 1])
        assert view.sites == (1,)


class TestSweep:
    def test_sweep_covers_all_sizes(self, disperser, skewed_values):
        views = collusion_sweep(disperser, skewed_values,
                                max_coalitions_per_size=2)
        sizes = {len(v.sites) for v in views}
        assert sizes == {1, 2, 3, 4}

    def test_only_full_coalitions_reconstruct(self, disperser,
                                              skewed_values):
        views = collusion_sweep(disperser, skewed_values)
        for view in views:
            assert view.full_reconstruction == (len(view.sites) == 4)
