"""χ² against uniform."""

from collections import Counter

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.chisq import chi_square_uniform, ngram_chi_square


class TestChiSquare:
    def test_perfectly_uniform_is_zero(self):
        counts = Counter({i: 10 for i in range(8)})
        assert chi_square_uniform(counts, 8) == 0.0

    def test_known_value(self):
        # O = (6, 2), E = 4 each: chi^2 = (2^2 + 2^2)/4 = 2.
        counts = Counter({"a": 6, "b": 2})
        assert chi_square_uniform(counts, 2) == pytest.approx(2.0)

    def test_absent_categories_accounted(self):
        # All mass on one of 4 cells: chi^2 = (N-E)^2/E + 3E with E=N/4.
        counts = Counter({"a": 8})
        expected = (8 - 2) ** 2 / 2 + 3 * 2
        assert chi_square_uniform(counts, 4) == pytest.approx(expected)

    def test_category_space_too_small(self):
        with pytest.raises(ValueError):
            chi_square_uniform(Counter({"a": 1, "b": 1}), 1)

    def test_empty_census(self):
        with pytest.raises(ValueError):
            chi_square_uniform(Counter(), 4)

    def test_skew_increases_chi(self):
        flat = Counter({i: 100 for i in range(4)})
        skewed = Counter({0: 250, 1: 50, 2: 50, 3: 50})
        assert chi_square_uniform(skewed, 4) > chi_square_uniform(flat, 4)


class TestNgramChiSquare:
    def test_encoded_stream_full_space(self):
        # Stream uses 2 of 4 codes: absent codes must count.
        chi, counts = ngram_chi_square([bytes([0, 1, 0, 1])], 1,
                                       symbol_space=4)
        assert counts[bytes([0])] == 2
        assert chi > 0

    def test_raw_text_alphabet_derived(self):
        chi_uniform, __ = ngram_chi_square(["ABAB"], 1)
        assert chi_uniform == 0.0

    def test_digram_category_space_is_alphabet_squared(self):
        # "AB" over alphabet {A,B}: 1 digram observed of 4 possible.
        chi, counts = ngram_chi_square(["AB"], 2)
        assert sum(counts.values()) == 1
        # E = 1/4; chi = (1 - .25)^2/.25 + 3*.25 = 3.0
        assert chi == pytest.approx(3.0)

    def test_generator_input_accepted(self):
        chi, __ = ngram_chi_square(
            (s for s in [b"\x00\x01", b"\x01\x00"]), 1, symbol_space=2
        )
        assert chi == 0.0


@given(
    st.lists(st.integers(0, 7), min_size=8, max_size=400),
    st.integers(8, 16),
)
def test_property_chi_nonnegative_and_scale(values, space):
    counts = Counter(values)
    chi = chi_square_uniform(counts, space)
    assert chi >= 0
