"""The bigram hill-climbing attacker (substitution solver)."""

import random
from collections import Counter

import pytest

from repro.analysis.attack import (
    bigram_hillclimb_attack,
    frequency_match_attack,
)
from repro.crypto.feistel import FeistelPRP


def english_like_records(rng, n_records=400, length=14):
    """Records with strong bigram structure over a 16-symbol alphabet."""
    transitions = {}
    for s in range(16):
        weights = [1] * 16
        weights[(s + 1) % 16] = 30      # strong successor preference
        weights[(s + 5) % 16] = 10
        transitions[s] = weights
    records = []
    for __ in range(n_records):
        symbol = rng.randrange(16)
        record = [symbol]
        for __ in range(length - 1):
            symbol = rng.choices(range(16), transitions[symbol])[0]
            record.append(symbol)
        records.append(record)
    return records


@pytest.fixture(scope="module")
def corpus():
    rng = random.Random(3)
    records = english_like_records(rng)
    unigrams = Counter(s for r in records for s in r)
    bigrams = Counter(
        (r[i], r[i + 1]) for r in records for i in range(len(r) - 1)
    )
    return records, unigrams, bigrams


class TestBigramAttack:
    def test_beats_unigram_attack_on_structured_data(self, corpus):
        """Bigram structure cracks what unigram ranks cannot — the
        measured form of the paper's 'SMIT'->'H' warning."""
        records, unigrams, bigrams = corpus
        prp = FeistelPRP(b"bigram-test", 16)
        cipher_records = [[prp.encrypt(s) for s in r] for r in records]
        flat = [c for r in cipher_records for c in r]
        unigram_outcome = frequency_match_attack(
            flat, unigrams, truth=prp.decrypt
        )
        bigram_outcome = bigram_hillclimb_attack(
            cipher_records, unigrams, bigrams, truth=prp.decrypt,
            iterations=3000, restarts=2, seed=1,
        )
        assert (
            bigram_outcome.codebook_accuracy
            >= unigram_outcome.codebook_accuracy
        )
        assert bigram_outcome.codebook_accuracy > 0.6

    def test_fails_without_structure(self):
        """IID uniform symbols leave nothing for the solver to climb."""
        rng = random.Random(4)
        records = [
            [rng.randrange(32) for __ in range(12)] for __ in range(300)
        ]
        model_sample = [
            [rng.randrange(32) for __ in range(12)] for __ in range(300)
        ]
        unigrams = Counter(s for r in model_sample for s in r)
        bigrams = Counter(
            (r[i], r[i + 1])
            for r in model_sample
            for i in range(len(r) - 1)
        )
        prp = FeistelPRP(b"flat", 32)
        cipher_records = [[prp.encrypt(s) for s in r] for r in records]
        outcome = bigram_hillclimb_attack(
            cipher_records, unigrams, bigrams, truth=prp.decrypt,
            iterations=1500, restarts=1, seed=2,
        )
        assert outcome.codebook_accuracy < 0.3

    def test_empty_corpus_rejected(self):
        with pytest.raises(ValueError):
            bigram_hillclimb_attack([], Counter(), Counter(),
                                    truth=lambda c: c)

    def test_deterministic_per_seed(self, corpus):
        records, unigrams, bigrams = corpus
        prp = FeistelPRP(b"det", 16)
        cipher_records = [[prp.encrypt(s) for s in r]
                          for r in records[:100]]
        a = bigram_hillclimb_attack(
            cipher_records, unigrams, bigrams, truth=prp.decrypt,
            iterations=500, restarts=1, seed=9,
        )
        b = bigram_hillclimb_attack(
            cipher_records, unigrams, bigrams, truth=prp.decrypt,
            iterations=500, restarts=1, seed=9,
        )
        assert a.guesses == b.guesses
