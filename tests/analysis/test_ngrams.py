"""n-gram counting."""

from collections import Counter

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.ngrams import ngram_counts, top_ngrams


class TestCounts:
    def test_unigrams(self):
        assert ngram_counts(["ABA"], 1) == Counter({"A": 2, "B": 1})

    def test_bigrams(self):
        assert ngram_counts(["ANNA"], 2) == Counter(
            {"AN": 1, "NN": 1, "NA": 1}
        )

    def test_no_cross_record_ngrams(self):
        """n-grams never straddle record boundaries."""
        joined = ngram_counts(["ABCD"], 2)
        split = ngram_counts(["AB", "CD"], 2)
        assert joined["BC"] == 1
        assert split["BC"] == 0

    def test_bytes_sequences(self):
        counts = ngram_counts([b"\x01\x02\x01\x02"], 2)
        assert counts[b"\x01\x02"] == 2

    def test_short_sequences_ignored(self):
        assert ngram_counts(["A"], 2) == Counter()

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            ngram_counts(["AB"], 0)


class TestTop:
    def test_ordering_and_share(self):
        counts = Counter({"A": 3, "B": 1})
        top = top_ngrams(counts, 2)
        assert top[0] == ("A", 0.75)
        assert top[1] == ("B", 0.25)

    def test_bytes_keys_rendered_as_digits(self):
        counts = Counter({bytes([1, 2]): 5})
        assert top_ngrams(counts, 1)[0][0] == "12"

    def test_empty(self):
        assert top_ngrams(Counter(), 3) == []


@given(st.lists(st.text(alphabet="AB", max_size=12), max_size=20),
       st.integers(1, 3))
def test_property_total_count(sequences, n):
    counts = ngram_counts(sequences, n)
    expected = sum(max(0, len(s) - n + 1) for s in sequences)
    assert sum(counts.values()) == expected
