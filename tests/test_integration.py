"""A full-lifecycle soak test: one deployment through every feature.

Populate (bulk), search (plain / anchored / conjunctive / batch),
mutate (delete, update), rotate keys, persist and restore, all on one
high-availability deployment under jittered latency — the closest the
suite comes to a production storyline.
"""

import random

import pytest

from repro.core import (
    EncryptedSearchableStore,
    FrequencyEncoder,
    SchemeParameters,
)
from repro.core.serialization import store_from_json, store_to_json
from repro.data import generate_directory
from repro.net import JitterLatencyModel, Network


@pytest.fixture(scope="module")
def deployment():
    directory = generate_directory(3000, seed=2006).sample(150, seed=21)
    corpus = [e.name.encode("ascii") for e in directory]
    params = SchemeParameters.full(
        4, n_codes=64, dispersal=2, master_key=b"soak-test-key"
    )
    store = EncryptedSearchableStore(
        params,
        encoder=FrequencyEncoder.train(corpus, 4, 64),
        network=Network(JitterLatencyModel(seed=5, jitter=0.02)),
        high_availability=True,
        bucket_capacity=16,
    )
    store.bulk_load({e.rid: e.record_text for e in directory})
    return store, directory


class TestLifecycle:
    def test_bulk_load_complete(self, deployment):
        store, directory = deployment
        assert len(store) == len(directory)
        entry = directory.entries[0]
        assert store.get(entry.rid) == entry.record_text

    def test_search_after_bulk_load(self, deployment):
        store, directory = deployment
        rng = random.Random(1)
        for entry in rng.sample(directory.entries, 15):
            query = entry.last_name
            if len(query) < store.params.min_query_length:
                continue
            result = store.search(query)
            truth = {
                e.rid for e in directory if query in e.record_text
            }
            assert truth <= result.matches
            assert result.matches == truth  # verified: exact

    def test_batch_matches_singles(self, deployment):
        store, directory = deployment
        queries = sorted({
            e.last_name for e in directory.entries[:30]
            if len(e.last_name) >= store.params.min_query_length
        })[:10]
        batch = store.search_batch(queries)
        for query in queries:
            assert batch[query].matches == store.search(query).matches

    def test_anchored_and_conjunctive(self, deployment):
        store, directory = deployment
        entry = max(directory.entries, key=lambda e: len(e.last_name))
        prefix = entry.last_name
        anchored = store.search(prefix, anchor_start=True)
        assert all(
            store.get(rid).startswith(prefix) for rid in anchored.matches
        )
        both = store.search_all([prefix, entry.phone[:8]])
        assert entry.rid in both.matches

    def test_update_and_delete(self, deployment):
        store, directory = deployment
        victim = next(
            e for e in reversed(directory.entries)
            if len(e.last_name) >= 6
        )
        store.put(victim.rid, "REPLACED CONTENT ZZZZ")
        assert victim.rid in store.search("ZZZZ").matches
        assert victim.rid not in store.search(victim.last_name).matches \
            or victim.last_name in "REPLACED CONTENT ZZZZ"
        assert store.delete(victim.rid)
        assert store.get(victim.rid) is None
        # Restore for later tests.
        store.put(victim.rid, victim.record_text)

    def test_availability(self, deployment):
        store, __ = deployment
        record_bucket = next(iter(store.record_file.buckets))
        assert store.record_file.verify_recovery([record_bucket])
        index_bucket = next(iter(store.index_file.buckets))
        assert store.index_file.verify_recovery([index_bucket])

    def test_persist_restore_rekey(self, deployment):
        store, directory = deployment
        restored = store_from_json(store_to_json(store))
        probe = directory.entries[3]
        assert restored.get(probe.rid) == store.get(probe.rid)
        restored.rekey(b"rotated-soak-key")
        if len(probe.last_name) >= restored.params.min_query_length:
            assert probe.rid in restored.search(probe.last_name).matches

    def test_cost_accounting_sane(self, deployment):
        store, __ = deployment
        result = store.search("MARTIN")
        assert result.cost.messages >= 2
        assert result.elapsed > 0
