"""The README's code examples must actually run."""

import os
import pathlib
import re

import pytest

README = pathlib.Path(__file__).parent.parent / "README.md"

_BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def test_readme_blocks_execute():
    """Blocks build on each other, so run them cumulatively.

    Blocks that spawn the live serving tier (``LiveCluster``) follow
    the same opt-in rule as the ``live``-marked tests: they execute
    only under ``REPRO_LIVE_TESTS=1`` so the default run stays
    hermetic.
    """
    run_live = os.environ.get("REPRO_LIVE_TESTS") == "1"
    blocks = _BLOCK_RE.findall(README.read_text())
    assert blocks, "README lost its python examples"
    namespace: dict = {}
    for index, block in enumerate(blocks):
        if "LiveCluster" in block and not run_live:
            continue
        exec(  # noqa: S102 - executing our own documentation
            compile(block, f"{README}#block{index}", "exec"), namespace
        )
