"""The README's code examples must actually run."""

import pathlib
import re

import pytest

README = pathlib.Path(__file__).parent.parent / "README.md"

_BLOCK_RE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def test_readme_blocks_execute():
    """Blocks build on each other, so run them cumulatively."""
    blocks = _BLOCK_RE.findall(README.read_text())
    assert blocks, "README lost its python examples"
    namespace: dict = {}
    for index, block in enumerate(blocks):
        exec(  # noqa: S102 - executing our own documentation
            compile(block, f"{README}#block{index}", "exec"), namespace
        )
