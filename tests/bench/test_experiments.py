"""Smoke and shape tests for the experiment harness (tiny sizes)."""

import pytest

from repro.bench import experiments as exp
from repro.bench.tables import TableResult
from repro.data.phonebook import generate_directory


@pytest.fixture(scope="module")
def tiny_directory():
    return generate_directory(1500, seed=2006)


def _values(table: TableResult, column: str) -> list[str]:
    index = table.headers.index(column)
    return [row[index] for row in table.rows]


class TestTableExperiments:
    def test_table1(self, tiny_directory):
        table = exp.exp_table1(tiny_directory)
        assert len(table.rows) == 3 + 6 + 5 + 5
        # χ² rows increase with the n-gram order.
        chis = [float(r[1].replace(",", "")) for r in table.rows[:3]]
        assert chis[0] < chis[1] < chis[2]

    def test_table2(self, tiny_directory):
        table = exp.exp_table2(tiny_directory)
        chis = [float(r[1].replace(",", "")) for r in table.rows[:3]]
        raw = exp.exp_table1(tiny_directory)
        raw_chis = [float(r[1].replace(",", "")) for r in raw.rows[:3]]
        # Dispersion shrinks χ² dramatically (paper: Table 2 vs 1).
        assert chis[0] < raw_chis[0]

    def test_table3_shapes(self, tiny_directory):
        tables = exp.exp_table3(
            tiny_directory, sweep={2: (8, 32), 6: (16, 64)}
        )
        assert len(tables) == 2
        for table in tables:
            singles = [
                float(r[1].replace(",", "")) for r in table.rows
            ]
            # χ² grows with the number of encodings.
            assert singles[0] <= singles[-1]

    def test_table4(self, tiny_directory):
        tables = exp.exp_table4(
            tiny_directory, sample_size=150, encodings=(8, 16)
        )
        assert len(tables) == 2
        all_entries, long_names = tables
        fp1 = [int(v.replace(",", "")) for v in _values(all_entries, "FP1")]
        fp2 = [int(v.replace(",", "")) for v in _values(all_entries, "FP2")]
        assert all(b >= a for a, b in zip(fp1, fp2))  # FP2 >= FP1
        fp1_long = [
            int(v.replace(",", "")) for v in _values(long_names, "FP1")
        ]
        assert sum(fp1_long) <= sum(fp1)

    def test_table5(self, tiny_directory):
        tables = exp.exp_table5(
            tiny_directory, sample_size=150, encodings=(8, 64)
        )
        all_entries = tables[0]
        fps = [int(v.replace(",", "")) for v in _values(all_entries, "FP")]
        assert fps[0] >= fps[-1]


class TestFigureExperiments:
    def test_fig2_reports_single_hit(self):
        table = exp.exp_fig2()
        hits = [r for r in table.rows if r[0].startswith("hit")]
        assert len(hits) == 1

    def test_fig3_site_count(self):
        table = exp.exp_fig3()
        # 1 store row + 2 chunkings x 4 dispersal sites.
        assert len(table.rows) == 9

    def test_fig5_greedy_table(self, tiny_directory):
        table = exp.exp_fig5(tiny_directory, sample_size=300)
        assert table.headers == ["Symbol", "Quantity", "Encoding"]
        codes = {int(r[2]) for r in table.rows}
        assert codes <= set(range(8))
        quantities = [int(r[1].replace(",", "")) for r in table.rows]
        assert quantities == sorted(quantities, reverse=True)


class TestSystemExperiments:
    def test_storage_table(self):
        table = exp.exp_storage()
        row = dict(zip(_values(table, "layout"),
                       _values(table, "min query")))
        assert row["s=8, 4 sites"] == "9"
        assert row["s=8, 2 sites"] == "11"

    def test_lhstar_constant_cost(self):
        table = exp.exp_lhstar(record_counts=(128, 512),
                               bucket_capacity=16)
        converged = _values(table, "msgs/lookup (converged)")
        assert all(v == "2.00" for v in converged)
        hops = [int(v) for v in _values(table, "max hops")]
        assert max(hops) <= 2

    def test_e2e_recall(self, tiny_directory):
        table = exp.exp_search_e2e(tiny_directory, n_records=60,
                                   n_queries=12)
        assert all(v in ("100%", "-") for v in _values(table, "recall"))
        assert _values(table, "recall")[0] == "100%"

    def test_ablation_runs(self, tiny_directory):
        table = exp.exp_ablation(tiny_directory, n_records=120)
        assert len(table.rows) == 4

    def test_randomness_runs(self, tiny_directory):
        table = exp.exp_randomness(tiny_directory, n_records=400)
        # Raw text fails far more tests than the full pipeline.
        raw_failed = int(table.rows[0][2])
        assert raw_failed >= 5
