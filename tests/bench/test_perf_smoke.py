"""The perf-regression harness: payload shape, fidelity, gating."""

import importlib.util
import json
import pathlib

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def perf_smoke():
    spec = importlib.util.spec_from_file_location(
        "perf_smoke", ROOT / "benchmarks" / "perf_smoke.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    # Shrink the workload: accuracy doesn't matter here, shape does.
    module.RECORDS = 30
    module.REPEATS = 1
    return module


@pytest.fixture(scope="module")
def payloads(perf_smoke):
    return perf_smoke.run()


def _healthy_ratios(perf_smoke, **overrides):
    """A ratio dict sitting comfortably above every hard floor."""
    ratios = {
        name: floor * 10.0
        for name, floor in perf_smoke.GATED_RATIOS.items()
    }
    ratios.update(overrides)
    return ratios


class TestPayloadShape:
    def test_codec_payload(self, payloads):
        codec, __, __ = payloads
        assert codec["schema"] == "repro-perf-smoke/2"
        for name in (
            "prp_encrypt_reference", "prp_encrypt_stream",
            "index_build_reference", "index_build_fused",
            "plan_query_uncached", "plan_query_cached",
        ):
            bench = codec["benches"][name]
            assert bench["median_ns_per_op"] > 0
            assert bench["ops_per_s"] > 0
        for name in (
            "prp_speedup", "index_build_speedup", "plan_cache_speedup"
        ):
            assert codec["ratios"][name] > 0

    def test_search_payload(self, payloads):
        __, search, __ = payloads
        assert search["schema"] == "repro-perf-smoke/2"
        for name in (
            "bulk_load_fused", "search_round",
            "batched_scan_fused", "batched_scan_reference",
            "wordstore_match_fused", "wordstore_match_reference",
            "compressed_match_fused", "compressed_match_reference",
        ):
            assert search["benches"][name]["median_ns_per_op"] > 0
        for name in (
            "bulk_load_speedup", "batched_scan_speedup",
            "wordstore_match_speedup", "compressed_match_speedup",
        ):
            assert search["ratios"][name] > 0
        for name in (
            "bulk_load_peak_bytes", "search_round_peak_bytes",
        ):
            assert search["memory"][name] > 0

    def test_scan_payload(self, payloads):
        __, __, scan = payloads
        assert scan["schema"] == "repro-perf-smoke/2"
        for name in (
            "multi_needle_scan_automaton",
            "multi_needle_scan_per_needle",
            "vectorised_round_batch",
            "per_message_round_batch",
        ):
            assert scan["benches"][name]["median_ns_per_op"] > 0
        for name in (
            "multi_needle_scan_speedup", "vectorised_round_speedup",
        ):
            assert scan["ratios"][name] > 0
        assert scan["memory"]["automaton_build_peak_bytes"] > 0

    def test_fidelity_holds(self, payloads):
        codec, __, __ = payloads
        assert codec["equivalence"] == {
            "index_bytes_identical": True,
            "search_answers_identical": True,
            "wire_costs_identical": True,
            "wordstore_identical": True,
            "compressed_identical": True,
        }


class TestGate:
    def test_passes_at_baseline(self, perf_smoke):
        ratios = _healthy_ratios(perf_smoke)
        assert perf_smoke._gate(ratios, dict(ratios)) == []

    def test_tolerates_bounded_drift(self, perf_smoke):
        baseline = _healthy_ratios(perf_smoke)
        drifted = {
            name: value * (1.0 - perf_smoke.TOLERANCE + 0.05)
            for name, value in baseline.items()
        }
        assert perf_smoke._gate(drifted, baseline) == []

    def test_fails_beyond_tolerance(self, perf_smoke):
        baseline = _healthy_ratios(perf_smoke)
        regressed = dict(
            baseline, prp_speedup=baseline["prp_speedup"] * 0.5
        )
        failures = perf_smoke._gate(regressed, baseline)
        assert len(failures) == 1
        assert failures[0].startswith("prp_speedup")

    def test_hard_floor_without_baseline(self, perf_smoke):
        slow = _healthy_ratios(
            perf_smoke,
            prp_speedup=perf_smoke.GATED_RATIOS["prp_speedup"] - 1.0,
        )
        failures = perf_smoke._gate(slow, {})
        assert len(failures) == 1
        assert "hard floor" in failures[0]

    def test_memory_within_ceiling_passes(self, perf_smoke):
        baseline = {name: 1000 for name in perf_smoke.GATED_MEMORY}
        grown = {
            name: int(1000 * (1 + perf_smoke.MEMORY_TOLERANCE) - 1)
            for name in perf_smoke.GATED_MEMORY
        }
        assert perf_smoke._gate_memory(grown, baseline) == []

    def test_memory_beyond_ceiling_fails(self, perf_smoke):
        baseline = {name: 1000 for name in perf_smoke.GATED_MEMORY}
        blown = dict(baseline)
        blown["search_round_peak_bytes"] = int(
            1000 * (1 + perf_smoke.MEMORY_TOLERANCE) + 1
        )
        failures = perf_smoke._gate_memory(blown, baseline)
        assert len(failures) == 1
        assert failures[0].startswith("search_round_peak_bytes")

    def test_missing_memory_baseline_is_not_gated(self, perf_smoke):
        # First run after the schema change: no baseline figure yet.
        current = {name: 10**9 for name in perf_smoke.GATED_MEMORY}
        assert perf_smoke._gate_memory(current, {}) == []

    def test_committed_baseline_is_valid(self, perf_smoke):
        codec = json.loads(
            (ROOT / "benchmarks" / "baselines" / "BENCH_codec.json")
            .read_text()
        )
        search = json.loads(
            (ROOT / "benchmarks" / "baselines" / "BENCH_search.json")
            .read_text()
        )
        scan = json.loads(
            (ROOT / "benchmarks" / "baselines" / "BENCH_scan.json")
            .read_text()
        )
        ratios = {
            **codec["ratios"], **search["ratios"], **scan["ratios"]
        }
        for name, floor in perf_smoke.GATED_RATIOS.items():
            assert ratios[name] >= floor, name
        memory = {**search["memory"], **scan["memory"]}
        for name in perf_smoke.GATED_MEMORY:
            assert memory[name] > 0
