"""The perf-regression harness: payload shape, fidelity, gating."""

import importlib.util
import pathlib

import pytest

ROOT = pathlib.Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def perf_smoke():
    spec = importlib.util.spec_from_file_location(
        "perf_smoke", ROOT / "benchmarks" / "perf_smoke.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    # Shrink the workload: accuracy doesn't matter here, shape does.
    module.RECORDS = 30
    module.REPEATS = 1
    return module


@pytest.fixture(scope="module")
def payloads(perf_smoke):
    return perf_smoke.run()


class TestPayloadShape:
    def test_codec_payload(self, payloads):
        codec, __ = payloads
        assert codec["schema"] == "repro-perf-smoke/1"
        for name in (
            "prp_encrypt_reference", "prp_encrypt_stream",
            "index_build_reference", "index_build_fused",
            "plan_query_uncached", "plan_query_cached",
        ):
            bench = codec["benches"][name]
            assert bench["median_ns_per_op"] > 0
            assert bench["ops_per_s"] > 0
        for name in (
            "prp_speedup", "index_build_speedup", "plan_cache_speedup"
        ):
            assert codec["ratios"][name] > 0

    def test_search_payload(self, payloads):
        __, search = payloads
        assert search["schema"] == "repro-perf-smoke/1"
        assert "bulk_load_fused" in search["benches"]
        assert "search_round" in search["benches"]
        assert search["ratios"]["bulk_load_speedup"] > 0

    def test_fidelity_holds(self, payloads):
        codec, __ = payloads
        assert codec["equivalence"] == {
            "index_bytes_identical": True,
            "search_answers_identical": True,
            "wire_costs_identical": True,
        }


class TestGate:
    def test_passes_at_baseline(self, perf_smoke):
        ratios = {"prp_speedup": 100.0, "index_build_speedup": 50.0}
        assert perf_smoke._gate(ratios, dict(ratios)) == []

    def test_tolerates_bounded_drift(self, perf_smoke):
        baseline = {"prp_speedup": 100.0, "index_build_speedup": 50.0}
        drifted = {"prp_speedup": 75.0, "index_build_speedup": 40.0}
        assert perf_smoke._gate(drifted, baseline) == []

    def test_fails_beyond_tolerance(self, perf_smoke):
        baseline = {"prp_speedup": 100.0, "index_build_speedup": 50.0}
        regressed = {"prp_speedup": 60.0, "index_build_speedup": 40.0}
        failures = perf_smoke._gate(regressed, baseline)
        assert len(failures) == 1
        assert failures[0].startswith("prp_speedup")

    def test_hard_floor_without_baseline(self, perf_smoke):
        slow = {"prp_speedup": 4.0, "index_build_speedup": 6.0}
        failures = perf_smoke._gate(slow, {})
        assert len(failures) == 1
        assert "hard floor" in failures[0]

    def test_committed_baseline_is_valid(self, perf_smoke):
        import json

        path = ROOT / "benchmarks" / "baselines" / "BENCH_codec.json"
        baseline = json.loads(path.read_text())
        for name in perf_smoke.GATED_RATIOS:
            assert baseline["ratios"][name] >= perf_smoke.HARD_FLOOR
