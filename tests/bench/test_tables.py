"""Table rendering."""

from repro.bench.tables import TableResult, render_table, slugify, to_csv


class TestRendering:
    def test_basic_layout(self):
        table = TableResult("Title", ["a", "bee"])
        table.add_row(1, 2.5)
        text = render_table(table)
        lines = text.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[2] and "bee" in lines[2]
        assert "2.50" in text

    def test_number_formats(self):
        table = TableResult("T", ["v"])
        table.add_row(1_234_567)
        table.add_row(0.000123)
        table.add_row(12345.678)
        table.add_row(0)
        text = table.render()
        assert "1,234,567" in text
        assert "0.000123" in text
        assert "12,346" in text

    def test_notes_rendered(self):
        table = TableResult("T", ["v"])
        table.notes.append("hello note")
        assert "note: hello note" in table.render()

    def test_column_alignment(self):
        table = TableResult("T", ["col"])
        table.add_row("x")
        table.add_row("longer-value")
        lines = table.render().splitlines()
        assert len(lines[-1]) == len(lines[-2])


class TestCsv:
    def test_round_trippable_csv(self):
        import csv
        import io

        table = TableResult("T", ["a", "b"])
        table.add_row("x, with comma", 12345)
        rows = list(csv.reader(io.StringIO(to_csv(table))))
        assert rows[0] == ["a", "b"]
        assert rows[1] == ["x, with comma", "12,345"]

    def test_slugify(self):
        assert slugify("Table 1: chi^2-values (full)") == \
            "table-1-chi-2-values-full"
        assert slugify("___") == ""
        assert len(slugify("x" * 300)) <= 80
