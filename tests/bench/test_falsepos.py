"""The Table-4/5 false-positive machinery."""

import pytest

from repro.bench.falsepos import (
    fp_chunk_encoding,
    fp_symbol_chunked,
    fp_symbol_encoding,
)


class TestSymbolEncoding:
    def test_recall_is_total(self, sample_entries):
        """Every search finds at least its own record (100% recall)."""
        outcome = fp_symbol_encoding(sample_entries, 8)
        assert outcome.true_hits >= outcome.searches

    def test_fp_decreases_with_codes(self, sample_entries):
        fps = [
            fp_symbol_encoding(sample_entries, n).false_positives
            for n in (8, 16, 32)
        ]
        assert fps[0] >= fps[1] >= fps[2]

    def test_chi_increases_with_codes(self, sample_entries):
        chis = [
            fp_symbol_encoding(sample_entries, n).chi_single
            for n in (8, 16, 32)
        ]
        assert chis[0] < chis[2]

    def test_long_name_restriction_reduces_fp(self, sample_entries):
        all_names = fp_symbol_encoding(sample_entries, 8)
        long_names = fp_symbol_encoding(
            sample_entries, 8, min_name_length=5
        )
        assert long_names.false_positives <= all_names.false_positives
        assert long_names.searches < all_names.searches


class TestSymbolChunked:
    def test_chunking_adds_false_positives(self, sample_entries):
        """The paper's FP2 > FP1 observation."""
        outcome = fp_symbol_chunked(sample_entries, 8)
        assert outcome.baseline_false_positives is not None
        assert outcome.false_positives >= outcome.baseline_false_positives

    def test_recall_preserved_by_chunking(self, sample_entries):
        outcome = fp_symbol_chunked(sample_entries, 16)
        assert outcome.true_hits >= outcome.searches

    def test_single_symbol_queries_still_work(self, sample_entries):
        # Queries of length < chunk still have the offset-0 chunking of
        # the *encoded* stream; two-symbol surnames like YU produce a
        # single complete chunk at alignment 0.
        outcome = fp_symbol_chunked(sample_entries, 8, chunk=2)
        assert outcome.searches == len(sample_entries)


class TestChunkEncoding:
    def test_recall_is_total(self, sample_entries):
        outcome = fp_chunk_encoding(sample_entries, 16)
        assert outcome.true_hits >= outcome.searches

    def test_fp_decreases_with_codes(self, sample_entries):
        fps = [
            fp_chunk_encoding(sample_entries, n).false_positives
            for n in (8, 32, 64)
        ]
        assert fps[0] >= fps[-1]

    def test_long_names_nearly_clean(self, sample_entries):
        noisy = fp_chunk_encoding(sample_entries, 64)
        clean = fp_chunk_encoding(sample_entries, 64, min_name_length=5)
        assert clean.false_positives <= noisy.false_positives

    def test_chi_columns_populated(self, sample_entries):
        outcome = fp_chunk_encoding(sample_entries, 16)
        assert outcome.chi_single >= 0
        assert outcome.chi_double > 0
        assert outcome.chi_triple > 0
