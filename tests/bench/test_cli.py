"""The ``python -m repro.bench`` experiment CLI."""

import pytest

from repro.bench.__main__ import ALL, main


class TestCli:
    def test_single_experiment(self, capsys):
        assert main(["fig2", "--records", "50"]) == 0
        out = capsys.readouterr().out
        assert "Figure 2" in out

    def test_multiple_experiments(self, capsys):
        assert main(["storage", "fig3", "--records", "50"]) == 0
        out = capsys.readouterr().out
        assert "Section 2.5" in out
        assert "Figure 3" in out

    def test_sample_option(self, capsys):
        assert main(["fig5", "--records", "400", "--sample", "200"]) == 0
        assert "200 records" in capsys.readouterr().out

    def test_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment", "--records", "50"])

    def test_csv_output(self, capsys, tmp_path):
        assert main(["storage", "--records", "50",
                     "--csv", str(tmp_path)]) == 0
        csv_file = tmp_path / "storage.csv"
        assert csv_file.exists()
        first_line = csv_file.read_text().splitlines()[0]
        assert first_line.startswith("layout,")

    def test_all_registered_names_resolve(self, capsys):
        # Every name in ALL must dispatch (run the cheapest subset to
        # keep the suite fast; the rest are covered by benchmarks/).
        cheap = [n for n in ALL if n in ("fig2", "fig3", "storage")]
        assert main(cheap + ["--records", "50"]) == 0
