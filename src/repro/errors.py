"""The repro-wide exception family.

Every layer used to raise its own ad-hoc errors — bare
``RuntimeError`` from the LH* facade, a ``RetryExhaustedError`` rooted
directly on ``RuntimeError``, a separate ``SchemeError`` tree in
:mod:`repro.core` — so a caller driving the whole stack had no single
base class to catch.  This module roots them all:

* :class:`ReproError` — base of everything the package raises on
  purpose.
* :class:`SDDSError` — faults surfaced by the SDDS layer
  (:mod:`repro.sdds`): retry budgets, unavailable buckets, rejected
  operations.

The scheme-level tree (:class:`repro.core.errors.SchemeError` and
subclasses) also derives from :class:`ReproError`, so
``except ReproError`` catches any deliberate failure of the stack
while programming errors (``KeyError``, ``TypeError``) still escape.

Errors that historically derived from ``RuntimeError`` keep it as a
secondary base so existing ``except RuntimeError`` call sites continue
to work.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every deliberate error the package raises."""


class SDDSError(ReproError):
    """Base class for SDDS-layer (LH*/LH*_RS) failures."""


class InsertFailedError(SDDSError, RuntimeError):
    """A keyed insert was rejected by its home bucket.

    Replaces the historic bare ``RuntimeError("insert of key ...
    failed")``; the ``RuntimeError`` base is kept for callers that
    still catch the old type.
    """


class BucketUnavailableError(SDDSError, RuntimeError):
    """An operation needs a bucket that is dead and cannot be served.

    Raised when a bucket has been declared dead by the coordinator and
    the file has no parity to answer from (plain LH*), or when more
    buckets of a parity group are down than the parity count covers.
    """


class UnknownNodeError(SDDSError, KeyError):
    """A network operation named a node id that is not attached.

    Raised by :meth:`repro.net.simulator.Network.send` (and the other
    topology entry points) instead of the historic bare ``KeyError``,
    so callers can catch the whole :class:`SDDSError` family.  The
    ``KeyError`` base is kept for callers that predate the typed
    hierarchy.
    """

    def __str__(self) -> str:
        # KeyError.__str__ reprs its single argument, which would wrap
        # the message in quotes; report it verbatim like the rest of
        # the family.
        return Exception.__str__(self)
