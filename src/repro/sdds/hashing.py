"""LH* addressing arithmetic (Litwin-Neimat-Schneider 1996).

A linear-hash file in state ``(i, n)`` — level ``i``, split pointer
``n`` — has ``2**i + n`` buckets.  Buckets ``0 .. n-1`` and
``2**i .. 2**i + n - 1`` have already split to level ``i+1``; buckets
``n .. 2**i - 1`` are still at level ``i``.

Three pure functions capture the whole calculus:

* :func:`client_address` — where a client whose (possibly stale) image
  is ``(i', n')`` sends a key;
* :func:`forward_address` — the server-side address-verification step
  (LNS96 algorithm A1) that corrects a misdirected key in at most two
  hops;
* :func:`image_adjust` — the client-side image update on receiving an
  Image Adjustment Message (LNS96 algorithm A3).

Keeping these pure makes the at-most-two-hops and image-monotonicity
guarantees directly property-testable without spinning up the network.
"""

from __future__ import annotations


def h(key: int, level: int) -> int:
    """The linear-hash family: ``h_level(key) = key mod 2**level``."""
    if level < 0:
        raise ValueError("hash level must be non-negative")
    return key & ((1 << level) - 1)


def file_buckets(i: int, n: int) -> int:
    """Number of buckets of a file in state (i, n)."""
    return (1 << i) + n


def bucket_level(address: int, i: int, n: int) -> int:
    """The true level of bucket ``address`` in file state (i, n)."""
    if not 0 <= address < file_buckets(i, n):
        raise ValueError(f"bucket {address} outside file of state ({i},{n})")
    if address < n or address >= (1 << i):
        return i + 1
    return i


def client_address(key: int, i_image: int, n_image: int) -> int:
    """Address computation with the client's image (LNS96 A2).

    ``a = h_i'(key); if a < n': a = h_{i'+1}(key)``.
    """
    address = h(key, i_image)
    if address < n_image:
        address = h(key, i_image + 1)
    return address


def forward_address(key: int, address: int, level: int) -> int | None:
    """Server address verification (LNS96 A1).

    Bucket ``address`` with local level ``level`` received ``key``.
    Returns the bucket to forward to, or None if the key belongs here.

    The rule: ``a' = h_j(key)``; if ``a' != a`` then
    ``a'' = h_{j-1}(key)``; if ``a < a'' < a'`` use ``a''``.  LNS96
    prove the resulting chain has length at most 2 for any client
    image that was ever accurate.
    """
    candidate = h(key, level)
    if candidate == address:
        return None
    lower = h(key, level - 1)
    if address < lower < candidate:
        candidate = lower
    return candidate


def image_adjust(
    i_image: int, n_image: int, address: int, level: int
) -> tuple[int, int]:
    """Client image update from an IAM (LNS96 A3).

    The IAM carries the address ``address`` and level ``level`` of a
    bucket that the key actually reached.  The update never overshoots
    the true file state, so images converge monotonically:

    ``if level > i': i' = level - 1; n' = address + 1;
    if n' >= 2**i': n' = 0; i' += 1``.
    """
    if level > i_image:
        i_image = level - 1
        n_image = address + 1
        if n_image >= (1 << i_image):
            n_image = 0
            i_image += 1
    return i_image, n_image


def scan_initial_level(address: int, i_image: int, n_image: int) -> int:
    """Level a client image implies for bucket ``address`` during a scan.

    Used to seed the deterministic-termination forwarding rule: the
    client believes bucket ``address`` has level ``i'`` (or ``i'+1`` if
    the image says it already split this round).
    """
    if address < n_image or address >= (1 << i_image):
        return i_image + 1
    return i_image
