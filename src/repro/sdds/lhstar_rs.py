"""LH*_RS: high-availability LH* with Reed-Solomon parity.

Follows Litwin, Moussa, Schwarz (ACM TODS 2005): data buckets are
organised into *groups* of ``m`` consecutive addresses; each group has
``k`` parity buckets.  Records of the same *rank* (a stable slot index
inside their bucket) across the group's data buckets form a *record
group*; the parity buckets store ``k`` Reed-Solomon parity records per
record group, computed over GF(2^8) with a Cauchy generator matrix.
Any ``k`` unavailable buckets of a group (data or parity) can be
recovered from the survivors.

The implementation plugs into :class:`~repro.sdds.lhstar.LHStarFile`
through its bookkeeping hooks: every store/remove/move of a data record
emits *delta* messages to the group's parity buckets (the "Δ-record"
technique of the paper: parity is updated with the XOR-difference of
old and new content, scaled by the generator coefficient).  Parity
traffic therefore shows up in the simulator's message counters, exactly
like a real deployment.

Recovery (:meth:`LHStarRSFile.recover_buckets`) solves the linear
system for up to ``k`` erased buckets per group and returns the
reconstructed records; :meth:`LHStarRSFile.verify_recovery` checks the
reconstruction bit-for-bit against the live buckets.
"""

from __future__ import annotations

import heapq
from typing import Hashable

from repro.gf import GF2, Matrix, cauchy_matrix
from repro.net.simulator import Message, Network, Node
from repro.sdds.lhstar import HEADER_SIZE, LHStarFile
from repro.sdds.records import Record

_FIELD = GF2(8)

# Per-coefficient bytes.translate tables for fast scalar multiplication
# of byte strings in GF(2^8).
_MUL_TABLES: dict[int, bytes] = {}


def _mul_table(coefficient: int) -> bytes:
    table = _MUL_TABLES.get(coefficient)
    if table is None:
        table = bytes(_FIELD.mul(coefficient, x) for x in range(256))
        _MUL_TABLES[coefficient] = table
    return table


def _scale(coefficient: int, data: bytes) -> bytes:
    """coefficient * data, bytewise over GF(2^8)."""
    if coefficient == 0:
        return bytes(len(data))
    if coefficient == 1:
        return data
    return data.translate(_mul_table(coefficient))


def _xor(a: bytes, b: bytes) -> bytes:
    """XOR of two byte strings, zero-extending the shorter one."""
    if len(a) < len(b):
        a, b = b, a
    return bytes(x ^ y for x, y in zip(a, b)) + a[len(b):]


def generator_matrix(m: int, k: int) -> Matrix:
    """The k x m Cauchy generator used for the group parity code."""
    if m + k > _FIELD.order:
        raise ValueError("group too large for GF(2^8) parity")
    return cauchy_matrix(
        _FIELD, xs=list(range(m, m + k)), ys=list(range(m))
    )


class _ParitySlot:
    """Parity state of one record group (one rank) at one parity bucket."""

    __slots__ = ("payload", "rids", "lengths")

    def __init__(self, m: int) -> None:
        self.payload = b""
        self.rids: list[int | None] = [None] * m
        self.lengths: list[int] = [0] * m


class ParityBucket(Node):
    """One parity bucket: applies delta updates, serves recovery reads."""

    def __init__(
        self, file: "LHStarRSFile", group: int, index: int
    ) -> None:
        super().__init__(file.parity_id(group, index))
        self.file = file
        self.group = group
        self.index = index
        self.slots: dict[int, _ParitySlot] = {}

    def handle(self, message: Message) -> None:
        if message.kind != "parity_delta":
            raise ValueError(
                f"parity bucket: unknown message kind {message.kind!r}"
            )
        payload = message.payload
        rank = payload["rank"]
        offset = payload["offset"]      # data bucket position in the group
        slot = self.slots.get(rank)
        if slot is None:
            slot = _ParitySlot(self.file.group_size)
            self.slots[rank] = slot
        coefficient = self.file.generator.rows[self.index][offset]
        slot.payload = _xor(slot.payload, _scale(coefficient, payload["delta"]))
        slot.rids[offset] = payload["rid"]
        slot.lengths[offset] = payload["length"]

    def slot_view(self, rank: int) -> _ParitySlot | None:
        return self.slots.get(rank)


class LHStarRSFile(LHStarFile):
    """An LH* file with per-group Reed-Solomon parity buckets.

    ``group_size`` is the paper's ``m`` (data buckets per group) and
    ``parity_count`` its ``k`` (simultaneously recoverable buckets).

    >>> file = LHStarRSFile(group_size=4, parity_count=2)
    >>> file.insert(11, b"payload\\x00")
    >>> sorted(file.recover_buckets([0])[0]) == [
    ...     rid for rid in file.buckets[0].records]
    True
    """

    def __init__(
        self,
        name: str = "lhrs",
        network: Network | None = None,
        bucket_capacity: int = 64,
        group_size: int = 4,
        parity_count: int = 2,
        **file_options,
    ) -> None:
        if group_size < 2:
            raise ValueError("group size must be at least 2")
        if parity_count < 1:
            raise ValueError("parity count must be at least 1")
        self.group_size = group_size
        self.parity_count = parity_count
        self.generator = generator_matrix(group_size, parity_count)
        self.parity_buckets: dict[tuple[int, int], ParityBucket] = {}
        # Rank bookkeeping per data bucket address.
        self._ranks: dict[int, dict[int, int]] = {}
        self._free_ranks: dict[int, list[int]] = {}
        self._next_rank: dict[int, int] = {}
        super().__init__(name=name, network=network,
                         bucket_capacity=bucket_capacity,
                         **file_options)

    # -- identifiers ---------------------------------------------------------

    def parity_id(self, group: int, index: int) -> Hashable:
        return ("parity", self.name, group, index)

    def group_of(self, address: int) -> int:
        return address // self.group_size

    def offset_of(self, address: int) -> int:
        return address % self.group_size

    # -- topology -------------------------------------------------------------

    def create_bucket(self, address: int, level: int,
                      pending: bool = False):
        bucket = super().create_bucket(address, level, pending=pending)
        self._ranks[address] = {}
        self._free_ranks[address] = []
        self._next_rank[address] = 0
        group = self.group_of(address)
        for index in range(self.parity_count):
            if (group, index) not in self.parity_buckets:
                parity = ParityBucket(self, group, index)
                self.parity_buckets[(group, index)] = parity
                self.network.attach(parity)
        return bucket

    # -- rank management ---------------------------------------------------------

    def _assign_rank(self, address: int, rid: int) -> int:
        ranks = self._ranks[address]
        if rid in ranks:
            return ranks[rid]
        free = self._free_ranks[address]
        if free:
            rank = heapq.heappop(free)
        else:
            rank = self._next_rank[address]
            self._next_rank[address] += 1
        ranks[rid] = rank
        return rank

    def _release_rank(self, address: int, rid: int) -> int:
        rank = self._ranks[address].pop(rid)
        heapq.heappush(self._free_ranks[address], rank)
        return rank

    # -- parity traffic ----------------------------------------------------------

    def _send_delta(
        self,
        address: int,
        rank: int,
        rid: int | None,
        delta: bytes,
        length: int,
    ) -> None:
        group = self.group_of(address)
        offset = self.offset_of(address)
        for index in range(self.parity_count):
            self.network.send(
                self.bucket_id(address),
                self.parity_id(group, index),
                "parity_delta",
                {
                    "rank": rank,
                    "offset": offset,
                    "rid": rid,
                    "delta": delta,
                    "length": length,
                },
                size=HEADER_SIZE + len(delta),
            )

    # -- LHStarFile hooks -----------------------------------------------------

    def on_store(self, address: int, record: Record, old: Record | None) -> None:
        super().on_store(address, record, old)
        rank = self._assign_rank(address, record.rid)
        delta = _xor(record.content, old.content if old else b"")
        self._send_delta(address, rank, record.rid, delta,
                         len(record.content))

    def on_remove(self, address: int, record: Record) -> None:
        super().on_remove(address, record)
        rank = self._release_rank(address, record.rid)
        self._send_delta(address, rank, None, record.content, 0)

    def on_move(self, old: int, new: int, record: Record) -> None:
        super().on_move(old, new, record)
        rank = self._release_rank(old, record.rid)
        self._send_delta(old, rank, None, record.content, 0)
        new_rank = self._assign_rank(new, record.rid)
        self._send_delta(new, new_rank, record.rid, record.content,
                         len(record.content))

    # -- recovery --------------------------------------------------------------

    def recover_buckets(
        self, addresses: list[int]
    ) -> dict[int, dict[int, bytes]]:
        """Reconstruct the records of ``addresses`` as if they were lost.

        All addresses must belong to the same group, and there may be
        at most ``parity_count`` of them.  Returns, per address, a dict
        ``rid -> content`` rebuilt purely from the surviving data
        buckets and the parity buckets.
        """
        if not addresses:
            return {}
        groups = {self.group_of(a) for a in addresses}
        if len(groups) != 1:
            raise ValueError("can only recover one group at a time")
        if len(addresses) > self.parity_count:
            raise ValueError(
                f"{len(addresses)} failures exceed parity count "
                f"{self.parity_count}"
            )
        if len(set(addresses)) != len(addresses):
            raise ValueError("duplicate addresses in recovery set")
        group = groups.pop()
        erased_offsets = sorted(self.offset_of(a) for a in addresses)
        offset_to_address = {
            self.offset_of(a): a for a in addresses
        }
        surviving = {
            offset: self.buckets.get(group * self.group_size + offset)
            for offset in range(self.group_size)
            if offset not in erased_offsets
        }
        parities = [
            self.parity_buckets[(group, index)]
            for index in range(self.parity_count)
        ]
        # Ranks present anywhere in the group, as recorded by parity 0.
        all_ranks = set(parities[0].slots)
        # Use the first len(erased) parity buckets: any such subset of a
        # Cauchy-coded system is solvable.
        use = erased_offsets
        nerased = len(use)
        # Coefficient matrix: rows = chosen parity buckets, cols = erased
        # data offsets.
        system = Matrix(
            _FIELD,
            [
                [self.generator.rows[p][offset] for offset in use]
                for p in range(nerased)
            ],
        )
        solver = system.inverse()
        recovered: dict[int, dict[int, bytes]] = {
            address: {} for address in addresses
        }
        for rank in sorted(all_ranks):
            slot0 = parities[0].slots[rank]
            # Right-hand side: parity payload minus surviving contributions.
            rhs: list[bytes] = []
            for p in range(nerased):
                slot = parities[p].slots.get(rank)
                acc = slot.payload if slot else b""
                for offset, bucket in surviving.items():
                    rid = slot0.rids[offset]
                    if rid is None or bucket is None:
                        continue
                    record = bucket.records.get(rid)
                    if record is None:
                        continue
                    acc = _xor(
                        acc,
                        _scale(self.generator.rows[p][offset],
                               record.content),
                    )
                rhs.append(acc)
            width = max((len(b) for b in rhs), default=0)
            rhs = [b + bytes(width - len(b)) for b in rhs]
            for column, offset in enumerate(use):
                rid = slot0.rids[offset]
                if rid is None:
                    continue
                content = bytes(width)
                for p in range(nerased):
                    content = _xor(
                        content,
                        _scale(solver.rows[column][p], rhs[p]),
                    )
                length = slot0.lengths[offset]
                recovered[offset_to_address[offset]][rid] = content[:length]
        return recovered

    def degraded_lookup(self, rid: int) -> bytes | None:
        """Read one record *as if its data bucket were unavailable*.

        The LH*_RS degraded-read path: locate the record's group and
        rank through the parity metadata, then reconstruct just that
        record group from the surviving data buckets plus one parity
        bucket — without touching the record's home bucket at all.
        Returns None when no parity bucket knows the RID.
        """
        from repro.sdds.hashing import client_address
        address = client_address(rid, self.coordinator.i,
                                 self.coordinator.n)
        group = self.group_of(address)
        offset = self.offset_of(address)
        parity0 = self.parity_buckets.get((group, 0))
        if parity0 is None:
            return None
        rank = next(
            (
                r for r, slot in parity0.slots.items()
                if slot.rids[offset] == rid
            ),
            None,
        )
        if rank is None:
            return None
        slot = parity0.slots[rank]
        acc = slot.payload
        for other in range(self.group_size):
            if other == offset:
                continue
            other_rid = slot.rids[other]
            if other_rid is None:
                continue
            bucket = self.buckets.get(group * self.group_size + other)
            if bucket is None:
                return None
            record = bucket.records.get(other_rid)
            if record is None:
                return None
            acc = _xor(acc, _scale(self.generator.rows[0][other],
                                   record.content))
        coefficient = self.generator.rows[0][offset]
        content = _scale(_FIELD.inv(coefficient), acc)
        return content[:slot.lengths[offset]]

    def verify_recovery(self, addresses: list[int]) -> bool:
        """Check that recovery reproduces the live buckets exactly."""
        recovered = self.recover_buckets(addresses)
        for address in addresses:
            live = {
                rid: record.content
                for rid, record in self.buckets[address].records.items()
            }
            if recovered[address] != live:
                return False
        return True
