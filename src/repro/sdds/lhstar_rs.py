"""LH*_RS: high-availability LH* with Reed-Solomon parity.

Follows Litwin, Moussa, Schwarz (ACM TODS 2005): data buckets are
organised into *groups* of ``m`` consecutive addresses; each group has
``k`` parity buckets.  Records of the same *rank* (a stable slot index
inside their bucket) across the group's data buckets form a *record
group*; the parity buckets store ``k`` Reed-Solomon parity records per
record group, computed over GF(2^8) with a Cauchy generator matrix.
Any ``k`` unavailable buckets of a group (data or parity) can be
recovered from the survivors.

The implementation plugs into :class:`~repro.sdds.lhstar.LHStarFile`
through its bookkeeping hooks: every store/remove/move of a data record
emits *delta* messages to the group's parity buckets (the "Δ-record"
technique of the paper: parity is updated with the XOR-difference of
old and new content, scaled by the generator coefficient).  Parity
traffic therefore shows up in the simulator's message counters, exactly
like a real deployment.

Recovery (:meth:`LHStarRSFile.recover_buckets`) solves the linear
system for up to ``k`` erased buckets per group and returns the
reconstructed records; :meth:`LHStarRSFile.verify_recovery` checks the
reconstruction bit-for-bit against the live buckets.
"""

from __future__ import annotations

import heapq
import itertools
from collections import OrderedDict
from typing import Any, Hashable

from repro.errors import BucketUnavailableError
from repro.gf import GF2, Matrix, cauchy_matrix
from repro.net.simulator import Message, Network, Node
from repro.obs.metrics import inc as metric_inc
from repro.obs.trace import emit as obs_emit
from repro.obs.trace import span as obs_span
from repro.sdds.lhstar import (
    DEDUP_CACHE_LIMIT,
    DEFAULT_RETRY_POLICY,
    HEADER_SIZE,
    MAX_ESCALATIONS,
    LHStarFile,
    _hit_size,
)
from repro.sdds.records import RECORD_OVERHEAD, Record

_FIELD = GF2(8)

# Per-coefficient bytes.translate tables for fast scalar multiplication
# of byte strings in GF(2^8).
_MUL_TABLES: dict[int, bytes] = {}


def _mul_table(coefficient: int) -> bytes:
    table = _MUL_TABLES.get(coefficient)
    if table is None:
        table = bytes(_FIELD.mul(coefficient, x) for x in range(256))
        _MUL_TABLES[coefficient] = table
    return table


def _scale(coefficient: int, data: bytes) -> bytes:
    """coefficient * data, bytewise over GF(2^8)."""
    if coefficient == 0:
        return bytes(len(data))
    if coefficient == 1:
        return data
    return data.translate(_mul_table(coefficient))


def _xor(a: bytes, b: bytes) -> bytes:
    """XOR of two byte strings, zero-extending the shorter one."""
    if len(a) < len(b):
        a, b = b, a
    return bytes(x ^ y for x, y in zip(a, b)) + a[len(b):]


def generator_matrix(m: int, k: int) -> Matrix:
    """The k x m Cauchy generator used for the group parity code."""
    if m + k > _FIELD.order:
        raise ValueError("group too large for GF(2^8) parity")
    return cauchy_matrix(
        _FIELD, xs=list(range(m, m + k)), ys=list(range(m))
    )


class _ParitySlot:
    """Parity state of one record group (one rank) at one parity bucket."""

    __slots__ = ("payload", "rids", "lengths")

    def __init__(self, m: int) -> None:
        self.payload = b""
        self.rids: list[int | None] = [None] * m
        self.lengths: list[int] = [0] * m


class _ParityGather:
    """One in-flight message-based reconstruction at a parity bucket.

    Snapshots the parity metadata (rids and lengths per rank) at
    start, then collects the survivors' record contents
    (``group_data``) and the sibling parity payloads
    (``parity_data``) until every fetch is answered; the initiating
    request is replayed from ``request`` at completion.
    """

    __slots__ = ("kind", "request", "dead_offsets", "target_offset",
                 "ranks", "meta", "expected", "contents", "payloads",
                 "waiting_offsets", "waiting_parity", "timer",
                 "escalations")

    def __init__(
        self,
        kind: str,
        request: dict[str, Any],
        dead_offsets: list[int],
        target_offset: int,
        ranks: list[int],
        meta: dict[int, tuple[tuple[int | None, ...], tuple[int, ...]]],
    ) -> None:
        self.kind = kind
        self.request = request
        self.dead_offsets = dead_offsets
        self.target_offset = target_offset
        self.ranks = ranks
        self.meta = meta
        self.expected = 0
        #: Surviving data contents: offset -> {rank: bytes}.
        self.contents: dict[int, dict[int, bytes]] = {}
        #: Parity payloads: parity index -> {rank: bytes}.
        self.payloads: dict[int, dict[int, bytes]] = {}
        #: Sources still owing an answer: data-bucket offsets
        #: (``group_data``) and parity indexes (``parity_data``).
        self.waiting_offsets: set[int] = set()
        self.waiting_parity: set[int] = set()
        #: Liveness timer: a survivor that crashed after the fetch
        #: went out would otherwise wedge the gather forever.
        self.timer: Any = None
        self.escalations = 0


class ParityBucket(Node):
    """One parity bucket: applies delta updates, serves degraded
    reads and drives message-based recovery gathers."""

    def __init__(
        self, file: "LHStarRSFile", group: int, index: int
    ) -> None:
        super().__init__(file.parity_id(group, index))
        self.file = file
        self.group = group
        self.index = index
        self.slots: dict[int, _ParitySlot] = {}
        self._gathers: dict[int, _ParityGather] = {}
        self._gather_ids = itertools.count()
        # Degraded-read idempotence under client retransmission:
        # request id -> finished reply, replayed verbatim; plus the
        # set of requests whose gather is still in flight (duplicates
        # are absorbed — the reply is already on its way).
        self._reply_cache: OrderedDict[
            tuple[Hashable, int, int], tuple[str, dict[str, Any], int]
        ] = OrderedDict()
        self._inflight: set[tuple[Hashable, int, int]] = set()

    def handle(self, message: Message) -> None:
        kind = message.kind
        if kind == "parity_delta":
            self._handle_delta(message)
        elif kind in ("degraded_lookup", "degraded_scan"):
            self._handle_degraded(message)
        elif kind == "recover":
            self._start_gather(kind, message.payload)
        elif kind == "parity_fetch":
            self._handle_parity_fetch(message)
        elif kind in ("group_data", "parity_data"):
            self._handle_gather_data(message)
        elif kind in ("bucket_down", "bucket_up", "bucket_recovered"):
            self._handle_liveness(kind, message.payload)
        else:
            raise ValueError(
                f"parity bucket: unknown message kind {kind!r}"
            )

    def _handle_delta(self, message: Message) -> None:
        payload = message.payload
        rank = payload["rank"]
        offset = payload["offset"]      # data bucket position in the group
        slot = self.slots.get(rank)
        if slot is None:
            slot = _ParitySlot(self.file.group_size)
            self.slots[rank] = slot
        coefficient = self.file.generator.rows[self.index][offset]
        slot.payload = _xor(slot.payload, _scale(coefficient, payload["delta"]))
        slot.rids[offset] = payload["rid"]
        slot.lengths[offset] = payload["length"]

    def slot_view(self, rank: int) -> _ParitySlot | None:
        return self.slots.get(rank)

    # -- degraded reads and recovery gathers ---------------------------------

    def _request_id(
        self, payload: dict[str, Any]
    ) -> tuple[Hashable, int, int]:
        return (payload["client"], payload["op"], payload["address"])

    def _handle_degraded(self, message: Message) -> None:
        request = self._request_id(message.payload)
        cached = self._reply_cache.get(request)
        if cached is not None:
            obs_emit("lh.dedup_replay", file=self.file.name,
                     kind=message.kind, group=self.group,
                     op=message.payload["op"])
            metric_inc("lh.dedup_replay")
            kind, reply, size = cached
            self.send(message.payload["client"], kind, reply, size=size)
            return
        if request in self._inflight:
            return  # gather already running; its reply is coming
        self._inflight.add(request)
        self._start_gather(message.kind, message.payload)

    def _start_gather(self, kind: str, payload: dict[str, Any]) -> None:
        """Begin reconstructing the dead target bucket's records.

        Everything happens via messages: ``group_fetch`` to each
        surviving data bucket for the ranks it contributes to, and
        ``parity_fetch`` to the sibling parity buckets whose payloads
        the erasure system needs.  Nothing here reads another node's
        record store directly.
        """
        dead_offsets = sorted({
            self.file.offset_of(a) for a in payload["dead"]
        })
        if len(dead_offsets) > self.file.parity_count:
            raise ValueError(
                f"group {self.group}: {len(dead_offsets)} erasures "
                f"exceed parity count {self.file.parity_count}"
            )
        target_offset = self.file.offset_of(payload["address"])
        if kind == "degraded_lookup":
            key = payload["key"]
            rank = next(
                (r for r, slot in self.slots.items()
                 if slot.rids[target_offset] == key),
                None,
            )
            if rank is None:
                # The parity metadata knows every live record of the
                # group: no rank means the key does not exist there.
                self._finish_lookup(payload, None)
                return
            ranks = [rank]
        else:
            ranks = sorted(
                r for r, slot in self.slots.items()
                if slot.rids[target_offset] is not None
            )
            if not ranks:
                self._complete_empty(kind, payload)
                return
        meta = {
            r: (tuple(self.slots[r].rids), tuple(self.slots[r].lengths))
            for r in ranks
        }
        gather = _ParityGather(kind, payload, dead_offsets,
                               target_offset, ranks, meta)
        gid = next(self._gather_ids)
        gather.payloads[self.index] = {
            r: self.slots[r].payload for r in ranks
        }
        group_base = self.group * self.file.group_size
        for offset in range(self.file.group_size):
            if offset in dead_offsets:
                continue
            address = group_base + offset
            if address not in self.file.buckets:
                continue
            entries = {
                r: meta[r][0][offset] for r in ranks
                if meta[r][0][offset] is not None
            }
            if not entries:
                continue
            gather.expected += 1
            gather.waiting_offsets.add(offset)
            self.send(
                self.file.bucket_id(address),
                "group_fetch",
                {"gather": gid, "offset": offset, "entries": entries},
                size=HEADER_SIZE + 8 * len(entries),
            )
        for index in range(len(dead_offsets)):
            if index == self.index:
                continue
            gather.expected += 1
            gather.waiting_parity.add(index)
            self.send(
                self.file.parity_id(self.group, index),
                "parity_fetch",
                {"gather": gid, "ranks": ranks},
                size=HEADER_SIZE + 8 * len(ranks),
            )
        if gather.expected == 0:
            self._complete(gather)
        else:
            self._gathers[gid] = gather
            self._arm_gather_timer(gid, gather)

    def _arm_gather_timer(self, gid: int, gather: _ParityGather) -> None:
        policy = self.file.retry_policy or DEFAULT_RETRY_POLICY
        gather.timer = self.network.schedule(
            policy.delay(gather.escalations),
            lambda: self._gather_timeout(gid),
            owner=self.node_id,
        )

    def _gather_timeout(self, gid: int) -> None:
        """A fetch went unanswered: a survivor may have crashed after
        the gather started.  Escalate the silent data buckets to the
        coordinator (it probes, declares, and tells us via
        ``bucket_down``/``bucket_up``) and re-poke silent parity
        siblings; give up after the escalation budget so a genuinely
        unrecoverable gather fails loudly instead of leaking."""
        gather = self._gathers.get(gid)
        if gather is None:
            return
        gather.escalations += 1
        if gather.escalations > MAX_ESCALATIONS:
            self._drop_gather(gid, gather)
            obs_emit("lh.gather_abandoned", file=self.file.name,
                     group=self.group, kind=gather.kind)
            metric_inc("lh.gather_abandoned")
            return
        group_base = self.group * self.file.group_size
        for offset in sorted(gather.waiting_offsets):
            self.send(
                self.file.coordinator_id,
                "suspect",
                {"address": group_base + offset,
                 "client": self.node_id},
                size=HEADER_SIZE,
            )
        for index in sorted(gather.waiting_parity):
            self.send(
                self.file.parity_id(self.group, index),
                "parity_fetch",
                {"gather": gid, "ranks": gather.ranks},
                size=HEADER_SIZE + 8 * len(gather.ranks),
            )
        self._arm_gather_timer(gid, gather)

    def _handle_liveness(
        self, kind: str, payload: dict[str, Any]
    ) -> None:
        """Coordinator verdict on a survivor we suspected: restart
        every gather stalled on it — with an enlarged dead set when
        the survivor is confirmed dead, or simply re-fetching when it
        is alive again (rebooted or recovered)."""
        address = payload["address"]
        offset = self.file.offset_of(address)
        for gid in list(self._gathers):
            gather = self._gathers.get(gid)
            if gather is None or offset not in gather.waiting_offsets:
                continue
            request = dict(gather.request)
            if kind == "bucket_down":
                dead = set(request["dead"]) | {address}
                dead.update(payload.get("group_dead", {}))
                erased = {self.file.offset_of(a) for a in dead}
                if len(erased) > self.file.parity_count:
                    # More erasures than the code can solve: drop the
                    # gather; the requester's own retries will surface
                    # a typed error once escalation runs out.
                    self._drop_gather(gid, gather)
                    continue
                request["dead"] = sorted(dead)
            del self._gathers[gid]
            if gather.timer is not None:
                gather.timer.cancel()
            self._start_gather(gather.kind, request)

    def _drop_gather(self, gid: int, gather: _ParityGather) -> None:
        del self._gathers[gid]
        if gather.timer is not None:
            gather.timer.cancel()
        if gather.kind != "recover":
            self._inflight.discard(self._request_id(gather.request))

    def _handle_parity_fetch(self, message: Message) -> None:
        payload = message.payload
        payloads = {}
        for rank in payload["ranks"]:
            slot = self.slots.get(rank)
            payloads[rank] = b"" if slot is None else slot.payload
        self.send(
            message.src,
            "parity_data",
            {
                "gather": payload["gather"],
                "index": self.index,
                "payloads": payloads,
            },
            size=HEADER_SIZE + sum(
                8 + len(data) for data in payloads.values()
            ),
        )

    def _handle_gather_data(self, message: Message) -> None:
        payload = message.payload
        gather = self._gathers.get(payload["gather"])
        if gather is None:
            return  # late data for a gather already solved
        if message.kind == "group_data":
            if payload["offset"] not in gather.waiting_offsets:
                return  # duplicate answer (re-poked source)
            gather.waiting_offsets.discard(payload["offset"])
            gather.contents[payload["offset"]] = payload["entries"]
        else:
            if payload["index"] not in gather.waiting_parity:
                return  # duplicate answer (re-poked source)
            gather.waiting_parity.discard(payload["index"])
            gather.payloads[payload["index"]] = payload["payloads"]
        gather.expected -= 1
        if gather.expected == 0:
            del self._gathers[payload["gather"]]
            if gather.timer is not None:
                gather.timer.cancel()
            self._complete(gather)

    def _solve(self, gather: _ParityGather) -> dict[int, bytes]:
        """Solve the erasure system from the gathered survivor and
        parity data: rank -> reconstructed content of the target
        offset (same Cauchy algebra as the offline helper)."""
        generator = self.file.generator
        dead = gather.dead_offsets
        nerased = len(dead)
        system = Matrix(
            _FIELD,
            [
                [generator.rows[p][offset] for offset in dead]
                for p in range(nerased)
            ],
        )
        solver = system.inverse()
        column = dead.index(gather.target_offset)
        recovered: dict[int, bytes] = {}
        for rank in gather.ranks:
            rids, lengths = gather.meta[rank]
            if rids[gather.target_offset] is None:
                continue
            rhs: list[bytes] = []
            for p in range(nerased):
                acc = gather.payloads.get(p, {}).get(rank, b"")
                for offset, entries in gather.contents.items():
                    content = entries.get(rank, b"")
                    if content:
                        acc = _xor(
                            acc,
                            _scale(generator.rows[p][offset], content),
                        )
                rhs.append(acc)
            width = max((len(b) for b in rhs), default=0)
            rhs = [b + bytes(width - len(b)) for b in rhs]
            content = bytes(width)
            for p in range(nerased):
                content = _xor(
                    content, _scale(solver.rows[column][p], rhs[p])
                )
            recovered[rank] = content[:lengths[gather.target_offset]]
        return recovered

    def _complete(self, gather: _ParityGather) -> None:
        recovered = self._solve(gather)
        request = gather.request
        if gather.kind == "degraded_lookup":
            content = recovered.get(gather.ranks[0])
            self._finish_lookup(request, content)
        elif gather.kind == "degraded_scan":
            records = [
                Record(gather.meta[rank][0][gather.target_offset],
                       content)
                for rank, content in sorted(recovered.items())
            ]
            self._finish_scan(request, records)
        else:
            records = [
                Record(gather.meta[rank][0][gather.target_offset],
                       content)
                for rank, content in sorted(recovered.items())
            ]
            self._install(request, records)

    def _complete_empty(self, kind: str, payload: dict[str, Any]) -> None:
        """The dead bucket held no records: short-circuit."""
        if kind == "degraded_scan":
            self._finish_scan(payload, [])
        else:
            self._install(payload, [])

    def _reply(
        self,
        payload: dict[str, Any],
        kind: str,
        reply: dict[str, Any],
        size: int,
    ) -> None:
        request = self._request_id(payload)
        self._inflight.discard(request)
        self._reply_cache[request] = (kind, reply, size)
        while len(self._reply_cache) > DEDUP_CACHE_LIMIT:
            self._reply_cache.popitem(last=False)
        self.send(payload["client"], kind, reply, size=size)

    def _finish_lookup(
        self, payload: dict[str, Any], content: bytes | None
    ) -> None:
        self._reply(
            payload,
            "reply",
            {
                "op": payload["op"],
                "ok": content is not None,
                "content": content,
                "degraded": True,
            },
            HEADER_SIZE + (
                0 if content is None else RECORD_OVERHEAD + len(content)
            ),
        )

    def _finish_scan(
        self, payload: dict[str, Any], records: list[Record]
    ) -> None:
        matcher = payload["matcher"]
        hits = []
        for record in records:
            outcome = matcher(record)
            if outcome is not None:
                hits.append(outcome)
        self._reply(
            payload,
            "scan_reply",
            {
                "op": payload["op"],
                "address": payload["address"],
                "level": payload["level"],
                "hits": hits,
                "forwarded": [],
                "degraded": True,
            },
            HEADER_SIZE + sum(_hit_size(hit) for hit in hits),
        )

    def _install(
        self, payload: dict[str, Any], records: list[Record]
    ) -> None:
        """Ship the reconstructed records to the pending spare."""
        self.send(
            self.file.bucket_id(payload["address"]),
            "recover_install",
            {"records": records},
            size=HEADER_SIZE + sum(r.wire_size for r in records),
        )


class LHStarRSFile(LHStarFile):
    """An LH* file with per-group Reed-Solomon parity buckets.

    ``group_size`` is the paper's ``m`` (data buckets per group) and
    ``parity_count`` its ``k`` (simultaneously recoverable buckets).

    >>> file = LHStarRSFile(group_size=4, parity_count=2)
    >>> file.insert(11, b"payload\\x00")
    >>> sorted(file.recover_buckets([0])[0]) == [
    ...     rid for rid in file.buckets[0].records]
    True
    """

    def __init__(
        self,
        name: str = "lhrs",
        network: Network | None = None,
        bucket_capacity: int = 64,
        group_size: int = 4,
        parity_count: int = 2,
        **file_options,
    ) -> None:
        if group_size < 2:
            raise ValueError("group size must be at least 2")
        if parity_count < 1:
            raise ValueError("parity count must be at least 1")
        self.group_size = group_size
        self.parity_count = parity_count
        self.generator = generator_matrix(group_size, parity_count)
        self.parity_buckets: dict[tuple[int, int], ParityBucket] = {}
        # Rank bookkeeping per data bucket address.
        self._ranks: dict[int, dict[int, int]] = {}
        self._free_ranks: dict[int, list[int]] = {}
        self._next_rank: dict[int, int] = {}
        # Open lh.recover spans, one per bucket under reconstruction.
        self._recovery_spans: dict[int, Any] = {}
        super().__init__(name=name, network=network,
                         bucket_capacity=bucket_capacity,
                         **file_options)

    # -- identifiers ---------------------------------------------------------

    def parity_id(self, group: int, index: int) -> Hashable:
        return ("parity", self.name, group, index)

    def group_of(self, address: int) -> int:
        return address // self.group_size

    def offset_of(self, address: int) -> int:
        return address % self.group_size

    # -- topology -------------------------------------------------------------

    def create_bucket(self, address: int, level: int,
                      pending: bool = False):
        bucket = super().create_bucket(address, level, pending=pending)
        self._ranks[address] = {}
        self._free_ranks[address] = []
        self._next_rank[address] = 0
        group = self.group_of(address)
        for index in range(self.parity_count):
            if (group, index) not in self.parity_buckets:
                parity = ParityBucket(self, group, index)
                self.parity_buckets[(group, index)] = parity
                self.network.attach(parity)
        return bucket

    # -- rank management ---------------------------------------------------------

    def _assign_rank(self, address: int, rid: int) -> int:
        ranks = self._ranks[address]
        if rid in ranks:
            return ranks[rid]
        free = self._free_ranks[address]
        if free:
            rank = heapq.heappop(free)
        else:
            rank = self._next_rank[address]
            self._next_rank[address] += 1
        ranks[rid] = rank
        return rank

    def _release_rank(self, address: int, rid: int) -> int:
        rank = self._ranks[address].pop(rid)
        heapq.heappush(self._free_ranks[address], rank)
        return rank

    # -- parity traffic ----------------------------------------------------------

    def _send_delta(
        self,
        address: int,
        rank: int,
        rid: int | None,
        delta: bytes,
        length: int,
    ) -> None:
        group = self.group_of(address)
        offset = self.offset_of(address)
        for index in range(self.parity_count):
            self.network.send(
                self.bucket_id(address),
                self.parity_id(group, index),
                "parity_delta",
                {
                    "rank": rank,
                    "offset": offset,
                    "rid": rid,
                    "delta": delta,
                    "length": length,
                },
                size=HEADER_SIZE + len(delta),
            )

    # -- LHStarFile hooks -----------------------------------------------------

    def on_store(self, address: int, record: Record, old: Record | None) -> None:
        super().on_store(address, record, old)
        rank = self._assign_rank(address, record.rid)
        delta = _xor(record.content, old.content if old else b"")
        self._send_delta(address, rank, record.rid, delta,
                         len(record.content))

    def on_remove(self, address: int, record: Record) -> None:
        super().on_remove(address, record)
        rank = self._release_rank(address, record.rid)
        self._send_delta(address, rank, None, record.content, 0)

    def on_move(self, old: int, new: int, record: Record) -> None:
        """Source-side half of a migration: release the rank and
        cancel the parity contribution.  A record merely *in transit*
        through this address (a misfit re-ship that was never stored
        here) has no rank and owes no delta.  The destination-side
        half runs in :meth:`on_absorb` when the record is stored —
        possibly on a different site."""
        super().on_move(old, new, record)
        ranks = self._ranks.get(old)
        rank = None if ranks is None else ranks.pop(record.rid, None)
        if rank is None:
            return
        heapq.heappush(self._free_ranks[old], rank)
        self._send_delta(old, rank, None, record.content, 0)

    def on_absorb(self, address: int, record: Record, old: Record | None) -> None:
        super().on_absorb(address, record, old)
        rank = self._assign_rank(address, record.rid)
        delta = _xor(record.content, old.content if old else b"")
        self._send_delta(address, rank, record.rid, delta,
                         len(record.content))

    # -- online crash recovery (LHStarFile hooks) -----------------------------

    def recovery_group(self, address: int) -> list[int]:
        base = self.group_of(address) * self.group_size
        return [
            base + offset for offset in range(self.group_size)
            if (base + offset) in self.buckets
        ]

    def degraded_read_target(self, address: int) -> Hashable:
        return self.parity_id(self.group_of(address), 0)

    def degraded_dead_set(
        self, address: int, dead: dict[int, tuple[int, bool]]
    ) -> list[int]:
        members = self.recovery_group(address)
        return sorted({m for m in members if m in dead} | {address})

    def begin_recovery(self, address: int, level: int) -> bool:
        """Launch the online reconstruction of a dead bucket.

        Spawns a pending spare under the dead bucket's network
        identity and asks the group's first parity bucket to gather
        survivor contents and sibling parity payloads, solve the
        erasure system, and ship the result as ``recover_install``.
        Returns False — unrecoverable — when the group already has
        more failures than parity.
        """
        dead = self.degraded_dead_set(address, self.coordinator.dead)
        if len(dead) > self.parity_count:
            obs_emit("lh.recover_refused", file=self.name,
                     bucket=address, dead=dead)
            return False
        group = self.group_of(address)
        span = obs_span("lh.recover", network=self.network,
                        file=self.name, bucket=address, group=group)
        span.__enter__()
        self._recovery_spans[address] = span
        metric_inc("lh.recover")
        self.spawn_spare(address, level)
        self.network.send(
            self.coordinator_id,
            self.parity_id(group, 0),
            "recover",
            {"address": address, "dead": dead},
            size=HEADER_SIZE,
        )
        return True

    def finish_recovery(self, address: int) -> None:
        span = self._recovery_spans.pop(address, None)
        if span is not None:
            span.__exit__(None, None, None)

    def crash_gate(self, limit: int | None = None):
        """A veto callable for :class:`~repro.net.faults.CrashFaultModel`.

        Permits a crash only of this file's live data buckets, and
        only while the group's failure count stays within ``limit``
        (default: the parity count) — the regime the paper's
        k-availability guarantee covers.  Buckets that are retired,
        pending (spares under recovery) or already declared dead are
        never crashed: killing them would wedge an in-flight recovery
        rather than model an independent failure.
        """
        allowed = self.parity_count if limit is None else limit

        def gate(node_id: Hashable) -> bool:
            if not (isinstance(node_id, tuple) and len(node_id) == 3
                    and node_id[0] == "bucket"
                    and node_id[1] == self.name):
                return False
            address = node_id[2]
            bucket = self.buckets.get(address)
            if bucket is None or bucket.retired or bucket.pending:
                return False
            if address in self.coordinator.dead:
                return False
            down = 0
            for member in self.recovery_group(address):
                if member == address:
                    continue
                peer = self.buckets.get(member)
                if (member in self.coordinator.dead
                        or (peer is not None and peer.pending)
                        or self.network.is_crashed(
                            self.bucket_id(member))):
                    down += 1
            return down + 1 <= allowed

        return gate

    # -- recovery --------------------------------------------------------------

    def recover_buckets(
        self, addresses: list[int]
    ) -> dict[int, dict[int, bytes]]:
        """Reconstruct the records of ``addresses`` as if they were lost.

        All addresses must belong to the same group, and there may be
        at most ``parity_count`` of them.  Returns, per address, a dict
        ``rid -> content`` rebuilt purely from the surviving data
        buckets and the parity buckets.
        """
        if not addresses:
            return {}
        groups = {self.group_of(a) for a in addresses}
        if len(groups) != 1:
            raise ValueError("can only recover one group at a time")
        if len(addresses) > self.parity_count:
            raise ValueError(
                f"{len(addresses)} failures exceed parity count "
                f"{self.parity_count}"
            )
        if len(set(addresses)) != len(addresses):
            raise ValueError("duplicate addresses in recovery set")
        group = groups.pop()
        erased_offsets = sorted(self.offset_of(a) for a in addresses)
        offset_to_address = {
            self.offset_of(a): a for a in addresses
        }
        surviving = {
            offset: self.buckets.get(group * self.group_size + offset)
            for offset in range(self.group_size)
            if offset not in erased_offsets
        }
        parities = [
            self.parity_buckets[(group, index)]
            for index in range(self.parity_count)
        ]
        # Ranks present anywhere in the group, as recorded by parity 0.
        all_ranks = set(parities[0].slots)
        # Use the first len(erased) parity buckets: any such subset of a
        # Cauchy-coded system is solvable.
        use = erased_offsets
        nerased = len(use)
        # Coefficient matrix: rows = chosen parity buckets, cols = erased
        # data offsets.
        system = Matrix(
            _FIELD,
            [
                [self.generator.rows[p][offset] for offset in use]
                for p in range(nerased)
            ],
        )
        solver = system.inverse()
        recovered: dict[int, dict[int, bytes]] = {
            address: {} for address in addresses
        }
        for rank in sorted(all_ranks):
            slot0 = parities[0].slots[rank]
            # Right-hand side: parity payload minus surviving contributions.
            rhs: list[bytes] = []
            for p in range(nerased):
                slot = parities[p].slots.get(rank)
                acc = slot.payload if slot else b""
                for offset, bucket in surviving.items():
                    rid = slot0.rids[offset]
                    if rid is None or bucket is None:
                        continue
                    record = bucket.records.get(rid)
                    if record is None:
                        continue
                    acc = _xor(
                        acc,
                        _scale(self.generator.rows[p][offset],
                               record.content),
                    )
                rhs.append(acc)
            width = max((len(b) for b in rhs), default=0)
            rhs = [b + bytes(width - len(b)) for b in rhs]
            for column, offset in enumerate(use):
                rid = slot0.rids[offset]
                if rid is None:
                    continue
                content = bytes(width)
                for p in range(nerased):
                    content = _xor(
                        content,
                        _scale(solver.rows[column][p], rhs[p]),
                    )
                length = slot0.lengths[offset]
                recovered[offset_to_address[offset]][rid] = content[:length]
        return recovered

    def degraded_lookup(self, rid: int) -> bytes | None:
        """Read one record *as if its data bucket were unavailable*.

        The LH*_RS degraded-read path: locate the record's group and
        rank through the parity metadata, then reconstruct just that
        record group from the surviving data buckets plus one parity
        bucket — without touching the record's home bucket at all.
        Returns None when no parity bucket knows the RID.
        """
        from repro.sdds.hashing import client_address
        address = client_address(rid, self.coordinator.i,
                                 self.coordinator.n)
        group = self.group_of(address)
        offset = self.offset_of(address)
        parity0 = self.parity_buckets.get((group, 0))
        if parity0 is None:
            return None
        rank = next(
            (
                r for r, slot in parity0.slots.items()
                if slot.rids[offset] == rid
            ),
            None,
        )
        if rank is None:
            return None
        slot = parity0.slots[rank]
        acc = slot.payload
        for other in range(self.group_size):
            if other == offset:
                continue
            other_rid = slot.rids[other]
            if other_rid is None:
                continue
            bucket = self.buckets.get(group * self.group_size + other)
            if bucket is None:
                return None
            record = bucket.records.get(other_rid)
            if record is None:
                return None
            acc = _xor(acc, _scale(self.generator.rows[0][other],
                                   record.content))
        coefficient = self.generator.rows[0][offset]
        content = _scale(_FIELD.inv(coefficient), acc)
        return content[:slot.lengths[offset]]

    def verify_recovery(self, addresses: list[int]) -> bool:
        """Check that recovery reproduces the live buckets exactly.

        Raises :class:`~repro.errors.BucketUnavailableError` when an
        address has no live bucket to verify against (it crashed, or
        the file never grew that far) — historically this surfaced as
        a bare ``KeyError`` from the bucket map.
        """
        # Liveness check first: recover_buckets would otherwise die on
        # a bare KeyError looking up a parity group that never existed.
        for address in addresses:
            if self.buckets.get(address) is None:
                raise BucketUnavailableError(
                    f"bucket {address} has no live instance to verify "
                    "the reconstruction against"
                )
        recovered = self.recover_buckets(addresses)
        for address in addresses:
            bucket = self.buckets[address]
            live = {
                rid: record.content
                for rid, record in bucket.records.items()
            }
            if recovered[address] != live:
                return False
        return True
