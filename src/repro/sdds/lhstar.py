"""LH*: distributed linear hashing over the simulated network.

Roles (each a :class:`~repro.net.simulator.Node`):

* **Bucket servers** hold the records of one linear-hash bucket and
  know only their own address and level.  They verify addresses,
  forward misdirected keys (at most twice), answer scans and perform
  splits when told to.
* **The split coordinator** holds the authoritative file state
  ``(i, n)`` and turns overflow notifications into splits of bucket
  ``n`` — the classic linear-hashing discipline.
* **Clients** hold a private, possibly stale image ``(i', n')`` and
  never talk to the coordinator on the data path; they converge via
  Image Adjustment Messages piggybacked on forwarded operations.

:class:`LHStarFile` wires the three roles together and offers a
synchronous facade (``insert/lookup/delete/scan``) that the encrypted
search layer and the benchmarks drive.  Every call runs the network to
quiescence, so cost counters around a call measure exactly that
operation.
"""

from __future__ import annotations

import itertools
from collections import OrderedDict
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Any, Callable, Hashable

from repro.errors import BucketUnavailableError, InsertFailedError
from repro.net.faults import RetryExhaustedError, RetryPolicy
from repro.net.simulator import Message, Network, Node, Timer
from repro.obs.metrics import inc as metric_inc
from repro.obs.metrics import observe as metric_observe
from repro.obs.metrics import set_gauge as metric_set_gauge
from repro.obs.trace import emit as obs_emit
from repro.sdds.hashing import (
    bucket_level,
    client_address,
    forward_address,
    image_adjust,
    scan_initial_level,
)
from repro.sdds.haystack import BucketHaystack
from repro.sdds.records import RECORD_OVERHEAD, Record

#: Accounted wire size of a request/control header.
HEADER_SIZE = 32

#: Default client retry policy: generous timeouts relative to the
#: simulated LAN, so on a reliable network every timer is cancelled
#: before firing and behaviour is identical to the retry-free past.
DEFAULT_RETRY_POLICY = RetryPolicy()

#: Bucket-side idempotence caches (request id -> cached reply) are
#: bounded LRU; old entries only matter while their operation can
#: still be retransmitted, which the retry budget bounds tightly.
DEDUP_CACHE_LIMIT = 4096

#: How many times one operation may exhaust a full retry budget and
#: escalate a ``suspect`` to the coordinator before it gives up for
#: good.  Bounds the total work of an operation against a bucket that
#: answers probes (so is never declared dead) but whose client-path
#: datagrams are all lost.
MAX_ESCALATIONS = 3

ScanMatcher = Callable[[Record], Any]


class RidScanMatcher:
    """Wire-encodable matcher returning every record's rid.

    A plain lambda works for in-process scans, but the live backend
    ships matchers to bucket processes by parameters (see the typed
    protocol objects in :mod:`repro.net.wire`), so full-coverage
    scans — the chaos runner's scan oracle — use this instead.
    """

    __slots__ = ()

    def __call__(self, record: Record) -> int:
        return record.rid

    def __eq__(self, other: Any) -> bool:
        return type(other) is RidScanMatcher

    def __hash__(self) -> int:
        return hash(RidScanMatcher)


@dataclass
class _PendingKeyed:
    """Client-side retransmission state of one keyed operation.

    ``mode`` tracks how the operation is currently routed: ``normal``
    (straight at the image-addressed bucket), ``suspected`` (waiting
    for the coordinator's verdict on the bucket), ``degraded`` (a
    lookup served through the parity layer while the home bucket is
    dead) or ``parked`` (an update waiting for recovery to finish).
    ``address`` is the home bucket of the latest routing decision —
    the address a ``suspect`` report names.
    """

    kind: str
    key: int
    content: bytes | None = None
    attempt: int = 0
    timer: Timer | None = None
    mode: str = "normal"
    escalations: int = 0
    address: int | None = None


@dataclass
class _ScanState:
    """Client-side bookkeeping of one scan round.

    ``expected`` maps every bucket address known to owe a reply to the
    presumed level a (re)transmission to it must carry; it grows as
    replies report the children they forwarded to, so a retry can
    target exactly the buckets whose coverage is missing instead of
    re-broadcasting the scan.
    """

    matcher: ScanMatcher
    request_size: int
    expected: dict[int, int] = field(default_factory=dict)
    replied: set[int] = field(default_factory=set)
    attempt: int = 0
    timer: Timer | None = None
    done: bool = False
    failed: bool = False
    escalations: int = 0
    #: Address of a dead, unrecoverable bucket that makes full
    #: coverage impossible (surfaces as BucketUnavailableError).
    unavailable: int | None = None


class LHStarBucket(Node):
    """One bucket server: stores records, forwards, splits, scans.

    A bucket can also be *retired* by a merge (file shrink): it keeps
    its network identity so clients with stale images still reach it,
    but holds no records and redirects every operation to the bucket
    it merged into.
    """

    #: Scan requests are safe to deliver as a vectorised round: the
    #: handler only matches and sends (never crashes, detaches or
    #: partitions a node), so grouping same-arrival scans per bucket
    #: preserves per-message billing and fault accounting exactly.
    BATCHABLE_KINDS = frozenset({"scan"})

    #: Bound on the bucket-level scan-result memo (distinct matcher
    #: values remembered per haystack build).
    MATCH_MEMO_LIMIT = 16

    def __init__(
        self,
        file: "LHStarFile",
        address: int,
        level: int,
        pending: bool = False,
    ) -> None:
        super().__init__(file.bucket_id(address))
        self.file = file
        self.address = address
        self.level = level
        self.records: dict[int, Record] = {}
        self.retired = False
        self.merge_target: int | None = None
        # A bucket freshly created by a split is *pending* until its
        # initial record shipment arrives; operations that overtake
        # the shipment (possible under jittered latency) are buffered,
        # not answered from an incomplete state.
        self.pending = pending
        self._buffered: list[Message] = []
        # Idempotent delivery under retransmission/duplication: the
        # bucket that *executes* a state-changing operation remembers
        # its reply per request id (client, op) and replays it for
        # redelivered requests instead of re-applying the operation —
        # so record counts and parity bookkeeping stay exact.
        self._keyed_replies: OrderedDict[
            tuple[Hashable, int], tuple[dict[str, Any], int]
        ] = OrderedDict()
        self._scan_replies: OrderedDict[
            tuple[Hashable, int], dict[str, Any]
        ] = OrderedDict()
        # Lazily built concatenated view of the resident records for
        # batched scans; dropped on any record mutation and rebuilt on
        # the next batch-capable scan (see repro.sdds.haystack).
        self._haystack: BucketHaystack | None = None
        # Bucket-level scan-result memo: matcher value identity
        # (``matcher.scan_key()``) -> hits against the *current*
        # haystack.  Matchers are pure functions of (value, records),
        # so identical queries arriving in one vectorised round — or
        # across rounds while the records are unchanged — reuse the
        # computed hits.  Dropped with the haystack on any mutation.
        self._match_memo: OrderedDict[Hashable, list] = OrderedDict()

    # -- batched-scan haystack -------------------------------------------

    def haystack(self) -> BucketHaystack:
        """The bucket's current haystack, (re)built on demand."""
        cache = self._haystack
        if cache is None:
            cache = BucketHaystack(self.records)
            self._haystack = cache
            metric_inc("lh.haystack.build")
        else:
            metric_inc("lh.haystack.hit")
        return cache

    def _invalidate_haystack(self) -> None:
        if self._haystack is not None:
            self._haystack = None
            metric_inc("lh.haystack.invalidate")
        self._match_memo.clear()

    # -- message dispatch -----------------------------------------------

    def handle(self, message: Message) -> None:
        kind = message.kind
        if kind == "probe":
            # Coordinator liveness check: any bucket that can receive
            # at all answers — pending and retired ones included (a
            # spare under recovery is alive, just not serving yet).
            self.send(message.src, "probe_ack",
                      {"address": self.address}, size=HEADER_SIZE)
            return
        if self.pending and kind not in ("split_records",
                                         "recover_install"):
            self._buffered.append(message)
            return
        if self.pending:
            # The initial shipment (split) or the reconstructed
            # contents (recovery): install, then replay whatever
            # overtook it, in arrival order.  Recovery installs skip
            # the overflow notification — the spare holds exactly
            # what the dead bucket held.
            self.pending = False
            self._absorb_records(
                message.payload["records"],
                notify_overflow=(kind == "split_records"),
                emit_parity=(kind == "split_records"),
            )
            if kind == "recover_install":
                self.send(self.file.coordinator_id, "recover_done",
                          {"address": self.address}, size=HEADER_SIZE)
            buffered, self._buffered = self._buffered, []
            for waiting in buffered:
                self.handle(waiting)
            return
        if self.retired and kind in ("insert", "lookup", "delete"):
            # Tombstone: redirect to wherever the records went.  The
            # target may forward again; the client pays one extra hop
            # until its image catches up with the shrink.
            self.send(
                self.file.bucket_id(self.merge_target),
                kind,
                message.payload,
                size=message.size,
                hops=message.hops + 1,
            )
            return
        if self.retired and kind in ("split_records", "merge_records"):
            # A record shipment raced the merge that retired us: the
            # records must not strand in a tombstone.  Re-ship them to
            # the merge target, which re-verifies as usual.
            records = message.payload["records"]
            if records:
                for record in records:
                    self.file.on_move(self.address, self.merge_target,
                                      record)
                self.send(
                    self.file.bucket_id(self.merge_target),
                    "split_records",
                    {"records": records},
                    size=HEADER_SIZE + sum(r.wire_size
                                           for r in records),
                )
            return
        if self.retired and kind == "scan":
            # Zero-coverage reply: the merge target answers for our
            # old key range.
            self.send(
                message.payload["client"],
                "scan_reply",
                {
                    "op": message.payload["op"],
                    "address": self.address,
                    "level": None,
                    "hits": [],
                    "forwarded": [],
                },
                size=HEADER_SIZE,
            )
            return
        if kind in ("insert", "lookup", "delete"):
            self._handle_keyed(message)
        elif kind == "scan":
            self._handle_scan(message)
        elif kind == "split":
            self._handle_split(message)
        elif kind == "split_records":
            self._handle_split_records(message)
        elif kind == "merge":
            self._handle_merge(message)
        elif kind == "merge_records":
            self._handle_merge_records(message)
        elif kind == "leave":
            self._handle_leave(message)
        elif kind == "recover_install":
            # Redelivered install for a bucket that already finished
            # recovering: absorbing again is idempotent (records
            # overwrite by rid); re-ack so the coordinator converges.
            self._absorb_records(message.payload["records"],
                                 notify_overflow=False,
                                 emit_parity=False)
            self.send(self.file.coordinator_id, "recover_done",
                      {"address": self.address}, size=HEADER_SIZE)
        elif kind == "group_fetch":
            self._handle_group_fetch(message)
        else:
            raise ValueError(f"bucket {self.address}: unknown message "
                             f"kind {kind!r}")

    # -- keyed operations --------------------------------------------------

    def _handle_keyed(self, message: Message) -> None:
        key = message.payload["key"]
        target = forward_address(key, self.address, self.level)
        if target is not None:
            # Misdirected: forward, bumping the hop counter the LNS96
            # theorem bounds by 2.
            obs_emit("lh.forward", file=self.file.name, kind=message.kind,
                     bucket=self.address, target=target,
                     hops=message.hops + 1)
            metric_inc("lh.forward")
            if message.hops == 0:
                # The *first forwarder* sends the Image Adjustment
                # Message with its own address and level (LNS96).
                # A forwarder's (address, level) pair is always a safe
                # lower bound on the file state, so client images never
                # overshoot the file; the final bucket's pair would not
                # be safe (e.g. bucket 2 at level 2 in a 3-bucket file
                # would make the client believe bucket 3 exists).
                self.send(
                    message.payload["client"],
                    "iam",
                    {"address": self.address, "level": self.level},
                    size=HEADER_SIZE,
                )
            self.send(
                self.file.bucket_id(target),
                message.kind,
                message.payload,
                size=message.size,
                hops=message.hops + 1,
            )
            return
        if message.kind in ("insert", "delete"):
            request = (message.payload["client"], message.payload["op"])
            cached = self._keyed_replies.get(request)
            if cached is not None:
                obs_emit("lh.dedup_replay", file=self.file.name,
                         kind=message.kind, bucket=self.address,
                         op=message.payload["op"])
                metric_inc("lh.dedup_replay")
                reply, size = cached
                self.send(message.payload["client"], "reply", reply,
                          size=size)
                return
        getattr(self, "_do_" + message.kind)(message)

    def _reply_keyed(
        self, payload: dict[str, Any], reply: dict[str, Any], size: int
    ) -> None:
        """Send a keyed-op reply and remember it for redeliveries."""
        request = (payload["client"], payload["op"])
        self._keyed_replies[request] = (reply, size)
        while len(self._keyed_replies) > DEDUP_CACHE_LIMIT:
            self._keyed_replies.popitem(last=False)
        self.send(payload["client"], "reply", reply, size=size)

    def _do_insert(self, message: Message) -> None:
        payload = message.payload
        record = Record(payload["key"], payload["content"])
        old = self.records.get(record.rid)
        self.records[record.rid] = record
        self._invalidate_haystack()
        self._reply_keyed(
            payload,
            {"op": payload["op"], "ok": True, "created": old is None},
            HEADER_SIZE,
        )
        self.file.on_store(self.address, record, old)
        if len(self.records) > self.file.bucket_capacity:
            self.send(
                self.file.coordinator_id,
                "overflow",
                {"address": self.address,
                 "delta": 1 if old is None else 0},
                size=HEADER_SIZE,
            )
        elif self.file.tracks_load and old is None:
            # Load-tracking files report every net-new record so the
            # coordinator's global count stays exact even when it runs
            # in another process and cannot read bucket contents.
            self.send(
                self.file.coordinator_id,
                "load",
                {"address": self.address, "delta": 1},
                size=HEADER_SIZE,
            )

    def _do_lookup(self, message: Message) -> None:
        payload = message.payload
        record = self.records.get(payload["key"])
        self.send(
            payload["client"],
            "reply",
            {
                "op": payload["op"],
                "ok": record is not None,
                "content": None if record is None else record.content,
            },
            size=HEADER_SIZE + (0 if record is None else record.wire_size),
        )

    def _do_delete(self, message: Message) -> None:
        payload = message.payload
        removed = self.records.pop(payload["key"], None)
        if removed is not None:
            self._invalidate_haystack()
        self._reply_keyed(
            payload,
            {"op": payload["op"], "ok": removed is not None},
            HEADER_SIZE,
        )
        if removed is not None:
            self.file.on_remove(self.address, removed)
            if self.file.tracks_load:
                self.send(
                    self.file.coordinator_id,
                    "underflow",
                    {"address": self.address},
                    size=HEADER_SIZE,
                )

    # -- scan ---------------------------------------------------------------

    def _handle_scan(self, message: Message) -> None:
        payload = message.payload
        request = (payload["client"], payload["op"])
        cached = self._scan_replies.get(request)
        if cached is not None:
            # Redelivered scan (retransmission or network duplicate):
            # replay the reply verbatim.  The children we forwarded to
            # the first time are listed in it, so the client can chase
            # any of their missing coverage directly — no re-forward.
            obs_emit("lh.dedup_replay", file=self.file.name,
                     kind="scan", bucket=self.address,
                     op=payload["op"])
            metric_inc("lh.dedup_replay")
            self.send(
                payload["client"],
                "scan_reply",
                cached,
                size=HEADER_SIZE + sum(
                    _hit_size(hit) for hit in cached["hits"]
                ),
            )
            return
        presumed = payload["level"]
        # Deterministic-termination forwarding: cover the buckets the
        # client's image did not know about.
        level = presumed
        children: list[tuple[int, int]] = []
        while level < self.level:
            child = self.address + (1 << level)
            level += 1
            children.append((child, level))
            forwarded = dict(payload)
            forwarded["level"] = level
            self.send(
                self.file.bucket_id(child),
                "scan",
                forwarded,
                size=message.size,
                hops=message.hops + 1,
            )
        matcher: ScanMatcher = payload["matcher"]
        # Server-side matching: a matcher exposing ``match_bucket``
        # runs once against the bucket's concatenated haystack (each
        # needle is one C-level ``bytes.find`` sweep per bucket);
        # plain callables fall back to the reference loop — one
        # matcher call per resident record.  Degraded parity scans
        # always use the per-record form (records are reconstructed
        # one at a time), so every matcher stays callable.
        bucket_match = getattr(matcher, "match_bucket", None)
        # Scan-result memo: matchers exposing ``scan_key()`` (a value
        # identity) are pure functions of (key, resident records), so
        # repeats of the same query against an unchanged bucket —
        # the common shape of a vectorised round fanning one hot query
        # out for many clients — reuse the computed hits verbatim.
        memo_key = None
        if self.network is not None and self.network.vectorised_rounds:
            scan_key = getattr(matcher, "scan_key", None)
            if scan_key is not None:
                memo_key = scan_key()
        if memo_key is not None and memo_key in self._match_memo:
            self._match_memo.move_to_end(memo_key)
            hits = self._match_memo[memo_key]
            metric_inc("lh.scan.memo_hit")
        else:
            if bucket_match is not None:
                hits = bucket_match(self.haystack())
            else:
                hits = [
                    outcome
                    for record in self.records.values()
                    if (outcome := matcher(record)) is not None
                ]
            if memo_key is not None:
                self._match_memo[memo_key] = hits
                while len(self._match_memo) > self.MATCH_MEMO_LIMIT:
                    self._match_memo.popitem(last=False)
        reply = {
            "op": payload["op"],
            "address": self.address,
            "level": self.level,
            "hits": hits,
            # Who answers for the rest of our presumed range — rides
            # in the header allowance; lets the client retry precisely.
            "forwarded": children,
        }
        self._scan_replies[request] = reply
        while len(self._scan_replies) > DEDUP_CACHE_LIMIT:
            self._scan_replies.popitem(last=False)
        self.send(
            payload["client"],
            "scan_reply",
            reply,
            size=HEADER_SIZE + sum(_hit_size(hit) for hit in hits),
        )

    # -- crash recovery -------------------------------------------------------

    def _handle_group_fetch(self, message: Message) -> None:
        """Serve a parity bucket's fetch of specific record ranks.

        ``entries`` maps rank -> the rid the parity bookkeeping
        expects at that rank on this bucket.  The reply carries each
        record's content, or empty bytes when this bucket holds no
        such record (never stored, deleted, or migrated) — an absent
        record *is* the zero codeword the erasure algebra expects.
        """
        payload = message.payload
        entries: dict[int, bytes] = {}
        for rank, rid in payload["entries"].items():
            record = self.records.get(rid)
            entries[rank] = b"" if record is None else record.content
        self.send(
            message.src,
            "group_data",
            {
                "gather": payload["gather"],
                "offset": payload["offset"],
                "entries": entries,
            },
            size=HEADER_SIZE + sum(
                8 + len(content) for content in entries.values()
            ),
        )

    # -- splitting ------------------------------------------------------------

    def _handle_split(self, message: Message) -> None:
        new_address = message.payload["new_address"]
        new_level = message.payload["new_level"]
        self.level = new_level
        moving = [
            record
            for record in self.records.values()
            if (record.rid & ((1 << new_level) - 1)) != self.address
        ]
        if moving:
            self._invalidate_haystack()
        for record in moving:
            del self.records[record.rid]
            self.file.on_move(self.address, new_address, record)
        self.send(
            self.file.bucket_id(new_address),
            "split_records",
            {"records": moving},
            size=HEADER_SIZE + sum(r.wire_size for r in moving),
        )
        if len(self.records) > self.file.bucket_capacity:
            # Split and absorb notifications move records between
            # buckets without changing the file-wide count: delta 0.
            self.send(
                self.file.coordinator_id,
                "overflow",
                {"address": self.address, "delta": 0},
                size=HEADER_SIZE,
            )

    def _absorb_records(
        self,
        records: list[Record],
        notify_overflow: bool = True,
        emit_parity: bool = True,
    ) -> None:
        """Store shipped records, re-verifying each against the
        *current* level.

        Under concurrency a bucket may have split again before an
        earlier record shipment arrives; storing such records blindly
        would strand them (they hash elsewhere at the new level).
        Misfits are re-shipped toward their correct bucket, which
        re-verifies in turn — the same convergence argument as keyed
        forwarding.

        ``notify_overflow`` is off on the merge path: a merge of two
        half-full buckets may exceed capacity, and splitting right
        back would thrash — the oversize drains through deletes or is
        resolved by the next genuine insert.

        ``emit_parity`` is off on the recovery-install path: the spare
        receives exactly the records the parity algebra already
        accounts for, and re-registering them would XOR the same
        contribution back out of the parity payloads (XOR is
        self-inverse), silently corrupting the group.
        """
        misrouted: dict[int, list[Record]] = {}
        for record in records:
            target = forward_address(record.rid, self.address, self.level)
            if target is None:
                old = self.records.get(record.rid)
                self.records[record.rid] = record
                self._invalidate_haystack()
                if emit_parity:
                    self.file.on_absorb(self.address, record, old)
            else:
                misrouted.setdefault(target, []).append(record)
        for target, batch in misrouted.items():
            for record in batch:
                self.file.on_move(self.address, target, record)
            self.send(
                self.file.bucket_id(target),
                "split_records",
                {"records": batch},
                size=HEADER_SIZE + sum(r.wire_size for r in batch),
            )
        if notify_overflow and len(self.records) > self.file.bucket_capacity:
            self.send(
                self.file.coordinator_id,
                "overflow",
                {"address": self.address, "delta": 0},
                size=HEADER_SIZE,
            )

    def _handle_split_records(self, message: Message) -> None:
        self._absorb_records(message.payload["records"])

    # -- merging (file shrink) ---------------------------------------------

    def _handle_merge(self, message: Message) -> None:
        """Retire this bucket, shipping every record to the target."""
        target = message.payload["target"]
        moving = list(self.records.values())
        self.records.clear()
        self._invalidate_haystack()
        for record in moving:
            self.file.on_move(self.address, target, record)
        self.retired = True
        self.merge_target = target
        self.send(
            self.file.bucket_id(target),
            "merge_records",
            {"records": moving, "level": message.payload["level"]},
            size=HEADER_SIZE + sum(r.wire_size for r in moving),
        )

    def _handle_merge_records(self, message: Message) -> None:
        """Absorb a retired sibling's records; drop back one level."""
        self.level = message.payload["level"]
        self._absorb_records(message.payload["records"],
                             notify_overflow=False)

    # -- graceful leave -----------------------------------------------------

    def _handle_leave(self, message: Message) -> None:
        """Graceful site departure: ship the whole bucket to the
        replacement spare that takes over this network identity.

        The shipment is a ``recover_install`` addressed to *our own*
        bucket id: by the time it is delivered, the spare spawned
        below owns the id, installs without re-emitting parity (the
        rank tables and parity contributions migrate untouched with
        the address), and acks ``recover_done`` to the coordinator —
        the same convergence path as crash recovery, minus the
        reconstruction."""
        moving = list(self.records.values())
        self.send(
            self.file.bucket_id(self.address),
            "recover_install",
            {"records": moving},
            size=HEADER_SIZE + sum(r.wire_size for r in moving),
        )
        self.file.spawn_spare(self.address, self.level)


class LHStarCoordinator(Node):
    """The split coordinator: authoritative ``(i, n)``, split policy.

    Two policies from the linear-hashing literature:

    * ``"uncontrolled"`` (default) — every overflow notification
      triggers a split of bucket ``n``.  Simple, keeps buckets shallow,
      over-allocates sites.
    * ``"load_factor"`` — split only while the file-wide load factor
      (records / (buckets x capacity)) exceeds the threshold.  Fewer,
      fuller buckets; the classic space/overflow trade-off.  The
      coordinator only acts on overflow notifications, so the achieved
      load may drift above the threshold while no bucket overflows.
    """

    def __init__(self, file: "LHStarFile") -> None:
        super().__init__(file.coordinator_id)
        self.file = file
        self.i = 0
        self.n = 0
        #: Buckets declared dead after an unanswered probe:
        #: address -> (true level at declare time, recoverable).
        #: Splits and merges involving a dead address are gated, so
        #: the stored level stays authoritative until recovery.
        self.dead: dict[int, tuple[int, bool]] = {}
        #: Dead buckets whose reconstruction is in flight.
        self.recovering: set[int] = set()
        self._probes: dict[int, Timer] = {}
        #: Operator-initiated leaves awaiting their recover_done ack:
        #: address -> retransmissions so far.  Each entry owns a timer
        #: in ``_leave_timers`` re-sending the trigger on the client
        #: retry schedule, because a bucket that crashed before the
        #: trigger landed is never suspected — degraded reads route
        #: around it — so no probe would revive the drain.
        self._leaving: dict[int, int] = {}
        self._leave_timers: dict[int, Timer] = {}
        #: Clients to notify when an address changes liveness state.
        self._reporters: dict[int, set[Hashable]] = {}
        #: Global record count, maintained from bucket notifications
        #: ("load"/"underflow" and the delta field on "overflow") when
        #: the file tracks load.  Splits and merges move records
        #: without changing the global count, so this stays exact —
        #: and works identically when the coordinator is a remote
        #: process that cannot read ``file.record_count``.
        self.records_reported = 0

    @property
    def bucket_count(self) -> int:
        return (1 << self.i) + self.n

    def _load_factor(self) -> float:
        capacity = self.bucket_count * self.file.bucket_capacity
        if self.file.tracks_load:
            return self.records_reported / capacity
        return self.file.record_count / capacity

    def handle(self, message: Message) -> None:
        kind = message.kind
        if kind == "underflow":
            self.records_reported -= 1
            if self.file.shrink:
                self._maybe_merge()
            return
        if kind == "load":
            self.records_reported += message.payload["delta"]
            return
        if kind == "suspect":
            self._handle_suspect(message.payload)
            return
        if kind == "probe_ack":
            self._handle_probe_ack(message.payload)
            return
        if kind == "await_recovery":
            self._handle_await_recovery(message.payload)
            return
        if kind == "recover_done":
            self._handle_recover_done(message.payload)
            return
        if kind != "overflow":
            raise ValueError(
                f"coordinator: unknown message kind {kind!r}"
            )
        self.records_reported += message.payload.get("delta", 0)
        if self.file.split_policy == "load_factor":
            # Gate, don't force: an overflow only earns a split when
            # the file as a whole is loaded — a hot bucket alone is
            # allowed to run deep (overflow-chained in a real LH;
            # oversized in this simulation).
            if self._load_factor() > self.file.load_factor_threshold:
                self._split_next()
        else:
            self._split_next()

    # -- failure detection and recovery ------------------------------------

    def _handle_suspect(self, payload: dict[str, Any]) -> None:
        """A client's retry budget died against ``address``: probe it.

        If the address is already declared dead with recovery in
        flight, the reporter learns so immediately (and is kept on
        the notify list for the recovery-finished event).  Otherwise
        a probe round decides — including for addresses previously
        declared dead *without* recovery (plain LH*): the node may
        have rebooted since, and a fresh probe is the only way the
        coordinator finds out.
        """
        address = payload["address"]
        reporter = payload["client"]
        self._reporters.setdefault(address, set()).add(reporter)
        if address in self.dead and address in self.recovering:
            self.send(reporter, "bucket_down",
                      self._down_payload(address), size=HEADER_SIZE)
            return
        if address in self._probes:
            return  # probe already outstanding; verdict will fan out
        self.send(self.file.bucket_id(address), "probe",
                  {"address": address}, size=HEADER_SIZE)
        policy = self.file.retry_policy or DEFAULT_RETRY_POLICY
        self._probes[address] = self.network.schedule(
            policy.timeout,
            lambda: self._probe_timeout(address),
            owner=self.node_id,
        )

    def _down_payload(self, address: int) -> dict[str, Any]:
        """The ``bucket_down`` notification for ``address``: the dead
        members of its recovery group with their levels, so a client
        can route degraded reads and scan coverage correctly."""
        group_dead = {
            member: list(self.dead[member])
            for member in self.file.recovery_group(address)
            if member in self.dead
        }
        return {"address": address, "group_dead": group_dead}

    def _probe_timeout(self, address: int) -> None:
        """No probe_ack in time: declare the bucket dead."""
        self._probes.pop(address, None)
        if address >= self.bucket_count:
            # The address was merged away while the probe was in
            # flight: it is a tombstone now, not a member, so it has
            # no level and nothing to recover.  Tell the reporters to
            # re-route — while the tombstone is down their retries
            # are bounded by their own budgets, and its restore (or a
            # sync of their images) unblocks the key range.
            for reporter in self._reporters.pop(address, ()):
                self.send(reporter, "bucket_up",
                          {"address": address}, size=HEADER_SIZE)
            return
        if address not in self.dead:
            level = bucket_level(address, self.i, self.n)
            recoverable = self.file.begin_recovery(address, level)
            self.dead[address] = (level, recoverable)
            if recoverable:
                self.recovering.add(address)
            obs_emit("lh.bucket_down", file=self.file.name,
                     bucket=address, recoverable=recoverable)
            metric_inc("lh.bucket_down")
        payload = self._down_payload(address)
        for reporter in self._reporters.get(address, ()):
            self.send(reporter, "bucket_down", payload,
                      size=HEADER_SIZE)

    def _handle_probe_ack(self, payload: dict[str, Any]) -> None:
        address = payload["address"]
        timer = self._probes.pop(address, None)
        if timer is not None:
            timer.cancel()
        if address in self.dead and address not in self.recovering:
            # A dead-unrecoverable node answered: it rebooted.
            del self.dead[address]
            obs_emit("lh.bucket_up", file=self.file.name,
                     bucket=address)
            metric_inc("lh.bucket_up")
        for reporter in self._reporters.pop(address, ()):
            self.send(reporter, "bucket_up", {"address": address},
                      size=HEADER_SIZE)
        if self.file.shrink:
            # A merge skipped because this bucket was dead is never
            # re-triggered by traffic (underflows only fire on
            # deletes): re-evaluate now that liveness changed.
            self._maybe_merge()

    def _handle_await_recovery(self, payload: dict[str, Any]) -> None:
        """A client parked an update on a dead bucket; subscribe it
        to the recovery-finished notification (or answer at once if
        the bucket is already back)."""
        address = payload["address"]
        client = payload["client"]
        if address in self.dead:
            self._reporters.setdefault(address, set()).add(client)
        else:
            self.send(client, "bucket_recovered",
                      {"address": address}, size=HEADER_SIZE)

    def _handle_recover_done(self, payload: dict[str, Any]) -> None:
        address = payload["address"]
        # A graceful leave's drain acks with recover_done too, and on
        # plain LH* the address was never marked dead-recovering: stop
        # the leave retransmissions *before* the duplicate-ack check,
        # or every retry would re-drain the whole bucket.
        self._leaving.pop(address, None)
        leave_timer = self._leave_timers.pop(address, None)
        if leave_timer is not None:
            leave_timer.cancel()
        if address not in self.recovering:
            return  # duplicate ack from a redelivered install
        self.recovering.discard(address)
        self.dead.pop(address, None)
        self.file.finish_recovery(address)
        obs_emit("lh.bucket_recovered", file=self.file.name,
                 bucket=address)
        metric_inc("lh.bucket_recovered")
        for reporter in self._reporters.pop(address, ()):
            self.send(reporter, "bucket_recovered",
                      {"address": address}, size=HEADER_SIZE)
        if self.file.shrink:
            # Same re-attempt as on bucket_up: a merge the dead bucket
            # blocked becomes possible the moment recovery completes.
            self._maybe_merge()

    # -- graceful leave ------------------------------------------------------

    def begin_leave(self, address: int) -> bool:
        """Operator-triggered graceful departure of bucket ``address``.

        Returns whether a migration started.  Addresses that are out
        of range (including retired tombstones), already dead, or
        under probe are refused — leave is for live members only.
        Files with a degraded-read target (LH*_RS) mark the address
        dead-recovering so keyed reads and scans route around the
        migration through the parity layer (they cost more, never
        error); plain LH* relies on the spare's buffering — the drain
        window is a single shipment.
        """
        if not 0 <= address < self.bucket_count:
            return False
        if (address in self.dead or address in self._probes
                or address in self._leaving):
            return False
        self._leaving[address] = 0
        level = bucket_level(address, self.i, self.n)
        if self.file.degraded_read_target(address) is not None:
            self.dead[address] = (level, True)
            self.recovering.add(address)
            payload = self._down_payload(address)
            for reporter in self._reporters.get(address, ()):
                self.send(reporter, "bucket_down", payload,
                          size=HEADER_SIZE)
        obs_emit("lh.leave", file=self.file.name, bucket=address,
                 level=level)
        metric_inc("lh.leave")
        self.send(self.file.bucket_id(address), "leave",
                  {"address": address}, size=HEADER_SIZE)
        self._arm_leave_retry(address)
        return True

    def _arm_leave_retry(self, address: int) -> None:
        policy = self.file.retry_policy or DEFAULT_RETRY_POLICY
        # Deterministic backoff, never policy.delay(): that draws from
        # the policy's shared jitter stream, and the coordinator may
        # be a remote process with its own policy instance — a draw
        # here would desynchronise the clients' retry schedules
        # between the simulator and the live backend.
        delay = policy.timeout * policy.backoff ** self._leaving[address]
        self._leave_timers[address] = self.network.schedule(
            delay,
            lambda: self._leave_retry(address),
            owner=self.node_id,
        )

    def _leave_retry(self, address: int) -> None:
        """No recover_done yet: retransmit the leave trigger.

        After ``max_retries`` unanswered triggers the departing
        bucket is taken as crashed before the drain began.  Files
        with parity fall back to reconstruction — it rebuilds the
        records onto the spare without the bucket's cooperation —
        and plain LH* abandons the leave (its records are frozen
        in the crashed process, exactly as for any other crash).
        """
        self._leave_timers.pop(address, None)
        if address not in self._leaving:
            return
        policy = self.file.retry_policy or DEFAULT_RETRY_POLICY
        self._leaving[address] += 1
        if self._leaving[address] <= policy.max_retries:
            self.send(self.file.bucket_id(address), "leave",
                      {"address": address}, size=HEADER_SIZE)
            self._arm_leave_retry(address)
            return
        del self._leaving[address]
        obs_emit("lh.leave_stalled", file=self.file.name,
                 bucket=address)
        metric_inc("lh.leave_stalled")
        if address in self.recovering:
            level = self.dead[address][0]
            self.file.begin_recovery(address, level)

    def _maybe_merge(self) -> None:
        """Shrink by one bucket when the file runs too empty.

        Reverses the last split: the most recently created bucket
        ships its records back to its split partner, which drops one
        level; the emptied bucket stays on the network as a tombstone
        so stale client images still resolve.
        """
        if self.bucket_count <= 1:
            return
        if self._load_factor() >= self.file.merge_threshold:
            return
        i, n = self.i, self.n
        if n == 0:
            i -= 1
            n = 1 << i
        last = (1 << i) + n - 1
        target = n - 1
        if last in self.dead or target in self.dead:
            # Never merge into or out of a dead bucket: its records
            # are frozen until recovery, and moving the level under a
            # declared level would corrupt degraded-read routing.
            return
        self.i, self.n = i, n - 1
        obs_emit("lh.merge", file=self.file.name, bucket=last,
                 target=target, level=i)
        metric_inc("lh.merge")
        metric_set_gauge(f"lh.buckets.{self.file.name}",
                         self.bucket_count)
        self.file.retire_bucket(last)
        self.send(
            self.file.bucket_id(last),
            "merge",
            {"target": target, "level": i},
            size=HEADER_SIZE,
        )

    def _split_next(self) -> None:
        splitter = self.n
        new_address = self.n + (1 << self.i)
        new_level = self.i + 1
        if splitter in self.dead or new_address in self.dead:
            # The split pointer reached a dead bucket (or would
            # revive a dead tombstone): file growth stalls until the
            # bucket recovers — the next overflow retriggers it.
            return
        obs_emit("lh.split", file=self.file.name, bucket=splitter,
                 new=new_address, level=new_level)
        metric_inc("lh.split")
        metric_observe(
            "lh.bucket_load",
            len(self.file.buckets[splitter].records),
        )
        self.file.create_bucket(new_address, new_level, pending=True)
        self.n += 1
        if self.n == (1 << self.i):
            self.i += 1
            self.n = 0
        metric_set_gauge(f"lh.buckets.{self.file.name}",
                         self.bucket_count)
        metric_set_gauge(f"lh.load_factor.{self.file.name}",
                         self._load_factor())
        self.send(
            self.file.bucket_id(splitter),
            "split",
            {"new_address": new_address, "new_level": new_level},
            size=HEADER_SIZE,
        )


class LHStarClient(Node):
    """A client with a private image; entry point for all operations.

    When its file carries a :class:`~repro.net.faults.RetryPolicy`,
    every operation arms a virtual-clock timeout: unanswered keyed
    operations are retransmitted (re-addressed under the *current*
    image) with exponential backoff, and scans retransmit only to the
    buckets whose coverage fractions are still missing.  Bucket-side
    request-id dedup makes redelivery idempotent, so a retry can never
    double-apply an insert or delete.  Exhausting the retry budget
    surfaces as :class:`~repro.net.faults.RetryExhaustedError` from
    ``take_reply``/``take_scan``.
    """

    #: Scan replies only fold hits into client-side state (and cancel
    #: timers) — they never crash, detach or partition a node — so a
    #: burst arriving together may be delivered as one vectorised
    #: round without observable difference.
    BATCHABLE_KINDS = frozenset({"scan_reply"})

    def __init__(self, file: "LHStarFile", client_index: int = 0) -> None:
        super().__init__(file.client_id(client_index))
        self.file = file
        self.i_image = 0
        self.n_image = 0
        self._ops = itertools.count()
        self.responses: dict[int, dict[str, Any]] = {}
        self._scan_hits: dict[int, list[Any]] = {}
        self._scan_coverage: dict[int, Fraction] = {}
        self._pending_keyed: dict[int, _PendingKeyed] = {}
        self._scan_state: dict[int, _ScanState] = {}
        self.iam_count = 0
        #: Addresses the coordinator reported dead:
        #: address -> (true level, recoverable).  Entries are cleared
        #: by ``bucket_up``/``bucket_recovered`` notifications.
        self.dead: dict[int, tuple[int, bool]] = {}

    # -- message handling ----------------------------------------------------

    def handle(self, message: Message) -> None:
        kind = message.kind
        if kind == "reply":
            op = message.payload["op"]
            pending = self._pending_keyed.pop(op, None)
            if pending is not None and pending.timer is not None:
                pending.timer.cancel()
            if pending is None and self.file.retry_policy is not None:
                # A duplicate/late reply for an operation that already
                # completed (every live op has pending state while a
                # retry policy is in force).
                return
            self.responses[op] = message.payload
        elif kind == "iam":
            self.iam_count += 1
            self.i_image, self.n_image = image_adjust(
                self.i_image,
                self.n_image,
                message.payload["address"],
                message.payload["level"],
            )
        elif kind == "scan_reply":
            payload = message.payload
            op = payload["op"]
            if op not in self._scan_hits:
                return  # late reply for a scan already collected
            state = self._scan_state.get(op)
            if state is not None:
                address = payload["address"]
                if address in state.replied:
                    return  # redelivered reply: already accounted
                state.replied.add(address)
                for child, level in payload.get("forwarded", ()):
                    state.expected.setdefault(child, level)
            self._scan_hits[op].extend(payload["hits"])
            if payload["level"] is not None:
                self._scan_coverage[op] += Fraction(
                    1, 1 << payload["level"]
                )
            # Retired buckets reply with level None: zero coverage —
            # their merge target answers for the key range.
            if state is not None and self._scan_coverage[op] == 1:
                state.done = True
                if state.timer is not None:
                    state.timer.cancel()
        elif kind == "bucket_down":
            payload = message.payload
            for member, info in payload["group_dead"].items():
                self.dead[member] = (info[0], info[1])
            self._redispatch(payload["address"])
        elif kind in ("bucket_up", "bucket_recovered"):
            address = message.payload["address"]
            self.dead.pop(address, None)
            self._redispatch(address)
        else:
            raise ValueError(f"client: unknown message kind {kind!r}")

    def _redispatch(self, address: int) -> None:
        """Re-route work touched by a liveness change of ``address``:
        suspected/degraded/parked keyed operations re-resolve their
        path, and scans still owing its coverage chase it again."""
        for op, pending in list(self._pending_keyed.items()):
            if pending.address == address and pending.mode != "normal":
                self._route_keyed(op)
        for op, state in list(self._scan_state.items()):
            if state.done or state.failed:
                continue
            if address in state.expected and address not in state.replied:
                self._scan_chase(op, address)

    # -- request initiation ---------------------------------------------------

    def start_keyed(self, kind: str, key: int, content: bytes | None = None) -> int:
        """Send a keyed operation using the current image; returns op id."""
        op = next(self._ops)
        policy = self.file.retry_policy
        if policy is None:
            self._send_keyed(op, kind, key, content)
            return op
        self._pending_keyed[op] = _PendingKeyed(
            kind=kind, key=key, content=content
        )
        self._route_keyed(op)
        return op

    def _resolve_home(self, key: int) -> int:
        """The bucket a keyed operation should target: the image
        address, chased through known-dead buckets using their true
        levels (the same <= 2-hop bound as live forwarding)."""
        address = client_address(key, self.i_image, self.n_image)
        for _ in range(2):
            info = self.dead.get(address)
            if info is None:
                return address
            target = forward_address(key, address, info[0])
            if target is None:
                return address
            address = target
        return address

    def _route_keyed(self, op: int) -> None:
        """Route one keyed operation by what the client knows of its
        home bucket: normal path, degraded parity read (lookups), or
        parked until recovery completes (updates)."""
        pending = self._pending_keyed[op]
        if pending.timer is not None:
            pending.timer.cancel()
            pending.timer = None
        policy = self.file.retry_policy
        address = self._resolve_home(pending.key)
        pending.address = address
        delay = (policy.delay(pending.attempt) if pending.attempt
                 else policy.timeout)
        info = self.dead.get(address)
        if info is None:
            pending.mode = "normal"
            self._send_keyed(op, pending.kind, pending.key,
                             pending.content, address=address)
            self._arm_keyed_timer(op, delay)
            return
        level, recoverable = info
        if not recoverable:
            # No parity to serve or rebuild the bucket.  Ask the
            # coordinator to re-probe a few times — the node may have
            # rebooted since it was declared dead — then fail with a
            # typed error instead of burning retry budgets forever.
            if pending.escalations < MAX_ESCALATIONS:
                pending.escalations += 1
                pending.mode = "suspected"
                obs_emit("lh.suspect", file=self.file.name,
                         bucket=address, kind=pending.kind)
                metric_inc("lh.suspect")
                self.send(self.file.coordinator_id, "suspect",
                          {"address": address, "client": self.node_id},
                          size=HEADER_SIZE)
                return
            del self._pending_keyed[op]
            self.responses[op] = {
                "op": op,
                "ok": False,
                "error": (
                    f"{pending.kind} of key {pending.key}: bucket "
                    f"{address} is down and the file has no parity "
                    "to serve or recover it"
                ),
                "error_kind": "unavailable",
            }
            return
        if pending.kind == "lookup":
            pending.mode = "degraded"
            self._send_degraded_lookup(op, pending, address)
            self._arm_keyed_timer(op, delay)
            return
        # Updates cannot touch state that is being reconstructed:
        # park until the coordinator announces the spare online.
        pending.mode = "parked"
        self.send(self.file.coordinator_id, "await_recovery",
                  {"address": address, "client": self.node_id},
                  size=HEADER_SIZE)

    def _send_degraded_lookup(
        self, op: int, pending: _PendingKeyed, address: int
    ) -> None:
        """Ask the parity layer to serve a lookup for a dead bucket."""
        obs_emit("lh.degraded_lookup", file=self.file.name,
                 key=pending.key, bucket=address)
        metric_inc("lh.degraded_lookup")
        self.send(
            self.file.degraded_read_target(address),
            "degraded_lookup",
            {
                "op": op,
                "client": self.node_id,
                "key": pending.key,
                "address": address,
                "dead": self.file.degraded_dead_set(address, self.dead),
            },
            size=HEADER_SIZE,
        )

    def _send_keyed(
        self,
        op: int,
        kind: str,
        key: int,
        content: bytes | None,
        address: int | None = None,
    ) -> None:
        """(Re)transmit one keyed operation under the current image.

        ``address`` overrides the image address when the routing layer
        already chased the key past known-dead buckets — a dead bucket
        cannot forward, so the client must aim past it itself.
        """
        if address is None:
            address = client_address(key, self.i_image, self.n_image)
        payload: dict[str, Any] = {"key": key, "op": op, "client": self.node_id}
        size = HEADER_SIZE
        if kind == "insert":
            payload["content"] = content
            size += RECORD_OVERHEAD + len(content or b"")
        self.send(self.file.bucket_id(address), kind, payload, size=size)

    def _arm_keyed_timer(self, op: int, delay: float) -> None:
        self._pending_keyed[op].timer = self.network.schedule(
            delay, lambda: self._keyed_timeout(op), owner=self.node_id
        )

    def _keyed_timeout(self, op: int) -> None:
        pending = self._pending_keyed.get(op)
        if pending is None:
            return
        policy = self.file.retry_policy
        pending.attempt += 1
        if pending.attempt > policy.max_retries:
            if pending.escalations >= MAX_ESCALATIONS:
                obs_emit("lh.retry_exhausted", file=self.file.name,
                         kind=pending.kind, key=pending.key)
                metric_inc("lh.retry_exhausted")
                del self._pending_keyed[op]
                self.responses[op] = {
                    "op": op,
                    "ok": False,
                    "error": (
                        f"{pending.kind} of key {pending.key} got no "
                        f"reply after {policy.max_retries} retries"
                    ),
                }
                return
            # A whole retry budget went unanswered: stop shouting at
            # the bucket and ask the coordinator whether it is alive.
            # No timer — the coordinator always answers (bucket_up or
            # bucket_down), and either re-routes this operation.
            pending.escalations += 1
            pending.attempt = 0
            pending.mode = "suspected"
            obs_emit("lh.suspect", file=self.file.name,
                     bucket=pending.address, kind=pending.kind)
            metric_inc("lh.suspect")
            self.send(self.file.coordinator_id, "suspect",
                      {"address": pending.address,
                       "client": self.node_id},
                      size=HEADER_SIZE)
            return
        self.network.stats.retries += 1
        obs_emit("lh.retry", file=self.file.name, kind=pending.kind,
                 key=pending.key, attempt=pending.attempt)
        metric_inc("lh.retry")
        self._route_keyed(op)

    def start_scan(self, matcher: ScanMatcher, request_size: int = HEADER_SIZE) -> int:
        """Broadcast a scan to every bucket in the image; returns op id."""
        op = next(self._ops)
        self._scan_hits[op] = []
        self._scan_coverage[op] = Fraction(0)
        known = (1 << self.i_image) + self.n_image
        expected = {
            address: scan_initial_level(
                address, self.i_image, self.n_image
            )
            for address in range(known)
        }
        state = _ScanState(
            matcher=matcher, request_size=request_size,
            expected=dict(expected),
        )
        self._scan_state[op] = state
        policy = self.file.retry_policy
        for address, level in expected.items():
            if policy is not None and address in self.dead:
                self._scan_chase(op, address)
            else:
                self._send_scan(op, address, level)
        if policy is not None and not state.failed:
            state.timer = self.network.schedule(
                policy.timeout, lambda: self._scan_timeout(op),
                owner=self.node_id,
            )
        return op

    def _send_scan(self, op: int, address: int, level: int) -> None:
        state = self._scan_state[op]
        self.send(
            self.file.bucket_id(address),
            "scan",
            {
                "op": op,
                "client": self.node_id,
                "matcher": state.matcher,
                "level": level,
            },
            size=state.request_size,
        )

    def _scan_chase(self, op: int, address: int) -> None:
        """(Re)request one bucket's missing coverage, routing around
        a known-dead address through the parity layer."""
        state = self._scan_state[op]
        info = self.dead.get(address)
        if info is None:
            self._send_scan(op, address, state.expected[address])
            return
        level, recoverable = info
        if not recoverable:
            # The bucket's key range is gone until a reboot: re-probe
            # through the coordinator a few times, then fail the scan
            # with a diagnosis instead of spinning on retries.
            if state.escalations < MAX_ESCALATIONS:
                state.escalations += 1
                obs_emit("lh.suspect", file=self.file.name,
                         bucket=address, kind="scan")
                metric_inc("lh.suspect")
                self.send(self.file.coordinator_id, "suspect",
                          {"address": address, "client": self.node_id},
                          size=HEADER_SIZE)
                return
            state.failed = True
            state.unavailable = address
            if state.timer is not None:
                state.timer.cancel()
            return
        self._scan_cover_dead(op, address, level)

    def _scan_cover_dead(
        self, op: int, address: int, true_level: int
    ) -> None:
        """Cover a dead bucket's presumed range: fan out to the
        children its live instance would have forwarded to, and ask
        the parity layer to reconstruct-and-scan the bucket's own
        records at its true level.  The coverage fractions still sum
        to 1 — the dead bucket's 2^-presumed weight is split exactly
        as a live forward chain would split it."""
        state = self._scan_state[op]
        presumed = state.expected.get(address, true_level)
        level = presumed
        while level < true_level:
            child = address + (1 << level)
            level += 1
            if child not in state.expected:
                state.expected[child] = level
                self._scan_chase(op, child)
        state.expected[address] = true_level
        obs_emit("lh.degraded_scan", file=self.file.name,
                 bucket=address, level=true_level)
        metric_inc("lh.degraded_scan")
        self.send(
            self.file.degraded_read_target(address),
            "degraded_scan",
            {
                "op": op,
                "client": self.node_id,
                "matcher": state.matcher,
                "address": address,
                "level": true_level,
                "dead": self.file.degraded_dead_set(address, self.dead),
            },
            size=state.request_size,
        )

    def _scan_timeout(self, op: int) -> None:
        state = self._scan_state.get(op)
        if state is None or state.done or state.failed:
            return
        policy = self.file.retry_policy
        state.attempt += 1
        missing = [
            address for address in state.expected
            if address not in state.replied
        ]
        if state.attempt > policy.max_retries:
            if state.escalations >= MAX_ESCALATIONS:
                obs_emit("lh.retry_exhausted", file=self.file.name,
                         kind="scan", op=op)
                metric_inc("lh.retry_exhausted")
                state.failed = True
                return
            # A full retry budget spent: suspect every bucket still
            # owing coverage; the coordinator's verdicts re-route.
            state.escalations += 1
            state.attempt = 0
            for address in missing:
                if address in self.dead:
                    self._scan_chase(op, address)
                else:
                    obs_emit("lh.suspect", file=self.file.name,
                             bucket=address, kind="scan")
                    metric_inc("lh.suspect")
                    self.send(self.file.coordinator_id, "suspect",
                              {"address": address,
                               "client": self.node_id},
                              size=HEADER_SIZE)
        else:
            # Targeted retry: only the buckets whose coverage
            # fraction is still missing — never a re-broadcast.
            for address in missing:
                self.network.stats.retries += 1
                obs_emit("lh.retry", file=self.file.name, kind="scan",
                         bucket=address, attempt=state.attempt)
                metric_inc("lh.retry")
                self._scan_chase(op, address)
        if state.failed or state.done:
            return
        state.timer = self.network.schedule(
            policy.delay(state.attempt),
            lambda: self._scan_timeout(op),
            owner=self.node_id,
        )

    def take_reply(self, op: int) -> dict[str, Any]:
        """Pop the (already delivered) reply for ``op``."""
        try:
            reply = self.responses.pop(op)
        except KeyError:
            raise RuntimeError(f"no reply delivered for op {op}") from None
        if reply.get("error"):
            if reply.get("error_kind") == "unavailable":
                raise BucketUnavailableError(reply["error"])
            raise RetryExhaustedError(reply["error"])
        return reply

    def take_scan(self, op: int) -> list[Any]:
        """Pop scan hits for ``op``, verifying full coverage."""
        state = self._scan_state.pop(op, None)
        coverage = self._scan_coverage.pop(op)
        hits = self._scan_hits.pop(op)
        if state is not None and state.failed:
            if state.unavailable is not None:
                raise BucketUnavailableError(
                    f"scan cannot complete: bucket {state.unavailable} "
                    "is down and the file has no parity to reconstruct "
                    "its records"
                )
            raise RetryExhaustedError(
                f"scan abandoned at coverage {coverage} after "
                f"{state.attempt - 1} retry rounds"
            )
        if coverage != 1:
            raise RuntimeError(
                f"scan terminated with coverage {coverage} != 1; "
                "the deterministic-termination invariant is broken"
            )
        return hits


class LHStarFile:
    """Synchronous facade over one LH* file on a simulated network.

    >>> file = LHStarFile()
    >>> file.insert(7, b"hello\\x00")
    >>> file.lookup(7)
    b'hello\\x00'
    """

    def __init__(
        self,
        name: str = "lh",
        network: Network | None = None,
        bucket_capacity: int = 64,
        split_policy: str = "uncontrolled",
        load_factor_threshold: float = 0.8,
        shrink: bool = False,
        merge_threshold: float = 0.4,
        retry_policy: RetryPolicy | None = DEFAULT_RETRY_POLICY,
    ) -> None:
        if bucket_capacity < 1:
            raise ValueError("bucket capacity must be positive")
        if split_policy not in ("uncontrolled", "load_factor"):
            raise ValueError(
                f"unknown split policy {split_policy!r}"
            )
        if not 0 < load_factor_threshold <= 1:
            raise ValueError("load factor threshold must be in (0, 1]")
        if not 0 < merge_threshold < 1:
            raise ValueError("merge threshold must be in (0, 1)")
        if shrink and merge_threshold >= load_factor_threshold:
            raise ValueError(
                "merge threshold must lie below the load-factor "
                "threshold or the file would thrash"
            )
        self.name = name
        self.network = network or Network()
        #: Timeout/retry discipline for this file's clients; ``None``
        #: disables retransmission entirely (pre-robustness behaviour).
        self.retry_policy = retry_policy
        self.bucket_capacity = bucket_capacity
        self.split_policy = split_policy
        self.load_factor_threshold = load_factor_threshold
        self.shrink = shrink
        self.merge_threshold = merge_threshold
        #: Whether buckets report per-record load changes ("load" /
        #: "underflow" messages and a delta field on "overflow") to
        #: the coordinator.  Both shrink decisions and load-factor
        #: split gating need an exact global record count at the
        #: coordinator; counting from billed messages makes that work
        #: identically when the coordinator is a remote process.
        self.tracks_load = shrink or split_policy == "load_factor"
        self.buckets: dict[int, LHStarBucket] = {}
        self.coordinator = LHStarCoordinator(self)
        self.network.attach(self.coordinator)
        self.create_bucket(0, 0)
        self.clients: list[LHStarClient] = []
        self.client = self.new_client()
        self.record_count = 0

    # -- identifiers -----------------------------------------------------------

    def bucket_id(self, address: int) -> Hashable:
        return ("bucket", self.name, address)

    def client_id(self, index: int) -> Hashable:
        return ("client", self.name, index)

    @property
    def coordinator_id(self) -> Hashable:
        return ("coordinator", self.name)

    # -- topology management -----------------------------------------------------

    def create_bucket(
        self, address: int, level: int, pending: bool = False
    ) -> LHStarBucket:
        existing = self.buckets.get(address)
        if existing is not None:
            if not existing.retired:
                raise ValueError(f"bucket {address} already exists")
            # The file regrew over a tombstone: revive it in place.
            existing.retired = False
            existing.merge_target = None
            existing.level = level
            existing.pending = pending
            return existing
        bucket = LHStarBucket(self, address, level, pending=pending)
        self.buckets[address] = bucket
        self.network.attach(bucket)
        return bucket

    def retire_bucket(self, address: int) -> None:
        """Bookkeeping hook when a merge retires a bucket (overridden
        by the parity layer)."""

    def decommission_bucket(self, address: int) -> None:
        """Reap a retired tombstone after its image catch-up window:
        detach the node, so the address stops existing on the network.

        Refused while the bucket is live or still holds records.  An
        unbilled operator action (like crash/restore); call
        :meth:`sync_client_images` first — tombstone redirects carry
        no IAM, so client images never catch up with a shrink on
        their own, and a keyed operation aimed at a reaped address
        has nowhere to go.  On the live backend the hosting process
        is reaped through the ``decommission`` control verb.
        """
        decommission = getattr(self.network, "decommission", None)
        if decommission is not None:
            decommission(self.name, address)
            return
        bucket = self.buckets.get(address)
        if bucket is None:
            raise ValueError(f"no bucket {address} to decommission")
        if not bucket.retired:
            raise ValueError(
                f"bucket {address} is not retired; only tombstones "
                "can be decommissioned")
        if bucket.records:
            raise ValueError(f"tombstone {address} still holds records")
        self.network.detach(bucket.node_id)
        del self.buckets[address]

    def sync_client_images(self) -> None:
        """Clamp every local client's private image to the
        authoritative ``(i, n)`` — the operator-side image catch-up
        that precedes :meth:`decommission_bucket`."""
        state = getattr(self.network, "coordinator_state", None)
        if state is not None:
            snap = state(self.name)
            i, n = snap["i"], snap["n"]
        else:
            i, n = self.coordinator.i, self.coordinator.n
        for client in self.clients:
            client.i_image, client.n_image = i, n

    def leave(self, address: int) -> bool:
        """Gracefully migrate bucket ``address`` onto a fresh spare
        under the same network identity, online.

        The trigger is an unbilled operator action (like
        crash/restore); the migration itself is billed protocol
        traffic.  Returns whether a migration started (live,
        non-dead, in-range addresses only)."""
        site_leave = getattr(self.network, "site_leave", None)
        if site_leave is not None:
            started = site_leave(self.name, address)
        else:
            started = self.coordinator.begin_leave(address)
        self.network.run()
        return bool(started)

    @property
    def live_bucket_count(self) -> int:
        return sum(1 for b in self.buckets.values() if not b.retired)

    def new_client(self) -> LHStarClient:
        client = LHStarClient(self, len(self.clients))
        self.clients.append(client)
        self.network.attach(client)
        return client

    @property
    def state(self) -> tuple[int, int]:
        """The authoritative file state ``(i, n)``."""
        return self.coordinator.i, self.coordinator.n

    @property
    def bucket_count(self) -> int:
        return len(self.buckets)

    # -- bookkeeping hooks (overridden by LH*_RS) ------------------------------

    def on_store(self, address: int, record: Record, old: Record | None) -> None:
        if old is None:
            self.record_count += 1

    def on_remove(self, address: int, record: Record) -> None:
        self.record_count -= 1

    def on_move(self, old: int, new: int, record: Record) -> None:
        """A record left ``old`` toward ``new`` (split, merge or
        misfit re-ship); parity layers release its source-side state
        here.  The record still counts toward the file — arrival is
        registered by :meth:`on_absorb` at the destination."""

    def on_absorb(self, address: int, record: Record, old: Record | None) -> None:
        """A shipped record was stored at ``address``; parity layers
        register it here.  Split from :meth:`on_move` so that source
        and destination bookkeeping can live on *different sites*:
        the source releases, the destination assigns — neither needs
        the other's rank tables."""

    # -- crash-recovery hooks (overridden by LH*_RS) ---------------------------

    def begin_recovery(self, address: int, level: int) -> bool:
        """Coordinator callback when ``address`` is declared dead.

        Returns whether the file can reconstruct the bucket's records
        (and serve degraded reads meanwhile).  Plain LH* has no
        parity: the data is unavailable until the node reboots.
        """
        return False

    def finish_recovery(self, address: int) -> None:
        """Coordinator callback when the spare reports itself
        installed (parity layers close their recovery span here)."""

    def recovery_group(self, address: int) -> list[int]:
        """The addresses whose failures interact with ``address``'s —
        the bucket group of the parity layer; just the bucket itself
        in plain LH*."""
        return [address]

    def degraded_read_target(self, address: int) -> Hashable | None:
        """The node serving degraded reads for dead ``address``
        (the group's first parity bucket in LH*_RS; none here)."""
        return None

    def degraded_dead_set(
        self, address: int, dead: dict[int, tuple[int, bool]]
    ) -> list[int]:
        """The dead addresses a degraded read of ``address`` must
        solve around (its down group members, in the parity layer)."""
        return [address]

    def spawn_spare(self, address: int, level: int) -> LHStarBucket:
        """Replace a dead bucket's node with a fresh *pending* spare.

        The spare takes over the network identity — in-flight and
        future messages reach it and are buffered — and waits for the
        reconstructed records to arrive as a ``recover_install``
        shipment, exactly like a split target waits for its initial
        ``split_records``.
        """
        old = self.buckets[address]
        if old.node_id in self.network:
            self.network.detach(old.node_id)
        spare = LHStarBucket(self, address, level, pending=True)
        spare.retired = old.retired
        spare.merge_target = old.merge_target
        self.buckets[address] = spare
        self.network.attach(spare)
        return spare

    # -- synchronous operations ----------------------------------------------

    def insert(self, key: int, content: bytes, client: LHStarClient | None = None) -> None:
        client = client or self.client
        op = client.start_keyed("insert", key, content)
        self.network.run()
        reply = client.take_reply(op)
        if not reply["ok"]:
            raise InsertFailedError(f"insert of key {key} failed")

    def lookup(self, key: int, client: LHStarClient | None = None) -> bytes | None:
        client = client or self.client
        op = client.start_keyed("lookup", key)
        self.network.run()
        reply = client.take_reply(op)
        return reply["content"] if reply["ok"] else None

    def delete(self, key: int, client: LHStarClient | None = None) -> bool:
        client = client or self.client
        op = client.start_keyed("delete", key)
        self.network.run()
        return client.take_reply(op)["ok"]

    def scan(
        self,
        matcher: ScanMatcher,
        client: LHStarClient | None = None,
        request_size: int = HEADER_SIZE,
    ) -> list[Any]:
        """Parallel content scan: returns all non-None matcher outcomes."""
        client = client or self.client
        op = client.start_scan(matcher, request_size=request_size)
        self.network.run()
        return client.take_scan(op)

    def run_concurrent(
        self,
        operations: list[tuple],
        concurrency: int = 4,
    ) -> list:
        """Issue many keyed operations concurrently, one network run.

        ``operations`` are ``("insert", key, content)``,
        ``("lookup", key)`` or ``("delete", key)`` tuples.  They are
        spread round-robin over a pool of ``concurrency`` clients and
        *all* enter the network before it runs, so splits, forwards
        and image adjustments interleave arbitrarily — the situation a
        real multi-client SDDS faces.  Results return in operation
        order: None for inserts, content (or None) for lookups, bool
        for deletes.

        Ordering between operations in the same batch is unspecified
        (they are concurrent); callers needing order run batches
        sequentially.
        """
        if concurrency < 1:
            raise ValueError("concurrency must be positive")
        while len(self.clients) < concurrency + 1:
            self.new_client()
        pool = self.clients[1:concurrency + 1]
        pending: list[tuple[LHStarClient, int, str]] = []
        for index, operation in enumerate(operations):
            client = pool[index % concurrency]
            kind = operation[0]
            if kind == "insert":
                op = client.start_keyed("insert", operation[1],
                                        operation[2])
            elif kind in ("lookup", "delete"):
                op = client.start_keyed(kind, operation[1])
            else:
                raise ValueError(f"unknown operation kind {kind!r}")
            pending.append((client, op, kind))
        self.network.run()
        results = []
        for client, op, kind in pending:
            reply = client.take_reply(op)
            if kind == "insert":
                results.append(None)
            elif kind == "lookup":
                results.append(reply["content"] if reply["ok"] else None)
            else:
                results.append(reply["ok"])
        return results

    def all_records(self) -> list[Record]:
        """Direct (out-of-band) record dump, for tests and analysis."""
        records = []
        for bucket in self.buckets.values():
            records.extend(bucket.records.values())
        return records


def _hit_size(hit: Any) -> int:
    """Accounted wire size of one scan hit.

    Hit objects that know their encoded size expose a ``wire_size``
    attribute (e.g. :class:`~repro.core.search.SiteHit`); containers
    are accounted element-wise; bare scalars cost 8 bytes.  Before the
    ``wire_size`` protocol, every structured hit was billed a flat
    8 bytes regardless of its positions payload, systematically
    under-reporting scan bandwidth.
    """
    wire = getattr(hit, "wire_size", None)
    if wire is not None:
        return wire
    if isinstance(hit, (bytes, bytearray)):
        return len(hit)
    if isinstance(hit, (tuple, list)):
        return sum(_hit_size(element) for element in hit)
    return 8
