"""The flat SDDS record of the paper's Figure 1.

"A record consists of a key, that is the Record Identifier (RI), and of
the Record Content field (RC).  We assume that the key is an
artificially created number and not sensitive information.  The RC
field is a flat, zero-terminated string."
"""

from __future__ import annotations

from dataclasses import dataclass

#: Accounted per-record wire overhead (key, lengths, framing) in bytes.
RECORD_OVERHEAD = 16


@dataclass(frozen=True)
class Record:
    """A flat record: integer RID plus bytes content.

    Content is stored as ``bytes``; the paper's records are 8-bit ASCII
    strings and the encrypted pipeline produces binary data, so bytes
    is the common denominator.  :meth:`from_text` adds the terminating
    zero symbol the paper assumes.
    """

    rid: int
    content: bytes

    def __post_init__(self) -> None:
        if self.rid < 0:
            raise ValueError("record identifier must be non-negative")
        if not isinstance(self.content, bytes):
            raise TypeError("record content must be bytes")

    @classmethod
    def from_text(cls, rid: int, text: str) -> "Record":
        """Build a record from a flat ASCII string, zero-terminated."""
        return cls(rid, text.encode("ascii") + b"\x00")

    def text(self) -> str:
        """Decode the content back to text, stripping the terminator."""
        return self.content.rstrip(b"\x00").decode("ascii")

    @property
    def wire_size(self) -> int:
        """Accounted size of this record on the simulated wire."""
        return RECORD_OVERHEAD + len(self.content)
