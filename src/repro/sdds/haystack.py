"""Per-bucket concatenated haystacks for batched scans.

The paper's one-round parallel scan makes the per-bucket matcher loop
the entire server-side cost of a query.  The scalar loop calls the
matcher once per resident record, which means ``bytes.find`` restarts
once per record — thousands of Python-level iterations per bucket for
a needle that C code could sweep in one pass.

A :class:`BucketHaystack` is the bucket's records concatenated into
one blob, separated by sentinel gaps, together with an offset table
mapping blob positions back to record keys.  A needle then runs
``bytes.find`` once over the whole bucket; each raw hit is mapped to
its segment by binary search and validated:

* **containment** — the hit must lie entirely inside one record's
  segment.  This check alone makes the haystack exact: a match that
  straddles a record boundary (or reaches into a sentinel gap) is
  discarded, so the gap bytes are *never* a correctness requirement.
* **alignment** — the hit's offset relative to the segment start must
  be a multiple of the piece width (the same rule as
  :func:`repro.core.search.aligned_find`).

The sentinel byte is ``0xFF``: for every Stage-2 configuration with a
sub-byte code domain (the paper's own configurations, e.g. 64 codes)
it genuinely cannot occur in any needle, so cross-boundary candidate
hits never even reach the rejection check.  For full 8-bit domains
``0xFF`` is merely *rare* in needles — the containment check does the
real work and the gap only keeps spurious ``find`` stops cheap.

Buckets cache their haystack lazily and invalidate it on any record
mutation (insert, delete, split, merge, recovery install) — see
:class:`repro.sdds.lhstar.LHStarBucket`.  Memory cost: one extra copy
of the bucket's index payload plus ``GAP`` bytes per record and three
small arrays (see :meth:`memory_bytes`).
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING, Callable, Hashable, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sdds.records import Record

#: The separator byte between record segments.
SENTINEL_BYTE = 0xFF

#: Gap width between segments.  Any positive width is correct (the
#: containment check rejects cross-boundary hits); a few bytes keep
#: segment starts strictly increasing even for empty records and make
#: accidental boundary-spanning ``find`` stops unlikely.
GAP = 8

_SENTINEL = bytes([SENTINEL_BYTE]) * GAP


class BucketHaystack:
    """Immutable concatenated view of one bucket's records.

    Built from the bucket's record dict in its iteration order, so
    batched hit lists come back in the same record order as the scalar
    per-record loop produces them.
    """

    __slots__ = ("blob", "rids", "_starts", "_ends", "_views")

    def __init__(self, records: dict[int, "Record"]) -> None:
        self._build(
            (rid, record.content) for rid, record in records.items()
        )

    @classmethod
    def from_segments(
        cls, pairs: Iterable[tuple[int, bytes]]
    ) -> "BucketHaystack":
        """Build directly from ``(record key, content)`` pairs — used
        for derived sub-haystacks carved out of a parent's segments."""
        self = cls.__new__(cls)
        self._build(pairs)
        return self

    def _build(self, pairs: Iterable[tuple[int, bytes]]) -> None:
        rids: list[int] = []
        starts: list[int] = []
        ends: list[int] = []
        parts: list[bytes] = []
        cursor = 0
        for rid, content in pairs:
            if parts:
                parts.append(_SENTINEL)
                cursor += GAP
            rids.append(rid)
            starts.append(cursor)
            cursor += len(content)
            ends.append(cursor)
            parts.append(content)
        self.blob = b"".join(parts)
        self.rids = rids
        self._starts = starts
        self._ends = ends
        self._views: dict[Hashable, object] = {}

    def view(
        self, token: Hashable, build: "Callable[[BucketHaystack], object]"
    ) -> object:
        """Memoised derived view (e.g. a per-(group, site) partition).

        Views share the haystack's lifetime: buckets invalidate by
        dropping the whole haystack, so a cached view can never outlive
        the records it was derived from.  ``token`` must be chosen so
        that equal tokens imply equal ``build`` semantics *for this
        haystack's store* (a haystack is only ever scanned by matchers
        of the file that owns its bucket)."""
        cached = self._views.get(token)
        if cached is None:
            cached = self._views[token] = build(self)
        return cached

    def __len__(self) -> int:
        return len(self.rids)

    # -- matching -------------------------------------------------------------

    def find_all(
        self, needle: bytes, width: int
    ) -> Iterator[tuple[int, int]]:
        """Yield ``(record key, chunk position)`` for every aligned,
        contained occurrence of ``needle``, in blob order.

        Matches :func:`repro.core.search.aligned_find` run per record:
        positions are relative to the record's own stream and filtered
        to multiples of ``width``.
        """
        if width < 1:
            raise ValueError("width must be positive")
        if not needle:
            raise ValueError("empty needle")
        blob = self.blob
        starts = self._starts
        ends = self._ends
        length = len(needle)
        start = blob.find(needle)
        while start != -1:
            segment = bisect_right(starts, start) - 1
            if segment >= 0 and start + length <= ends[segment]:
                relative = start - starts[segment]
                if relative % width == 0:
                    yield self.rids[segment], relative // width
            start = blob.find(needle, start + 1)

    def find_records(self, needle: bytes) -> Iterator[int]:
        """Yield the key of every record containing ``needle`` (plain
        membership, no alignment), each at most once, in blob order.

        After the first contained hit in a segment the search resumes
        at the segment's end, so records dense with the needle cost
        one stop — mirroring the early exit of ``needle in content``.
        """
        if not needle:
            raise ValueError("empty needle")
        blob = self.blob
        starts = self._starts
        ends = self._ends
        length = len(needle)
        start = blob.find(needle)
        while start != -1:
            segment = bisect_right(starts, start) - 1
            if segment >= 0 and start + length <= ends[segment]:
                yield self.rids[segment]
                start = blob.find(needle, ends[segment])
            else:
                start = blob.find(needle, start + 1)

    # -- iteration ----------------------------------------------------------

    def segments(self) -> Iterator[tuple[int, memoryview]]:
        """``(record key, content view)`` per record, zero-copy."""
        view = memoryview(self.blob)
        for index, rid in enumerate(self.rids):
            yield rid, view[self._starts[index]:self._ends[index]]

    def segment_bounds(self) -> Iterator[tuple[int, int, int]]:
        """``(record key, blob start, blob end)`` per record, in blob
        order — the raw offsets a single-sweep indexer needs."""
        for index, rid in enumerate(self.rids):
            yield self.rids[index], self._starts[index], self._ends[index]

    # -- accounting ----------------------------------------------------------

    def memory_bytes(self) -> int:
        """Approximate residency: the blob, the offset arrays, and any
        cached derived views (:meth:`view`).

        Views are accounted duck-typed: an object exposing its own
        ``memory_bytes`` reports itself (so a site partition's
        sub-haystacks recurse into *their* cached views too), dicts and
        sequences are summed element-wise, anything else counts zero.
        The chunk index's site partition roughly doubles the base
        figure (one more copy of the payload, split across
        sub-haystacks)."""
        return (
            len(self.blob)
            + 3 * 8 * len(self.rids)
            + sum(_view_memory_bytes(view) for view in self._views.values())
        )


def _view_memory_bytes(value: object) -> int:
    """Residency of one cached view, duck-typed (see
    :meth:`BucketHaystack.memory_bytes`)."""
    accounted = getattr(value, "memory_bytes", None)
    if accounted is not None:
        return accounted()
    if isinstance(value, dict):
        return sum(_view_memory_bytes(item) for item in value.values())
    if isinstance(value, (list, tuple)):
        return sum(_view_memory_bytes(item) for item in value)
    return 0
