"""Scalable Distributed Data Structures (SDDS).

The substrate the paper stores everything in: LH* (Litwin, Neimat,
Schneider, ACM TODS 1996) and its high-availability variant LH*_RS
(Litwin, Moussa, Schwarz, ACM TODS 2005), both running on the
deterministic network simulator of :mod:`repro.net`.

Highlights:

* **LH\\*** — linear hashing distributed over buckets-as-nodes.  Clients
  keep a possibly stale *image* ``(i', n')`` of the file state, address
  buckets without any central directory, and converge through Image
  Adjustment Messages.  A misdirected key reaches the right bucket in
  at most two forwarding hops, whatever the staleness (the LNS96
  guarantee; pinned by property tests).
* **Parallel scan** — content queries are shipped to every bucket in
  one round using the deterministic-termination forwarding rule; the
  client detects completion by covering the address space (sum of
  2^-level over responders reaching 1).
* **LH\\*_RS** — buckets are organised in groups of ``m``; ``k`` parity
  buckets per group hold Reed-Solomon parity (over GF(2^8), Cauchy
  generator) of same-rank records, allowing recovery of up to ``k``
  unavailable buckets per group.

The encrypted-search layer (:mod:`repro.core`) stores its record-store
and index records in these files exactly as the paper prescribes
("a standard SDDS such as LH* or its high-availability version LH*_RS
is used to store index records and the records themselves").
"""

from repro.errors import BucketUnavailableError, InsertFailedError, SDDSError
from repro.net.faults import RetryExhaustedError, RetryPolicy
from repro.sdds.hashing import client_address, forward_address, image_adjust
from repro.sdds.lhstar import DEFAULT_RETRY_POLICY, LHStarClient, LHStarFile
from repro.sdds.lhstar_rs import LHStarRSFile
from repro.sdds.records import Record

__all__ = [
    "Record",
    "client_address",
    "forward_address",
    "image_adjust",
    "LHStarFile",
    "LHStarClient",
    "LHStarRSFile",
    "RetryPolicy",
    "RetryExhaustedError",
    "SDDSError",
    "InsertFailedError",
    "BucketUnavailableError",
    "DEFAULT_RETRY_POLICY",
]
