"""The synthetic San Francisco directory generator.

``generate_directory(n, seed)`` produces a deterministic
:class:`Directory` of ``n`` entries shaped like the paper's Figure 4.
The default size matches the paper's 282,965-entry SF White Pages.

The generator is pure: same ``(n, seed)`` always yields the same
directory, so every benchmark and test is reproducible bit-for-bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.data import names as _names
from repro.data.corpus import (
    NAME_FIELD_WIDTH,
    PHONE_PREFIX,
    format_record,
    phone_to_rid,
)
from repro.sdds.records import Record

#: The paper's directory size.
SF_DIRECTORY_SIZE = 282_965

#: Share of entries drawn from the Asian surname pool ("heavy presence
#: of Asian names").
ASIAN_SHARE = 0.48


@dataclass(frozen=True)
class PhonebookEntry:
    """One directory entry, pre-rendered in all the forms the
    experiments need."""

    name: str            # e.g. "AKIMOTO YOSHIMI"
    phone: str           # e.g. "415-409-0019"
    rid: int             # integer form of the phone number

    @property
    def last_name(self) -> str:
        return self.name.split(" ", 1)[0]

    @property
    def record_text(self) -> str:
        return format_record(self.name, self.phone)

    def to_record(self) -> Record:
        return Record.from_text(self.rid, self.record_text)


class Directory:
    """A generated directory: entries plus the derived corpora."""

    def __init__(self, entries: list[PhonebookEntry]) -> None:
        self.entries = entries

    @classmethod
    def from_lines(cls, lines) -> "Directory":
        """Load a directory from an external source.

        Accepts either the paper's Figure-4 flat-record format
        (``NAME%%%…415-409-XXXX$$``) or plain ``NAME<TAB>PHONE``
        lines; blank lines are skipped.  This is how a user points
        the experiments at a real phone book instead of the synthetic
        one.
        """
        from repro.data.corpus import parse_record

        entries = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            if "\t" in line:
                name, phone = line.split("\t", 1)
                name, phone = name.strip(), phone.strip()
            else:
                name, phone = parse_record(line)
            entries.append(
                PhonebookEntry(
                    name=name, phone=phone, rid=phone_to_rid(phone)
                )
            )
        if not entries:
            raise ValueError("no directory entries found")
        return cls(entries)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[PhonebookEntry]:
        return iter(self.entries)

    def name_texts(self) -> Iterator[str]:
        """The name fields — the corpus all χ² analyses run over."""
        return (entry.name for entry in self.entries)

    def record_texts(self) -> Iterator[str]:
        return (entry.record_text for entry in self.entries)

    def records(self) -> list[Record]:
        return [entry.to_record() for entry in self.entries]

    def sample(self, k: int, seed: int = 0) -> "Directory":
        """A deterministic random sub-directory of ``k`` entries."""
        if k > len(self.entries):
            raise ValueError(
                f"cannot sample {k} from {len(self.entries)} entries"
            )
        rng = random.Random(seed)
        return Directory(rng.sample(self.entries, k))

    def last_names(self) -> list[str]:
        return [entry.last_name for entry in self.entries]


class _NameSampler:
    """Draws names per the Figure-4 record shapes.

    ``style`` selects the corpus: ``"sf"`` (default) mixes heavy
    Asian-name pools into Western ones like the paper's San Francisco
    directory; ``"warsaw"`` draws from long Polish surnames — the
    counterfactual the paper muses about ("the Warsaw phonebook might
    have been a better choice"), with essentially no short names.
    """

    def __init__(self, rng: random.Random, style: str = "sf") -> None:
        if style not in ("sf", "warsaw"):
            raise ValueError(f"unknown directory style {style!r}")
        self._rng = rng
        self._style = style
        if style == "sf":
            self._asian_names = _names.pool_names(_names.ASIAN_SURNAMES)
            self._asian_weights = _names.pool_weights(
                _names.ASIAN_SURNAMES
            )
            self._western_names = _names.pool_names(
                _names.WESTERN_SURNAMES
            )
            self._western_weights = _names.pool_weights(
                _names.WESTERN_SURNAMES
            )
            self._given_names = _names.pool_names(_names.GIVEN_NAMES)
            self._given_weights = _names.pool_weights(_names.GIVEN_NAMES)
        else:
            self._western_names = _names.pool_names(
                _names.POLISH_SURNAMES
            )
            self._western_weights = _names.pool_weights(
                _names.POLISH_SURNAMES
            )
            self._given_names = _names.pool_names(_names.POLISH_GIVEN)
            self._given_weights = _names.pool_weights(_names.POLISH_GIVEN)
        self._shapes = list(_names.SHAPE_WEIGHTS)
        self._shape_weights = list(_names.SHAPE_WEIGHTS.values())

    def surname(self) -> str:
        if self._style == "sf" and self._rng.random() < ASIAN_SHARE:
            return self._rng.choices(
                self._asian_names, self._asian_weights
            )[0]
        return self._rng.choices(
            self._western_names, self._western_weights
        )[0]

    def given(self) -> str:
        return self._rng.choices(self._given_names, self._given_weights)[0]

    def full_name(self) -> str:
        shape = self._rng.choices(self._shapes, self._shape_weights)[0]
        surname = self.surname()
        if shape == "surname_given":
            name = f"{surname} {self.given()}"
        elif shape == "surname_initial":
            name = f"{surname} {self._rng.choice(_names.INITIALS)}"
        elif shape == "surname_given_initial":
            name = (
                f"{surname} {self.given()} "
                f"{self._rng.choice(_names.INITIALS)}"
            )
        elif shape == "surname_given_amp_given":
            name = f"{surname} {self.given()} & {self.given()}"
        else:  # surname_given_given
            name = f"{surname} {self.given()} {self.given()}"
        return name


def generate_directory(
    n: int = SF_DIRECTORY_SIZE, seed: int = 2006, style: str = "sf"
) -> Directory:
    """Generate ``n`` deterministic Figure-4 entries.

    ``style="warsaw"`` produces the paper's counterfactual corpus of
    long Polish surnames (see :class:`_NameSampler`).

    Phone numbers enumerate ``415-409-0000 .. `` and wrap through
    further fake exchanges if ``n`` exceeds 10,000, keeping RIDs unique
    (the paper's numbers were "changed" anyway).
    """
    if n < 1:
        raise ValueError("directory size must be positive")
    rng = random.Random(seed)
    sampler = _NameSampler(rng, style=style)
    entries = []
    for index in range(n):
        exchange, line = divmod(index, 10_000)
        phone = f"{PHONE_PREFIX[:4]}{409 + exchange:03d}-{line:04d}"
        name = sampler.full_name()
        while len(name) > NAME_FIELD_WIDTH:
            name = sampler.full_name()
        entries.append(
            PhonebookEntry(name=name, phone=phone, rid=phone_to_rid(phone))
        )
    return Directory(entries)
