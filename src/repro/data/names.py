"""Name pools for the synthetic SF directory.

Pools carry integer weights (relative frequencies).  The mix is tuned
so the aggregate letter statistics reproduce the *shape* of the paper's
Table 1: top letters A, E, N, R, I, O; top digrams AN, ER, AR, ON, IN;
top trigrams CHA, MAR, SON, ONG, ANG.  The tuning is checked by
``tests/data/test_phonebook.py`` so future edits cannot silently break
the calibration the benchmarks rely on.

The paper notes "because of the heavy presence of Asian names, the
frequency distribution of letters is somewhat unusual" and traces
almost all search false positives to short names (YU, OU, IP, BA, WU,
LI, LE) and 3-letter names (WOO, KAY, KIM, LEE, SEE, MAI, LIM, MAK,
LEW).  All of these appear here with substantial weight.
"""

from __future__ import annotations

# (name, weight) — Asian surnames, with the paper's short names
# prominently represented.
ASIAN_SURNAMES: list[tuple[str, int]] = [
    ("CHAN", 90), ("CHANG", 75), ("CHEN", 70), ("WONG", 88), ("WANG", 55),
    ("HUANG", 48), ("ZHANG", 40), ("YANG", 52), ("TANG", 38), ("FONG", 30),
    ("ONG", 26), ("TONG", 28), ("CHONG", 24), ("CHEUNG", 40), ("LEUNG", 42),
    ("KWONG", 22), ("TRUONG", 20), ("PHAN", 24), ("TRAN", 48), ("NGUYEN", 62),
    ("PHAM", 30), ("HOANG", 26), ("DANG", 22), ("LUONG", 16), ("DUONG", 18),
    ("CHANDRA", 10), ("CHA", 18), ("CHAU", 22), ("CHANCE", 4),
    ("LEE", 130), ("KIM", 80), ("PARK", 40), ("CHOI", 28), ("KANG", 30),
    ("WOO", 45), ("KAY", 30), ("SEE", 32), ("MAI", 34), ("LIM", 42),
    ("MAK", 32), ("LEW", 33), ("LOW", 20), ("LAU", 38), ("LAM", 48),
    ("YU", 60), ("OU", 35), ("IP", 32), ("BA", 28), ("WU", 55),
    ("LI", 58), ("LE", 52), ("NG", 40), ("HO", 45), ("MA", 38),
    ("HU", 22), ("XU", 18), ("LU", 26), ("SU", 18), ("KO", 20),
    ("YEE", 30), ("GEE", 16), ("DER", 12), ("ENG", 22), ("CHIN", 26),
    ("CHINN", 8), ("CHEW", 18), ("CHOW", 30), ("CHU", 28), ("CHUNG", 34),
    ("SONG", 24), ("SOON", 10), ("KWAN", 22), ("QUAN", 18), ("YUAN", 14),
    ("SHEN", 16), ("ZHENG", 16), ("ZHOU", 14), ("ZHU", 12), ("GUAN", 10),
    ("HAN", 22), ("SUN", 18), ("WAN", 16), ("YAN", 20), ("PAN", 18),
    ("TAN", 30), ("GAN", 10), ("MAN", 12), ("SHAN", 8), ("LIANG", 22),
    ("JIANG", 14), ("XIANG", 8), ("KUANG", 8), ("SITU", 6), ("AKIMOTO", 8),
    ("TANAKA", 14), ("YAMADA", 10), ("SATO", 12), ("SAITO", 8), ("MORI", 8),
    ("NAKAMURA", 10), ("YOSHIDA", 8), ("HARADA", 6), ("ONO", 8), ("KONDO", 6),
]

# Western / Hispanic surnames: sources of ER/AR/ON digrams and
# MAR/SON trigrams.
WESTERN_SURNAMES: list[tuple[str, int]] = [
    ("ANDERSON", 60), ("JOHNSON", 70), ("WILSON", 55), ("JACKSON", 45),
    ("NELSON", 40), ("ROBINSON", 35), ("THOMPSON", 42), ("HANSON", 22),
    ("LARSON", 24), ("CARLSON", 20), ("OLSON", 18), ("SIMPSON", 16),
    ("HENDERSON", 20), ("PETERSON", 38), ("RICHARDSON", 22), ("SANDERSON", 8),
    ("MARTIN", 55), ("MARTINEZ", 65), ("MARINO", 14), ("MARSHALL", 24),
    ("MARQUEZ", 16), ("MARSH", 12), ("MARCH", 6), ("MARLOW", 6),
    ("GARCIA", 58), ("HERNANDEZ", 50), ("RODRIGUEZ", 52), ("GONZALEZ", 48),
    ("LOPEZ", 44), ("PEREZ", 40), ("SANCHEZ", 38), ("RAMIREZ", 34),
    ("TORRES", 28), ("RIVERA", 26), ("FERNANDEZ", 22), ("ALVAREZ", 20),
    ("ALBAREZ", 6), ("CHAVEZ", 22), ("MORALES", 24), ("ORTEGA", 16),
    ("SANTANA", 14), ("SERRANO", 12), ("ARELLANO", 8), ("ARBELAEZ", 4),
    ("SMITH", 48), ("BROWN", 38), ("WILLIAMS", 42), ("JONES", 36),
    ("MILLER", 40), ("DAVIS", 34), ("MOORE", 26), ("TAYLOR", 30),
    ("WALKER", 26), ("TURNER", 22), ("PARKER", 22), ("CARTER", 24),
    ("BAKER", 22), ("HARRIS", 26), ("WARREN", 14), ("WARNER", 12),
    ("ARNOLD", 14), ("ARTHUR", 8), ("BARNES", 18), ("BARBER", 10),
    ("GARNER", 10), ("HARPER", 12), ("CHAMBERS", 12), ("CHANDLER", 12),
    ("CHAPMAN", 14), ("CHARLES", 10), ("RICHARDS", 14), ("EDWARDS", 18),
    ("ANDREWS", 14), ("ARMSTRONG", 14), ("ARMENANTE", 3), ("ALEXANDER", 18),
    ("ALGAHIEM", 3), ("ALGHAZALY", 3), ("AFDAHL", 3), ("ABOGADO", 4),
    ("ADAMS", 22), ("ADAMSON", 6), ("ANTHONY", 10), ("ANTON", 6),
    ("SANTOS", 18), ("ROMERO", 14), ("RAMOS", 16), ("REYES", 18),
    ("MORENO", 12), ("MENDOZA", 14), ("CASTRO", 14), ("ORTIZ", 14),
    ("CORTEZ", 10), ("DURAN", 8), ("ROLDAN", 4), ("MILAN", 4),
    ("SCHWARZ", 3), ("LITWIN", 2), ("TSUI", 6), ("GRAY", 10),
    ("GREEN", 16), ("GREENE", 8), ("KELLER", 10), ("MEYER", 14),
    ("REED", 14), ("BELL", 10), ("WEBER", 8), ("PETERSEN", 10),
    ("FREEMAN", 10), ("STEELE", 6), ("BENNETT", 12), ("MITCHELL", 14),
    ("CAMPBELL", 14), ("KENNEDY", 10), ("SWEENEY", 6), ("MCGEE", 6),
]

# Given names: phonebooks list them second ("SURNAME GIVEN").  MAR/ANA
# rich pool drives the MAR trigram; AN-heavy names drive the AN digram.
GIVEN_NAMES: list[tuple[str, int]] = [
    ("MARIA", 70), ("MARK", 40), ("MARCO", 18), ("MARGARET", 26),
    ("MARTHA", 22), ("MARIO", 24), ("MARTIN", 16), ("MARIANA", 10),
    ("MARILYN", 14), ("MARVIN", 10), ("MARGARITA", 12), ("MARCIA", 8),
    ("ANA", 32), ("ANNA", 36), ("ANNE", 22), ("ANDREW", 30),
    ("ANDREA", 24), ("ANGELA", 28), ("ANGEL", 16), ("ANTHONY", 34),
    ("ANTONIO", 26), ("ANITA", 16), ("ANDRE", 12), ("ANGELINA", 10),
    ("JUAN", 36), ("JUANA", 10), ("SUSAN", 30), ("SUSANA", 8),
    ("DIANA", 18), ("DIANE", 18), ("JOAN", 14), ("JOANNA", 10),
    ("BRIAN", 24), ("RYAN", 14), ("ALAN", 16), ("ALLAN", 8),
    ("NATHAN", 12), ("JONATHAN", 18), ("DANIEL", 30), ("DANNY", 12),
    ("FRANK", 24), ("FRANCES", 14), ("FRANCISCO", 20), ("FERNANDO", 14),
    ("ALEJANDRO", 14), ("ALEXANDER", 12), ("ALEXANDRA", 10), ("SANDRA", 22),
    ("AMANDA", 14), ("ARMANDO", 10), ("ORLANDO", 8), ("ROLANDO", 6),
    ("WILLIAM", 40), ("ROBERT", 44), ("RICHARD", 38), ("EDWARD", 28),
    ("CHARLES", 30), ("CHRISTINE", 20), ("CHRISTINA", 18), ("CHRISTOPHER", 22),
    ("CATHERINE", 18), ("KATHERINE", 16), ("ELIZABETH", 24), ("PATRICIA", 26),
    ("ERIC", 22), ("ERIN", 10), ("IRENE", 16), ("KAREN", 24),
    ("HELEN", 20), ("ELLEN", 12), ("ELENA", 12), ("VERONICA", 10),
    ("TERESA", 16), ("THERESA", 10), ("ROSA", 16), ("ROSE", 14),
    ("GINA", 12), ("NINA", 8), ("TINA", 10), ("LINDA", 26),
    ("NANCY", 22), ("PETER", 26), ("PAUL", 26), ("PAULA", 12),
    ("PEDRO", 12), ("CARLOS", 24), ("CARMEN", 16), ("CAROL", 18),
    ("CAROLINA", 8), ("ADRIAN", 12), ("ADRIANA", 8), ("ALBERT", 16),
    ("ALBERTO", 10), ("ARTURO", 8), ("ARTHUR", 14), ("ERNESTO", 8),
    ("ERNEST", 10), ("EUGENE", 10), ("GEORGE", 24), ("GERALD", 12),
    ("GERARDO", 8), ("RAYMOND", 18), ("RONALD", 18), ("DONALD", 18),
    ("HOWARD", 12), ("HENRY", 18), ("HARRY", 10), ("LARRY", 12),
    ("BARRY", 8), ("JERRY", 12), ("TERRY", 10), ("GARY", 14),
    ("KEVIN", 20), ("KENNETH", 18), ("STEVEN", 22), ("STEPHEN", 16),
    ("STEPHANIE", 14), ("JENNIFER", 22), ("JESSICA", 16), ("MICHAEL", 40),
    ("MICHELLE", 18), ("DAVID", 40), ("JAMES", 38), ("JOHN", 42),
    ("THOMAS", 30), ("JOSE", 32), ("JOSEPH", 28), ("JOSEFINA", 6),
    ("MING", 14), ("WING", 12), ("KWOK", 10), ("WAI", 14),
    ("MEI", 14), ("LAI", 10), ("YUK", 8), ("SIU", 10),
    ("KAM", 8), ("MAN", 10), ("CHI", 12), ("YING", 12),
    ("HONG", 10), ("HUNG", 8), ("THANH", 10), ("MINH", 10),
    ("LAN", 10), ("HOA", 8), ("TUAN", 8), ("ANH", 10),
    ("YOSHIMI", 4), ("HIROSHI", 4), ("KENJI", 4), ("YUKI", 4),
    ("EBREHIM", 2), ("LIBIA", 2), ("WITOLD", 1), ("GRAZYNA", 1),
    ("RENEE", 12), ("EILEEN", 10), ("STEVE", 14), ("GENE", 8),
    ("MICHELE", 8), ("CELESTE", 6), ("DELORES", 6), ("EUGENIA", 4),
    ("ESTELLE", 4), ("ETHEL", 6), ("EMILY", 12), ("EMMA", 8),
    ("ELAINE", 10), ("ESTHER", 10), ("EDITH", 8), ("EVELYN", 10),
]

#: Middle parts: single initials used by entries like "AFDAHL E".
INITIALS = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"

# The paper's aside: short Asian surnames cause almost all false
# positives, "which would indicate that the Warsaw phonebook might
# have been a better choice for our database."  These pools build
# that counterfactual corpus: long Polish surnames (ASCII-folded),
# nothing under five letters.
POLISH_SURNAMES: list[tuple[str, int]] = [
    ("KOWALSKI", 90), ("NOWAK", 95), ("WISNIEWSKI", 70),
    ("WOJCIK", 60), ("KOWALCZYK", 58), ("KAMINSKI", 55),
    ("LEWANDOWSKI", 55), ("ZIELINSKI", 50), ("SZYMANSKI", 50),
    ("WOZNIAK", 48), ("DABROWSKI", 46), ("KOZLOWSKI", 44),
    ("JANKOWSKI", 42), ("MAZUR", 40), ("WOJCIECHOWSKI", 38),
    ("KWIATKOWSKI", 38), ("KRAWCZYK", 36), ("KACZMAREK", 36),
    ("PIOTROWSKI", 34), ("GRABOWSKI", 34), ("ZAJAC", 30),
    ("PAWLOWSKI", 30), ("MICHALSKI", 30), ("KROL", 18),
    ("NOWAKOWSKI", 28), ("WIECZOREK", 28), ("JABLONSKI", 26),
    ("WROBEL", 26), ("MAJEWSKI", 26), ("OLSZEWSKI", 24),
    ("STEPIEN", 24), ("MALINOWSKI", 24), ("JAWORSKI", 22),
    ("ADAMCZYK", 22), ("DUDEK", 20), ("NOWICKI", 20),
    ("PAWLAK", 20), ("GORSKI", 20), ("WITKOWSKI", 20),
    ("SIKORA", 18), ("WALCZAK", 18), ("BARAN", 16),
    ("RUTKOWSKI", 16), ("MICHALAK", 16), ("SZEWCZYK", 16),
    ("OSTROWSKI", 16), ("TOMASZEWSKI", 16), ("PIETRZAK", 14),
    ("ZALEWSKI", 14), ("WROBLEWSKI", 14), ("MARCINIAK", 14),
    ("JASINSKI", 14), ("SADOWSKI", 12), ("BAK", 6),
    ("ZAWADZKI", 12), ("DUDA", 10), ("CHMIELEWSKI", 12),
    ("WLODARCZYK", 12), ("BOROWSKI", 10), ("CZARNECKI", 10),
    ("SAWICKI", 10), ("SOKOLOWSKI", 10), ("URBANSKI", 10),
    ("KUBIAK", 10), ("MACIEJEWSKI", 10), ("SZCZEPANSKI", 10),
    ("KUCHARSKI", 8), ("WILK", 8), ("KALINOWSKI", 8),
    ("LITWIN", 6), ("SCHWARZ", 2), ("MAZUREK", 8),
    ("KOLODZIEJ", 8), ("SOBCZAK", 8), ("GAJEWSKI", 8),
]

POLISH_GIVEN: list[tuple[str, int]] = [
    ("JAN", 60), ("ANDRZEJ", 55), ("PIOTR", 50), ("KRZYSZTOF", 50),
    ("STANISLAW", 45), ("TOMASZ", 42), ("PAWEL", 40), ("JOZEF", 38),
    ("MARCIN", 36), ("MAREK", 36), ("MICHAL", 34), ("GRZEGORZ", 32),
    ("JERZY", 30), ("TADEUSZ", 28), ("ADAM", 28), ("LUKASZ", 26),
    ("ZBIGNIEW", 26), ("RYSZARD", 24), ("DARIUSZ", 22),
    ("HENRYK", 22), ("MARIUSZ", 20), ("KAZIMIERZ", 20),
    ("WOJCIECH", 20), ("ROBERT", 18), ("MATEUSZ", 18),
    ("MARIAN", 16), ("RAFAL", 16), ("JACEK", 16), ("JANUSZ", 16),
    ("MIROSLAW", 14), ("MACIEJ", 14), ("SLAWOMIR", 14),
    ("JAROSLAW", 14), ("KAMIL", 12), ("WIESLAW", 12),
    ("ROMAN", 12), ("WLADYSLAW", 12), ("JAKUB", 12),
    ("ANNA", 60), ("MARIA", 55), ("KATARZYNA", 45),
    ("MALGORZATA", 42), ("AGNIESZKA", 40), ("KRYSTYNA", 36),
    ("BARBARA", 34), ("EWA", 32), ("ELZBIETA", 32),
    ("ZOFIA", 28), ("JANINA", 26), ("TERESA", 26),
    ("JOANNA", 24), ("MAGDALENA", 24), ("MONIKA", 22),
    ("JADWIGA", 20), ("DANUTA", 20), ("IRENA", 18),
    ("HALINA", 18), ("HELENA", 16), ("GRAZYNA", 16),
    ("BOZENA", 14), ("STANISLAWA", 12), ("JOLANTA", 12),
    ("URSZULA", 12), ("WIESLAWA", 10), ("AGATA", 10),
    ("WITOLD", 8), ("ALEKSANDRA", 12), ("DOROTA", 12),
]

#: Relative weights for the record shapes of the paper's Figure 4.
SHAPE_WEIGHTS = {
    "surname_given": 58,        # AKIMOTO YOSHIMI
    "surname_initial": 16,      # AFDAHL E
    "surname_given_initial": 14,  # ARMENANTE MARK A
    "surname_given_amp_given": 8,  # ABOGADO ALEJANDRO & CATHERINE
    "surname_given_given": 4,   # ARBELAEZ LIBIA MARIA
}


def pool_names(pool: list[tuple[str, int]]) -> list[str]:
    return [name for name, __ in pool]


def pool_weights(pool: list[tuple[str, int]]) -> list[int]:
    return [weight for __, weight in pool]
