"""Flat-record formatting per the paper's Figure 4.

A directory record is the flat string

    ``<NAME>%%%…%%%415-409-XXXX$$``

where the name field is padded with ``%`` to a fixed width, the phone
number serves as the record identifier, and ``$$`` terminates the
record.  "We processed the records to give us flat records containing
the telephone number as the RID and the name of the subscriber as the
RC."
"""

from __future__ import annotations

import re

#: Width of the padded name field, wide enough for every pool name
#: combination (Figure 4 shows names padded to a common column).
NAME_FIELD_WIDTH = 26

#: The paper's (anonymised) exchange prefix.
PHONE_PREFIX = "415-409-"

_RECORD_RE = re.compile(
    r"^(?P<name>[A-Z0-9&' .-]+?)%*(?P<phone>\d{3}-\d{3}-\d{4})\$\$$"
)


def format_record(name: str, phone: str, width: int = NAME_FIELD_WIDTH) -> str:
    """Render the Figure-4 flat record string."""
    if len(name) > width:
        raise ValueError(
            f"name {name!r} longer than the {width}-column name field"
        )
    return f"{name}{'%' * (width - len(name))}{phone}$$"


def parse_record(text: str) -> tuple[str, str]:
    """Inverse of :func:`format_record`: returns ``(name, phone)``."""
    match = _RECORD_RE.match(text)
    if match is None:
        raise ValueError(f"not a directory record: {text!r}")
    return match.group("name"), match.group("phone")


def last_name_of(name: str) -> str:
    """The surname of a directory entry (phonebooks put it first)."""
    return name.split(" ", 1)[0]


def phone_to_rid(phone: str) -> int:
    """The paper indexes by telephone number; we use its digits."""
    digits = phone.replace("-", "")
    if not digits.isdigit():
        raise ValueError(f"malformed phone number {phone!r}")
    return int(digits)
