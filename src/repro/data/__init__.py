"""Data substrate: the synthetic San Francisco phone directory.

The paper evaluates on the SF White Pages (282,965 records of
``name / phone number``), which is proprietary and unavailable.  Per
DESIGN.md we substitute a deterministic synthetic generator whose name
pools are calibrated to the paper's reported statistics:

* the most frequent letters come out A, E, N, R, I, O (paper Table 1);
* the most frequent digrams include AN, ER, AR, ON, IN and the most
  frequent trigrams CHA, MAR, SON, ONG, ANG;
* a heavy share of (often short) Asian surnames — YU, OU, IP, BA, WU,
  LI, LE, WOO, KAY, KIM, LEE, SEE, MAI, LIM, MAK, LEW — which the
  paper identifies as the source of almost all false positives.

Records follow the paper's Figure 4 exactly:
``SURNAME GIVEN%%%…%%%415-409-XXXX$$`` with the phone number as RID.
"""

from repro.data.corpus import (
    NAME_FIELD_WIDTH,
    format_record,
    last_name_of,
    parse_record,
)
from repro.data.phonebook import Directory, PhonebookEntry, generate_directory

__all__ = [
    "Directory",
    "PhonebookEntry",
    "generate_directory",
    "format_record",
    "parse_record",
    "last_name_of",
    "NAME_FIELD_WIDTH",
]
