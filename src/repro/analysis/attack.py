"""A frequency-analysis attacker model.

"ECB allows (at least in principle) frequency analysis" — this module
makes the threat concrete so the defence stages can be scored.  The
attacker sits on one storage site, sees a stream of ECB-encrypted
(possibly Stage-2-encoded, possibly Stage-3-dispersed) chunks, and
knows the chunk-frequency distribution of the underlying language (the
paper's attacker has "insider knowledge of the underlying data").

The classic attack: rank ciphertext chunks by frequency, rank the
language model's chunks by frequency, and guess that rank matches
rank.  :func:`frequency_match_attack` scores how much of the stream
such an attacker decodes correctly.  Stage 2 flattens the frequency
profile, so rank matching degenerates toward guessing; the score drop
is the quantitative content of the paper's "redundancy removal works".
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Callable, Hashable, Sequence


@dataclass(frozen=True)
class AttackOutcome:
    """Result of a frequency-matching attack.

    * ``symbol_accuracy`` — fraction of stream positions decoded
      correctly (weighted by occurrence).
    * ``codebook_accuracy`` — fraction of distinct ciphertext chunks
      mapped to the right plaintext chunk (unweighted).
    * ``guesses`` — the recovered (ciphertext chunk -> plaintext chunk)
      mapping, for inspection.
    """

    symbol_accuracy: float
    codebook_accuracy: float
    guesses: dict[Hashable, Hashable]


def frequency_match_attack(
    ciphertext_stream: Sequence[Hashable],
    model_counts: Counter,
    truth: Callable[[Hashable], Hashable],
) -> AttackOutcome:
    """Rank-matching attack on a deterministic (ECB) chunk stream.

    ``ciphertext_stream`` is the attacker's view (any hashables —
    encrypted chunk values).  ``model_counts`` is the attacker's
    language model: plaintext chunk -> expected frequency.  ``truth``
    maps a ciphertext chunk to the plaintext chunk it really encodes
    (the experimenter's ground truth, used only for scoring).
    """
    if not ciphertext_stream:
        raise ValueError("empty ciphertext stream")
    cipher_counts = Counter(ciphertext_stream)
    # Deterministic tie-breaking: by count desc, then by repr for
    # reproducibility across runs.
    cipher_ranked = sorted(
        cipher_counts, key=lambda c: (-cipher_counts[c], repr(c))
    )
    model_ranked = sorted(
        model_counts, key=lambda p: (-model_counts[p], repr(p))
    )
    guesses: dict[Hashable, Hashable] = {}
    for cipher_chunk, plain_chunk in zip(cipher_ranked, model_ranked):
        guesses[cipher_chunk] = plain_chunk

    correct_positions = 0
    correct_codes = 0
    for cipher_chunk, count in cipher_counts.items():
        guessed = guesses.get(cipher_chunk)
        if guessed is not None and guessed == truth(cipher_chunk):
            correct_positions += count
            correct_codes += 1
    return AttackOutcome(
        symbol_accuracy=correct_positions / len(ciphertext_stream),
        codebook_accuracy=correct_codes / len(cipher_counts),
        guesses=guesses,
    )


def bigram_hillclimb_attack(
    cipher_records: Sequence[Sequence[Hashable]],
    model_unigrams: Counter,
    model_bigrams: Counter,
    truth: Callable[[Hashable], Hashable],
    iterations: int = 4000,
    restarts: int = 3,
    seed: int = 0,
) -> AttackOutcome:
    """A stronger attacker: substitution solving on bigram structure.

    The paper's Table 3 shows Stage 2 equalises unigrams but leaves
    doublet/triplet χ² large — "if the first chunk is 'SMIT', then
    chances are that the next chunk will start with an 'H'".  This
    attacker exploits exactly that residue: starting from the
    rank-matching guess, it hill-climbs over codebook permutations to
    maximise the bigram log-likelihood of the decodement under the
    language model (the classical substitution-cipher solver), with
    random restarts.

    ``cipher_records`` are per-record streams (bigrams never straddle
    records).  ``model_unigrams``/``model_bigrams`` are plaintext
    statistics; ``truth`` is the experimenter's ground-truth mapping
    used only for scoring.
    """
    import math
    import random as _random

    if not cipher_records or not any(cipher_records):
        raise ValueError("empty ciphertext corpus")
    cipher_stream = [c for record in cipher_records for c in record]
    cipher_unigrams = Counter(cipher_stream)
    cipher_bigrams: Counter = Counter()
    for record in cipher_records:
        for i in range(len(record) - 1):
            cipher_bigrams[(record[i], record[i + 1])] += 1

    plain_symbols = sorted(model_unigrams, key=lambda p:
                           (-model_unigrams[p], repr(p)))
    cipher_symbols = sorted(cipher_unigrams, key=lambda c:
                            (-cipher_unigrams[c], repr(c)))
    total_bigrams = sum(model_bigrams.values())
    vocabulary = max(len(plain_symbols), 2)
    floor = math.log(0.1 / (total_bigrams + vocabulary ** 2))
    log_prob = {
        pair: math.log(
            (count + 0.1) / (total_bigrams + vocabulary ** 2)
        )
        for pair, count in model_bigrams.items()
    }

    def score(assignment: dict) -> float:
        total = 0.0
        for (a, b), count in cipher_bigrams.items():
            pair = (assignment.get(a), assignment.get(b))
            total += count * log_prob.get(pair, floor)
        return total

    rng = _random.Random(seed)
    best_assignment: dict = {}
    best_score = -math.inf
    for restart in range(restarts):
        # Rank-matching start (jittered on restarts > 0).
        order = list(plain_symbols)
        if restart:
            for __ in range(5):
                i, j = rng.randrange(len(order)), rng.randrange(len(order))
                order[i], order[j] = order[j], order[i]
        assignment = dict(zip(cipher_symbols, order))
        current = score(assignment)
        keys = list(assignment)
        for __ in range(iterations):
            a, b = rng.sample(keys, 2)
            assignment[a], assignment[b] = assignment[b], assignment[a]
            candidate = score(assignment)
            if candidate >= current:
                current = candidate
            else:
                assignment[a], assignment[b] = (
                    assignment[b], assignment[a]
                )
        if current > best_score:
            best_score = current
            best_assignment = dict(assignment)

    correct_positions = correct_codes = 0
    for cipher_symbol, count in cipher_unigrams.items():
        guess = best_assignment.get(cipher_symbol)
        if guess is not None and guess == truth(cipher_symbol):
            correct_positions += count
            correct_codes += 1
    return AttackOutcome(
        symbol_accuracy=correct_positions / len(cipher_stream),
        codebook_accuracy=correct_codes / len(cipher_unigrams),
        guesses=best_assignment,
    )


def partial_chunk_attack(
    first_chunks: Sequence[Hashable],
    model_counts: Counter,
    truth: Callable[[Hashable], Hashable],
) -> AttackOutcome:
    """The paper's section-2.1 edge attack on padded boundary chunks.

    "A beginning chunk in the second chunked RC has the form
    (0,0,...,0,r0).  This can be recognized because there are at most
    as many encrypted first chunks as there are symbols and exploited
    through an elementary frequency attack."  Operationally identical
    to the general attack, but run on the first-chunk sub-stream whose
    effective alphabet is a single symbol — so it succeeds much more
    often.  Exposed separately so benches can score the boundary leak
    and the ``drop_partial_chunks`` counter-measure.
    """
    return frequency_match_attack(first_chunks, model_counts, truth)
