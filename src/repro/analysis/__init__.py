"""Analysis substrate: the paper's evaluation instruments.

* :mod:`repro.analysis.ngrams` — unigram/digram/trigram censuses over
  text or encoded byte streams.
* :mod:`repro.analysis.chisq` — χ² against the uniform distribution,
  the headline statistic of the paper's Tables 1-5.
* :mod:`repro.analysis.entropy` — Shannon entropy estimators (the
  paper's section 6 discusses bits-per-letter of English).
* :mod:`repro.analysis.randomness` — a NIST-SP-800-22-style battery
  (the paper cites Soto/NIST as the next evaluation step; we implement
  it).
* :mod:`repro.analysis.attack` — a frequency-analysis attacker model
  to quantify what "ECB is vulnerable to frequency analysis" means for
  each configuration.
"""

from repro.analysis.attack import (
    bigram_hillclimb_attack,
    frequency_match_attack,
    partial_chunk_attack,
)
from repro.analysis.chisq import (
    chi_square_p_value,
    chi_square_uniform,
    ngram_chi_square,
)
from repro.analysis.collusion import coalition_view, collusion_sweep
from repro.analysis.entropy import shannon_entropy
from repro.analysis.model import (
    code_distribution,
    collision_index,
    expected_fp_count,
)
from repro.analysis.ngrams import ngram_counts, top_ngrams
from repro.analysis.randomness import randomness_battery

__all__ = [
    "ngram_counts",
    "top_ngrams",
    "chi_square_uniform",
    "chi_square_p_value",
    "ngram_chi_square",
    "shannon_entropy",
    "randomness_battery",
    "frequency_match_attack",
    "bigram_hillclimb_attack",
    "partial_chunk_attack",
    "coalition_view",
    "collusion_sweep",
    "code_distribution",
    "collision_index",
    "expected_fp_count",
]
