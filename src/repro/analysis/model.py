"""Analytical false-positive model for encoded-substring search.

The paper measures false positives empirically (Tables 4/5).  This
module derives the *random-text baseline* those measurements should be
compared against: if record symbols were drawn independently from the
encoder's code distribution, a query of codes ``q_1..q_k`` would
spuriously match at a given offset with probability ``Π p(q_i)``, and
a record of ``m`` codes offers ``m − k + 1`` offsets.

Real directories are far from independent (names repeat — the paper's
"Yu"/"Woo" effect), so measured FPs exceed the baseline; the gap *is*
the interesting quantity: it isolates how much of the FP load comes
from corpus structure rather than from the encoder's lossiness.  On
shuffled (independence-restored) corpora the model is accurate, which
the tests verify.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.core.encoder import FrequencyEncoder


def code_distribution(encoder: FrequencyEncoder) -> list[float]:
    """Empirical probability of each code under the training corpus."""
    loads = encoder.bucket_loads()
    total = sum(loads)
    if total == 0:
        raise ValueError("encoder has no training mass")
    return [load / total for load in loads]


def collision_index(distribution: Sequence[float]) -> float:
    """Probability two independent symbols get the same code
    (Σ p_i²) — 1/n for a perfectly equalised encoder.

    This is the single-number summary of Stage-2 lossiness: the
    encoder's χ² and this index move together, and both trade against
    the false-positive rate.
    """
    return sum(p * p for p in distribution)


def spurious_match_probability(
    distribution: Sequence[float],
    query_codes: Sequence[int],
    record_codes: int,
) -> float:
    """P(query matches a random record of ``record_codes`` codes).

    Per-offset match probability is ``Π p(q_i)``; offsets are treated
    as independent (accurate for small probabilities, the regime the
    scheme operates in).
    """
    if not query_codes:
        raise ValueError("empty query")
    per_offset = 1.0
    for code in query_codes:
        per_offset *= distribution[code]
    offsets = record_codes - len(query_codes) + 1
    if offsets <= 0:
        return 0.0
    # 1 - (1 - p)^offsets, computed stably.
    return -math.expm1(offsets * math.log1p(-per_offset)) \
        if per_offset < 1.0 else 1.0


def expected_fp_count(
    encoder: FrequencyEncoder,
    queries: Sequence[bytes],
    record_lengths: Sequence[int],
) -> float:
    """Expected false positives for a symbol-encoding workload.

    ``queries`` are raw query strings (encoded internally);
    ``record_lengths`` the record sizes in symbols.  Mirrors the
    Table-4 FP1 experiment under the random-text assumption.
    """
    distribution = code_distribution(encoder)
    total = 0.0
    for query in queries:
        codes = list(encoder.encode_symbols(query))
        for length in record_lengths:
            total += spurious_match_probability(
                distribution, codes, length
            )
    return total


def minimum_query_codes(
    distribution: Sequence[float],
    record_codes: int,
    n_records: int,
    tolerated_fp: float = 1.0,
) -> int:
    """How many query codes keep expected FPs below ``tolerated_fp``.

    A planning helper: with per-symbol match probability ≈ the mean
    code probability, expected FPs fall geometrically with the query
    length; this returns the smallest length meeting the budget —
    the quantitative form of the paper's 'searches for short strings
    amount to almost all false positives'.
    """
    if tolerated_fp <= 0:
        raise ValueError("tolerated FP budget must be positive")
    mean_p = collision_index(distribution) ** 0.5
    for k in range(1, record_codes + 1):
        expected = n_records * max(record_codes - k + 1, 0) * mean_p ** k
        if expected <= tolerated_fp:
            return k
    return record_codes
