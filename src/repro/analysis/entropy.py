"""Shannon entropy estimators.

Section 6 of the paper reasons about the information content of index
records: "a letter in an English text contains between 2 and 3 bits of
information ... storing only 2 bits for each byte should be safe",
then qualifies that with Shannon's ~1-bit-per-letter result for
contextual prediction.  These estimators make those numbers measurable
on our corpora and on the scheme's encoded streams.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Sequence

from repro.analysis.ngrams import ngram_counts


def shannon_entropy(counts: Counter) -> float:
    """Entropy (bits/symbol) of the empirical distribution in ``counts``."""
    total = sum(counts.values())
    if total == 0:
        raise ValueError("empty census")
    entropy = 0.0
    for count in counts.values():
        p = count / total
        entropy -= p * math.log2(p)
    return entropy


def ngram_entropy(sequences: Iterable[Sequence], n: int) -> float:
    """Entropy of the n-gram distribution, in bits per n-gram."""
    return shannon_entropy(ngram_counts(sequences, n))


def conditional_entropy_rate(sequences: list[Sequence], n: int) -> float:
    """H(X_n | X_1..X_{n-1}) — the block-entropy estimate of the
    per-symbol entropy rate.

    This is Shannon's estimator: entropy of n-grams minus entropy of
    (n−1)-grams.  For n=1 it degenerates to the unigram entropy.  As n
    grows the estimate approaches the true rate (~1 bit/letter for
    English prose per Shannon 1951); names are less predictable.
    """
    if n < 1:
        raise ValueError("n must be positive")
    if n == 1:
        return ngram_entropy(sequences, 1)
    return ngram_entropy(sequences, n) - ngram_entropy(sequences, n - 1)


def redundancy(counts: Counter, alphabet: int) -> float:
    """Relative redundancy 1 − H/log2(alphabet) in [0, 1].

    Zero for a uniform stream; the higher it is, the more traction a
    frequency analysis of ECB ciphertext has.
    """
    if alphabet < 2:
        raise ValueError("alphabet must have at least 2 symbols")
    return 1.0 - shannon_entropy(counts) / math.log2(alphabet)
