"""Collusion analysis of Stage-3 dispersion.

The paper's own caveat (§1): "dispersion is vulnerable against
collusion among those storing index records.  However, in an SDDS
environment, collusion should be rather difficult since a node does
not have access to the data dispersion scheme and consequently cannot
easily determine the other nodes where a particular index record has
been dispersed."

This module quantifies the caveat: given a disperser and a plaintext
chunk-value stream, it reports what a coalition of ``c`` of the ``k``
dispersal sites can see — the joint piece-tuples — and how much
structure (χ² skew, distinct-value collapse, reconstructability)
returns as ``c`` grows.  At ``c = k`` the coalition holds an
invertible image of every chunk and the scheme degenerates to bare
ECB.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

from repro.analysis.chisq import chi_square_uniform
from repro.core.dispersion import Disperser


@dataclass(frozen=True)
class CollusionView:
    """What a specific coalition of dispersal sites observes."""

    sites: tuple[int, ...]
    #: χ² of the joint piece-tuples against uniform over their space.
    chi_square: float
    #: distinct joint values / stream length (1.0 = every chunk looks
    #: unique, i.e. nothing to frequency-analyse).
    distinct_ratio: float
    #: bits of the chunk determined by the coalition (rank of the
    #: selected matrix columns x piece width).
    known_bits: int
    #: True when the coalition can invert dispersal outright.
    full_reconstruction: bool


def coalition_view(
    disperser: Disperser,
    values: Sequence[int],
    sites: Sequence[int],
) -> CollusionView:
    """Analyse one coalition against a chunk-value stream."""
    sites = tuple(sorted(set(sites)))
    if not sites:
        raise ValueError("coalition must contain at least one site")
    if any(not 0 <= s < disperser.k for s in sites):
        raise ValueError(f"sites must lie in [0, {disperser.k})")
    if not values:
        raise ValueError("empty value stream")
    joint: Counter = Counter()
    for value in values:
        pieces = disperser.disperse(value)
        joint[tuple(pieces[s] for s in sites)] += 1
    space = disperser.field.order ** len(sites)
    chi = chi_square_uniform(joint, space)
    # Rank of the selected columns of E tells how many field symbols
    # of the chunk the coalition pins down.
    from repro.gf.matrix import Matrix
    columns = Matrix(
        disperser.field,
        [[disperser.matrix.rows[r][s] for s in sites]
         for r in range(disperser.k)],
    )
    rank = columns.rank()
    return CollusionView(
        sites=sites,
        chi_square=chi,
        distinct_ratio=len(joint) / len(values),
        known_bits=rank * disperser.piece_bits,
        full_reconstruction=rank == disperser.k,
    )


def collusion_sweep(
    disperser: Disperser,
    values: Sequence[int],
    max_coalitions_per_size: int = 6,
) -> list[CollusionView]:
    """Views for growing coalition sizes 1 .. k.

    For each size the (lexicographically first) few coalitions are
    analysed; Cauchy-style matrices make all same-size coalitions
    equivalent in rank, so a handful suffices.
    """
    views = []
    for size in range(1, disperser.k + 1):
        for sites in list(combinations(range(disperser.k), size))[
            :max_coalitions_per_size
        ]:
            views.append(coalition_view(disperser, values, sites))
    return views
