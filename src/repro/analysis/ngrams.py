"""n-gram censuses over record streams.

The paper's χ² tables count single letters, doublets and triplets
*within* each record (n-grams never straddle record boundaries — each
directory entry is analysed on its own).  Sequences may be ``str``
(raw name corpora) or ``bytes`` (encoded/dispersed index streams); the
n-gram keys are then length-n strings or bytes respectively.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence


def ngram_counts(
    sequences: Iterable[Sequence], n: int
) -> Counter:
    """Count n-grams within each sequence of ``sequences``.

    >>> ngram_counts(["ANNA"], 2)
    Counter({'AN': 1, 'NN': 1, 'NA': 1})
    """
    if n < 1:
        raise ValueError("n must be positive")
    counts: Counter = Counter()
    for sequence in sequences:
        limit = len(sequence) - n + 1
        for i in range(limit):
            counts[sequence[i:i + n]] += 1
    return counts


def top_ngrams(counts: Counter, k: int) -> list[tuple[str, float]]:
    """The ``k`` most frequent n-grams with their relative share.

    Returns ``(ngram, share)`` pairs, share in [0, 1], ordered by
    descending count — the format of the paper's Table 1/2 lower halves.
    """
    total = sum(counts.values())
    if total == 0:
        return []
    return [
        (_as_text(gram), count / total)
        for gram, count in counts.most_common(k)
    ]


def _as_text(gram) -> str:
    """Render an n-gram key readably (bytes keys become digit strings)."""
    if isinstance(gram, bytes):
        return "".join(str(b) for b in gram)
    return gram
