"""χ² against the uniform distribution.

The paper's central randomness statistic: for a census of N n-grams
over a category space of size C, the statistic is

    χ² = Σ_categories (O_c − N/C)² / (N/C)

summed over *all* C categories (absent categories contribute
(N/C)² / (N/C) = N/C each).  A perfectly uniform stream scores ≈ C−1;
the raw directory scores in the millions (paper Table 1).

The category-space convention (DESIGN.md §5): for raw text we take the
observed alphabet; for encoded streams the full code space ``2**t``
(n-grams: its n-fold product).  The paper leaves this implicit; the
convention is pinned here and exercised by the tests, and the *shape*
of all reproduced tables is insensitive to it because the encoded
streams the scheme cares about populate their whole code space.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Sequence

from repro.analysis.ngrams import ngram_counts


def chi_square_uniform(counts: Counter, categories: int) -> float:
    """χ² of ``counts`` against uniform over ``categories`` cells.

    ``categories`` must be at least the number of distinct observed
    keys; zero-count cells are accounted analytically rather than
    enumerated (the paper's chunk-size-6 sweep has 2^24 cells).
    """
    observed_cells = len(counts)
    if categories < observed_cells:
        raise ValueError(
            f"category space {categories} smaller than the "
            f"{observed_cells} observed categories"
        )
    total = sum(counts.values())
    if total == 0:
        raise ValueError("empty census")
    expected = total / categories
    chi = sum((count - expected) ** 2 for count in counts.values()) / expected
    chi += (categories - observed_cells) * expected
    return chi


def alphabet_size(counts: Counter) -> int:
    """Observed-alphabet category count for raw-text censuses."""
    return len(counts)


def chi_square_p_value(chi: float, categories: int) -> float:
    """P(X² >= chi) under H0: uniform, with ``categories - 1`` degrees
    of freedom.

    The paper reports raw χ² values; the p-value expresses the same
    content on a fixed [0, 1] scale (≈ 0 means "definitely not
    uniform", the regime all of the paper's Tables 1-3 live in).
    """
    from repro.analysis.randomness import regularized_gamma_q

    if categories < 2:
        raise ValueError("need at least 2 categories")
    if chi < 0:
        raise ValueError("chi-square statistic cannot be negative")
    df = categories - 1
    return regularized_gamma_q(df / 2, chi / 2)


def ngram_chi_square(
    sequences: Iterable[Sequence],
    n: int,
    symbol_space: int | None = None,
) -> tuple[float, Counter]:
    """Census ``sequences`` for n-grams and compute χ².

    With ``symbol_space`` given, the category space is
    ``symbol_space ** n`` (encoded streams over a known code space);
    otherwise the observed *unigram* alphabet is derived from the data
    and its n-th power used (raw text).  Returns ``(chi², census)``.
    """
    if symbol_space is None:
        materialised = list(sequences)
        counts = ngram_counts(materialised, n)
        alphabet = len(ngram_counts(materialised, 1)) if n > 1 else len(counts)
        categories = alphabet ** n
    else:
        counts = ngram_counts(sequences, n)
        categories = symbol_space ** n
    return chi_square_uniform(counts, categories), counts
