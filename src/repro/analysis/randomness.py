"""A NIST-SP-800-22-style randomness battery.

The paper's section 6: "Ideally, the contents of the dispersed,
chunked, and preprocessed index records are indistinguishable from
random bits", citing Knuth and the NIST/Soto AES-selection test work,
and section 8 announces "we are starting to use the work of Soto to
evaluate closeness to randomness in a better manner".  This module
implements that announced next step: seven of the SP-800-22 tests,
operating on a bit stream, each returning a p-value (null hypothesis:
the stream is random; conventionally reject below 0.01).

Implemented tests:

* monobit frequency
* block frequency
* runs
* longest run of ones in a block
* serial (two-bit patterns, ∇ψ² variant)
* approximate entropy
* cumulative sums (forward)

Pure math module — no dependency on the rest of the package — so it
can grade any byte stream the pipeline produces.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass


def bits_of(data: bytes) -> list[int]:
    """Unpack bytes into a bit list, most significant bit first."""
    bits = []
    for byte in data:
        for shift in range(7, -1, -1):
            bits.append((byte >> shift) & 1)
    return bits


def regularized_gamma_q(a: float, x: float) -> float:
    """Upper regularised incomplete gamma Q(a, x).

    Small continued-fraction/series implementation (Numerical Recipes
    style) so the battery has no scipy dependency.  Also the basis of
    χ² p-values: P(X² >= chi | df) = Q(df/2, chi/2).
    """
    if x < 0 or a <= 0:
        raise ValueError("invalid igamc arguments")
    if x == 0:
        return 1.0
    if x < a + 1:
        # Series for P(a,x), return 1 - P.
        term = 1.0 / a
        total = term
        n = a
        for __ in range(500):
            n += 1
            term *= x / n
            total += term
            if abs(term) < abs(total) * 1e-15:
                break
        p = total * math.exp(-x + a * math.log(x) - math.lgamma(a))
        return max(0.0, 1.0 - p)
    # Continued fraction for Q(a,x).
    tiny = 1e-300
    b = x + 1.0 - a
    c = 1.0 / tiny
    d = 1.0 / b
    h = d
    for i in range(1, 500):
        an = -i * (i - a)
        b += 2.0
        d = an * d + b
        if abs(d) < tiny:
            d = tiny
        c = b + an / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            break
    return h * math.exp(-x + a * math.log(x) - math.lgamma(a))


@dataclass(frozen=True)
class TestResult:
    name: str
    p_value: float
    passed: bool


def monobit_test(bits: list[int]) -> TestResult:
    n = len(bits)
    s = abs(sum(2 * b - 1 for b in bits))
    p = math.erfc(s / math.sqrt(2 * n))
    return TestResult("monobit", p, p >= 0.01)


def block_frequency_test(bits: list[int], block_size: int = 128) -> TestResult:
    n = len(bits)
    blocks = n // block_size
    if blocks < 1:
        raise ValueError("stream too short for block frequency test")
    chi = 0.0
    for i in range(blocks):
        block = bits[i * block_size:(i + 1) * block_size]
        pi = sum(block) / block_size
        chi += (pi - 0.5) ** 2
    chi *= 4 * block_size
    p = regularized_gamma_q(blocks / 2, chi / 2)
    return TestResult("block_frequency", p, p >= 0.01)


def runs_test(bits: list[int]) -> TestResult:
    n = len(bits)
    pi = sum(bits) / n
    if abs(pi - 0.5) >= 2 / math.sqrt(n):
        # Prerequisite (monobit) already fails decisively.
        return TestResult("runs", 0.0, False)
    runs = 1 + sum(1 for i in range(n - 1) if bits[i] != bits[i + 1])
    num = abs(runs - 2 * n * pi * (1 - pi))
    den = 2 * math.sqrt(2 * n) * pi * (1 - pi)
    p = math.erfc(num / den)
    return TestResult("runs", p, p >= 0.01)


_LONGEST_RUN_TABLES = {
    # block size: (K classes upper bounds, probabilities) per SP-800-22.
    8: ((1, 2, 3, 4), (0.2148, 0.3672, 0.2305, 0.1875)),
    128: (
        (4, 5, 6, 7, 8, 9),
        (0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124),
    ),
}


def longest_run_test(bits: list[int]) -> TestResult:
    n = len(bits)
    block_size = 128 if n >= 128 * 49 else 8
    bounds, probabilities = _LONGEST_RUN_TABLES[block_size]
    blocks = n // block_size
    if blocks < 8:
        raise ValueError("stream too short for longest-run test")
    observed = [0] * len(bounds)
    for i in range(blocks):
        block = bits[i * block_size:(i + 1) * block_size]
        longest = run = 0
        for bit in block:
            run = run + 1 if bit else 0
            longest = max(longest, run)
        clamped = min(max(longest, bounds[0]), bounds[-1])
        observed[clamped - bounds[0]] += 1
    chi = sum(
        (observed[j] - blocks * probabilities[j]) ** 2
        / (blocks * probabilities[j])
        for j in range(len(bounds))
    )
    p = regularized_gamma_q((len(bounds) - 1) / 2, chi / 2)
    return TestResult("longest_run", p, p >= 0.01)


def _psi_squared(bits: list[int], m: int) -> float:
    if m == 0:
        return 0.0
    n = len(bits)
    extended = bits + bits[:m - 1]
    counts: Counter = Counter()
    for i in range(n):
        pattern = tuple(extended[i:i + m])
        counts[pattern] += 1
    return (2 ** m / n) * sum(c * c for c in counts.values()) - n


def serial_test(bits: list[int], m: int = 3) -> TestResult:
    psi_m = _psi_squared(bits, m)
    psi_m1 = _psi_squared(bits, m - 1)
    psi_m2 = _psi_squared(bits, m - 2)
    delta1 = psi_m - psi_m1
    delta2 = psi_m - 2 * psi_m1 + psi_m2
    p1 = regularized_gamma_q(2 ** (m - 2), delta1 / 2)
    p2 = regularized_gamma_q(2 ** (m - 3), delta2 / 2)
    p = min(p1, p2)
    return TestResult("serial", p, p >= 0.01)


def approximate_entropy_test(bits: list[int], m: int = 2) -> TestResult:
    n = len(bits)

    def phi(block: int) -> float:
        if block == 0:
            return 0.0
        extended = bits + bits[:block - 1]
        counts: Counter = Counter()
        for i in range(n):
            counts[tuple(extended[i:i + block])] += 1
        return sum(
            (c / n) * math.log(c / n) for c in counts.values()
        )

    ap_en = phi(m) - phi(m + 1)
    chi = 2 * n * (math.log(2) - ap_en)
    p = regularized_gamma_q(2 ** (m - 1), chi / 2)
    return TestResult("approximate_entropy", p, p >= 0.01)


def cumulative_sums_test(bits: list[int]) -> TestResult:
    n = len(bits)
    partial = 0
    z = 0
    for bit in bits:
        partial += 2 * bit - 1
        z = max(z, abs(partial))
    if z == 0:
        return TestResult("cumulative_sums", 0.0, False)
    total = 0.0
    sqrt_n = math.sqrt(n)

    def phi_cdf(x: float) -> float:
        return 0.5 * math.erfc(-x / math.sqrt(2))

    for k in range((-n // z + 1) // 4, (n // z - 1) // 4 + 1):
        total += (
            phi_cdf((4 * k + 1) * z / sqrt_n)
            - phi_cdf((4 * k - 1) * z / sqrt_n)
        )
    for k in range((-n // z - 3) // 4, (n // z - 1) // 4 + 1):
        total -= (
            phi_cdf((4 * k + 3) * z / sqrt_n)
            - phi_cdf((4 * k + 1) * z / sqrt_n)
        )
    p = 1.0 - total
    p = min(max(p, 0.0), 1.0)
    return TestResult("cumulative_sums", p, p >= 0.01)


def randomness_battery(data: bytes, serial_m: int = 3) -> list[TestResult]:
    """Run the full battery on a byte stream.

    Requires at least 256 bytes for the block-structured tests to be
    meaningful; raises ValueError below that.
    """
    if len(data) < 256:
        raise ValueError("randomness battery needs at least 256 bytes")
    bits = bits_of(data)
    return [
        monobit_test(bits),
        block_frequency_test(bits),
        runs_test(bits),
        longest_run_test(bits),
        serial_test(bits, serial_m),
        approximate_entropy_test(bits),
        cumulative_sums_test(bits),
    ]
