"""Fused index-codec kernels: the batched encode→encrypt→disperse→pack
fast path.

The per-record index pipeline of :mod:`repro.core.index` composes four
pure stages — Stage-2 encoding, the Stage-1 Feistel PRP, Stage-3
dispersion and fixed-width packing.  For the chunk domains the paper
actually uses (Stage-2 codes and raw chunks of at most
:data:`MAX_FUSED_BITS` bits) every stage after encoding is a pure
function of the chunk *value*, so the whole composition collapses into
one precomputed table per (key, parameters) pair:

``value -> (site-0 packed bytes, …, site-k-1 packed bytes)``

A :class:`FusedCodec` holds that table in the representation best
suited to the piece width:

* 1-byte pieces over a <=256-value domain: one 256-byte
  ``bytes.translate`` table per site — a whole record's stream is one
  C-level ``translate`` call per site;
* 1-byte pieces over wider domains: one ``bytes`` row of length
  ``domain`` per site, streamed with ``bytes(map(row.__getitem__, …))``;
* 2-byte pieces: per-site value rows streamed through an ``array``
  with a single byte swap.

Every representation is byte-identical to the reference path
(:meth:`repro.core.index.IndexPipeline` with ``fast_path=False``) —
the equivalence suite in ``tests/core/test_kernels.py`` pins this
across the parameter grid, so wire costs and the paper's tables are
untouched by the optimisation.

Codecs are cached process-wide in a keyed registry
(:func:`fused_codec`) so every pipeline instance over the same keys
and parameters — repeated benchmark stores, the rekey twin, chaos
episodes — shares one table.  The registry exports hit/miss/build
metrics through :mod:`repro.obs.metrics` (``kernels.codec.*``).

>>> from repro.crypto.feistel import FeistelPRP
>>> prp = FeistelPRP(b"k" * 16, domain_size=64)
>>> codec = fused_codec(prp=prp, disperser=None, piece_width=1,
...                     domain=64)
>>> codec.site_streams([1, 2, 3]) == [bytes(
...     prp.encrypt(v) for v in (1, 2, 3))]
True
"""

from __future__ import annotations

import hashlib
import os
import struct
import sys
import time
from array import array
from collections import OrderedDict
from pathlib import Path

from repro.core.dispersion import Disperser
from repro.crypto.feistel import FeistelPRP
from repro.obs.metrics import inc as metric_inc
from repro.obs.metrics import observe as metric_observe
from repro.obs.metrics import set_gauge as metric_set_gauge

#: Largest chunk-value domain (in bits) the fused tables cover.  The
#: paper's configurations sit at or below 16 bits (Stage-2 codes are
#: at most 16 bits; raw ``s·f`` chunks beyond 16 bits fall back to the
#: reference path).  Kept separate from the Feistel table bound so the
#: two can be tuned independently.
MAX_FUSED_BITS = 16

#: Registry capacity: distinct (key, parameter) codecs kept alive.
#: Each codec costs at most ``k · 2**MAX_FUSED_BITS`` table slots
#: (~64 KiB–1 MiB); 64 of them bound worst-case residency at a few
#: tens of megabytes while covering every realistic deployment (one
#: codec per chunking group per store).
CACHE_CAPACITY = 64


class FusedCodec:
    """One fused ``chunk value -> per-site packed bytes`` table.

    Instances are built by :func:`fused_codec`; they assume their
    inputs are in-range chunk values (the pipeline produces them by
    construction — Stage-2 codes are ``< n_codes``, raw packings are
    ``< 2**chunk_bits``).  Out-of-range values raise ``IndexError``
    rather than corrupting output silently.
    """

    __slots__ = ("domain", "sites", "piece_width", "_translate", "_rows")

    def __init__(
        self,
        domain: int,
        sites: int,
        piece_width: int,
        pieces: list[tuple[int, ...]],
    ) -> None:
        self.domain = domain
        self.sites = sites
        self.piece_width = piece_width
        self._translate: list[bytes] | None = None
        self._rows: list[bytes] | list[list[int]] | None = None
        if piece_width == 1 and domain <= 256:
            # bytes.translate tables must be exactly 256 entries; the
            # slots beyond the domain are unreachable by construction.
            self._translate = [
                bytes(
                    pieces[value][site] if value < domain else 0
                    for value in range(256)
                )
                for site in range(sites)
            ]
        elif piece_width == 1:
            self._rows = [
                bytes(pieces[value][site] for value in range(domain))
                for site in range(sites)
            ]
        else:
            self._rows = [
                [pieces[value][site] for value in range(domain)]
                for site in range(sites)
            ]

    def site_streams(self, values: list[int]) -> list[bytes]:
        """The per-site packed index streams of one chunk-value list."""
        if self._translate is not None:
            packed = bytes(values)
            return [packed.translate(table) for table in self._translate]
        rows = self._rows
        if self.piece_width == 1:
            return [
                bytes(map(row.__getitem__, values)) for row in rows
            ]
        streams = []
        for row in rows:
            packed = array("H", [row[value] for value in values])
            if sys.byteorder == "little":
                packed.byteswap()
            streams.append(packed.tobytes())
        return streams

    def translate_table(self, site: int) -> bytes | None:
        """The site's 256-entry ``bytes.translate`` table, when this
        codec uses the translate representation (one-byte pieces over
        a domain of at most 256 values); ``None`` otherwise.  Lets
        byte-stream pipelines (the compressed index's code-level ECB)
        reuse the shared codec registry for bulk encode+encrypt."""
        if self._translate is None:
            return None
        return self._translate[site]

    def table_bytes(self) -> int:
        """Approximate table residency in bytes (memory envelope)."""
        if self._translate is not None:
            return 256 * self.sites
        if self.piece_width == 1:
            return self.domain * self.sites
        # list-of-int rows: count the slot, not the int objects
        # (values <= 65535 are mostly shared small-int-adjacent).
        return 8 * self.domain * self.sites


def _codec_key(
    prp: FeistelPRP | None,
    disperser: Disperser | None,
    piece_width: int,
    domain: int,
) -> tuple:
    """Registry key: everything the table is a function of.

    Distinct PRP keys, round counts, dispersal matrices or widths can
    never share a table — the cache-keying tests pin this.
    """
    prp_part = (
        None if prp is None
        else (prp.key, prp.domain_size, prp.rounds)
    )
    disp_part = (
        None if disperser is None
        else (disperser.k, disperser.piece_bits, disperser.matrix.rows)
    )
    return (prp_part, disp_part, piece_width, domain)


_REGISTRY: OrderedDict[tuple, FusedCodec] = OrderedDict()


# ---------------------------------------------------------------------------
# disk persistence
# ---------------------------------------------------------------------------

#: Environment variable naming the on-disk codec cache directory.
#: When set (the live serving tier's :class:`~repro.net.live.LiveCluster`
#: exports it to every bucket process), built tables are persisted and
#: later processes load them instead of re-running the Feistel PRP over
#: the whole chunk domain — the dominant cold-start cost.
CODEC_CACHE_ENV = "REPRO_CODEC_CACHE_DIR"

#: On-disk format version; bumped on any layout change so stale files
#: miss cleanly instead of decoding garbage.
DISK_FORMAT_VERSION = 1

_DISK_MAGIC = b"RPCC"
_DISK_HEADER = struct.Struct(">4sBBHI")

_cache_dir_override: Path | None = None


def set_codec_cache_dir(path: str | os.PathLike | None) -> None:
    """Set (or, with ``None``, clear) an explicit cache directory,
    overriding :data:`CODEC_CACHE_ENV`."""
    global _cache_dir_override
    _cache_dir_override = Path(path) if path is not None else None


def codec_cache_dir() -> Path | None:
    """The active on-disk cache directory, or ``None`` (cache off)."""
    if _cache_dir_override is not None:
        return _cache_dir_override
    env = os.environ.get(CODEC_CACHE_ENV)
    return Path(env) if env else None


def _disk_name(key: tuple) -> str:
    """Stable file name of one codec key.

    The key tuple contains only ints, bytes, ``None`` and nested
    tuples (see :func:`_codec_key`), whose ``repr`` is deterministic
    across processes and runs — hashing it gives a collision-safe,
    invalidation-correct name: any change to the PRP key, round count,
    dispersal parameters, piece width or domain changes the digest.
    """
    digest = hashlib.sha256(repr(key).encode("utf-8")).hexdigest()
    return f"codec-v{DISK_FORMAT_VERSION}-{digest}.bin"


def _save_codec_table(
    path: Path,
    domain: int,
    sites: int,
    piece_width: int,
    pieces: list[tuple[int, ...]],
) -> None:
    """Persist one fused table atomically (write-temp + rename).

    Layout: ``RPCC | version u8 | piece_width u8 | sites u16 |
    domain u32`` followed by ``domain * sites`` big-endian u16 piece
    values in value-major order.  Pieces are at most 16 bits by
    construction (:data:`MAX_FUSED_BITS`).
    """
    header = _DISK_HEADER.pack(
        _DISK_MAGIC, DISK_FORMAT_VERSION, piece_width, sites, domain
    )
    body = array("H", [
        piece for row in pieces for piece in row
    ])
    if sys.byteorder == "little":
        body.byteswap()
    tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
    tmp.write_bytes(header + body.tobytes())
    os.replace(tmp, path)


def _load_codec_table(
    path: Path, domain: int, sites: int, piece_width: int
) -> FusedCodec | None:
    """Load one persisted table; ``None`` on any mismatch or damage
    (the caller rebuilds — corruption can cost time, never bytes)."""
    try:
        blob = path.read_bytes()
    except OSError:
        return None
    if len(blob) < _DISK_HEADER.size:
        return None
    magic, version, width, file_sites, file_domain = (
        _DISK_HEADER.unpack_from(blob)
    )
    if (magic != _DISK_MAGIC or version != DISK_FORMAT_VERSION
            or width != piece_width or file_sites != sites
            or file_domain != domain):
        return None
    expected = _DISK_HEADER.size + 2 * domain * sites
    if len(blob) != expected:
        return None
    body = array("H")
    body.frombytes(blob[_DISK_HEADER.size:])
    if sys.byteorder == "little":
        body.byteswap()
    pieces = [
        tuple(body[value * sites:(value + 1) * sites])
        for value in range(domain)
    ]
    return FusedCodec(domain, sites, piece_width, pieces)


def _disk_fetch(
    key: tuple, domain: int, sites: int, piece_width: int
) -> FusedCodec | None:
    directory = codec_cache_dir()
    if directory is None:
        return None
    codec = _load_codec_table(
        directory / _disk_name(key), domain, sites, piece_width
    )
    if codec is not None:
        metric_inc("kernels.codec.disk_hit")
    else:
        metric_inc("kernels.codec.disk_miss")
    return codec


def _disk_store(
    key: tuple,
    domain: int,
    sites: int,
    piece_width: int,
    pieces: list[tuple[int, ...]],
) -> None:
    directory = codec_cache_dir()
    if directory is None:
        return
    try:
        directory.mkdir(parents=True, exist_ok=True)
        _save_codec_table(
            directory / _disk_name(key), domain, sites, piece_width,
            pieces,
        )
    except OSError:
        # Persistence is best-effort: a read-only or full disk costs
        # the next process a rebuild, nothing else.
        return
    metric_inc("kernels.codec.disk_write")


def fused_codec(
    prp: FeistelPRP | None,
    disperser: Disperser | None,
    piece_width: int,
    domain: int,
    max_bits: int = MAX_FUSED_BITS,
) -> FusedCodec | None:
    """Build (or fetch from the registry) the fused codec for one
    chunking's parameters, or None when the domain exceeds the fused
    bound and the caller must use the reference path.

    ``prp=None`` fuses an identity Stage 1 (``encrypt=False``);
    ``disperser=None`` fuses an identity Stage 3 (``k=1``), leaving
    just PRP + packing.
    """
    if domain > (1 << max_bits):
        return None
    if disperser is not None and disperser.dispersal_table() is None:
        return None
    key = _codec_key(prp, disperser, piece_width, domain)
    codec = _REGISTRY.get(key)
    if codec is not None:
        _REGISTRY.move_to_end(key)
        metric_inc("kernels.codec.hit")
        return codec
    metric_inc("kernels.codec.miss")
    sites = disperser.k if disperser is not None else 1
    codec = _disk_fetch(key, domain, sites, piece_width)
    if codec is None:
        started = time.perf_counter()
        if prp is not None:
            encrypted = prp.permutation_table()
            if encrypted is None:  # domain within max_bits always
                encrypted = [
                    prp.encrypt(value) for value in range(domain)
                ]
        else:
            encrypted = range(domain)
        if disperser is not None:
            table = disperser.dispersal_table()
            pieces = [table[image] for image in encrypted]
        else:
            pieces = [(image,) for image in encrypted]
        codec = FusedCodec(domain, sites, piece_width, pieces)
        metric_observe(
            "kernels.codec.build_seconds",
            time.perf_counter() - started,
        )
        _disk_store(key, domain, sites, piece_width, pieces)
    _REGISTRY[key] = codec
    while len(_REGISTRY) > CACHE_CAPACITY:
        _REGISTRY.popitem(last=False)
    metric_set_gauge("kernels.codec.cached", len(_REGISTRY))
    return codec


def codec_cache_size() -> int:
    """Number of codecs currently resident in the registry."""
    return len(_REGISTRY)


def clear_codec_cache() -> None:
    """Drop every cached codec (tests and memory-pressure hooks)."""
    _REGISTRY.clear()


# ---------------------------------------------------------------------------
# scan-automaton registry
# ---------------------------------------------------------------------------

#: Compiled multi-needle scan automata kept alive
#: (:mod:`repro.core.automaton`).  An automaton holds needle routing
#: tables, not haystack data, so entries are small (a few hundred
#: bytes each); the capacity mainly bounds churn between many distinct
#: batched query shapes.
AUTOMATON_CACHE_CAPACITY = 256

_AUTOMATA: OrderedDict[tuple, object] = OrderedDict()


def scan_automaton(key: tuple, build) -> object:
    """Fetch (or build and register) one compiled scan automaton.

    Mirrors :func:`fused_codec`'s registry discipline — LRU with
    ``move_to_end`` on hit, capacity eviction, and
    ``kernels.automaton.hit`` / ``miss`` / ``build_seconds`` /
    ``cached`` metrics — so ``python -m repro.obs.report`` can census
    it next to the codec and plan caches.  ``key`` must be hashable
    and fully determine ``build``'s output (needle sets, widths and
    thresholds — see :func:`repro.core.automaton.plans_automaton`).
    """
    automaton = _AUTOMATA.get(key)
    if automaton is not None:
        _AUTOMATA.move_to_end(key)
        metric_inc("kernels.automaton.hit")
        return automaton
    metric_inc("kernels.automaton.miss")
    started = time.perf_counter()
    automaton = build()
    metric_observe(
        "kernels.automaton.build_seconds",
        time.perf_counter() - started,
    )
    _AUTOMATA[key] = automaton
    while len(_AUTOMATA) > AUTOMATON_CACHE_CAPACITY:
        _AUTOMATA.popitem(last=False)
    metric_set_gauge("kernels.automaton.cached", len(_AUTOMATA))
    return automaton


def automaton_cache_size() -> int:
    """Number of compiled automata currently resident."""
    return len(_AUTOMATA)


def clear_automaton_cache() -> None:
    """Drop every cached automaton (tests and memory-pressure hooks)."""
    _AUTOMATA.clear()
    metric_set_gauge("kernels.codec.cached", 0)
