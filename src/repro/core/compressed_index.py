"""Compression-based index store: the third index design of §8.

The paper's closing section proposes "searchable compression as a main
means of redundancy removal".  This store realises that design end to
end, as a sibling of the chunk scheme (§5) and the SWP word store:

* records are strongly encrypted in the record store as usual;
* the index record of a document is its :class:`PairCompressor`
  stream with every code passed through a keyed PRP — code-level ECB,
  so equal codes stay equal and the compressor's edge-variant search
  still works on ciphertext;
* a query ships the PRP images of its (up to four) encoded edge
  variants; sites match them as plain subsequences.

Compared with the chunk scheme: **one** index record per document
(storage *below* the record size instead of a multiple of it), no
minimum query length beyond what the variants require, but coarser
leakage — the code stream preserves the document's compressed length
and local repetition at code granularity, and there is no dispersion
stage.  ``benchmarks/bench_index_designs.py`` measures the triangle.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.automaton import needles_automaton
from repro.core.compression import PairCompressor
from repro.core.errors import ConfigurationError
from repro.core.kernels import fused_codec
from repro.crypto.feistel import FeistelPRP
from repro.crypto.keys import KeyHierarchy
from repro.crypto.modes import CtrCipher
from repro.net.simulator import Network
from repro.net.stats import NetworkStats
from repro.sdds.haystack import BucketHaystack
from repro.sdds.lhstar import LHStarFile
from repro.sdds.records import Record


class CompressedScanMatcher:
    """Scan matcher for one set of encrypted edge-variant needles.

    Per-record calls are the reference path (plain ``in`` membership,
    also what degraded parity scans use); :meth:`match_bucket` runs
    each needle once over the bucket haystack, resuming after a
    record's first hit at the record's end — the same early exit.
    With ``automaton`` on, membership lookups route through the
    multi-needle gram index when its thresholds say the single sweep
    wins (:mod:`repro.core.automaton`); candidate sets are identical
    either way.
    """

    def __init__(self, needles: tuple[bytes, ...],
                 batched: bool = True,
                 automaton: bool = True) -> None:
        self.needles = needles
        self.automaton = automaton
        if not batched:
            self.match_bucket = None  # type: ignore[assignment]

    def scan_key(self) -> tuple:
        """Value identity for the bucket scan memo."""
        return ("csi", self.needles, self.match_bucket is None,
                self.automaton)

    def __call__(self, record: Record):
        if any(needle in record.content for needle in self.needles):
            return record.rid
        return None

    def match_bucket(self, haystack: BucketHaystack):
        compiled = (
            needles_automaton(self.needles) if self.automaton else None
        )
        matched = set()
        for needle in self.needles:
            if compiled is not None:
                matched.update(compiled.lookup_records(haystack, needle))
            else:
                matched.update(haystack.find_records(needle))
        return [rid for rid in haystack.rids if rid in matched]


class MultiCompressedScanMatcher:
    """Scan matcher multiplexing several compressed-index queries in
    one round (:meth:`CompressedSearchStore.search_batch`).

    ``needle_groups[index]`` is pattern ``index``'s encrypted
    edge-variant tuple.  Hits are ``(rid, (pattern indexes...))`` in
    record order, the per-record and per-bucket forms byte-identical —
    and with ``automaton`` on, all groups' needles share each bucket's
    gram index, so the haystack is swept once for the whole batch.
    """

    def __init__(self, needle_groups: tuple[tuple[bytes, ...], ...],
                 batched: bool = True,
                 automaton: bool = True) -> None:
        self.needle_groups = needle_groups
        self.automaton = automaton
        if not batched:
            self.match_bucket = None  # type: ignore[assignment]

    def scan_key(self) -> tuple:
        """Value identity for the bucket scan memo."""
        return ("multi-csi", self.needle_groups,
                self.match_bucket is None, self.automaton)

    def __call__(self, record: Record):
        indexes = tuple(
            index
            for index, needles in enumerate(self.needle_groups)
            if any(needle in record.content for needle in needles)
        )
        if not indexes:
            return None
        return (record.rid, indexes)

    def match_bucket(self, haystack: BucketHaystack):
        flat = tuple(
            needle
            for needles in self.needle_groups
            for needle in needles
        )
        compiled = needles_automaton(flat) if self.automaton else None
        per_group: list[set[int]] = []
        for needles in self.needle_groups:
            matched: set[int] = set()
            for needle in needles:
                if compiled is not None:
                    matched.update(
                        compiled.lookup_records(haystack, needle)
                    )
                else:
                    matched.update(haystack.find_records(needle))
            per_group.append(matched)
        hits = []
        for rid in haystack.rids:
            indexes = tuple(
                index
                for index, matched in enumerate(per_group)
                if rid in matched
            )
            if indexes:
                hits.append((rid, indexes))
        return hits


@dataclass(frozen=True)
class CompressedSearchResult:
    """Outcome of one search against the compressed index."""

    pattern: str
    candidates: frozenset[int]
    matches: frozenset[int]
    false_positives: frozenset[int]
    cost: NetworkStats


class CompressedSearchStore:
    """Record store + PRP-encrypted compressed index over LH* files.

    >>> corpus = [b"SCHWARZ THOMAS", b"LITWIN WITOLD"]
    >>> store = CompressedSearchStore(b"key", corpus)
    >>> store.put(1, "SCHWARZ THOMAS")
    >>> 1 in store.search("CHWAR").matches
    True
    """

    def __init__(
        self,
        master_key: bytes,
        training_corpus: list[bytes],
        max_pairs: int = 64,
        lossy_codes: int | None = None,
        network: Network | None = None,
        bucket_capacity: int = 128,
        name: str = "csi",
        fast_path: bool = True,
        automaton: bool = True,
    ) -> None:
        # ``automaton=False`` pins batched scans to per-needle sweeps
        # (equivalence ladder middle rung; see repro.core.automaton).
        self.automaton = automaton
        self.compressor = PairCompressor.train(
            training_corpus, max_pairs=max_pairs, lossy_codes=lossy_codes
        )
        if self.compressor.code_width != 1:
            raise ConfigurationError(
                "compressed index currently supports one-byte code "
                "spaces (up to 256 codes); lower max_pairs or use "
                "lossy_codes"
            )
        self.network = network or Network()
        keys = KeyHierarchy(master_key)
        self._keys = keys
        self._record_cipher = CtrCipher(keys.record_store_key())
        # Code-level ECB: a PRP over the byte code space keeps stream
        # positions byte-for-byte substitutable.  The fast path routes
        # the code map through the shared fused-codec registry (one
        # ``bytes.translate`` table per PRP key, cached across stores);
        # ``fast_path=False`` pins the reference per-code PRP loop and
        # per-record bucket scans for the equivalence suite.
        self.fast_path = fast_path
        self._prp = FeistelPRP(keys.subkey("compressed-index"), 256)
        self._code_map: bytes | None = None
        if fast_path:
            codec = fused_codec(prp=self._prp, disperser=None,
                                piece_width=1, domain=256)
            if codec is not None:
                self._code_map = codec.translate_table(0)
        self.record_file = LHStarFile(
            name=f"{name}-store", network=self.network,
            bucket_capacity=bucket_capacity,
        )
        self.index_file = LHStarFile(
            name=f"{name}-index", network=self.network,
            bucket_capacity=bucket_capacity,
        )
        self._rids: set[int] = set()

    # -- data plane --------------------------------------------------------------

    def _encrypt_stream(self, stream: bytes) -> bytes:
        if self._code_map is not None:
            return stream.translate(self._code_map)
        encrypt = self._prp.encrypt
        return bytes(encrypt(code) for code in stream)

    def put(self, rid: int, text: str) -> None:
        """Store the strong copy plus the encrypted code stream.

        Overwrite semantics: a ``put`` on an already-present rid is an
        in-place replacement — both LH* inserts land on the same keys,
        so the old ciphertext and the old index stream are replaced
        wholesale (and the owning bucket drops its scan haystack);
        retired content must never match again.
        """
        content = text.encode("ascii")
        self.record_file.insert(
            rid,
            self._record_cipher.encrypt(
                content, self._keys.record_nonce(rid)
            ),
        )
        stream = self.compressor.encode(content)
        self.index_file.insert(rid, self._encrypt_stream(stream))
        self._rids.add(rid)

    def get(self, rid: int) -> str | None:
        ciphertext = self.record_file.lookup(rid)
        if ciphertext is None:
            return None
        return self._record_cipher.decrypt(
            ciphertext, self._keys.record_nonce(rid)
        ).decode("ascii")

    def delete(self, rid: int) -> bool:
        removed = self.record_file.delete(rid)
        if removed:
            self.index_file.delete(rid)
            self._rids.discard(rid)
        return removed

    def __len__(self) -> int:
        return len(self._rids)

    # -- search ---------------------------------------------------------------------

    def search(self, pattern: str, verify: bool = True
               ) -> CompressedSearchResult:
        """One-round parallel search via encrypted edge variants."""
        raw_variants = self.compressor.pattern_variants(
            pattern.encode("ascii")
        )
        needles = tuple(
            self._encrypt_stream(variant) for variant in raw_variants
        )
        before = self.network.stats.snapshot()
        matcher = CompressedScanMatcher(needles,
                                        batched=self.fast_path,
                                        automaton=self.automaton)
        # Real serialized query size: a 1-byte variant count, then per
        # needle a 2-byte length prefix plus the needle bytes (the
        # variants have differing lengths, so bare concatenation would
        # not be decodable).
        request_size = 1 + sum(2 + len(n) for n in needles)
        hits = self.index_file.scan(matcher, request_size=request_size)
        candidates = set(hits)
        if verify:
            matches = {
                rid
                for rid in candidates
                if (text := self.get(rid)) is not None and pattern in text
            }
        else:
            matches = set(candidates)
        return CompressedSearchResult(
            pattern=pattern,
            candidates=frozenset(candidates),
            matches=frozenset(matches),
            false_positives=frozenset(candidates - matches),
            cost=self.network.stats.diff(before),
        )

    def search_batch(
        self, patterns: list[str], verify: bool = True
    ) -> dict[str, CompressedSearchResult]:
        """Run many independent searches in one parallel scan round.

        All patterns' edge-variant needles ship in one scan message
        per bucket; with the fast path on, every needle answers from
        the bucket's shared gram index — one haystack sweep for the
        whole batch instead of one per needle.  Cost accounting
        follows :meth:`EncryptedSearchableStore.search_batch`: the
        scan round and the verification fetches are shared (each
        candidate record is fetched once), so every per-pattern result
        carries the shared totals.
        """
        if not patterns:
            raise ConfigurationError("need at least one pattern")
        unique = list(dict.fromkeys(patterns))
        needle_groups = tuple(
            tuple(
                self._encrypt_stream(variant)
                for variant in self.compressor.pattern_variants(
                    pattern.encode("ascii")
                )
            )
            for pattern in unique
        )
        before = self.network.stats.snapshot()
        matcher = MultiCompressedScanMatcher(
            needle_groups, batched=self.fast_path,
            automaton=self.automaton,
        )
        # Concatenation of the per-pattern query encodings (see
        # ``search``'s request_size note).
        request_size = sum(
            1 + sum(2 + len(needle) for needle in needles)
            for needles in needle_groups
        )
        hits = self.index_file.scan(matcher, request_size=request_size)
        per_pattern: list[set[int]] = [set() for _ in unique]
        for rid, indexes in hits:
            for index in indexes:
                per_pattern[index].add(rid)
        text_cache: dict[int, str | None] = {}
        outcomes: list[tuple[str, set[int], set[int]]] = []
        for pattern, candidates in zip(unique, per_pattern):
            if verify:
                matches = set()
                for rid in candidates:
                    if rid not in text_cache:
                        text_cache[rid] = self.get(rid)
                    text = text_cache[rid]
                    if text is not None and pattern in text:
                        matches.add(rid)
            else:
                matches = set(candidates)
            outcomes.append((pattern, candidates, matches))
        cost = self.network.stats.diff(before)
        return {
            pattern: CompressedSearchResult(
                pattern=pattern,
                candidates=frozenset(candidates),
                matches=frozenset(matches),
                false_positives=frozenset(candidates - matches),
                cost=cost,
            )
            for pattern, candidates, matches in outcomes
        }

    def index_bytes(self) -> int:
        """Total stored index bytes (the design's headline economy)."""
        return sum(
            len(record.content)
            for record in self.index_file.all_records()
        )
