"""Multi-needle scan automaton: one sweep serves every needle.

``search_batch`` ships many patterns in one scan round, but until this
module each bucket still swept its haystack **once per needle** —
``bytes.find`` restarts per needle per (group, site) sub-haystack, and
on the noisy sub-byte Stage-2 layouts (1-byte pieces over tiny code
domains) every sweep also pays Python-level hit validation for the
flood of chance hits.  Batched queries there ran only at par with
per-pattern loops.

A :class:`ScanAutomaton` is the compiled form of one batched query's
needle set.  Following the Aho–Corasick idea — pay one preprocessing
pass so a single sweep over the text answers *all* patterns — it
routes each needle either to:

* the **gram index**: a positional index built by one sweep over the
  sub-haystack (``haystack.view(("scan-gram", length, width), …)``),
  mapping every aligned, contained ``length``-gram to its ``(record
  key, chunk position)`` list in blob order.  All needles of that
  length then answer in O(hits) dict lookups — the sweep cost is paid
  once and shared by every needle and every later query against the
  same (unmutated) haystack.  Classic per-byte automata lose to
  C-level ``bytes.find`` in Python; the single-sweep *index* form
  keeps the whole scan in C and dict machinery instead.
* the **per-needle fallback** (:meth:`BucketHaystack.find_all`), used
  below :data:`INDEX_MIN_NEEDLES` needles per (lane, length) — where
  the index build cost loses to a few direct sweeps — and above the
  :data:`INDEX_MAX_NEEDLE` / :data:`INDEX_MAX_BLOB` ceilings that
  bound index memory.

Both routes produce **byte-identical** hit streams (same hits, same
order) — the equivalence grid in ``tests/core/test_batched_scan.py``
pins automaton ≡ per-needle ≡ scalar across every layout.

Compiled automata are cached process-wide in the kernel registry
(:func:`repro.core.kernels.scan_automaton`, ``kernels.automaton.*``
metrics); gram indexes live inside each haystack's view memo, so any
record mutation drops them with the haystack itself
(``lh.haystack.automaton.*`` metrics).

>>> from repro.sdds.haystack import BucketHaystack
>>> hay = BucketHaystack.from_segments([(1, b"ABAB"), (2, b"ZZAB")])
>>> automaton = ScanAutomaton([((0, 0), 2)] * INDEX_MIN_NEEDLES)
>>> list(automaton.lookup(hay, (0, 0), b"AB", 2))
[(1, 0), (1, 1), (2, 1)]
>>> list(hay.find_all(b"AB", 2)) == list(
...     automaton.lookup(hay, (0, 0), b"AB", 2))
True
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Hashable, Iterable, Sequence

from repro.core.kernels import scan_automaton
from repro.obs.metrics import inc as metric_inc
from repro.obs.metrics import observe as metric_observe

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sdds.haystack import BucketHaystack

#: Fewest needles sharing one (lane, length) before the gram index
#: pays for itself; below this, a handful of direct ``bytes.find``
#: sweeps are cheaper than indexing the sub-haystack.  Single-pattern
#: scans (a few alignments per length) stay on the fallback;
#: ``search_batch`` fan-ins cross it immediately.
INDEX_MIN_NEEDLES = 4

#: Longest needle the gram index serves.  Long needles are selective —
#: ``bytes.find`` rarely stops on them — while every extra byte of
#: gram length multiplies index residency.
INDEX_MAX_NEEDLE = 8

#: Largest sub-haystack blob (bytes) the gram index covers: the index
#: stores one entry per aligned gram, so residency scales with
#: ``blob size / width``; past this ceiling the fallback's streaming
#: sweeps are the better trade.
INDEX_MAX_BLOB = 1 << 16


class GramIndex:
    """Positional index of every aligned, contained gram of one
    length over one haystack — the product of the single sweep.

    ``entries[gram]`` is **grouped per record**: a list of ``(record
    key, [chunk positions...])`` in blob order.  The sweep visits each
    segment once, so a gram's occurrences within one record are
    contiguous — grouping loses no ordering, and consumers aggregate
    per record instead of per hit (the Python-level loop the
    per-needle path pays for every chance hit on noisy layouts)."""

    __slots__ = ("entries", "_memory")

    def __init__(
        self,
        entries: dict[bytes, list[tuple[int, list[int]]]],
        memory: int,
    ) -> None:
        self.entries = entries
        self._memory = memory

    def memory_bytes(self) -> int:
        """Estimated residency (CPython object-size approximation),
        reported through the owning haystack's ``memory_bytes``."""
        return self._memory


def _build_gram_index(
    haystack: "BucketHaystack", length: int, width: int
) -> GramIndex:
    """One sweep: every aligned ``length``-gram contained in a record
    segment, in the exact order ``find_all`` visits hits — ascending
    blob position, which is ascending (segment, aligned offset) —
    grouped per (gram, record)."""
    entries: dict[bytes, list[tuple[int, list[int]]]] = {}
    blob = haystack.blob
    groups = 0
    positions = 0
    for key, start, end in haystack.segment_bounds():
        for offset in range(start, end - length + 1, width):
            gram = blob[offset:offset + length]
            position = (offset - start) // width
            bucket = entries.get(gram)
            if bucket is None:
                entries[gram] = [(key, [position])]
                groups += 1
            elif bucket[-1][0] == key:
                # Segment-ordered sweep: a gram's hits in one record
                # are contiguous, so the open group is always last.
                bucket[-1][1].append(position)
            else:
                bucket.append((key, [position]))
                groups += 1
            positions += 1
    # Rough CPython residency: dict slot + bytes key per gram, one
    # 2-tuple + position list per (gram, record) group, one int slot
    # per position.
    memory = (
        104 * len(entries)
        + sum(len(gram) for gram in entries)
        + 120 * groups
        + 32 * positions
    )
    return GramIndex(entries, memory)


def gram_index(
    haystack: "BucketHaystack", length: int, width: int
) -> GramIndex:
    """The haystack's gram index for one (length, width), built on
    first use and memoised in the haystack's view table — so it dies
    with the haystack on any record mutation."""
    miss = False

    def build(target: "BucketHaystack") -> GramIndex:
        nonlocal miss
        miss = True
        started = time.perf_counter()
        index = _build_gram_index(target, length, width)
        metric_inc("lh.haystack.automaton.build")
        metric_observe(
            "lh.haystack.automaton.build_seconds",
            time.perf_counter() - started,
        )
        metric_observe(
            "lh.haystack.automaton.bytes", index.memory_bytes()
        )
        return index

    index = haystack.view(("scan-gram", length, width), build)
    if not miss:
        metric_inc("lh.haystack.automaton.hit")
    return index


class ScanAutomaton:
    """Compiled routing for one batched query's needle set.

    A *lane* identifies which needles compete over the same
    sub-haystack — ``(group, site)`` for chunk-index plans, ``None``
    for whole-record membership.  The automaton counts needles per
    (lane, length) at compile time; at match time each lookup routes
    to the shared gram index when its lane crossed
    :data:`INDEX_MIN_NEEDLES` (and the ceilings allow), else to the
    per-needle fallback.
    """

    __slots__ = ("_counts",)

    def __init__(
        self, lanes: Iterable[tuple[Hashable, int]]
    ) -> None:
        counts: dict[tuple[Hashable, int], int] = {}
        for lane, length in lanes:
            slot = (lane, length)
            counts[slot] = counts.get(slot, 0) + 1
        self._counts = counts

    def uses_index(
        self, lane: Hashable, length: int, blob_length: int
    ) -> bool:
        """Whether a needle of ``length`` on ``lane`` takes the
        single-sweep index over a blob of ``blob_length`` bytes."""
        return (
            length <= INDEX_MAX_NEEDLE
            and blob_length <= INDEX_MAX_BLOB
            and self._counts.get((lane, length), 0) >= INDEX_MIN_NEEDLES
        )

    def lookup(
        self,
        haystack: "BucketHaystack",
        lane: Hashable,
        needle: bytes,
        width: int,
    ) -> Iterable[tuple[int, int]]:
        """``(record key, chunk position)`` hits for one needle —
        byte-identical stream to ``haystack.find_all(needle, width)``."""
        if not self.uses_index(lane, len(needle), len(haystack.blob)):
            return haystack.find_all(needle, width)
        return [
            (key, position)
            for key, positions in gram_index(
                haystack, len(needle), width
            ).entries.get(needle, ())
            for position in positions
        ]

    def lookup_grouped(
        self,
        haystack: "BucketHaystack",
        lane: Hashable,
        needle: bytes,
        width: int,
    ) -> "list[tuple[int, list[int]]] | None":
        """The index's per-record hit groups ``[(record key, [chunk
        positions...])...]`` in blob order, or ``None`` when the
        routing says the per-needle fallback should run.  Flattening
        the groups reproduces :meth:`lookup` exactly; consumers that
        aggregate per record skip the per-hit Python loop."""
        if not self.uses_index(lane, len(needle), len(haystack.blob)):
            return None
        return gram_index(haystack, len(needle), width).entries.get(
            needle, []
        )

    def lookup_records(
        self,
        haystack: "BucketHaystack",
        needle: bytes,
        lane: Hashable = None,
    ) -> Iterable[int]:
        """Record keys containing ``needle`` — same keys, same order
        as ``haystack.find_records(needle)`` (first-occurrence blob
        order, each record once).  A gram's hits in one record form a
        single group, so the group keys *are* the deduped record
        list."""
        length = len(needle)
        if not self.uses_index(lane, length, len(haystack.blob)):
            return haystack.find_records(needle)
        return [
            key
            for key, _positions in gram_index(
                haystack, length, 1
            ).entries.get(needle, ())
        ]


def plan_signature(plan) -> tuple:
    """Hashable canonical content of one :class:`SearchPlan` — the
    automaton cache key component, and the scan-memo identity of the
    matchers built over it (``needles`` is a dict, so the dataclass
    itself is unhashable)."""
    return (
        plan.pattern,
        plan.piece_width,
        plan.sites,
        plan.group_count,
        plan.alignments,
        plan.required_groups,
        tuple(plan.needles.items()),
    )


def _compile_plans(plans: Sequence) -> ScanAutomaton:
    lanes: list[tuple[Hashable, int]] = []
    seen: set[tuple] = set()
    for plan in plans:
        for (group, _alignment), streams in plan.needles.items():
            for site, needle in enumerate(streams):
                triple = (group, site, needle)
                if triple in seen:
                    continue
                seen.add(triple)
                lanes.append(((group, site), len(needle)))
    return ScanAutomaton(lanes)


def plans_automaton(plans: Sequence) -> ScanAutomaton:
    """The (cached) automaton for a batched set of chunk-index plans.

    Distinct ``(group, site, needle)`` triples are counted once — the
    same needle shipped by two patterns costs one lookup, so it must
    not inflate the lane census either.
    """
    key = ("plan",) + tuple(plan_signature(plan) for plan in plans)
    return scan_automaton(key, lambda: _compile_plans(plans))


def needles_automaton(needles: Sequence[bytes]) -> ScanAutomaton:
    """The (cached) automaton for flat membership needles (compressed
    index): every needle shares the single ``None`` lane."""
    key = ("needles", tuple(needles))
    return scan_automaton(
        key,
        lambda: ScanAutomaton(
            (None, len(needle)) for needle in set(needles)
        ),
    )
