"""The paper's core contribution: encrypted, searchable index records.

Layering (bottom-up):

* :mod:`repro.core.chunking` — Stage-1 geometry (record chunkings,
  query series, storage layouts of §2.3/§2.5).
* :mod:`repro.core.encoder` — Stage-2 frequency-equalising lossy
  compression (§3, Figure 5).
* :mod:`repro.core.dispersion` — Stage-3 GF-matrix dispersion (§4).
* :mod:`repro.core.kernels` — fused codec tables: the batched
  encode→encrypt→disperse→pack fast path and its cache registry.
* :mod:`repro.core.index` — the pipeline composing the stages.
* :mod:`repro.core.search` — aligned matching + hit aggregation.
* :mod:`repro.core.scheme` — :class:`EncryptedSearchableStore`, the
  complete scheme of §5 over LH* files.
"""

from repro.core.chunking import (
    StorageLayout,
    all_query_series,
    query_series,
    record_chunks,
)
from repro.core.config import SchemeParameters
from repro.core.dispersion import Disperser
from repro.core.encoder import FrequencyEncoder, census_chunks
from repro.core.errors import (
    ConfigurationError,
    QueryTooShortError,
    RecordNotFoundError,
    SchemeError,
)
from repro.core.index import IndexPipeline
from repro.core.kernels import (
    FusedCodec,
    clear_codec_cache,
    codec_cache_size,
    fused_codec,
)
from repro.core.scheme import (
    EncryptedSearchableStore,
    SearchResult,
    StorageFootprint,
)
from repro.core.compressed_index import (
    CompressedSearchResult,
    CompressedSearchStore,
)
from repro.core.compression import PairCompressor
from repro.core.search import HitAggregator, SearchPlan, SiteHit, aligned_find
from repro.core.wordsearch import EncryptedWordStore, WordSearchResult

__all__ = [
    "StorageLayout",
    "record_chunks",
    "query_series",
    "all_query_series",
    "SchemeParameters",
    "FrequencyEncoder",
    "census_chunks",
    "Disperser",
    "FusedCodec",
    "fused_codec",
    "codec_cache_size",
    "clear_codec_cache",
    "IndexPipeline",
    "SearchPlan",
    "SiteHit",
    "HitAggregator",
    "aligned_find",
    "EncryptedSearchableStore",
    "SearchResult",
    "StorageFootprint",
    "EncryptedWordStore",
    "WordSearchResult",
    "PairCompressor",
    "CompressedSearchStore",
    "CompressedSearchResult",
    "SchemeError",
    "ConfigurationError",
    "QueryTooShortError",
    "RecordNotFoundError",
]
