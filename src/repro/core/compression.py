"""Searchable (byte-pair) compression — the paper's [M97] direction.

Section 8: "we are pursuing searchable compression as a main means of
redundancy removal.  In contrast to the work reported in [GN99] and
[M97], our task is simpler, since the compression can be (and probably
should be) lossy.  We only need very good, but not perfect precision
and 100 % recall."

This module implements a Manber-style pair encoder with exactly those
semantics:

* Symbols are partitioned into a **left set** and a **right set**;
  only pairs ``(l, r)`` with ``l ∈ L`` and ``r ∈ R`` may be merged
  into a single pair code.  Because membership is a property of the
  *individual* symbol, the segmentation of any text is decided locally
  — a scanner never needs lookahead beyond one symbol, and the same
  substring always encodes the same way **except possibly at its two
  edges** (its first symbol may have been absorbed by a preceding
  left-symbol, its last may absorb a following right-symbol).
* Searching therefore probes a small set of **edge variants** of the
  encoded pattern (drop-first / drop-last), giving 100 % recall with a
  bounded, quantifiable precision loss — the paper's stated target.
* An optional **lossy stage** merges the resulting code alphabet into
  ``n_codes`` frequency-equalised buckets via the same greedy rule as
  Stage 2, composing compression with redundancy removal.

The encoder plugs into the same byte-stream search machinery as the
rest of the core (`bytes.find` on code streams).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from repro.core.encoder import least_loaded_assignment
from repro.core.errors import ConfigurationError


class PairCompressor:
    """A trained searchable pair encoder.

    >>> comp = PairCompressor.train([b"ANANANAN" * 3], max_pairs=4)
    >>> len(comp.encode(b"ANANANAN")) < len(b"ANANANAN")
    True
    """

    def __init__(
        self,
        left: set[int],
        right: set[int],
        pair_codes: dict[tuple[int, int], int],
        single_codes: dict[int, int],
        n_codes: int,
        lossy_map: dict[int, int] | None = None,
    ) -> None:
        if set(pair_codes.values()) & set(single_codes.values()):
            raise ConfigurationError("overlapping code assignments")
        self.left = frozenset(left)
        self.right = frozenset(right)
        self.pair_codes = dict(pair_codes)
        self.single_codes = dict(single_codes)
        self.n_codes = n_codes
        self.lossy_map = dict(lossy_map) if lossy_map else None
        self.code_width = 1 if self._output_space() <= 256 else 2

    def _output_space(self) -> int:
        if self.lossy_map is not None:
            return max(self.lossy_map.values()) + 1
        return self.n_codes

    # -- training ----------------------------------------------------------------

    @classmethod
    def train(
        cls,
        texts: Iterable[bytes],
        max_pairs: int = 64,
        min_pair_count: int = 2,
        lossy_codes: int | None = None,
    ) -> "PairCompressor":
        """Learn the L/R partition and the pair codebook.

        The partition is chosen greedily: for every symbol compare how
        much pair mass it contributes as a left element vs as a right
        element of frequent digrams, and put it on its heavier side —
        Manber's heuristic.  The ``max_pairs`` most frequent
        compatible pairs then receive codes.
        """
        texts = list(texts)
        if not texts:
            raise ConfigurationError("empty training corpus")
        singles: Counter = Counter()
        digrams: Counter = Counter()
        for text in texts:
            singles.update(text)
            for i in range(len(text) - 1):
                digrams[(text[i], text[i + 1])] += 1
        # Side scores: mass as left vs as right element.
        as_left: Counter = Counter()
        as_right: Counter = Counter()
        for (a, b), count in digrams.items():
            as_left[a] += count
            as_right[b] += count
        left = {s for s in singles if as_left[s] >= as_right[s]}
        right = set(singles) - left
        candidates = sorted(
            (
                (count, pair)
                for pair, count in digrams.items()
                if pair[0] in left and pair[1] in right
                and count >= min_pair_count
            ),
            reverse=True,
        )
        pair_codes: dict[tuple[int, int], int] = {}
        # Codes: singles first (so every symbol is always encodable),
        # then pairs.
        single_codes = {
            symbol: index for index, symbol in enumerate(sorted(singles))
        }
        next_code = len(single_codes)
        for __, pair in candidates[:max_pairs]:
            pair_codes[pair] = next_code
            next_code += 1
        lossy_map = None
        if lossy_codes is not None:
            # Build a census of emitted codes, then bucket-merge them
            # with the Stage-2 greedy rule.
            trial = cls(left, right, pair_codes, single_codes, next_code)
            code_census: Counter = Counter()
            for text in texts:
                code_census.update(trial._encode_codes(text))
            keyed = Counter(
                {code.to_bytes(2, "big"): count
                 for code, count in code_census.items()}
            )
            assignment = least_loaded_assignment(keyed, lossy_codes)
            lossy_map = {
                int.from_bytes(chunk, "big"): bucket
                for chunk, bucket in assignment.items()
            }
            # Codes never seen in training fall back deterministically.
            for code in range(next_code):
                lossy_map.setdefault(code, code % lossy_codes)
        return cls(left, right, pair_codes, single_codes, next_code,
                   lossy_map)

    # -- encoding -----------------------------------------------------------------

    def _encode_spans(self, text: bytes) -> list[tuple[int, int]]:
        """Encode to ``(code, consumed_symbols)`` pairs."""
        spans = []
        i = 0
        n = len(text)
        while i < n:
            symbol = text[i]
            if i + 1 < n:
                pair = (symbol, text[i + 1])
                code = self.pair_codes.get(pair)
                if code is not None:
                    spans.append((code, 2))
                    i += 2
                    continue
            code = self.single_codes.get(symbol)
            if code is None:
                # Unseen symbol: deterministic fallback inside the
                # single-code space.
                code = symbol % max(1, len(self.single_codes))
            spans.append((code, 1))
            i += 1
        return spans

    def _encode_codes(self, text: bytes) -> list[int]:
        return [code for code, __ in self._encode_spans(text)]

    def _pack(self, codes: list[int]) -> bytes:
        if self.lossy_map is not None:
            codes = [self.lossy_map[c] for c in codes]
        if self.code_width == 1:
            return bytes(codes)
        out = bytearray()
        for code in codes:
            out += code.to_bytes(2, "big")
        return bytes(out)

    def encode(self, text: bytes) -> bytes:
        """The stored stream for a record."""
        return self._pack(self._encode_codes(text))

    def compression_ratio(self, texts: Iterable[bytes]) -> float:
        """Output bytes per input byte over ``texts``."""
        total_in = total_out = 0
        for text in texts:
            total_in += len(text)
            total_out += len(self.encode(text))
        if total_in == 0:
            raise ConfigurationError("empty corpus")
        return total_out / total_in

    # -- searching ----------------------------------------------------------------

    def pattern_variants(self, pattern: bytes) -> list[bytes]:
        """The encoded edge variants to probe for ``pattern``.

        Segmentation is local (one symbol of context), so the interior
        of an occurrence encodes exactly as the pattern does; only the
        edges can differ:

        * **head** — if ``pattern[0]`` is a right-symbol, the record
          scanner may have absorbed it into a pair with the preceding
          record symbol.  The occurrence then continues exactly like
          ``encode(pattern[1:])``.
        * **tail** — if the scan's final code is a *single* left-symbol,
          the record scanner may instead pair it with the record symbol
          that follows the occurrence, changing that final code.  The
          variant drops the final *code* (not the final symbol — the
          pattern's own tail pair, if any, is stable).

        Probing all variants gives 100 % recall; the dropped edge
        symbols are what costs precision — the paper's stated
        lossy-compression trade-off ("very good, but not perfect
        precision and 100 % recall").
        """
        if not pattern:
            raise ConfigurationError("empty pattern")
        variants: set[bytes] = set()
        starts = [0]
        if len(pattern) > 1 and pattern[0] in self.right:
            starts.append(1)
        for start in starts:
            spans = self._encode_spans(pattern[start:])
            codes = [code for code, __ in spans]
            variants.add(self._pack(codes))
            final_code_is_single_left = (
                spans[-1][1] == 1 and pattern[-1] in self.left
            )
            if final_code_is_single_left and len(codes) > 1:
                variants.add(self._pack(codes[:-1]))
        variants.discard(b"")
        if not variants:
            raise ConfigurationError(
                f"pattern {pattern!r} too short to search under this "
                "compressor (every variant is empty)"
            )
        return sorted(variants, key=len, reverse=True)

    def search(self, encoded_record: bytes, pattern: bytes) -> bool:
        """Does ``pattern`` (plausibly) occur in the encoded record?

        100 % recall: a true occurrence always matches one variant.
        False positives arise from dropped edge symbols and (in lossy
        mode) bucket collisions.
        """
        if self.code_width == 1:
            return any(
                variant in encoded_record
                for variant in self.pattern_variants(pattern)
            )
        # Two-byte codes need aligned matching.
        from repro.core.search import aligned_find
        return any(
            aligned_find(encoded_record, variant, 2)
            for variant in self.pattern_variants(pattern)
        )

    # -- introspection -----------------------------------------------------------

    def describe(self) -> str:
        lossy = (
            f", lossy->{self._output_space()} buckets"
            if self.lossy_map is not None else ""
        )
        return (
            f"PairCompressor({len(self.single_codes)} singles, "
            f"{len(self.pair_codes)} pairs{lossy})"
        )
