"""Stage 3: dispersion of index chunks over k sites.

Section 4 of the paper: a chunk of ``c = g·k`` bits is read as a row
vector ``c = (c_1, …, c_k)`` over Φ = GF(2^g); with an invertible
k×k matrix ``E`` (all coefficients nonzero — Cauchy/Vandermonde
style), the dispersed pieces are ``d = c · E`` and piece ``d_i`` goes
to dispersal site ``i``.  Because every ``d_i`` depends on the whole
chunk, single-site frequency analysis degrades; because ``E`` is
invertible, equality of chunks is preserved piecewise, so
chunk-aligned search still works site-by-site (intersecting hit
offsets across the k sites of a chunking group).
"""

from __future__ import annotations

import random
import sys
from array import array

from repro.core.errors import ConfigurationError
from repro.gf import GF2, Matrix, default_cauchy_matrix, random_nonsingular_matrix


class Disperser:
    """Splits chunk values of ``piece_bits · k`` bits into k pieces.

    ``matrix`` defaults to the canonical Cauchy matrix (the paper's
    recommendation); pass ``seed`` to sample a random non-singular
    matrix instead (the paper's Table-2 experiment).

    >>> d = Disperser(k=4, piece_bits=2, seed=42)
    >>> d.recover(d.disperse(0b1011001))
    89
    """

    def __init__(
        self,
        k: int,
        piece_bits: int,
        matrix: Matrix | None = None,
        seed: int | None = None,
    ) -> None:
        if k < 2:
            raise ConfigurationError("dispersion needs k >= 2 sites")
        if not 1 <= piece_bits <= 16:
            raise ConfigurationError("piece size must be 1..16 bits")
        self.k = k
        self.piece_bits = piece_bits
        self.chunk_bits = piece_bits * k
        self.field = GF2(piece_bits)
        if matrix is None:
            if seed is not None:
                matrix = random_nonsingular_matrix(
                    self.field, k, random.Random(seed)
                )
            elif 2 * k <= self.field.order:
                matrix = default_cauchy_matrix(self.field, k)
            else:
                # Field too small for a Cauchy matrix (e.g. GF(2), k=4):
                # fall back to a deterministic random non-singular one.
                matrix = random_nonsingular_matrix(
                    self.field, k, random.Random(0)
                )
        if matrix.nrows != k or matrix.ncols != k:
            raise ConfigurationError(
                f"dispersion matrix must be {k}x{k}"
            )
        if matrix.field is not self.field:
            raise ConfigurationError(
                f"dispersion matrix must live in GF(2^{piece_bits})"
            )
        if not matrix.is_invertible():
            raise ConfigurationError("dispersion matrix must be invertible")
        self.matrix = matrix
        self._inverse = matrix.inverse()
        self._mask = (1 << piece_bits) - 1
        # For small chunk domains (<= 16 bits), dispersal is a pure
        # function of the chunk value — precompute it once so bulk
        # dispersal is a table lookup instead of k GF dot products.
        self._table: list[tuple[int, ...]] | None = None

    # -- chunk <-> piece vector ---------------------------------------------

    def split(self, value: int) -> tuple[int, ...]:
        """Big-endian split of a chunk value into k field elements."""
        if not 0 <= value < (1 << self.chunk_bits):
            raise ValueError(
                f"chunk value {value} outside {self.chunk_bits}-bit range"
            )
        g = self.piece_bits
        return tuple(
            (value >> (g * (self.k - 1 - i))) & self._mask
            for i in range(self.k)
        )

    def join(self, pieces: tuple[int, ...]) -> int:
        if len(pieces) != self.k:
            raise ValueError(f"expected {self.k} pieces")
        value = 0
        for piece in pieces:
            value = (value << self.piece_bits) | (piece & self._mask)
        return value

    # -- dispersion ------------------------------------------------------------

    def disperse(self, value: int) -> tuple[int, ...]:
        """``d = c · E`` — the per-site pieces of one chunk."""
        if self._table is not None:
            # The table path must enforce split()'s range check itself:
            # a negative value would silently index from the end of the
            # table instead of raising.
            if not 0 <= value < (1 << self.chunk_bits):
                raise ValueError(
                    f"chunk value {value} outside {self.chunk_bits}-bit "
                    "range"
                )
            return self._table[value]
        return self.matrix.mul_vector(self.split(value))

    def _ensure_table(self) -> None:
        if self._table is None and self.chunk_bits <= 16:
            self._table = [
                self.matrix.mul_vector(self.split(value))
                for value in range(1 << self.chunk_bits)
            ]

    def dispersal_table(self) -> list[tuple[int, ...]] | None:
        """The full ``value -> pieces`` table (chunk domains <= 16 bits).

        Built lazily on first use; None for larger domains, where
        callers must fall back to per-value :meth:`disperse`.
        """
        self._ensure_table()
        return self._table

    def recover(self, pieces: tuple[int, ...]) -> int:
        """Invert :meth:`disperse` (requires all k pieces)."""
        if len(pieces) != self.k:
            raise ValueError(f"expected {self.k} pieces")
        return self.join(self._inverse.mul_vector(tuple(pieces)))

    def disperse_stream(self, values: list[int]) -> list[list[int]]:
        """Disperse a chunk stream; returns k per-site piece streams.

        Table-driven for small chunk domains: one range check for the
        whole stream, then a per-site comprehension over the dispersal
        table instead of k GF dot products per value.
        """
        table = self.dispersal_table()
        if table is None:
            streams: list[list[int]] = [[] for __ in range(self.k)]
            for value in values:
                for i, piece in enumerate(self.disperse(value)):
                    streams[i].append(piece)
            return streams
        if values and not 0 <= min(values) <= max(values) < len(table):
            bad = min(values) if min(values) < 0 else max(values)
            raise ValueError(
                f"chunk value {bad} outside {self.chunk_bits}-bit range"
            )
        return [
            [table[value][i] for value in values]
            for i in range(self.k)
        ]

    @property
    def piece_width(self) -> int:
        """Bytes per packed piece."""
        return (self.piece_bits + 7) // 8

    def pack_stream(self, pieces: list[int]) -> bytes:
        """Pack one site's piece stream at fixed byte width.

        Width 1 packs directly; width 2 goes through an ``array`` with
        a byte swap on little-endian hosts — byte-identical to the old
        per-piece ``to_bytes(2, "big")`` loop, without the per-piece
        int allocation.
        """
        width = self.piece_width
        if width == 1:
            return bytes(pieces)
        packed = array("H", pieces)
        if sys.byteorder == "little":
            packed.byteswap()
        return packed.tobytes()
