"""Exception types of the encrypted-search core."""

from repro.errors import ReproError


class SchemeError(ReproError):
    """Base class for all scheme-level errors."""


class ConfigurationError(SchemeError):
    """Invalid or inconsistent scheme parameters."""


class QueryTooShortError(SchemeError):
    """The search pattern is shorter than the configuration's minimum.

    The paper, section 2.3: "our search strategy does not work for
    search strings of length less than s", and section 2.5 derives the
    stricter minima for the reduced-storage layouts.
    """


class RecordNotFoundError(SchemeError, KeyError):
    """A store operation named a rid with no stored record.

    Raised by owner-side decryption helpers (e.g.
    ``EncryptedWordStore.decrypt_index_of``) instead of the historic
    bare ``KeyError``, so callers can catch the scheme family.  The
    ``KeyError`` base is kept for callers that predate the typed
    hierarchy.
    """

    def __str__(self) -> str:
        # KeyError.__str__ reprs its single argument, which would wrap
        # the message in quotes; report it verbatim like the rest of
        # the family.
        return Exception.__str__(self)
