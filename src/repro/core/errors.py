"""Exception types of the encrypted-search core."""

from repro.errors import ReproError


class SchemeError(ReproError):
    """Base class for all scheme-level errors."""


class ConfigurationError(SchemeError):
    """Invalid or inconsistent scheme parameters."""


class QueryTooShortError(SchemeError):
    """The search pattern is shorter than the configuration's minimum.

    The paper, section 2.3: "our search strategy does not work for
    search strings of length less than s", and section 2.5 derives the
    stricter minima for the reduced-storage layouts.
    """
