"""The index-record pipeline: chunk → (encode) → (ECB) → (disperse).

One :class:`IndexPipeline` instance holds the trained Stage-2 encoder,
the per-chunking Stage-1 permutations and the Stage-3 disperser, and
turns record content into the per-site index streams of the paper's
Figure 3 — and, symmetrically, turns a search pattern into the
per-(chunking, alignment, site) needle streams.

Stream representation: every stored element (a dispersed piece, or the
whole chunk value when k = 1) is packed big-endian at a fixed byte
width, so index records are plain ``bytes`` and matching is C-level
``bytes.find`` with alignment checks (see :mod:`repro.core.search`).
"""

from __future__ import annotations

from repro.core.chunking import query_series, record_chunks
from repro.core.config import SchemeParameters
from repro.core.dispersion import Disperser
from repro.core.encoder import FrequencyEncoder
from repro.core.errors import ConfigurationError
from repro.core.search import SearchPlan
from repro.crypto.feistel import FeistelPRP
from repro.crypto.keys import KeyHierarchy


class IndexPipeline:
    """Builds index streams and query needles for one configuration."""

    def __init__(
        self,
        params: SchemeParameters,
        encoder: FrequencyEncoder | None = None,
    ) -> None:
        if (params.n_codes is None) != (encoder is None):
            raise ConfigurationError(
                "encoder must be supplied exactly when n_codes is set"
            )
        if encoder is not None:
            if encoder.chunk_size != params.chunk_bytes:
                raise ConfigurationError(
                    f"encoder chunk size {encoder.chunk_size} bytes != "
                    f"scheme chunk size {params.chunk_bytes} bytes "
                    f"({params.chunk_size} symbols x "
                    f"{params.symbol_width})"
                )
            if encoder.n_codes != params.n_codes:
                raise ConfigurationError(
                    f"encoder has {encoder.n_codes} codes, scheme expects "
                    f"{params.n_codes}"
                )
        self.params = params
        self.encoder = encoder
        keys = KeyHierarchy(params.master_key)
        self._prps: list[FeistelPRP | None] = []
        for index in range(params.layout.group_count):
            if params.encrypt:
                self._prps.append(
                    FeistelPRP(keys.chunking_key(index), params.value_domain)
                )
            else:
                self._prps.append(None)
        if params.dispersal > 1:
            self.disperser: Disperser | None = Disperser(
                k=params.dispersal, piece_bits=params.piece_bits
            )
        else:
            self.disperser = None

    # -- chunk values ------------------------------------------------------

    def chunk_value(self, chunk: bytes) -> int:
        """Stage-2 view of one chunk: its code, or its raw packing."""
        if self.encoder is not None:
            return self.encoder.encode_chunk(chunk)
        return int.from_bytes(chunk, "big")

    def _transform(self, chunks: list[bytes], group_index: int) -> list[int]:
        """encode + encrypt one chunk list under one chunking's key."""
        values = [self.chunk_value(chunk) for chunk in chunks]
        prp = self._prps[group_index]
        if prp is not None:
            values = [prp.encrypt(value) for value in values]
        return values

    def _pack_values(self, values: list[int]) -> bytes:
        width = self.params.piece_width
        if width == 1:
            return bytes(values)
        out = bytearray()
        for value in values:
            out += value.to_bytes(width, "big")
        return bytes(out)

    def _site_streams(self, values: list[int]) -> list[bytes]:
        """Stage 3: one packed stream per dispersal site (k = 1 → one)."""
        if self.disperser is None:
            return [self._pack_values(values)]
        return [
            self.disperser.pack_stream(stream)
            for stream in self.disperser.disperse_stream(values)
        ]

    # -- record side ----------------------------------------------------------

    def build_index_streams(
        self, content: bytes
    ) -> dict[tuple[int, int], bytes]:
        """All index streams of one record.

        Returns ``(chunking_index, site) -> packed stream``; the
        paper's Figure 3 stores each under its own key in the index
        SDDS.
        """
        layout = self.params.layout
        streams: dict[tuple[int, int], bytes] = {}
        for group_index, offset in enumerate(layout.offsets):
            chunks = record_chunks(
                content,
                layout.chunk_size,
                offset,
                drop_partial=self.params.drop_partial_chunks,
                symbol_width=self.params.symbol_width,
            )
            values = self._transform(chunks, group_index)
            for site, stream in enumerate(self._site_streams(values)):
                streams[(group_index, site)] = stream
        return streams

    # -- query side --------------------------------------------------------------

    def plan_query(self, pattern: bytes) -> SearchPlan:
        """Needle streams for every (chunking, alignment, site).

        The same series must be prepared once per stored chunking
        because each chunking encrypts under its own key.
        """
        layout = self.params.layout
        width = self.params.symbol_width
        if len(pattern) % width:
            raise ConfigurationError(
                f"pattern of {len(pattern)} bytes is not a whole "
                f"number of {width}-byte symbols"
            )
        alignments = layout.query_alignments(len(pattern) // width)
        needles: dict[tuple[int, int], tuple[bytes, ...]] = {}
        for group_index in range(layout.group_count):
            for alignment in alignments:
                chunks = query_series(
                    pattern, layout.chunk_size, alignment,
                    symbol_width=width,
                )
                values = self._transform(chunks, group_index)
                needles[(group_index, alignment)] = tuple(
                    self._site_streams(values)
                )
        if self.params.aggregation == "any":
            required = 1
        else:
            required = max(1, len(alignments) // layout.stride)
        return SearchPlan(
            pattern=pattern,
            needles=needles,
            piece_width=self.params.piece_width,
            sites=self.params.dispersal if self.disperser else 1,
            group_count=layout.group_count,
            alignments=tuple(alignments),
            required_groups=min(required, layout.group_count),
        )
