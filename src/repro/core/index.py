"""The index-record pipeline: chunk → (encode) → (ECB) → (disperse).

One :class:`IndexPipeline` instance holds the trained Stage-2 encoder,
the per-chunking Stage-1 permutations and the Stage-3 disperser, and
turns record content into the per-site index streams of the paper's
Figure 3 — and, symmetrically, turns a search pattern into the
per-(chunking, alignment, site) needle streams.

Stream representation: every stored element (a dispersed piece, or the
whole chunk value when k = 1) is packed big-endian at a fixed byte
width, so index records are plain ``bytes`` and matching is C-level
``bytes.find`` with alignment checks (see :mod:`repro.core.search`).

Two execution paths produce identical bytes:

* the **reference path** — per-chunk ``encode_chunk``/``encrypt``/
  ``disperse`` calls, the direct transliteration of the paper's
  stages; and
* the **fused fast path** — for small chunk domains, the per-group
  :class:`repro.core.kernels.FusedCodec` table collapses
  PRP + dispersion + packing into table lookups (see
  ``docs/PERFORMANCE.md``).  ``fast_path=False`` pins the reference
  path; the equivalence suite asserts byte-identical output.

Query plans are memoised per pattern in a small LRU (repeated
patterns — retried queries, batch workloads, chaos twins — skip the
per-query needle rebuild entirely; ``kernels.plan.*`` metrics count
hits).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.chunking import query_series, record_chunks
from repro.core.config import SchemeParameters
from repro.core.dispersion import Disperser
from repro.core.encoder import FrequencyEncoder
from repro.core.errors import ConfigurationError
from repro.core.kernels import FusedCodec, fused_codec
from repro.core.search import SearchPlan
from repro.crypto.feistel import FeistelPRP
from repro.crypto.keys import KeyHierarchy
from repro.obs.metrics import inc as metric_inc

#: Query plans memoised per pipeline (patterns, in bytes form).
PLAN_CACHE_CAPACITY = 256

#: Sentinel distinguishing "codec not yet built" from "no codec
#: applicable" in the per-group codec slots.
_UNBUILT = object()


class IndexPipeline:
    """Builds index streams and query needles for one configuration."""

    def __init__(
        self,
        params: SchemeParameters,
        encoder: FrequencyEncoder | None = None,
        fast_path: bool = True,
    ) -> None:
        if (params.n_codes is None) != (encoder is None):
            raise ConfigurationError(
                "encoder must be supplied exactly when n_codes is set"
            )
        if encoder is not None:
            if encoder.chunk_size != params.chunk_bytes:
                raise ConfigurationError(
                    f"encoder chunk size {encoder.chunk_size} bytes != "
                    f"scheme chunk size {params.chunk_bytes} bytes "
                    f"({params.chunk_size} symbols x "
                    f"{params.symbol_width})"
                )
            if encoder.n_codes != params.n_codes:
                raise ConfigurationError(
                    f"encoder has {encoder.n_codes} codes, scheme expects "
                    f"{params.n_codes}"
                )
        self.params = params
        self.encoder = encoder
        self.fast_path = fast_path
        keys = KeyHierarchy(params.master_key)
        self._prps: list[FeistelPRP | None] = []
        for index in range(params.layout.group_count):
            if params.encrypt:
                self._prps.append(
                    FeistelPRP(keys.chunking_key(index), params.value_domain)
                )
            else:
                self._prps.append(None)
        if params.dispersal > 1:
            self.disperser: Disperser | None = Disperser(
                k=params.dispersal, piece_bits=params.piece_bits
            )
        else:
            self.disperser = None
        self._codecs: list = [_UNBUILT] * params.layout.group_count
        self._plan_cache: OrderedDict[bytes, SearchPlan] = OrderedDict()

    # -- fused fast path ----------------------------------------------------

    def codec(self, group_index: int) -> FusedCodec | None:
        """The group's fused codec, built lazily; None when the chunk
        domain is too large (or ``fast_path=False``) and the reference
        path must run."""
        if not self.fast_path:
            return None
        codec = self._codecs[group_index]
        if codec is _UNBUILT:
            codec = fused_codec(
                prp=self._prps[group_index],
                disperser=self.disperser,
                piece_width=self.params.piece_width,
                domain=self.params.value_domain,
            )
            self._codecs[group_index] = codec
        return codec

    def warm(self) -> None:
        """Eagerly build every group's codec (bulk-load warmup)."""
        for group_index in range(self.params.layout.group_count):
            self.codec(group_index)

    # -- chunk values ------------------------------------------------------

    def chunk_value(self, chunk: bytes) -> int:
        """Stage-2 view of one chunk: its code, or its raw packing."""
        if self.encoder is not None:
            return self.encoder.encode_chunk(chunk)
        return int.from_bytes(chunk, "big")

    def chunk_values(self, chunks: list[bytes]) -> list[int]:
        """Bulk :meth:`chunk_value` over one chunk list."""
        if self.encoder is not None:
            return self.encoder.encode_chunks(chunks)
        return [int.from_bytes(chunk, "big") for chunk in chunks]

    def _transform(self, chunks: list[bytes], group_index: int) -> list[int]:
        """encode + encrypt one chunk list under one chunking's key
        (the reference Stage-1/2 composition)."""
        values = self.chunk_values(chunks)
        prp = self._prps[group_index]
        if prp is not None:
            values = [prp.encrypt(value) for value in values]
        return values

    def _pack_values(self, values: list[int]) -> bytes:
        width = self.params.piece_width
        if width == 1:
            return bytes(values)
        out = bytearray()
        for value in values:
            out += value.to_bytes(width, "big")
        return bytes(out)

    def _site_streams(self, values: list[int]) -> list[bytes]:
        """Stage 3: one packed stream per dispersal site (k = 1 → one)."""
        if self.disperser is None:
            return [self._pack_values(values)]
        return [
            self.disperser.pack_stream(stream)
            for stream in self.disperser.disperse_stream(values)
        ]

    def _streams_from_values(
        self, values: list[int], group_index: int
    ) -> list[bytes]:
        """One chunking's per-site streams from its chunk values:
        fused when possible, reference otherwise — byte-identical
        either way."""
        codec = self.codec(group_index)
        if codec is not None:
            return codec.site_streams(values)
        prp = self._prps[group_index]
        if prp is not None:
            values = [prp.encrypt(value) for value in values]
        return self._site_streams(values)

    def _group_streams(
        self, chunks: list[bytes], group_index: int
    ) -> list[bytes]:
        """One chunking's per-site streams: fused when possible,
        reference otherwise — byte-identical either way."""
        return self._streams_from_values(
            self.chunk_values(chunks), group_index
        )

    # -- record side ----------------------------------------------------------

    def build_index_streams(
        self, content: bytes
    ) -> dict[tuple[int, int], bytes]:
        """All index streams of one record.

        Returns ``(chunking_index, site) -> packed stream``; the
        paper's Figure 3 stores each under its own key in the index
        SDDS.
        """
        layout = self.params.layout
        sliding: list[int] | None = None
        if (
            self.fast_path
            and self.encoder is not None
            and layout.stride == 1
            and layout.group_count > 1
        ):
            # Full layouts store every offset's chunking: one sliding
            # pass encodes all windows once, and each chunking's full
            # chunks are a stride slice of the shared value list.
            sliding = self.encoder.encode_values_sliding(
                content, step=self.params.symbol_width
            )
        streams: dict[tuple[int, int], bytes] = {}
        for group_index, offset in enumerate(layout.offsets):
            if sliding is not None:
                values = self._sliding_group_values(
                    content, sliding, offset
                )
            else:
                chunks = record_chunks(
                    content,
                    layout.chunk_size,
                    offset,
                    drop_partial=self.params.drop_partial_chunks,
                    symbol_width=self.params.symbol_width,
                )
                values = self.chunk_values(chunks)
            for site, stream in enumerate(
                self._streams_from_values(values, group_index)
            ):
                streams[(group_index, site)] = stream
        return streams

    def _sliding_group_values(
        self, content: bytes, sliding: list[int], offset: int
    ) -> list[int]:
        """The offset-``o`` chunking's chunk values, carved out of the
        shared sliding-window value list — value-identical to encoding
        :func:`repro.core.chunking.record_chunks` output directly.

        The full interior chunks are the ``[offset::chunk_size]``
        stride of the sliding list; the padded partial head and tail
        chunks (absent under ``drop_partial_chunks``) are rebuilt and
        encoded individually, exactly as ``record_chunks`` pads them.
        """
        params = self.params
        size = params.chunk_size
        width = params.symbol_width
        chunk_bytes = size * width
        offset_bytes = offset * width
        values = sliding[offset::size]
        if params.drop_partial_chunks:
            return values
        encoder = self.encoder
        length = len(content)
        if offset:
            head = content[:offset_bytes]
            values.insert(0, encoder.encode_chunk(
                bytes(chunk_bytes - offset_bytes)
                + head
                + bytes(offset_bytes - len(head))
            ))
        if length > offset_bytes:
            remainder = (length - offset_bytes) % chunk_bytes
            if remainder:
                values.append(encoder.encode_chunk(
                    content[length - remainder:]
                    + bytes(chunk_bytes - remainder)
                ))
        return values

    # -- query side --------------------------------------------------------------

    def plan_query(self, pattern: bytes) -> SearchPlan:
        """Needle streams for every (chunking, alignment, site).

        The same series must be prepared once per stored chunking
        because each chunking encrypts under its own key.  Plans are
        memoised per pattern (LRU of :data:`PLAN_CACHE_CAPACITY`):
        repeated patterns — retries, batch workloads, benchmark
        sweeps — reuse the built needles without touching the codec.
        """
        cached = self._plan_cache.get(pattern)
        if cached is not None:
            self._plan_cache.move_to_end(pattern)
            metric_inc("kernels.plan.hit")
            return cached
        metric_inc("kernels.plan.miss")
        plan = self._build_plan(pattern)
        self._plan_cache[pattern] = plan
        while len(self._plan_cache) > PLAN_CACHE_CAPACITY:
            self._plan_cache.popitem(last=False)
        return plan

    def plan_cache_size(self) -> int:
        """Number of memoised query plans (diagnostics)."""
        return len(self._plan_cache)

    def _build_plan(self, pattern: bytes) -> SearchPlan:
        layout = self.params.layout
        width = self.params.symbol_width
        if len(pattern) % width:
            raise ConfigurationError(
                f"pattern of {len(pattern)} bytes is not a whole "
                f"number of {width}-byte symbols"
            )
        alignments = layout.query_alignments(len(pattern) // width)
        needles: dict[tuple[int, int], tuple[bytes, ...]] = {}
        for group_index in range(layout.group_count):
            for alignment in alignments:
                chunks = query_series(
                    pattern, layout.chunk_size, alignment,
                    symbol_width=width,
                )
                needles[(group_index, alignment)] = tuple(
                    self._group_streams(chunks, group_index)
                )
        if self.params.aggregation == "any":
            required = 1
        else:
            required = max(1, len(alignments) // layout.stride)
        return SearchPlan(
            pattern=pattern,
            needles=needles,
            piece_width=self.params.piece_width,
            sites=self.params.dispersal if self.disperser else 1,
            group_count=layout.group_count,
            alignments=tuple(alignments),
            required_groups=min(required, layout.group_count),
        )
