"""Scheme configuration: one object that pins every parameter.

The paper leaves "the number of chunkings and the ratio of dispersion"
as "application specific parameters" (Figure 3 caption).
:class:`SchemeParameters` captures them all, validates their mutual
constraints (section 4: the dispersion degree must divide the chunk
bit width; section 2.5: minimum query lengths), and derives the
quantities the pipeline needs.

Stages are individually optional, matching the paper's staged
presentation:

* ``n_codes=None`` disables Stage 2 (no lossy compression);
* ``encrypt=False`` disables Stage 1's ECB (used by the Table-4/5
  reproductions, which evaluate encoding+chunking in the clear);
* ``dispersal=1`` disables Stage 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.chunking import StorageLayout
from repro.core.errors import ConfigurationError


@dataclass(frozen=True)
class SchemeParameters:
    """All knobs of the encrypted-search scheme.

    ``layout`` fixes Stage-1 geometry (chunk size, stored chunkings,
    query alignments).  ``n_codes`` is the Stage-2 code-space size
    (None = off).  ``dispersal`` is the paper's k (1 = off).
    ``encrypt`` toggles the Stage-1 ECB permutation.
    ``drop_partial_chunks`` enables the section-2.1 edge
    counter-measure.
    """

    layout: StorageLayout
    n_codes: int | None = None
    dispersal: int = 1
    encrypt: bool = True
    drop_partial_chunks: bool = False
    symbol_width: int = 1
    #: "auto" — the layout's sound threshold (ALL groups for §2.3,
    #: ANY for §2.5); "any" — force the OR rule, which is what the
    #: paper's §7 false-positive experiments use (FP2 counts hits in
    #: *either* chunking).
    aggregation: str = "auto"
    master_key: bytes = field(default=b"repro-master-key", repr=False)

    def __post_init__(self) -> None:
        if self.n_codes is not None and not 2 <= self.n_codes <= 1 << 16:
            raise ConfigurationError("n_codes must lie in [2, 65536]")
        if self.aggregation not in ("auto", "any"):
            raise ConfigurationError(
                "aggregation must be 'auto' or 'any'"
            )
        if self.symbol_width not in (1, 2):
            raise ConfigurationError(
                "symbol width must be 1 (8-bit ASCII) or 2 (16-bit "
                "Unicode) — the paper's two symbol types"
            )
        if self.dispersal < 1:
            raise ConfigurationError("dispersal must be >= 1")
        if not self.master_key:
            raise ConfigurationError("master key must be non-empty")
        if self.dispersal > 1:
            if self.chunk_bits % self.dispersal:
                raise ConfigurationError(
                    f"dispersal degree {self.dispersal} must divide the "
                    f"chunk width of {self.chunk_bits} bits (paper §4: "
                    "'k has to be a divisor of c')"
                )
            if self.piece_bits > 16:
                raise ConfigurationError(
                    f"dispersed pieces of {self.piece_bits} bits exceed "
                    "the supported GF(2^16); increase the dispersal "
                    "degree or enable Stage-2 compression"
                )

    # -- convenience constructors -----------------------------------------------

    @classmethod
    def full(cls, chunk_size: int, **kwargs) -> "SchemeParameters":
        """Section-2.3 layout: all s chunkings stored."""
        return cls(layout=StorageLayout.full(chunk_size), **kwargs)

    @classmethod
    def reduced(
        cls, chunk_size: int, sites: int, **kwargs
    ) -> "SchemeParameters":
        """Section-2.5 layout: ``sites`` chunkings, stride s/sites."""
        return cls(
            layout=StorageLayout.reduced(chunk_size, sites), **kwargs
        )

    # -- derived quantities -----------------------------------------------------

    @property
    def chunk_size(self) -> int:
        return self.layout.chunk_size

    @property
    def chunk_bytes(self) -> int:
        """Bytes per chunk of record content (symbols x width)."""
        return self.chunk_size * self.symbol_width

    @property
    def chunk_bits(self) -> int:
        """Bit width of a chunk value entering Stage 1/3.

        Raw chunks carry 8·width bits per symbol; Stage-2 output
        carries ceil(log2(n_codes)) bits per chunk.
        """
        if self.n_codes is None:
            return 8 * self.chunk_bytes
        return max(1, (self.n_codes - 1).bit_length())

    @property
    def piece_bits(self) -> int:
        """Bits per dispersed piece (= chunk_bits when k == 1)."""
        return self.chunk_bits // self.dispersal

    @property
    def piece_width(self) -> int:
        """Packed bytes per stored stream element."""
        return (self.piece_bits + 7) // 8

    @property
    def value_domain(self) -> int:
        """Size of the chunk-value space the Stage-1 PRP permutes."""
        return 1 << self.chunk_bits

    @property
    def index_sites_per_record(self) -> int:
        """The paper's Figure-3 count: chunkings × dispersal sites."""
        return self.layout.group_count * self.dispersal

    @property
    def min_query_length(self) -> int:
        return self.layout.min_query_length

    def describe(self) -> str:
        """One-line human summary for logs and benches."""
        stage2 = (
            f"{self.n_codes} codes" if self.n_codes is not None else "off"
        )
        return (
            f"s={self.chunk_size}, chunkings={self.layout.group_count}, "
            f"alignments={self.layout.alignments}, stage2={stage2}, "
            f"ecb={'on' if self.encrypt else 'off'}, k={self.dispersal}, "
            f"min-query={self.min_query_length}"
        )
