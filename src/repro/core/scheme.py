"""The complete scheme (paper section 5) as a storage facade.

An :class:`EncryptedSearchableStore` owns

* a **record-store** LH* file holding each record strongly encrypted
  (AES-CTR, per-record nonce) under its RID;
* an **index** LH* file holding every index stream under the key
  ``RID · 2^b  |  chunking-id · 2^(site bits)  |  site-id`` — the
  paper's aside: "The keys for the index records are made up of the
  RID and the chunking identifier and the dispersion site identifier
  appended as the least significant bits.  In this way, index records
  belonging to the same original record will be stored in different
  LH* buckets."

``search()`` runs the paper's protocol: chunk/encode/encrypt/disperse
the pattern once per chunking, ship all needles to all index sites in
one parallel scan round, intersect per-group hit offsets, threshold
across groups, then fetch and decrypt the candidates from the record
store and (optionally) verify — measuring precision on the way.  The
scheme guarantees 100 % recall; the false-positive count is the
quantity the paper's Tables 4/5 study.

Both files can live on one shared simulated network so message
counters reflect the whole deployment.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.chunking import query_series
from repro.core.config import SchemeParameters
from repro.core.encoder import FrequencyEncoder
from repro.core.errors import ConfigurationError
from repro.core.index import IndexPipeline
from repro.core.search import (
    HitAggregator,
    IndexKeyCodec,
    MultiPlanScanMatcher,
    PlanScanMatcher,
    SiteHit,
)
from repro.crypto.keys import KeyHierarchy
from repro.crypto.modes import CtrCipher
from repro.net.faults import RetryPolicy
from repro.net.simulator import Network
from repro.net.stats import NetworkStats
from repro.obs.metrics import observe as metric_observe
from repro.obs.trace import span as obs_span
from repro.sdds.lhstar import DEFAULT_RETRY_POLICY, LHStarFile
from repro.sdds.lhstar_rs import LHStarRSFile


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one content search.

    ``cost`` is the *total* network cost of the query — the parallel
    index-scan round **and** the candidate fetches of verification —
    so every search entry point accounts the same way (``search``,
    ``search_all`` and ``search_batch`` once disagreed on whether
    verification was billed).  ``scan_cost``/``verify_cost`` break the
    total down; for batched queries that share one scan round and one
    verification pass, each per-pattern result reports the shared
    totals.  Retransmissions and injected faults during the query show
    up in the cost's ``retries``/``dropped``/``duplicated`` counters.
    """

    pattern: str
    candidates: frozenset[int]
    matches: frozenset[int]
    false_positives: frozenset[int]
    cost: NetworkStats
    #: simulated wall-clock seconds the whole query took (scan round
    #: + candidate fetches) under the network's latency model.
    elapsed: float = 0.0
    #: the scan round's share of ``cost`` (None for composite results
    #: that cannot split it).
    scan_cost: NetworkStats | None = None
    #: verification's share of ``cost`` (candidate fetch + decrypt);
    #: zero-valued when ``verify=False``.
    verify_cost: NetworkStats | None = None

    @property
    def precision(self) -> float:
        if not self.candidates:
            return 1.0
        return len(self.matches) / len(self.candidates)


@dataclass(frozen=True)
class StorageFootprint:
    """Bytes stored, by role — the storage-overhead view of §2.5."""

    record_bytes: int
    index_bytes: int
    index_records: int

    @property
    def overhead(self) -> float:
        """Index bytes per record byte."""
        if self.record_bytes == 0:
            return 0.0
        return self.index_bytes / self.record_bytes


@dataclass(frozen=True)
class BatchHitReporter:
    """The report factory of a multiplexed scan round.

    A named, parameter-only callable (rather than a closure) so the
    wire codec can ship a :class:`~repro.core.search.MultiPlanScanMatcher`
    to a bucket process and rebuild an identical reporter there.
    """

    tagged: bool

    def __call__(self, index: int, hit: SiteHit) -> "_BatchHit":
        return _BatchHit(index=index, hit=hit, tagged=self.tagged)

    def memo_key(self) -> tuple:
        """Value identity for the bucket scan memo (see
        :meth:`repro.core.search.MultiPlanScanMatcher.scan_key`)."""
        return ("batch-report", self.tagged)


@dataclass
class _BatchHit:
    """One pattern's site hit inside a multiplexed scan reply.

    ``wire_size`` bills the underlying :class:`SiteHit` plus a 2-byte
    pattern-demultiplexing tag — but only when the round actually
    ships several patterns.  A single-pattern batch carries no tag,
    so its accounting is byte-identical to :meth:`search`.
    """

    index: int
    hit: SiteHit
    tagged: bool

    @property
    def wire_size(self) -> int:
        return (2 if self.tagged else 0) + self.hit.wire_size


class EncryptedSearchableStore:
    """The paper's complete scheme over simulated LH* files."""

    def __init__(
        self,
        params: SchemeParameters,
        encoder: FrequencyEncoder | None = None,
        network: Network | None = None,
        bucket_capacity: int = 128,
        high_availability: bool = False,
        name: str = "ess",
        retry_policy: RetryPolicy | None = DEFAULT_RETRY_POLICY,
        group_size: int = 4,
        parity_count: int = 2,
        fast_path: bool = True,
        shrink: bool = False,
        merge_threshold: float = 0.4,
        automaton: bool = True,
    ) -> None:
        self.params = params
        # ``fast_path=False`` pins the reference per-chunk codec — the
        # fused-kernel equivalence harness compares the two stores
        # byte-for-byte (streams, answers and wire costs must match).
        self.pipeline = IndexPipeline(params, encoder, fast_path=fast_path)
        # ``automaton=False`` pins batched scans to the per-needle
        # sweep (no multi-needle gram index) — the middle rung of the
        # automaton ≡ per-needle ≡ scalar equivalence ladder.
        self.automaton = automaton
        self.network = network or Network()
        keys = KeyHierarchy(params.master_key)
        self._keys = keys
        self._record_cipher = CtrCipher(keys.record_store_key())
        # "A standard SDDS such as LH* or its high-availability
        # version LH*_RS is used to store index records and the
        # records themselves" (§5) — HA applies to both files.
        # ``group_size``/``parity_count`` shape the parity code (the
        # paper's m and k): with HA on, up to ``parity_count`` crashed
        # buckets per group keep every get and search answerable.
        file_type = LHStarRSFile if high_availability else LHStarFile
        # ``shrink`` makes both files merge back when deletes empty
        # them (the membership/elasticity story rides on the same
        # flag on either backend).
        file_kwargs: dict = {
            "shrink": shrink,
            "merge_threshold": merge_threshold,
        }
        if high_availability:
            file_kwargs.update(
                group_size=group_size,
                parity_count=parity_count,
            )
        self.record_file: LHStarFile = file_type(
            name=f"{name}-store",
            network=self.network,
            bucket_capacity=bucket_capacity,
            retry_policy=retry_policy,
            **file_kwargs,
        )
        self.index_file: LHStarFile = file_type(
            name=f"{name}-index",
            network=self.network,
            bucket_capacity=bucket_capacity,
            retry_policy=retry_policy,
            **file_kwargs,
        )
        sites = params.dispersal
        groups = params.layout.group_count
        self._site_bits = max(sites - 1, 0).bit_length()
        self._group_bits = max(groups - 1, 0).bit_length()
        self._suffix_bits = self._site_bits + self._group_bits
        #: Wire-encodable inverse of :meth:`index_key`, handed to scan
        #: matchers so they can cross a process boundary.
        self.key_codec = IndexKeyCodec(
            site_bits=self._site_bits, group_bits=self._group_bits
        )
        self._rids: set[int] = set()

    # -- index keying --------------------------------------------------------

    def index_key(self, rid: int, group: int, site: int) -> int:
        """RID with chunking and site ids appended as LSBs (paper §5)."""
        return (
            (rid << self._suffix_bits)
            | (group << self._site_bits)
            | site
        )

    def decode_index_key(self, key: int) -> tuple[int, int, int]:
        return self.key_codec(key)

    # -- text <-> content (8-bit ASCII or 16-bit Unicode symbols) --------------

    def _to_content(self, text: str) -> bytes:
        """Zero-terminated symbol string per the configured width."""
        if self.params.symbol_width == 1:
            return text.encode("ascii") + b"\x00"
        return text.encode("utf-16-be") + b"\x00\x00"

    def _from_content(self, content: bytes) -> str:
        width = self.params.symbol_width
        if width == 1:
            return content.rstrip(b"\x00").decode("ascii")
        # Strip zero *symbols* (aligned pairs) — a code unit like
        # U+0100 ends in a zero byte but is not a zero symbol.
        while content.endswith(b"\x00\x00"):
            content = content[:-2]
        return content.decode("utf-16-be")

    def _pattern_bytes(self, pattern: str) -> bytes:
        if self.params.symbol_width == 1:
            return pattern.encode("ascii")
        return pattern.encode("utf-16-be")

    # -- data plane ---------------------------------------------------------------

    def put(self, rid: int, text: str) -> None:
        """Store a record: strong copy + all its index streams."""
        with obs_span("ess.put", network=self.network, rid=rid):
            content = self._to_content(text)
            ciphertext = self._record_cipher.encrypt(
                content, self._keys.record_nonce(rid)
            )
            self.record_file.insert(rid, ciphertext)
            for (group, site), stream in (
                self.pipeline.build_index_streams(content).items()
            ):
                self.index_file.insert(
                    self.index_key(rid, group, site), stream
                )
            self._rids.add(rid)

    def bulk_load(
        self, records: dict[int, str], concurrency: int = 8
    ) -> None:
        """Load many records with concurrent batches.

        Client-side encryption and index building run up front; the
        record-store and index inserts then enter the network in
        large concurrent batches instead of one network round per
        record — the practical way to populate a deployment.
        """
        with obs_span("ess.bulk_load", network=self.network,
                      records=len(records), concurrency=concurrency):
            self._bulk_load(records, concurrency)

    def _bulk_load(
        self, records: dict[int, str], concurrency: int
    ) -> None:
        # Build the fused codec tables up front (a no-op for large
        # chunk domains) so the per-record loop below is pure table
        # lookups from the first record on.
        self.pipeline.warm()
        record_ops = []
        index_ops = []
        for rid, text in records.items():
            content = self._to_content(text)
            record_ops.append((
                "insert",
                rid,
                self._record_cipher.encrypt(
                    content, self._keys.record_nonce(rid)
                ),
            ))
            for (group, site), stream in (
                self.pipeline.build_index_streams(content).items()
            ):
                index_ops.append(
                    ("insert", self.index_key(rid, group, site), stream)
                )
            self._rids.add(rid)
        self.record_file.run_concurrent(record_ops,
                                        concurrency=concurrency)
        self.index_file.run_concurrent(index_ops,
                                       concurrency=concurrency)

    def get(self, rid: int) -> str | None:
        """Fetch and decrypt one record by RID."""
        with obs_span("ess.get", network=self.network, rid=rid):
            ciphertext = self.record_file.lookup(rid)
            if ciphertext is None:
                return None
            content = self._record_cipher.decrypt(
                ciphertext, self._keys.record_nonce(rid)
            )
            return self._from_content(content)

    def delete(self, rid: int) -> bool:
        """Remove a record and all of its index streams."""
        with obs_span("ess.delete", network=self.network, rid=rid):
            removed = self.record_file.delete(rid)
            if removed:
                for group in range(self.params.layout.group_count):
                    for site in range(self.params.dispersal):
                        self.index_file.delete(
                            self.index_key(rid, group, site)
                        )
                self._rids.discard(rid)
            return removed

    def __len__(self) -> int:
        return len(self._rids)

    # -- search ---------------------------------------------------------------------

    def search(
        self,
        pattern: str,
        verify: bool = True,
        anchor_start: bool = False,
        anchor_end: bool = False,
    ) -> SearchResult:
        """Parallel content search for ``pattern``.

        With ``verify`` the candidates are fetched, decrypted and
        checked, so the result separates true matches from false
        positives (the client-side post-filter the paper assumes).
        Without it, ``matches`` equals ``candidates`` unverified.

        Anchors (the paper's "search for 'Schwarz ' with a leading
        space and a trailing zero", §2.5, done properly):

        * ``anchor_end`` — match only at the end of the record text.
          The pattern is extended with zero symbols so its chunk grid
          can tile onto the record's zero-padded final chunks; exactly
          one (chunking, alignment) pair is guaranteed to match, so
          aggregation drops to the OR rule for this query.
        * ``anchor_start`` — match only at the very beginning: the
          hit must sit at chunk position 0 of the offset-0 chunking.
        """
        with obs_span("ess.search", network=self.network,
                      pattern=pattern) as span:
            result = self._search(
                pattern, verify, anchor_start, anchor_end
            )
            self._finish_search_span(span, result)
            return result

    def _finish_search_span(self, span, result: SearchResult) -> None:
        """Annotate a search-type span with the result's shape and
        feed the latency/false-positive histograms (no-ops without an
        installed tracer/registry)."""
        span.annotate(
            candidates=len(result.candidates),
            matches=len(result.matches),
            false_positives=len(result.false_positives),
            scan_messages=(
                None if result.scan_cost is None
                else result.scan_cost.messages
            ),
            verify_messages=(
                None if result.verify_cost is None
                else result.verify_cost.messages
            ),
        )
        metric_observe("ess.search.elapsed", result.elapsed)
        metric_observe("ess.search.messages", result.cost.messages)
        metric_observe("ess.search.false_positives",
                       len(result.false_positives))

    def _search(
        self,
        pattern: str,
        verify: bool,
        anchor_start: bool,
        anchor_end: bool,
    ) -> SearchResult:
        pattern_bytes = self._pattern_bytes(pattern)
        if anchor_end:
            pattern_bytes += bytes(
                self.params.chunk_size * self.params.symbol_width
            )
        plan = self.pipeline.plan_query(pattern_bytes)
        if anchor_end:
            # The zero-extension only tiles one chunking exactly; the
            # all-groups threshold would reject true matches.
            plan = replace(plan, required_groups=1)
        before = self.network.stats.snapshot()
        started = self.network.now
        matcher = PlanScanMatcher(
            plan, self.key_codec,
            batched=self.pipeline.fast_path,
            automaton=self.automaton,
        )
        hits = self.index_file.scan(
            matcher, request_size=plan.request_size()
        )
        after_scan = self.network.stats.snapshot()
        aggregator = HitAggregator(plan)
        aggregator.add_all(hits)
        candidates = aggregator.candidates()
        if anchor_start:
            group, alignment, position = self._start_anchor(plan)
            candidates = {
                rid
                for rid in candidates
                if position in aggregator.intersected_positions(
                    rid, group, alignment
                )
            }

        if verify:
            matches = set()
            for rid in candidates:
                text = self.get(rid)
                if text is None or pattern not in text:
                    continue
                if anchor_start and not text.startswith(pattern):
                    continue
                if anchor_end and not text.endswith(pattern):
                    continue
                matches.add(rid)
        else:
            matches = set(candidates)
        return SearchResult(
            pattern=pattern,
            candidates=frozenset(candidates),
            matches=frozenset(matches),
            false_positives=frozenset(candidates - matches),
            cost=self.network.stats.diff(before),
            elapsed=self.network.now - started,
            scan_cost=after_scan.diff(before),
            verify_cost=self.network.stats.diff(after_scan),
        )

    def _batch_matcher(self, plans) -> MultiPlanScanMatcher:
        """One scan matcher multiplexing several query plans; reports
        are :class:`_BatchHit`\\ s, demux-tagged only when the round
        actually ships several patterns."""
        return MultiPlanScanMatcher(
            plans,
            self.key_codec,
            BatchHitReporter(tagged=len(plans) > 1),
            batched=self.pipeline.fast_path,
            automaton=self.automaton,
        )

    def _start_anchor(self, plan) -> tuple[int, int, int]:
        """The (group, alignment, chunk position) pinning a record-start
        match, derived from the layout and the query plan.

        A pattern occurrence at record position 0 lines up with the
        chunking of offset ``o`` exactly at query alignment ``o``, and
        its first complete chunk sits at stream position 0 — or 1 when
        that chunking stores a padded partial head chunk before it.
        Offset 0 is always stored and alignment 0 always populated, so
        in practice this returns (0, 0, 0); the scan is kept general
        so a future layout that breaks the assumption fails loudly
        instead of silently filtering out every true match.
        """
        layout = self.params.layout
        for group, offset in enumerate(layout.offsets):
            if offset in plan.alignments:
                position = (
                    0 if offset == 0 or self.params.drop_partial_chunks
                    else 1
                )
                return group, offset, position
        raise ConfigurationError(
            "layout cannot express a start anchor: no stored chunking "
            f"offset in {layout.offsets} coincides with a populated "
            f"query alignment in {plan.alignments}"
        )

    def search_all(
        self, patterns: list[str], verify: bool = True
    ) -> SearchResult:
        """Conjunctive search: records containing *every* pattern.

        All patterns ship in one parallel scan round (one message per
        index site instead of one round per pattern); candidate sets
        intersect client-side.  The paper's search protocol
        generalises to this without any server-side change — sites
        just match several needle sets.
        """
        with obs_span("ess.search_all", network=self.network,
                      patterns=list(patterns)) as span:
            result = self._search_all(patterns, verify)
            self._finish_search_span(span, result)
            return result

    def _search_all(
        self, patterns: list[str], verify: bool
    ) -> SearchResult:
        if not patterns:
            raise ConfigurationError("need at least one pattern")
        plans = [
            self.pipeline.plan_query(self._pattern_bytes(p))
            for p in patterns
        ]
        before = self.network.stats.snapshot()
        started = self.network.now

        raw = self.index_file.scan(
            self._batch_matcher(plans),
            request_size=sum(plan.request_size() for plan in plans),
        )
        after_scan = self.network.stats.snapshot()
        aggregators = [HitAggregator(plan) for plan in plans]
        for reports in raw:
            for report in reports:
                aggregators[report.index].add(report.hit)
        candidates = set.intersection(
            *(aggregator.candidates() for aggregator in aggregators)
        )
        if verify:
            matches = {
                rid
                for rid in candidates
                if (text := self.get(rid)) is not None
                and all(p in text for p in patterns)
            }
        else:
            matches = set(candidates)
        return SearchResult(
            pattern=" AND ".join(patterns),
            candidates=frozenset(candidates),
            matches=frozenset(matches),
            false_positives=frozenset(candidates - matches),
            cost=self.network.stats.diff(before),
            elapsed=self.network.now - started,
            scan_cost=after_scan.diff(before),
            verify_cost=self.network.stats.diff(after_scan),
        )

    def search_batch(
        self, patterns: list[str], verify: bool = True
    ) -> dict[str, SearchResult]:
        """Run many *independent* queries in one parallel scan round.

        The Table-4 workload shape: hundreds of last-name searches.
        Shipping all plans at once costs one round instead of one per
        query; results are per-pattern (unlike :meth:`search_all`,
        which intersects).

        Cost accounting: the scan round and the verification fetches
        are shared across patterns (each candidate record is fetched
        once, however many patterns name it), so every per-pattern
        result carries the *shared* totals — ``cost`` includes
        verification, exactly like :meth:`search`, and for a
        single-pattern batch the two entry points report identical
        numbers.
        """
        with obs_span("ess.search_batch", network=self.network,
                      patterns=len(patterns)) as span:
            results = self._search_batch(patterns, verify)
            if results:
                shared = next(iter(results.values()))
                span.annotate(
                    candidates=len(
                        set().union(*(r.candidates
                                      for r in results.values()))
                    ),
                    cost_messages=shared.cost.messages,
                )
                metric_observe("ess.search.elapsed", shared.elapsed)
            return results

    def _search_batch(
        self, patterns: list[str], verify: bool
    ) -> dict[str, SearchResult]:
        if not patterns:
            raise ConfigurationError("need at least one pattern")
        unique = list(dict.fromkeys(patterns))
        plans = [
            self.pipeline.plan_query(self._pattern_bytes(p))
            for p in unique
        ]
        before = self.network.stats.snapshot()
        started = self.network.now

        raw = self.index_file.scan(
            self._batch_matcher(plans),
            request_size=sum(plan.request_size() for plan in plans),
        )
        after_scan = self.network.stats.snapshot()
        aggregators = [HitAggregator(plan) for plan in plans]
        for reports in raw:
            for report in reports:
                aggregators[report.index].add(report.hit)
        outcomes: list[tuple[str, set[int], set[int]]] = []
        text_cache: dict[int, str | None] = {}
        for pattern, aggregator in zip(unique, aggregators):
            candidates = aggregator.candidates()
            if verify:
                matches = set()
                for rid in candidates:
                    if rid not in text_cache:
                        text_cache[rid] = self.get(rid)
                    text = text_cache[rid]
                    if text is not None and pattern in text:
                        matches.add(rid)
            else:
                matches = set(candidates)
            outcomes.append((pattern, candidates, matches))
        # Snapshot once all shared work — scan round *and* candidate
        # fetches — is done, so batch results account verification
        # exactly like single-pattern search() does.
        cost = self.network.stats.diff(before)
        scan_cost = after_scan.diff(before)
        verify_cost = self.network.stats.diff(after_scan)
        elapsed = self.network.now - started
        return {
            pattern: SearchResult(
                pattern=pattern,
                candidates=frozenset(candidates),
                matches=frozenset(matches),
                false_positives=frozenset(candidates - matches),
                cost=cost,
                elapsed=elapsed,
                scan_cost=scan_cost,
                verify_cost=verify_cost,
            )
            for pattern, candidates, matches in outcomes
        }

    # -- key rotation -----------------------------------------------------------

    def rekey(self, new_master: bytes) -> None:
        """Rotate the master secret: re-encrypt the record store and
        rebuild every index stream under the new key hierarchy.

        Client-driven, as the threat model requires — storage sites
        only ever see old ciphertext going out and new ciphertext
        coming in.  O(records) cost, reported through the usual
        message counters.
        """
        with obs_span("ess.rekey", network=self.network,
                      records=len(self._rids)):
            self._rekey(new_master)

    def _rekey(self, new_master: bytes) -> None:
        if not new_master:
            raise ConfigurationError("new master key must be non-empty")
        plaintexts = {rid: self.get(rid) for rid in sorted(self._rids)}
        new_params = replace(self.params, master_key=new_master)
        new_keys = KeyHierarchy(new_master)
        new_cipher = CtrCipher(new_keys.record_store_key())
        new_pipeline = IndexPipeline(
            new_params, self.pipeline.encoder,
            fast_path=self.pipeline.fast_path,
        )
        for rid, text in plaintexts.items():
            if text is None:
                continue
            content = self._to_content(text)
            self.record_file.insert(
                rid, new_cipher.encrypt(content, new_keys.record_nonce(rid))
            )
            for (group, site), stream in (
                new_pipeline.build_index_streams(content).items()
            ):
                self.index_file.insert(
                    self.index_key(rid, group, site), stream
                )
        self.params = new_params
        self._keys = new_keys
        self._record_cipher = new_cipher
        self.pipeline = new_pipeline

    def search_short(
        self,
        pattern: str,
        alphabet: str = " ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789&'-",
        verify: bool = True,
    ) -> SearchResult:
        """The paper's §2.3 kludge for sub-minimum patterns.

        "We can 'kludge' a search strategy for search strings of
        length s−1 by adding all possible characters to the end of
        the string.  This method is wasteful and might pose a
        security risk if an attacker snoops network traffic."

        Both caveats are real here: the query fans out to
        ``len(alphabet) + 1`` extended patterns (every alphabet
        extension plus the record-final case via the zero symbol),
        shipped in one batched scan round; the fan-out itself tells a
        network observer the query was short.  Recursion extends
        patterns more than one symbol short of the minimum.
        """
        with obs_span("ess.search_short", network=self.network,
                      pattern=pattern) as span:
            result = self._search_short(pattern, alphabet, verify)
            self._finish_search_span(span, result)
            return result

    def _search_short(
        self, pattern: str, alphabet: str, verify: bool
    ) -> SearchResult:
        deficit = self.params.min_query_length - len(pattern)
        if deficit <= 0:
            return self.search(pattern, verify=verify)
        import itertools

        extensions = [
            pattern + "".join(tail)
            for tail in itertools.product(alphabet, repeat=deficit)
        ]
        before = self.network.stats.snapshot()
        started = self.network.now
        batched = self.search_batch(extensions, verify=False)
        candidates: set[int] = set()
        for result in batched.values():
            candidates |= result.candidates
        # The record-final case: the short pattern followed only by
        # the terminator/padding — covered by the end-anchored query.
        anchored = self.search(pattern, anchor_end=True, verify=False)
        candidates |= anchored.candidates
        after_scan = self.network.stats.snapshot()
        if verify:
            matches = {
                rid
                for rid in candidates
                if (text := self.get(rid)) is not None and pattern in text
            }
        else:
            matches = set(candidates)
        return SearchResult(
            pattern=pattern,
            candidates=frozenset(candidates),
            matches=frozenset(matches),
            false_positives=frozenset(candidates - matches),
            cost=self.network.stats.diff(before),
            elapsed=self.network.now - started,
            scan_cost=after_scan.diff(before),
            verify_cost=self.network.stats.diff(after_scan),
        )

    # -- planning / introspection -------------------------------------------------

    def explain(self, pattern: str) -> str:
        """A human-readable query plan, with an analytical FP estimate.

        Shows what the query will cost before running it: the
        alignments and needle payload the plan ships, the aggregation
        rule in force, and — when a Stage-2 encoder is trained — the
        expected number of random-text false positives from
        :mod:`repro.analysis.model`.
        """
        pattern_bytes = self._pattern_bytes(pattern)
        plan = self.pipeline.plan_query(pattern_bytes)
        layout = self.params.layout
        lines = [
            f"query {pattern!r} ({len(pattern_bytes) // self.params.symbol_width} symbols)",
            f"  scheme: {self.params.describe()}",
            f"  alignments used: {list(plan.alignments)} of "
            f"{layout.alignments}",
            f"  needles shipped: {len(plan.needles) * plan.sites} "
            f"streams, {plan.request_size()} bytes per site",
            f"  candidate rule: >= {plan.required_groups} of "
            f"{plan.group_count} chunking groups"
            + (f", all {plan.sites} dispersal sites at one offset"
               if plan.sites > 1 else ""),
        ]
        encoder = self.pipeline.encoder
        if encoder is not None and encoder.training_counts:
            from repro.analysis.model import (
                code_distribution,
                spurious_match_probability,
            )
            distribution = code_distribution(encoder)
            query_codes = [
                self.pipeline.chunk_value(chunk)
                for chunk in query_series(
                    pattern_bytes, layout.chunk_size,
                    plan.alignments[0],
                    symbol_width=self.params.symbol_width,
                )
            ]
            typical_record = 40 // self.params.chunk_size
            per_record = spurious_match_probability(
                distribution, query_codes, typical_record
            )
            lines.append(
                f"  random-text FP estimate: "
                f"{per_record * len(self._rids):.2f} expected over "
                f"{len(self._rids)} records (independence baseline; "
                "structured corpora run higher)"
            )
        return "\n".join(lines)

    # -- accounting ----------------------------------------------------------------

    def footprint(self) -> StorageFootprint:
        """Stored bytes by role, for the §2.5 overhead analysis."""
        record_bytes = sum(
            len(record.content)
            for record in self.record_file.all_records()
        )
        index_records = self.index_file.all_records()
        return StorageFootprint(
            record_bytes=record_bytes,
            index_bytes=sum(len(r.content) for r in index_records),
            index_records=len(index_records),
        )

    @classmethod
    def with_trained_encoder(
        cls,
        params: SchemeParameters,
        training_texts: list[bytes],
        **kwargs,
    ) -> "EncryptedSearchableStore":
        """Convenience constructor: train the Stage-2 encoder on a
        representative corpus (the paper's 'preprocess a representative
        part of the database')."""
        if params.n_codes is None:
            raise ConfigurationError(
                "with_trained_encoder requires n_codes to be set"
            )
        encoder = FrequencyEncoder.train(
            training_texts, params.chunk_bytes, params.n_codes
        )
        return cls(params, encoder=encoder, **kwargs)
