"""Stage 2: redundancy removal by frequency-equalising lossy encoding.

The paper (section 3): "we preprocess the symbols by placing them into
a smaller number of buckets and encode them by bucket number … we can
preprocess a representative part of the database and count the
occurrence of each chunk.  We then place these characters into
buckets, one for each encoded symbol, in order of frequency of
occurrence."

The assignment rule visible in the paper's Figure 5 is **greedy
least-loaded**: walk the chunks in decreasing frequency and put each
into the bucket with the smallest accumulated count (ties to the
lowest bucket index).  We verified the figure reproduces under this
rule symbol-for-symbol (space→0, A→1, …, S→7, T→6, …), and the unit
tests pin it.

Encoding is deliberately lossy — all chunks in a bucket become the
same code — which flattens the frequency profile the ECB leaks, at the
price of search false positives.  Tables 3, 4 and 5 of the paper
quantify exactly this trade-off and are reproduced by the benches on
top of this class.
"""

from __future__ import annotations

import hashlib
import sys
from array import array
from collections import Counter
from typing import Iterable, Sequence

from repro.core.errors import ConfigurationError


def census_chunks(
    texts: Iterable[bytes], chunk_size: int
) -> Counter:
    """Count non-overlapping offset-0 chunks, dropping partial tails.

    This is the paper's training pass: "LITWIN WITOLD" with n = 4
    becomes ("LITW", "IN W", "ITOL") — the odd tail symbol is dropped.
    """
    if chunk_size < 1:
        raise ConfigurationError("chunk size must be positive")
    counts: Counter = Counter()
    for text in texts:
        limit = len(text) - chunk_size + 1
        for start in range(0, limit, chunk_size):
            counts[text[start:start + chunk_size]] += 1
    return counts


def least_loaded_assignment(
    counts: Counter, n_codes: int
) -> dict[bytes, int]:
    """Greedy least-loaded bucket assignment (paper Figure 5).

    Chunks are processed by decreasing count (ties between chunks by
    chunk value).  Each goes into the least-loaded bucket; among
    equally loaded buckets the *most recently loaded* one wins, and
    buckets never used rank by lowest index.  This is the rule that
    reproduces the paper's Figure 5 assignment symbol-for-symbol
    (space→0 … W→7, '-'→5), as pinned by
    ``tests/core/test_encoder.py::TestFigure5``.
    """
    if n_codes < 2:
        raise ConfigurationError("need at least 2 codes")
    loads = [0] * n_codes
    last_used = [-1] * n_codes
    assignment: dict[bytes, int] = {}
    for step, (chunk, count) in enumerate(sorted(
        counts.items(), key=lambda item: (-item[1], item[0])
    )):
        bucket = min(
            range(n_codes),
            key=lambda b: (loads[b], -last_used[b], b),
        )
        assignment[chunk] = bucket
        loads[bucket] += count
        last_used[bucket] = step
    return assignment


class FrequencyEncoder:
    """A trained Stage-2 encoder: chunk -> code in ``range(n_codes)``.

    Codes pack into a fixed-width byte stream (1 byte for up to 256
    codes, 2 bytes beyond) so record streams support C-level substring
    search.  Chunks never seen in training map deterministically to a
    hash-derived bucket, keeping the encoder total.

    >>> enc = FrequencyEncoder.train([b"ABAB"], chunk_size=1, n_codes=2)
    >>> enc.encode_chunk(b"A") != enc.encode_chunk(b"B")
    True
    """

    def __init__(
        self,
        chunk_size: int,
        n_codes: int,
        assignment: dict[bytes, int],
        training_counts: Counter | None = None,
    ) -> None:
        if n_codes < 2 or n_codes > 1 << 16:
            raise ConfigurationError("codes must lie in [2, 65536]")
        for chunk, code in assignment.items():
            if len(chunk) != chunk_size:
                raise ConfigurationError(
                    f"assignment chunk {chunk!r} has wrong size"
                )
            if not 0 <= code < n_codes:
                raise ConfigurationError(f"code {code} out of range")
        self.chunk_size = chunk_size
        self.n_codes = n_codes
        self.assignment = dict(assignment)
        self.training_counts = training_counts or Counter()
        self.code_width = 1 if n_codes <= 256 else 2
        # Total chunk -> code memo: starts as the trained assignment
        # and absorbs the hash-derived codes of unseen chunks on first
        # sight, so bulk encoding is one dict probe per chunk.
        self._code_cache: dict[bytes, int] = dict(self.assignment)

    @classmethod
    def train(
        cls,
        texts: Iterable[bytes],
        chunk_size: int,
        n_codes: int,
    ) -> "FrequencyEncoder":
        counts = census_chunks(texts, chunk_size)
        if not counts:
            raise ConfigurationError("empty training corpus")
        return cls(
            chunk_size=chunk_size,
            n_codes=n_codes,
            assignment=least_loaded_assignment(counts, n_codes),
            training_counts=counts,
        )

    # -- encoding -----------------------------------------------------------

    def encode_chunk(self, chunk: bytes) -> int:
        if len(chunk) != self.chunk_size:
            raise ValueError(
                f"chunk of length {len(chunk)}, expected {self.chunk_size}"
            )
        code = self._code_cache.get(chunk)
        if code is None:
            code = self._miss_code(chunk)
        return code

    def _miss_code(self, chunk: bytes) -> int:
        """Deterministic fallback for unseen chunks, memoised."""
        digest = hashlib.blake2b(chunk, digest_size=4).digest()
        code = int.from_bytes(digest, "big") % self.n_codes
        self._code_cache[chunk] = code
        return code

    def encode_chunks(self, chunks: Sequence[bytes]) -> list[int]:
        """Bulk :meth:`encode_chunk`: one memo probe per chunk.

        Length validation happens on the miss path only — a chunk of
        the wrong size can never be in the memo, so misbehaving input
        still raises exactly like the scalar method.
        """
        cache = self._code_cache
        miss = self._miss_code
        size = self.chunk_size
        out = []
        append = out.append
        for chunk in chunks:
            code = cache.get(chunk)
            if code is None:
                if len(chunk) != size:
                    raise ValueError(
                        f"chunk of length {len(chunk)}, expected {size}"
                    )
                code = miss(chunk)
            append(code)
        return out

    def pack(self, codes: Sequence[int]) -> bytes:
        """Pack codes into the fixed-width byte stream."""
        if self.code_width == 1:
            return bytes(codes)
        packed = array("H", codes)
        if sys.byteorder == "little":
            packed.byteswap()
        return packed.tobytes()

    def encode_symbols(self, text: bytes) -> bytes:
        """Per-symbol encoding of a whole text (chunk size must be 1).

        This is the Table-4 "FP1" representation: every 8-bit symbol
        independently replaced by its bucket code.
        """
        if self.chunk_size != 1:
            raise ConfigurationError(
                "encode_symbols requires a chunk-size-1 encoder"
            )
        return self.pack(self.encode_chunks(
            [text[i:i + 1] for i in range(len(text))]
        ))

    def encode_values_nonoverlapping(
        self, text: bytes, offset: int
    ) -> list[int]:
        """Code values of the offset-o non-overlapping chunking of
        ``text``, dropping partial edge chunks — the unpacked form of
        :meth:`encode_nonoverlapping`, vectorised over the stream.
        """
        if not 0 <= offset < self.chunk_size:
            raise ConfigurationError(
                f"offset {offset} outside [0, {self.chunk_size})"
            )
        size = self.chunk_size
        return self.encode_chunks([
            text[start:start + size]
            for start in range(offset, len(text) - size + 1, size)
        ])

    def encode_values_sliding(
        self, text: bytes, step: int = 1
    ) -> list[int]:
        """Code values of every overlapping (sliding-window) chunk of
        ``text``, window start advancing by ``step`` bytes.

        Complements :meth:`encode_values_nonoverlapping`: with
        ``step=1`` the offset-``o`` non-overlapping values are exactly
        the ``[o::chunk_size]`` stride of this list, so one sliding
        pass feeds every chunking of a full layout at once (the index
        pipeline's record-build fast path).  Partial edge windows are
        dropped, like the non-overlapping form.
        """
        if step < 1:
            raise ConfigurationError("step must be positive")
        size = self.chunk_size
        return self.encode_chunks([
            text[start:start + size]
            for start in range(0, len(text) - size + 1, step)
        ])

    def encode_nonoverlapping(self, text: bytes, offset: int) -> bytes:
        """Encode the offset-o non-overlapping chunking of ``text``,
        dropping partial edge chunks (the paper's section-7 procedure).
        """
        return self.pack(self.encode_values_nonoverlapping(text, offset))

    # -- introspection -----------------------------------------------------

    def bucket_loads(self) -> list[int]:
        """Training-frequency mass per code bucket."""
        loads = [0] * self.n_codes
        for chunk, count in self.training_counts.items():
            loads[self.assignment[chunk]] += count
        return loads

    def assignment_table(self) -> list[tuple[bytes, int, int]]:
        """(chunk, training count, code), by decreasing count —
        the paper's Figure 5 layout."""
        return sorted(
            (
                (chunk, self.training_counts.get(chunk, 0), code)
                for chunk, code in self.assignment.items()
            ),
            key=lambda row: (-row[1], row[0]),
        )

    def compression_ratio(self) -> float:
        """Bits out per bits in: code bits / (8 · chunk size)."""
        code_bits = max(1, (self.n_codes - 1).bit_length())
        return code_bits / (8 * self.chunk_size)
