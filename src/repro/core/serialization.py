"""Persistence for trained scheme artifacts.

A deployment trains the Stage-2 encoder (and optionally the pair
compressor) once on a representative corpus, then ships the same
artifact to every client — otherwise searches would not match the
stored streams.  These helpers serialise the trained state to plain
JSON-compatible dicts (and strings), with strict validation on load.

Scheme parameters serialise too, so a whole configuration can live in
a config file:

>>> from repro.core import SchemeParameters
>>> p = SchemeParameters.full(4, n_codes=64)
>>> params_from_dict(params_to_dict(p)) == p
True
"""

from __future__ import annotations

import base64
import json
from collections import Counter
from typing import Any

from repro.core.chunking import StorageLayout
from repro.core.compression import PairCompressor
from repro.core.config import SchemeParameters
from repro.core.encoder import FrequencyEncoder
from repro.core.errors import ConfigurationError

_FORMAT_VERSION = 1


def _b64(raw: bytes) -> str:
    return base64.b64encode(raw).decode("ascii")


def _unb64(text: str) -> bytes:
    return base64.b64decode(text.encode("ascii"))


# ---------------------------------------------------------------------------
# SchemeParameters
# ---------------------------------------------------------------------------

def params_to_dict(params: SchemeParameters) -> dict[str, Any]:
    return {
        "version": _FORMAT_VERSION,
        "chunk_size": params.layout.chunk_size,
        "offsets": list(params.layout.offsets),
        "alignments": params.layout.alignments,
        "n_codes": params.n_codes,
        "dispersal": params.dispersal,
        "encrypt": params.encrypt,
        "drop_partial_chunks": params.drop_partial_chunks,
        "symbol_width": params.symbol_width,
        "aggregation": params.aggregation,
        "master_key": _b64(params.master_key),
    }


def params_from_dict(data: dict[str, Any]) -> SchemeParameters:
    _check_version(data)
    layout = StorageLayout(
        chunk_size=data["chunk_size"],
        offsets=tuple(data["offsets"]),
        alignments=data["alignments"],
    )
    return SchemeParameters(
        layout=layout,
        n_codes=data["n_codes"],
        dispersal=data["dispersal"],
        encrypt=data["encrypt"],
        drop_partial_chunks=data["drop_partial_chunks"],
        symbol_width=data.get("symbol_width", 1),
        aggregation=data.get("aggregation", "auto"),
        master_key=_unb64(data["master_key"]),
    )


# ---------------------------------------------------------------------------
# FrequencyEncoder
# ---------------------------------------------------------------------------

def encoder_to_json(encoder: FrequencyEncoder) -> str:
    payload = {
        "version": _FORMAT_VERSION,
        "chunk_size": encoder.chunk_size,
        "n_codes": encoder.n_codes,
        "assignment": {
            _b64(chunk): code
            for chunk, code in encoder.assignment.items()
        },
        "training_counts": {
            _b64(chunk): count
            for chunk, count in encoder.training_counts.items()
        },
    }
    return json.dumps(payload, sort_keys=True)


def encoder_from_json(text: str) -> FrequencyEncoder:
    data = json.loads(text)
    _check_version(data)
    return FrequencyEncoder(
        chunk_size=data["chunk_size"],
        n_codes=data["n_codes"],
        assignment={
            _unb64(chunk): code
            for chunk, code in data["assignment"].items()
        },
        training_counts=Counter(
            {
                _unb64(chunk): count
                for chunk, count in data["training_counts"].items()
            }
        ),
    )


# ---------------------------------------------------------------------------
# PairCompressor
# ---------------------------------------------------------------------------

def compressor_to_json(compressor: PairCompressor) -> str:
    payload = {
        "version": _FORMAT_VERSION,
        "left": sorted(compressor.left),
        "right": sorted(compressor.right),
        "pair_codes": [
            [a, b, code]
            for (a, b), code in sorted(compressor.pair_codes.items())
        ],
        "single_codes": sorted(compressor.single_codes.items()),
        "n_codes": compressor.n_codes,
        "lossy_map": (
            sorted(compressor.lossy_map.items())
            if compressor.lossy_map is not None else None
        ),
    }
    return json.dumps(payload, sort_keys=True)


def compressor_from_json(text: str) -> PairCompressor:
    data = json.loads(text)
    _check_version(data)
    return PairCompressor(
        left=set(data["left"]),
        right=set(data["right"]),
        pair_codes={
            (a, b): code for a, b, code in data["pair_codes"]
        },
        single_codes=dict(
            (symbol, code) for symbol, code in data["single_codes"]
        ),
        n_codes=data["n_codes"],
        lossy_map=(
            {code: bucket for code, bucket in data["lossy_map"]}
            if data["lossy_map"] is not None else None
        ),
    )


# ---------------------------------------------------------------------------
# Whole-store persistence
# ---------------------------------------------------------------------------

def store_to_json(store) -> str:
    """Serialise an EncryptedSearchableStore: configuration, trained
    encoder and every stored ciphertext/index stream.

    The dump contains *no plaintext* beyond what the sites themselves
    hold — record ciphertexts and index streams — plus the
    configuration (which includes the master key: the dump is the
    client's backup, not a site artifact; protect it accordingly).
    """
    payload = {
        "version": _FORMAT_VERSION,
        "params": params_to_dict(store.params),
        "encoder": (
            encoder_to_json(store.pipeline.encoder)
            if store.pipeline.encoder is not None else None
        ),
        "records": {
            str(record.rid): _b64(record.content)
            for record in store.record_file.all_records()
        },
        "index": {
            str(record.rid): _b64(record.content)
            for record in store.index_file.all_records()
        },
        "rids": sorted(store._rids),
    }
    return json.dumps(payload, sort_keys=True)


def store_from_json(text: str, **store_options):
    """Rebuild a store from :func:`store_to_json` output.

    The LH* files are repopulated by re-insertion, so the restored
    deployment re-balances for its own bucket capacity; contents are
    bit-identical to the dump.
    """
    from repro.core.scheme import EncryptedSearchableStore

    data = json.loads(text)
    _check_version(data)
    params = params_from_dict(data["params"])
    encoder = (
        encoder_from_json(data["encoder"])
        if data["encoder"] is not None else None
    )
    store = EncryptedSearchableStore(params, encoder=encoder,
                                     **store_options)
    for key, blob in data["records"].items():
        store.record_file.insert(int(key), _unb64(blob))
    for key, blob in data["index"].items():
        store.index_file.insert(int(key), _unb64(blob))
    store._rids = set(data["rids"])
    return store


def _check_version(data: dict[str, Any]) -> None:
    version = data.get("version")
    if version != _FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported serialization version {version!r} "
            f"(this build reads version {_FORMAT_VERSION})"
        )
