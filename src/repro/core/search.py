"""Search-side machinery: aligned matching and hit aggregation.

Matching is chunk-aligned consecutive equality (paper section 2.3:
sites "try to match consecutive chunks").  Because streams are packed
at a fixed byte width, an occurrence of the needle bytes at byte
offset ``b`` is a chunk-aligned hit iff ``b % width == 0``; the chunk
position is then ``b // width``.

Aggregation implements the paper's two-level rule:

1. **within a chunking group** (Figure 3): all ``k`` dispersal sites
   must hit *at the same offset* — set intersection of per-site
   position sets, per alignment;
2. **across chunking groups**: a record is a candidate when at least
   ``required_groups`` groups report a hit — ``s`` of ``s`` for the
   full layout of section 2.3 ("all sites indeed report a hit"), any
   single group for the reduced layouts of section 2.5 ("only one
   site will report a hit").
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from repro.core.automaton import plan_signature, plans_automaton

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.automaton import ScanAutomaton
    from repro.sdds.haystack import BucketHaystack
    from repro.sdds.records import Record


def aligned_find(haystack: bytes, needle: bytes, width: int) -> list[int]:
    """Chunk positions where ``needle`` occurs chunk-aligned.

    >>> aligned_find(b"ABCD", b"CD", 2)
    [1]
    >>> aligned_find(b"ABCD", b"BC", 2)
    []
    """
    if width < 1:
        raise ValueError("width must be positive")
    if not needle:
        raise ValueError("empty needle")
    positions = []
    start = haystack.find(needle)
    while start != -1:
        if start % width == 0:
            positions.append(start // width)
        start = haystack.find(needle, start + 1)
    return positions


@dataclass(frozen=True)
class SearchPlan:
    """Everything a site or aggregator needs to execute one query.

    ``needles[(group, alignment)]`` is the tuple of per-site packed
    needle streams for that chunking/alignment pair.
    """

    pattern: bytes
    needles: dict[tuple[int, int], tuple[bytes, ...]]
    piece_width: int
    sites: int
    group_count: int
    alignments: tuple[int, ...]
    required_groups: int

    def match_site(
        self, group: int, site: int, stream: bytes
    ) -> dict[int, list[int]]:
        """Hits of one site's index stream: alignment -> positions."""
        hits: dict[int, list[int]] = {}
        for alignment in self.alignments:
            needle = self.needles[(group, alignment)][site]
            positions = aligned_find(stream, needle, self.piece_width)
            if positions:
                hits[alignment] = positions
        return hits

    def request_size(self) -> int:
        """Accounted wire size of shipping all needles to one site."""
        return sum(
            len(stream)
            for streams in self.needles.values()
            for stream in streams
        )


@dataclass(frozen=True)
class IndexKeyCodec:
    """The bit layout of the scheme's index keys, as a first-class
    value.

    The store packs ``RID · 2^b | group · 2^(site bits) | site`` into
    one integer key (paper §5); matchers need the inverse to attribute
    hits.  Passing this dataclass (rather than a bound method of the
    store) keeps matchers *wire-encodable*: the live transport ships a
    matcher to a bucket process as ``(plan, site_bits, group_bits)``
    and reconstructs an identical codec on the far side.

    >>> codec = IndexKeyCodec(site_bits=2, group_bits=1)
    >>> codec((5 << 3) | (1 << 2) | 2)
    (5, 1, 2)
    """

    site_bits: int
    group_bits: int

    def __call__(self, key: int) -> tuple[int, int, int]:
        site = key & ((1 << self.site_bits) - 1)
        group = (key >> self.site_bits) & ((1 << self.group_bits) - 1)
        rid = key >> (self.site_bits + self.group_bits)
        return rid, group, site


@dataclass
class SiteHit:
    """One site's report for one record: where each alignment matched."""

    rid: int
    group: int
    site: int
    positions: dict[int, list[int]] = field(default_factory=dict)

    @property
    def wire_size(self) -> int:
        """Accounted encoded size of this hit on the simulated wire:
        an 8-byte RID, one byte each for the group and site ids, and
        per alignment a 2-byte tag plus 4 bytes per chunk position.
        The scan-reply accounting in :mod:`repro.sdds.lhstar` bills
        hits through this protocol."""
        return 10 + sum(
            2 + 4 * len(positions)
            for positions in self.positions.values()
        )


def _site_partition(
    haystack: "BucketHaystack",
    decode: Callable[[int], tuple[int, int, int]],
) -> dict[tuple[int, int], "BucketHaystack"]:
    """Split one bucket haystack into per-(group, site) sub-haystacks.

    The bucket mixes index records of different chunking groups and
    dispersal sites; a needle may only legally hit records of its own
    (group, site).  Scanning the mixed blob would find — then discard —
    every cross-site coincidence, which makes the batched path *slower*
    than the scalar loop on dispersed layouts.  The partition restores
    the invariant that every ``find`` sweep only touches bytes the
    needle could match.
    """
    from repro.sdds.haystack import BucketHaystack

    classes: dict[tuple[int, int], list[tuple[int, bytes]]] = {}
    for key, segment in haystack.segments():
        __, group, site = decode(key)
        classes.setdefault((group, site), []).append(
            (key, bytes(segment))
        )
    return {
        ids: BucketHaystack.from_segments(pairs)
        for ids, pairs in classes.items()
    }


def bucket_plan_hits(
    plan: SearchPlan,
    haystack: "BucketHaystack",
    decode: Callable[[int], tuple[int, int, int]],
    automaton: "ScanAutomaton | None" = None,
) -> dict[int, dict[int, list[int]]]:
    """One plan's hits over one bucket haystack: record key ->
    (alignment -> positions).

    Runs every needle once over its (group, site) sub-haystack (see
    :func:`_site_partition`; the partition is memoised on the haystack,
    so it is built once per bucket lifetime, not per query) instead of
    once per record.  With an ``automaton``
    (:class:`repro.core.automaton.ScanAutomaton`) the needle lookups
    route through the multi-needle gram index where its thresholds say
    the single sweep wins — the hit stream is byte-identical either
    way.  Position lists come out ascending per record and alignment
    keys keep the plan's needle iteration order, matching the
    per-record :meth:`SearchPlan.match_site` path exactly.
    """
    width = plan.piece_width
    partition = haystack.view(
        "site-partition", lambda h: _site_partition(h, decode)
    )
    per_record: dict[int, dict[int, list[int]]] = {}
    for (group, alignment), streams in plan.needles.items():
        for site, needle in enumerate(streams):
            sub = partition.get((group, site))
            if sub is None:
                continue
            if automaton is not None:
                grouped = automaton.lookup_grouped(
                    sub, (group, site), needle, width
                )
                if grouped is not None:
                    # Index hits arrive pre-grouped per record (blob
                    # order, positions ascending): extending per group
                    # builds the same lists as the per-hit loop below.
                    for key, positions in grouped:
                        record_hits = per_record.setdefault(key, {})
                        record_hits.setdefault(
                            alignment, []
                        ).extend(positions)
                    continue
            for key, position in sub.find_all(needle, width):
                record_hits = per_record.setdefault(key, {})
                record_hits.setdefault(alignment, []).append(position)
    return per_record


class PlanScanMatcher:
    """The scan matcher of one single-plan query.

    Two server-side forms, byte-identical in what they report:

    * **per record** (``matcher(record)``) — the reference path, also
      the only form degraded parity scans can use (reconstructed
      records arrive one at a time);
    * **per bucket** (:meth:`match_bucket`) — each needle sweeps the
      bucket's concatenated haystack once.  Disabled (the attribute is
      ``None``, so buckets fall back to the per-record loop) when the
      store runs with ``fast_path=False``.

    Alignment keys inside each hit keep the plan's needle iteration
    order and position lists stay ascending, so replies are
    byte-identical between the two forms.
    """

    def __init__(
        self,
        plan: SearchPlan,
        decode: Callable[[int], tuple[int, int, int]],
        batched: bool = True,
        automaton: bool = True,
    ) -> None:
        self.plan = plan
        self.decode = decode
        self.automaton = automaton
        if not batched:
            self.match_bucket = None  # type: ignore[assignment]

    def scan_key(self) -> tuple | None:
        """Value identity for server-side scan-result memoisation
        (:class:`repro.sdds.lhstar.LHStarBucket`): equal keys guarantee
        equal ``match_bucket`` output over an unchanged haystack.
        ``None`` (an opaque ``decode``) disables the memo."""
        if not isinstance(self.decode, IndexKeyCodec):
            return None
        return ("plan", plan_signature(self.plan), self.decode,
                self.match_bucket is None, self.automaton)

    def __call__(self, record: "Record") -> SiteHit | None:
        rid, group, site = self.decode(record.rid)
        positions = self.plan.match_site(group, site, record.content)
        if not positions:
            return None
        return SiteHit(rid=rid, group=group, site=site,
                       positions=positions)

    def match_bucket(self, haystack: "BucketHaystack") -> list[SiteHit]:
        compiled = plans_automaton([self.plan]) if self.automaton \
            else None
        per_record = bucket_plan_hits(self.plan, haystack, self.decode,
                                      compiled)
        hits = []
        for key in haystack.rids:
            positions = per_record.get(key)
            if positions:
                rid, group, site = self.decode(key)
                hits.append(SiteHit(rid=rid, group=group, site=site,
                                    positions=positions))
        return hits


class MultiPlanScanMatcher:
    """Scan matcher multiplexing several plans in one round
    (``search_all`` / ``search_batch``).

    Per-record reports are lists of ``report(index, hit)`` objects —
    the wrapper (e.g. the scheme's ``_BatchHit``) is supplied by the
    caller so wire accounting stays where it is defined.
    """

    def __init__(
        self,
        plans: list[SearchPlan],
        decode: Callable[[int], tuple[int, int, int]],
        report: Callable[[int, SiteHit], object],
        batched: bool = True,
        automaton: bool = True,
    ) -> None:
        self.plans = plans
        self.decode = decode
        self.report = report
        self.automaton = automaton
        if not batched:
            self.match_bucket = None  # type: ignore[assignment]

    def scan_key(self) -> tuple | None:
        """Value identity for the bucket scan memo; ``None`` when the
        decode or report callables are opaque (see
        :meth:`PlanScanMatcher.scan_key`)."""
        report_key = getattr(self.report, "memo_key", None)
        if report_key is None or not isinstance(self.decode,
                                                IndexKeyCodec):
            return None
        return (
            "multi-plan",
            tuple(plan_signature(plan) for plan in self.plans),
            self.decode,
            report_key(),
            self.match_bucket is None,
            self.automaton,
        )

    def __call__(self, record: "Record") -> list | None:
        rid, group, site = self.decode(record.rid)
        reports = []
        for index, plan in enumerate(self.plans):
            positions = plan.match_site(group, site, record.content)
            if positions:
                reports.append(self.report(
                    index,
                    SiteHit(rid=rid, group=group, site=site,
                            positions=positions),
                ))
        return reports or None

    def match_bucket(self, haystack: "BucketHaystack") -> list[list]:
        compiled = plans_automaton(self.plans) if self.automaton \
            else None
        per_plan = [
            bucket_plan_hits(plan, haystack, self.decode, compiled)
            for plan in self.plans
        ]
        hits = []
        for key in haystack.rids:
            reports = []
            decoded = None
            for index, per_record in enumerate(per_plan):
                positions = per_record.get(key)
                if positions:
                    if decoded is None:
                        decoded = self.decode(key)
                    rid, group, site = decoded
                    reports.append(self.report(
                        index,
                        SiteHit(rid=rid, group=group, site=site,
                                positions=positions),
                    ))
            if reports:
                hits.append(reports)
        return hits


class HitAggregator:
    """Client-side combination of site reports into candidate RIDs."""

    def __init__(self, plan: SearchPlan) -> None:
        self.plan = plan
        # rid -> group -> site -> alignment -> positions
        self._reports: dict[
            int, dict[int, dict[int, dict[int, list[int]]]]
        ] = defaultdict(lambda: defaultdict(dict))

    def add(self, hit: SiteHit) -> None:
        self._reports[hit.rid][hit.group][hit.site] = hit.positions

    def add_all(self, hits: Iterable[SiteHit]) -> None:
        for hit in hits:
            self.add(hit)

    def _group_hit(
        self, sites: dict[int, dict[int, list[int]]]
    ) -> bool:
        """Within-group rule: some alignment matches at a common
        position on every dispersal site."""
        if len(sites) < self.plan.sites:
            return False
        for alignment in self.plan.alignments:
            common: set[int] | None = None
            for site in range(self.plan.sites):
                positions = sites[site].get(alignment)
                if not positions:
                    common = None
                    break
                if common is None:
                    common = set(positions)
                else:
                    common &= set(positions)
                if not common:
                    break
            if common:
                return True
        return False

    def candidates(self) -> set[int]:
        """RIDs passing the across-groups threshold."""
        result = set()
        for rid, groups in self._reports.items():
            hitting = sum(
                1 for sites in groups.values() if self._group_hit(sites)
            )
            if hitting >= self.plan.required_groups:
                result.add(rid)
        return result

    def group_hits(self, rid: int) -> list[int]:
        """Which chunking groups hit for ``rid`` (diagnostics)."""
        groups = self._reports.get(rid, {})
        return sorted(
            group
            for group, sites in groups.items()
            if self._group_hit(sites)
        )

    def intersected_positions(
        self, rid: int, group: int, alignment: int
    ) -> set[int]:
        """Chunk positions where all sites of ``group`` agree for one
        alignment — used by anchored queries that must pin a hit to a
        specific offset (e.g. position 0 for start-anchored search)."""
        sites = self._reports.get(rid, {}).get(group)
        if not sites or len(sites) < self.plan.sites:
            return set()
        common: set[int] | None = None
        for site in range(self.plan.sites):
            positions = sites[site].get(alignment)
            if not positions:
                return set()
            if common is None:
                common = set(positions)
            else:
                common &= set(positions)
        return common or set()
