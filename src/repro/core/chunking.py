"""Stage 1 geometry: record chunkings and query chunkings.

Terminology (fixed here, used everywhere else):

* ``s`` — the chunk size in symbols.
* A **chunking with offset o** (0 <= o < s) places chunk boundaries at
  symbol indices ≡ o (mod s).  For o > 0 the first chunk is *partial*:
  the o leading symbols, left-padded with zero symbols.  The last
  chunk is partial when the remaining tail is shorter than ``s``; it
  is right-padded.  This reproduces the paper's section 2.1/2.2
  exactly: for s=4 and RC "ABCDEFGH…", offset 1 yields
  ``(000A)(BCDE)…`` — the paper's "second chunked RC".
* A **query series with alignment a** (for pattern q of length l) is
  the sequence of *complete* chunks ``q[a:a+s], q[a+s:a+2s], …`` —
  partial edge chunks are never included (section 2.3).

The storage layouts of section 2.5 keep only every ``stride``-th
offset; :class:`StorageLayout` captures the resulting geometry and its
derived quantities (number of index records per record, number of
query series, minimum query length, and which hit-aggregation rule is
sound).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import ConfigurationError, QueryTooShortError

#: The zero (padding) symbol of the paper.
ZERO = 0


def record_chunks(
    symbols: bytes,
    chunk_size: int,
    offset: int,
    drop_partial: bool = False,
    symbol_width: int = 1,
) -> list[bytes]:
    """Chunk ``symbols`` with boundaries at indices ≡ offset (mod s).

    All quantities — chunk size, offset — are measured in *symbols*;
    ``symbol_width`` is the bytes per symbol (1 for the paper's 8-bit
    ASCII, 2 for its 16-bit Unicode).  The zero/padding symbol is
    ``symbol_width`` zero bytes.

    With ``drop_partial`` the padded edge chunks are omitted — the
    paper's counter-measure against the boundary-chunk frequency
    attack ("not storing these 'partial' chunks limits our search
    capability, but is otherwise perfectly feasible").

    >>> record_chunks(b"ABCDEFGH", 4, 1)
    [b'\\x00\\x00\\x00A', b'BCDE', b'FGH\\x00']
    """
    s = chunk_size
    w = symbol_width
    if s < 1:
        raise ConfigurationError("chunk size must be positive")
    if w < 1:
        raise ConfigurationError("symbol width must be positive")
    if not 0 <= offset < s:
        raise ConfigurationError(f"offset {offset} outside [0, {s})")
    if len(symbols) % w:
        raise ConfigurationError(
            f"content of {len(symbols)} bytes is not a whole number of "
            f"{w}-byte symbols"
        )
    sw, ow = s * w, offset * w
    chunks: list[bytes] = []
    if offset:
        if not drop_partial:
            head = symbols[:ow]
            chunks.append(
                bytes(sw - ow) + head + bytes(ow - len(head))
            )
    for start in range(ow, len(symbols), sw):
        piece = symbols[start:start + sw]
        if len(piece) < sw:
            if not drop_partial:
                chunks.append(piece + bytes(sw - len(piece)))
        else:
            chunks.append(piece)
    return chunks


def query_series(
    pattern: bytes,
    chunk_size: int,
    alignment: int,
    symbol_width: int = 1,
) -> list[bytes]:
    """The complete-chunk series of ``pattern`` at ``alignment``.

    ``chunk_size`` and ``alignment`` are in symbols; the pattern is a
    byte string of whole ``symbol_width``-byte symbols.

    Raises :class:`QueryTooShortError` when no complete chunk fits —
    the alignment contributes nothing and the caller's configuration
    should have refused the query earlier.

    >>> query_series(b"BCDEFGHIJK", 4, 3)
    [b'EFGH']
    """
    s = chunk_size
    w = symbol_width
    if not 0 <= alignment < s:
        raise ConfigurationError(f"alignment {alignment} outside [0, {s})")
    if len(pattern) % w:
        raise ConfigurationError(
            f"pattern of {len(pattern)} bytes is not a whole number of "
            f"{w}-byte symbols"
        )
    pattern_symbols = len(pattern) // w
    count = (pattern_symbols - alignment) // s
    if count < 1:
        raise QueryTooShortError(
            f"pattern of {pattern_symbols} symbols has no complete chunk "
            f"at alignment {alignment} with chunk size {s}"
        )
    sw, aw = s * w, alignment * w
    return [
        pattern[aw + k * sw: aw + (k + 1) * sw]
        for k in range(count)
    ]


def all_query_series(
    pattern: bytes, chunk_size: int, alignments: int
) -> dict[int, list[bytes]]:
    """Query series for alignments ``0 .. alignments-1``.

    All requested alignments must produce at least one complete chunk;
    the minimum pattern length for that is
    ``chunk_size + alignments - 1`` (cf. section 2.5's minima).
    """
    return {
        a: query_series(pattern, chunk_size, a) for a in range(alignments)
    }


@dataclass(frozen=True)
class StorageLayout:
    """Which chunkings are stored, and how queries must be shaped.

    * ``chunk_size`` — s.
    * ``offsets`` — the stored chunking offsets, an arithmetic
      progression 0, stride, 2·stride, … inside [0, s).
    * ``alignments`` — how many query alignments are generated
      (section 2.3 uses s; section 2.5 uses s / #offsets).
    * ``required_groups`` — how many chunking groups are guaranteed to
      report a true occurrence, hence the sound AND-threshold for
      candidate filtering (= alignments / stride).
    """

    chunk_size: int
    offsets: tuple[int, ...]
    alignments: int

    def __post_init__(self) -> None:
        s = self.chunk_size
        if s < 1:
            raise ConfigurationError("chunk size must be positive")
        if not self.offsets:
            raise ConfigurationError("at least one chunking offset needed")
        if sorted(set(self.offsets)) != list(self.offsets):
            raise ConfigurationError("offsets must be sorted and distinct")
        if any(not 0 <= o < s for o in self.offsets):
            raise ConfigurationError(f"offsets must lie in [0, {s})")
        if self.offsets[0] != 0:
            raise ConfigurationError("offsets must start at 0")
        stride = self.stride
        if [o for o in self.offsets] != list(range(0, s, stride)):
            raise ConfigurationError(
                "offsets must form an arithmetic progression covering "
                f"[0, {s}) with uniform stride; got {self.offsets}"
            )
        if not self.stride <= self.alignments <= s:
            raise ConfigurationError(
                f"alignments must lie in [{self.stride}, {s}]"
            )
        if self.alignments % self.stride:
            raise ConfigurationError(
                "alignments must be a multiple of the offset stride so "
                "every occurrence triggers the same number of groups"
            )

    # -- constructors ------------------------------------------------------

    @classmethod
    def full(cls, chunk_size: int) -> "StorageLayout":
        """Section 2.3: s chunkings stored, s query series, AND rule."""
        return cls(
            chunk_size=chunk_size,
            offsets=tuple(range(chunk_size)),
            alignments=chunk_size,
        )

    @classmethod
    def reduced(cls, chunk_size: int, sites: int) -> "StorageLayout":
        """Section 2.5: ``sites`` chunkings with stride s/sites.

        Queries need only ``stride`` alignments; exactly one group
        reports each true occurrence, so candidate filtering is OR.
        """
        if sites < 1 or chunk_size % sites:
            raise ConfigurationError(
                f"number of sites {sites} must divide chunk size "
                f"{chunk_size}"
            )
        stride = chunk_size // sites
        return cls(
            chunk_size=chunk_size,
            offsets=tuple(range(0, chunk_size, stride)),
            alignments=stride,
        )

    # -- derived geometry -----------------------------------------------------

    @property
    def stride(self) -> int:
        if len(self.offsets) == 1:
            return self.chunk_size
        return self.offsets[1] - self.offsets[0]

    @property
    def group_count(self) -> int:
        """Number of stored chunkings (index records per record)."""
        return len(self.offsets)

    @property
    def required_groups(self) -> int:
        """Chunking groups guaranteed to hit on a true occurrence."""
        return self.alignments // self.stride

    @property
    def min_query_length(self) -> int:
        """Shortest supported pattern: s + alignments − 1.

        Reproduces the paper's minima: full scheme s (alignments = s
        gives s + s − 1? No — the *last* alignment only needs one
        complete chunk, so a length-s pattern works only for alignment
        0; the paper indeed restricts full-scheme queries to length
        >= s and simply skips empty alignments).  For reduced layouts
        every alignment must produce a chunk, giving s+1 for 4-of-8
        and s+3 for 2-of-8 — the paper's numbers.
        """
        if self.alignments == self.chunk_size:
            return self.chunk_size
        return self.chunk_size + self.alignments - 1

    def check_query_length(self, length: int) -> None:
        if length < self.min_query_length:
            raise QueryTooShortError(
                f"pattern length {length} below the layout minimum "
                f"{self.min_query_length} (chunk size "
                f"{self.chunk_size}, {self.group_count} chunkings, "
                f"{self.alignments} alignments)"
            )

    def query_alignments(self, length: int) -> list[int]:
        """The alignments a pattern of ``length`` actually populates."""
        self.check_query_length(length)
        return [
            a for a in range(self.alignments) if length - a >= self.chunk_size
        ]

    def storage_blowup(self) -> float:
        """Index storage per record, in multiples of the record size
        (before Stage-2 compression and ignoring padding edges)."""
        return float(self.group_count)
