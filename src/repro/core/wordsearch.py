"""Word-search store: the paper's §8 adaptation of Song et al.

"Finally, Song's et al. method of encrypting while allowing for word
searches should be adapted to our system."  This module performs that
adaptation: record contents are tokenised into words, each word
position is encrypted with the SWP scheme
(:mod:`repro.crypto.swp`), and the resulting cell sequences are stored
as index records in an LH* file next to the strongly encrypted record
store — the same two-file layout as the substring scheme of §5.

A search ships one *trapdoor* to all index sites in a single parallel
scan round; sites match cells locally without learning the word.

Contrast with the substring scheme (the paper's §1 motivation for not
just using SWP):

* SWP finds **whole words only** — no substrings, no patterns;
* per-position false positives are cryptographically rare (2^-32 here)
  instead of structural;
* storage is exactly one cell per word (16 bytes), independent of
  chunk-size choices.

``benchmarks/bench_wordsearch.py`` measures both schemes side by side.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.core.errors import ConfigurationError, RecordNotFoundError
from repro.core.kernels import scan_automaton
from repro.crypto.keys import KeyHierarchy
from repro.crypto.modes import CtrCipher
from repro.crypto.swp import WORD_BYTES, SwpCipher, Trapdoor
from repro.net.simulator import Network
from repro.net.stats import NetworkStats
from repro.sdds.haystack import BucketHaystack
from repro.sdds.lhstar import LHStarFile
from repro.sdds.records import Record

_WORD_RE = re.compile(r"[A-Za-z0-9&'-]+")


def tokenize(text: str) -> list[str]:
    """The word tokens of a record (SWP operates on whole words)."""
    return _WORD_RE.findall(text)


class WordScanMatcher:
    """Scan matcher for one SWP trapdoor.

    Per-record calls are the reference path (and what degraded parity
    scans use); :meth:`match_bucket` runs the batched SWP unmasking of
    :meth:`repro.crypto.swp.SwpCipher.match_positions` over each
    record's cell blob of the bucket haystack.  ``fast_path=False``
    pins the reference per-cell loop *and* disables bucket batching —
    the escape hatch the equivalence suite compares against.
    """

    def __init__(self, trapdoor: Trapdoor,
                 fast_path: bool = True) -> None:
        self.trapdoor = trapdoor
        self.fast_path = fast_path
        if not fast_path:
            self.match_bucket = None  # type: ignore[assignment]

    def scan_key(self) -> tuple:
        """Value identity for the bucket scan memo."""
        return ("swp", self.trapdoor, self.fast_path)

    def _positions(self, cells: bytes | memoryview) -> tuple[int, ...]:
        if self.fast_path:
            return tuple(SwpCipher.match_positions(cells, self.trapdoor))
        match = SwpCipher.match
        trapdoor = self.trapdoor
        return tuple(
            position
            for position in range(len(cells) // WORD_BYTES)
            if match(cells[WORD_BYTES * position:
                           WORD_BYTES * (position + 1)], trapdoor)
        )

    def __call__(self, record: Record):
        hits = self._positions(record.content)
        if not hits:
            return None
        return (record.rid, hits)

    def match_bucket(self, haystack: BucketHaystack):
        hits = []
        for rid, cells in haystack.segments():
            positions = self._positions(cells)
            if positions:
                hits.append((rid, positions))
        return hits


class MultiWordScanMatcher:
    """Scan matcher multiplexing several SWP trapdoors in one round
    (:meth:`EncryptedWordStore.search_batch`).

    The batched form converts each record's cell blob to a big
    integer **once** and unmasks it per trapdoor
    (:meth:`repro.crypto.swp.SwpCipher.match_positions_multi`), with
    the per-trapdoor HMAC key schedules compiled once per trapdoor set
    and cached in the kernel automaton registry — K words cost one
    scan round and one blob conversion instead of K of each.  Hits are
    ``(rid, ((word index, positions), ...))``; the per-record and
    per-bucket forms are byte-identical, and each word's positions are
    exactly what a solo :class:`WordScanMatcher` reports.
    """

    def __init__(self, trapdoors: tuple[Trapdoor, ...],
                 fast_path: bool = True) -> None:
        self.trapdoors = trapdoors
        self.fast_path = fast_path
        if not fast_path:
            self.match_bucket = None  # type: ignore[assignment]

    def scan_key(self) -> tuple:
        """Value identity for the bucket scan memo."""
        return ("multi-swp", self.trapdoors, self.fast_path)

    def _compiled_checks(self) -> list:
        """The hoisted per-trapdoor HMAC closures, shared process-wide
        per trapdoor set via the kernel automaton registry."""
        return scan_automaton(
            ("swp", self.trapdoors),
            lambda: [
                SwpCipher._hoisted_check(trapdoor.word_key)
                for trapdoor in self.trapdoors
            ],
        )

    def _hits(self, cells: bytes | memoryview,
              checks: list | None = None) -> tuple:
        if self.fast_path:
            per_trapdoor = SwpCipher.match_positions_multi(
                cells, self.trapdoors, checks
            )
            return tuple(
                (index, tuple(positions))
                for index, positions in enumerate(per_trapdoor)
                if positions
            )
        match = SwpCipher.match
        reports = []
        for index, trapdoor in enumerate(self.trapdoors):
            positions = tuple(
                position
                for position in range(len(cells) // WORD_BYTES)
                if match(cells[WORD_BYTES * position:
                               WORD_BYTES * (position + 1)], trapdoor)
            )
            if positions:
                reports.append((index, positions))
        return tuple(reports)

    def __call__(self, record: Record):
        reports = self._hits(record.content)
        if not reports:
            return None
        return (record.rid, reports)

    def match_bucket(self, haystack: BucketHaystack):
        checks = self._compiled_checks()
        hits = []
        for rid, cells in haystack.segments():
            reports = self._hits(cells, checks)
            if reports:
                hits.append((rid, reports))
        return hits


@dataclass(frozen=True)
class WordSearchResult:
    """Outcome of one word search."""

    word: str
    matches: frozenset[int]
    positions: dict[int, tuple[int, ...]]
    cost: NetworkStats


class EncryptedWordStore:
    """Record store + SWP word index over LH* files.

    >>> store = EncryptedWordStore(b"demo-key")
    >>> store.put(7, "415-409-9999 SCHWARZ THOMAS")
    >>> 7 in store.search("SCHWARZ").matches
    True
    >>> store.search("SCHWAR").matches  # words only — no substrings
    frozenset()
    """

    def __init__(
        self,
        master_key: bytes,
        network: Network | None = None,
        bucket_capacity: int = 128,
        name: str = "words",
        fast_path: bool = True,
    ) -> None:
        # ``fast_path=False`` pins the reference per-cell SWP loop and
        # per-record bucket scans — the equivalence suite compares the
        # two stores' answers and wire costs byte for byte.
        self.fast_path = fast_path
        self.network = network or Network()
        keys = KeyHierarchy(master_key)
        self._keys = keys
        self._record_cipher = CtrCipher(keys.record_store_key())
        self._swp = SwpCipher(keys.subkey("swp-words", 32))
        self.record_file = LHStarFile(
            name=f"{name}-store", network=self.network,
            bucket_capacity=bucket_capacity,
        )
        self.index_file = LHStarFile(
            name=f"{name}-index", network=self.network,
            bucket_capacity=bucket_capacity,
        )
        self._rids: set[int] = set()

    # -- data plane ------------------------------------------------------------

    def put(self, rid: int, text: str) -> None:
        """Store the strong copy plus the SWP cell sequence.

        Overwrite semantics: a ``put`` on an already-present rid is an
        in-place replacement.  Both LH* inserts land on the same keys,
        so the old ciphertext and the old cell sequence are replaced
        wholesale (and the owning bucket drops its scan haystack) —
        retired words must never match again.
        """
        content = text.encode("utf-8")
        ciphertext = self._record_cipher.encrypt(
            content, self._keys.record_nonce(rid)
        )
        self.record_file.insert(rid, ciphertext)
        cells = self._swp.encrypt_words(rid, tokenize(text))
        self.index_file.insert(rid, b"".join(cells))
        self._rids.add(rid)

    def get(self, rid: int) -> str | None:
        ciphertext = self.record_file.lookup(rid)
        if ciphertext is None:
            return None
        content = self._record_cipher.decrypt(
            ciphertext, self._keys.record_nonce(rid)
        )
        return content.decode("utf-8")

    def delete(self, rid: int) -> bool:
        removed = self.record_file.delete(rid)
        if removed:
            self.index_file.delete(rid)
            self._rids.discard(rid)
        return removed

    def __len__(self) -> int:
        return len(self._rids)

    # -- search -----------------------------------------------------------------

    def search(self, word: str) -> WordSearchResult:
        """One-round parallel word search with a hidden query.

        The scan request bills the trapdoor's real serialized size
        (``X`` plus ``k``, 32 bytes) — what each index site actually
        receives.
        """
        trapdoor = self._swp.trapdoor(word)
        before = self.network.stats.snapshot()
        matcher = WordScanMatcher(trapdoor, fast_path=self.fast_path)
        raw_hits = self.index_file.scan(
            matcher, request_size=trapdoor.wire_size
        )
        positions = {rid: hits for rid, hits in raw_hits}
        return WordSearchResult(
            word=word,
            matches=frozenset(positions),
            positions=positions,
            cost=self.network.stats.diff(before),
        )

    def search_batch(self, words: list[str]
                     ) -> dict[str, WordSearchResult]:
        """Run many independent word searches in one scan round.

        K trapdoors ship in one scan message per bucket (billed at
        their summed serialized size) and each index record's cell
        blob is unmasked for all of them off a single big-integer
        conversion.  The scan round is shared, so every per-word
        result carries the shared cost — mirroring
        :meth:`EncryptedSearchableStore.search_batch`.
        """
        if not words:
            raise ConfigurationError("need at least one word")
        unique = list(dict.fromkeys(words))
        trapdoors = tuple(self._swp.trapdoor(word) for word in unique)
        before = self.network.stats.snapshot()
        matcher = MultiWordScanMatcher(trapdoors,
                                       fast_path=self.fast_path)
        raw_hits = self.index_file.scan(
            matcher,
            request_size=sum(t.wire_size for t in trapdoors),
        )
        per_word: list[dict[int, tuple[int, ...]]] = [
            {} for _ in unique
        ]
        for rid, reports in raw_hits:
            for index, positions in reports:
                per_word[index][rid] = positions
        cost = self.network.stats.diff(before)
        return {
            word: WordSearchResult(
                word=word,
                matches=frozenset(positions),
                positions=positions,
                cost=cost,
            )
            for word, positions in zip(unique, per_word)
        }

    def decrypt_index_of(self, rid: int) -> list[str]:
        """Client-side full decryption of a record's word cells
        (SWP scheme III: the data owner can always decrypt)."""
        cells_blob = self.index_file.lookup(rid)
        if cells_blob is None:
            raise RecordNotFoundError(f"no index record for rid {rid}")
        cells = [
            cells_blob[i:i + 16] for i in range(0, len(cells_blob), 16)
        ]
        return self._swp.decrypt_words(rid, cells)
