"""Span-based tracing over the virtual clock.

The paper's whole evaluation is quantitative — messages per lookup,
bytes per scan round, false positives per query — and before this
module existed every such number was obtained by hand-diffing
:class:`~repro.net.stats.NetworkStats` snapshots around an operation.
A :class:`Tracer` automates exactly that discipline:

* ``with tracer.span("search", pattern="SCHWARZ"):`` snapshots the
  network counters and the virtual clock on entry and exit, so every
  finished :class:`Span` carries its *inclusive* counter delta
  (messages, bytes, dropped, duplicated, retries, per-kind census)
  and its simulated elapsed time.
* Spans nest: a ``search`` span contains the ``get`` spans of its
  verification fetches, parent/child linked by id.
* Low-frequency protocol incidents (splits, forwards, retries, dedup
  replays — emitted by the instrumented hot paths) attach to the
  innermost open span as :class:`SpanEvent` records.
* Finished spans land in a bounded ring buffer and round-trip through
  JSONL (:meth:`Tracer.export_jsonl` / :func:`load_jsonl`) without
  losing a counter.

Installation is global and explicit: hot paths call the module-level
:func:`span` / :func:`emit` hooks, which are no-ops — a ``None`` check
and nothing else — until :func:`set_tracer` (or the :func:`use_tracer`
context manager) installs a tracer.  ``benchmarks/bench_obs_overhead``
holds the layer to message-count parity with uninstrumented runs.

>>> from repro.net.simulator import Network
>>> net = Network()
>>> tracer = Tracer(network=net)
>>> with use_tracer(tracer):
...     with tracer.span("demo", label="outer"):
...         with tracer.span("inner"):
...             emit("tick", n=1)
>>> [s.name for s in tracer.finished]
['inner', 'demo']
>>> root = tracer.roots()[0]
>>> root.attrs["label"], root.events == []
('outer', True)
>>> tracer.finished[0].events[0].name
'tick'
"""

from __future__ import annotations

import io
import itertools
import json
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import IO, Any, Iterable, Iterator

from repro.net.simulator import Network
from repro.net.stats import NetworkStats

#: Scalar NetworkStats fields carried per span (the per-kind censuses
#: ride along separately as dicts).
STAT_FIELDS = (
    "messages",
    "bytes",
    "dropped",
    "duplicated",
    "retries",
    "crashed_drops",
    "partitioned_drops",
    "corrupted",
)


@dataclass
class SpanEvent:
    """A point-in-time protocol incident inside a span.

    Events are the low-frequency annotations the SDDS layer emits —
    ``lh.split``, ``lh.forward``, ``lh.retry``, ``lh.dedup_replay`` —
    stamped with the virtual-clock time they happened at.
    """

    name: str
    time: float
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "time": self.time, "attrs": self.attrs}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SpanEvent":
        return cls(name=data["name"], time=data["time"],
                   attrs=dict(data.get("attrs", {})))


class Span:
    """One traced operation: name, attrs, clock window, counter delta.

    Context-manager protocol; use via :meth:`Tracer.span`.  While open
    it sits on the tracer's stack (events attach to the innermost open
    span); once closed it is immutable in spirit and sits in the
    tracer's ring buffer with its *inclusive* stats delta.
    """

    __slots__ = (
        "span_id", "parent_id", "name", "attrs", "start", "end",
        "stats", "events", "_tracer", "_network", "_before",
    )

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: int | None,
        attrs: dict[str, Any],
        tracer: "Tracer | None" = None,
        network: Network | None = None,
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.start = 0.0
        self.end = 0.0
        self.stats: NetworkStats = NetworkStats()
        self.events: list[SpanEvent] = []
        self._tracer = tracer
        self._network = network
        self._before: NetworkStats | None = None

    # -- context manager ---------------------------------------------------

    def __enter__(self) -> "Span":
        network = self._network
        if network is not None:
            self.start = network.now
            self._before = network.stats.snapshot()
        if self._tracer is not None:
            self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        network = self._network
        if network is not None:
            self.end = network.now
            if self._before is not None:
                self.stats = network.stats.diff(self._before)
                self._before = None
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        if self._tracer is not None:
            self._tracer._pop(self)
        return False

    # -- annotation ---------------------------------------------------------

    def annotate(self, **attrs: Any) -> "Span":
        """Attach result attributes (candidate counts, precision, …)."""
        self.attrs.update(attrs)
        return self

    def event(self, name: str, time: float, **attrs: Any) -> SpanEvent:
        record = SpanEvent(name=name, time=time, attrs=attrs)
        self.events.append(record)
        return record

    @property
    def elapsed(self) -> float:
        """Simulated seconds the span covered."""
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Span({self.name!r}, id={self.span_id}, "
                f"messages={self.stats.messages}, "
                f"elapsed={self.elapsed:.6f})")

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
            "events": [event.to_dict() for event in self.events],
            "by_kind": dict(self.stats.by_kind),
            "bytes_by_kind": dict(self.stats.bytes_by_kind),
        }
        for fieldname in STAT_FIELDS:
            data[fieldname] = getattr(self.stats, fieldname)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        span = cls(
            name=data["name"],
            span_id=data["id"],
            parent_id=data.get("parent"),
            attrs=dict(data.get("attrs", {})),
        )
        span.start = data.get("start", 0.0)
        span.end = data.get("end", 0.0)
        stats = NetworkStats()
        for fieldname in STAT_FIELDS:
            setattr(stats, fieldname, data.get(fieldname, 0))
        stats.by_kind.update(data.get("by_kind", {}))
        stats.bytes_by_kind.update(data.get("bytes_by_kind", {}))
        span.stats = stats
        span.events = [
            SpanEvent.from_dict(event) for event in data.get("events", [])
        ]
        return span


class Tracer:
    """Collects spans into a bounded ring buffer.

    ``network`` is the default :class:`~repro.net.simulator.Network`
    whose clock and counters spans snapshot (a per-span override is
    accepted by :meth:`span` for multi-network setups).  ``capacity``
    bounds the ring buffer; once full, the *oldest* finished spans are
    evicted and counted in :attr:`evicted`.
    """

    def __init__(
        self, network: Network | None = None, capacity: int = 4096
    ) -> None:
        if capacity < 1:
            raise ValueError("tracer capacity must be positive")
        self.network = network
        self.capacity = capacity
        #: Finished spans in completion order (children before parents).
        self.finished: deque[Span] = deque()
        self.evicted = 0
        self._stack: list[Span] = []
        self._ids = itertools.count(1)
        #: Events emitted outside any open span (rare: background
        #: protocol work between traced operations).
        self.orphan_events: list[SpanEvent] = []

    # -- span lifecycle -----------------------------------------------------

    def span(
        self, name: str, network: Network | None = None, **attrs: Any
    ) -> Span:
        """Open a span; use as a context manager."""
        parent = self._stack[-1] if self._stack else None
        return Span(
            name=name,
            span_id=next(self._ids),
            parent_id=None if parent is None else parent.span_id,
            attrs=attrs,
            tracer=self,
            network=network or self.network,
        )

    def _push(self, span: Span) -> None:
        self._stack.append(span)

    def _pop(self, span: Span) -> None:
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # pragma: no cover - defensive
            self._stack.remove(span)
        self.finished.append(span)
        while len(self.finished) > self.capacity:
            self.finished.popleft()
            self.evicted += 1

    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def event(self, name: str, **attrs: Any) -> None:
        """Attach a protocol incident to the innermost open span."""
        time = self.network.now if self.network is not None else 0.0
        current = self.current()
        if current is not None:
            current.event(name, time, **attrs)
        else:
            self.orphan_events.append(
                SpanEvent(name=name, time=time, attrs=attrs)
            )

    def clear(self) -> None:
        self.finished.clear()
        self.orphan_events.clear()
        self.evicted = 0

    # -- views --------------------------------------------------------------

    def roots(self) -> list[Span]:
        """Finished top-level spans, oldest first."""
        return [s for s in self.finished if s.parent_id is None]

    def render_tree(self) -> str:
        """ASCII tree of the finished spans with their cost deltas."""
        return render_tree(list(self.finished))

    # -- export -------------------------------------------------------------

    def export_jsonl(self, destination: str | IO[str]) -> int:
        """Write finished spans as JSON Lines; returns the span count.

        ``destination`` is a path or an open text file.  One span per
        line, completion order preserved (children precede parents),
        so ``load_jsonl`` reconstructs the trace exactly.
        """
        spans = list(self.finished)
        if isinstance(destination, (str, bytes)):
            with open(destination, "w", encoding="utf-8") as handle:
                return self._write(spans, handle)
        return self._write(spans, destination)

    @staticmethod
    def _write(spans: list[Span], handle: IO[str]) -> int:
        # Insertion order everywhere (attrs included) so a reloaded
        # trace renders byte-identically to the live one.
        for span in spans:
            handle.write(json.dumps(span.to_dict()))
            handle.write("\n")
        return len(spans)

    def export_jsonl_string(self) -> str:
        """The JSONL export as a string (doctests, quick inspection)."""
        buffer = io.StringIO()
        self._write(list(self.finished), buffer)
        return buffer.getvalue()


def load_jsonl(source: str | IO[str] | Iterable[str]) -> list[Span]:
    """Read spans back from a JSONL export (path, file, or lines)."""
    if isinstance(source, (str, bytes)):
        with open(source, "r", encoding="utf-8") as handle:
            lines = handle.readlines()
    else:
        lines = list(source)
    return [
        Span.from_dict(json.loads(line))
        for line in lines
        if line.strip()
    ]


# -- tree rendering -----------------------------------------------------------


def build_tree(
    spans: Iterable[Span],
) -> tuple[list[Span], dict[int, list[Span]]]:
    """(roots, children-by-parent-id) in start-time order."""
    spans = sorted(spans, key=lambda s: (s.start, s.span_id))
    children: dict[int, list[Span]] = {}
    ids = {span.span_id for span in spans}
    roots = []
    for span in spans:
        if span.parent_id is None or span.parent_id not in ids:
            roots.append(span)
        else:
            children.setdefault(span.parent_id, []).append(span)
    return roots, children


def render_tree(spans: Iterable[Span]) -> str:
    """Human-readable span tree with counter deltas and events.

    ::

        ess.search pattern='SCHWARZ'  [12 msgs, 1,204 B, 0.8 ms]
        ├─ event lh.retry kind='scan' attempt=1  @0.250s
        └─ ess.get rid=4154099999  [2 msgs, 118 B, 0.4 ms]
    """
    roots, children = build_tree(spans)
    lines: list[str] = []

    def describe(span: Span) -> str:
        attrs = " ".join(
            f"{key}={value!r}" for key, value in span.attrs.items()
        )
        head = span.name if not attrs else f"{span.name} {attrs}"
        stats = span.stats
        cost = (f"[{stats.messages} msgs, {stats.bytes:,} B, "
                f"{span.elapsed * 1000:.2f} ms")
        if stats.retries:
            cost += f", {stats.retries} retries"
        if stats.dropped:
            cost += f", {stats.dropped} dropped"
        if stats.duplicated:
            cost += f", {stats.duplicated} dup'd"
        if stats.crashed_drops:
            cost += f", {stats.crashed_drops} crash-dropped"
        if stats.partitioned_drops:
            cost += f", {stats.partitioned_drops} partition-dropped"
        if stats.corrupted:
            cost += f", {stats.corrupted} corrupted"
        return f"{head}  {cost}]"

    def walk(span: Span, prefix: str, is_last: bool, top: bool) -> None:
        if top:
            lines.append(describe(span))
            child_prefix = ""
        else:
            connector = "└─ " if is_last else "├─ "
            lines.append(prefix + connector + describe(span))
            child_prefix = prefix + ("   " if is_last else "│  ")
        entries: list[tuple[float, int, object]] = []
        for event in span.events:
            entries.append((event.time, 0, event))
        for child in children.get(span.span_id, []):
            entries.append((child.start, 1, child))
        entries.sort(key=lambda item: (item[0], item[1]))
        for index, (__, tag, entry) in enumerate(entries):
            last = index == len(entries) - 1
            if tag == 0:
                event: SpanEvent = entry  # type: ignore[assignment]
                attrs = " ".join(
                    f"{k}={v!r}" for k, v in event.attrs.items()
                )
                connector = "└─ " if last else "├─ "
                lines.append(
                    child_prefix + connector
                    + f"event {event.name}"
                    + (f" {attrs}" if attrs else "")
                    + f"  @{event.time:.3f}s"
                )
            else:
                walk(entry, child_prefix, last, top=False)  # type: ignore[arg-type]

    for root in roots:
        walk(root, "", True, top=True)
    return "\n".join(lines)


# -- global installation ------------------------------------------------------

_ACTIVE: Tracer | None = None


class _NullSpan:
    """The do-nothing span returned while no tracer is installed.

    A shared singleton: entering, exiting and annotating it costs a
    method call each and allocates nothing, which is what keeps the
    instrumented hot paths at parity when observability is off.
    """

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs: Any) -> "_NullSpan":
        return self

    def event(self, name: str, time: float, **attrs: Any) -> None:
        return None


NULL_SPAN = _NullSpan()


def get_tracer() -> Tracer | None:
    """The globally installed tracer, or None."""
    return _ACTIVE


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install ``tracer`` globally; returns the previous one."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


@contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` for the duration of a ``with`` block."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)


def span(name: str, network: Network | None = None, **attrs: Any):
    """Hot-path hook: a real span when a tracer is installed, else the
    shared no-op span."""
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, network=network, **attrs)


def emit(name: str, **attrs: Any) -> None:
    """Hot-path hook: record a protocol incident (split, forward,
    retry, dedup replay) on the active tracer's innermost span.

    A no-op — one global load and a ``None`` check — when no tracer
    is installed.  Sites that also want an event *counter* pair this
    with :func:`repro.obs.metrics.inc` under the same name.
    """
    tracer = _ACTIVE
    if tracer is not None:
        tracer.event(name, **attrs)
