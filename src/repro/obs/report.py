"""Per-operation cost breakdowns rendered from a trace.

The paper's evaluation tables are all of one shape: rows of
operations (or configurations), columns of measured costs.  This
module reproduces that shape from a :class:`~repro.obs.trace.Tracer`
ring buffer or a JSONL export — so "what did this workload cost,
per operation?" is one function call instead of a hand-maintained
spreadsheet of ``NetworkStats`` diffs.

Two tables:

* :func:`cost_breakdown` — one row per *root* span name: operation
  count, total/average messages and bytes, retries, injected faults,
  and simulated elapsed time.  Nested spans (the ``get`` fetches
  inside a ``search``) are inclusive in their parents and therefore
  excluded from the row sums — the totals line of the table equals
  the raw ``NetworkStats`` delta of the traced window exactly.
* :func:`kind_breakdown` — one row per message kind across the same
  root spans: the wire census (which protocol messages carried the
  bytes), the view the LH* papers argue from.

``python -m repro.obs.report trace.jsonl`` renders both for an
exported trace.  A third table, :func:`cache_breakdown`, summarises
the fused-codec and search-plan caches of
:mod:`repro.core.kernels` from a metrics registry (hits, misses, hit
rate, build time); ``python -m repro.obs.report trace.jsonl
metrics.json`` appends it from a
:meth:`~repro.obs.metrics.MetricsRegistry.dump_json` export.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Iterable

from repro.obs.trace import Span, load_jsonl

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.bench.tables import TableResult

# ``repro.bench`` imports the whole scheme stack, whose SDDS layer
# imports the obs hooks — so the table renderer must load lazily or
# ``import repro`` would hit a partially initialised module.


def _table(title: str, headers: list[str]) -> "TableResult":
    from repro.bench.tables import TableResult

    return TableResult(title=title, headers=headers)

__all__ = [
    "cache_breakdown",
    "cost_breakdown",
    "kind_breakdown",
    "render_report",
    "report_from_jsonl",
]


def _roots(spans: Iterable[Span]) -> list[Span]:
    spans = list(spans)
    ids = {span.span_id for span in spans}
    return [
        span for span in spans
        if span.parent_id is None or span.parent_id not in ids
    ]


def cost_breakdown(
    spans: Iterable[Span],
    title: str = "Per-operation cost breakdown",
) -> "TableResult":
    """One row per root-span name, paper-table shape.

    Columns: operation, count, total messages, messages/op, total
    bytes, bytes/op, retries, dropped, duplicated, elapsed seconds.
    A final ``TOTAL`` row sums the workload; because only root spans
    are counted, it matches the enclosing ``NetworkStats`` diff.
    """
    table = _table(
        title,
        ["operation", "count", "msgs", "msgs/op", "bytes",
         "bytes/op", "retries", "dropped", "dup'd", "elapsed (s)"],
    )
    groups: dict[str, list[Span]] = {}
    for span in _roots(spans):
        groups.setdefault(span.name, []).append(span)
    totals = Counter()
    for name in sorted(groups):
        members = groups[name]
        count = len(members)
        messages = sum(span.stats.messages for span in members)
        size = sum(span.stats.bytes for span in members)
        retries = sum(span.stats.retries for span in members)
        dropped = sum(span.stats.dropped for span in members)
        duplicated = sum(span.stats.duplicated for span in members)
        elapsed = sum(span.elapsed for span in members)
        table.add_row(
            name, count, messages, messages / count, size,
            size / count, retries, dropped, duplicated, elapsed,
        )
        totals.update(
            count=count, messages=messages, bytes=size,
            retries=retries, dropped=dropped, duplicated=duplicated,
        )
        totals["elapsed"] += elapsed
    if len(groups) > 1:
        count = max(totals["count"], 1)
        table.add_row(
            "TOTAL", totals["count"], totals["messages"],
            totals["messages"] / count, totals["bytes"],
            totals["bytes"] / count, totals["retries"],
            totals["dropped"], totals["duplicated"],
            totals["elapsed"],
        )
    return table


def kind_breakdown(
    spans: Iterable[Span],
    title: str = "Wire census by message kind",
) -> "TableResult":
    """One row per message kind over the root spans: the wire census."""
    messages: Counter = Counter()
    sizes: Counter = Counter()
    for span in _roots(spans):
        messages.update(span.stats.by_kind)
        sizes.update(span.stats.bytes_by_kind)
    table = _table(title, ["kind", "msgs", "bytes", "bytes/msg"])
    for kind in sorted(messages):
        count = messages[kind]
        size = sizes.get(kind, 0)
        table.add_row(kind, count, size, size / count if count else 0.0)
    return table


def cache_breakdown(
    metrics: dict,
    title: str = "Fused-kernel cache census",
) -> "TableResult":
    """One row per kernel cache from a metrics mapping.

    ``metrics`` is the mapping produced by
    :meth:`repro.obs.metrics.MetricsRegistry.to_dict` (or parsed from
    its JSON dump): the ``kernels.codec.*``, ``kernels.plan.*``,
    ``kernels.automaton.*``, ``lh.haystack.*`` and
    ``lh.haystack.automaton.*`` instruments feed rows of hits, misses,
    hit rate, builds and build seconds.  Caches that never ran render as zero
    rows, so the table shape is stable.  For bucket haystacks a
    "miss" is a (re)build — the cache is dropped whenever the bucket's
    records change, so the hit rate is the fraction of batched scans
    served without re-concatenating.
    """

    def _value(name: str) -> float:
        entry = metrics.get(name)
        return entry.get("value", 0) if entry else 0

    build = metrics.get("kernels.codec.build_seconds") or {}
    automaton_build = metrics.get("kernels.automaton.build_seconds") or {}
    gram_build = metrics.get("lh.haystack.automaton.build_seconds") or {}
    table = _table(
        title,
        ["cache", "hits", "misses", "hit rate", "builds",
         "build (s)", "resident"],
    )
    for cache, hits, misses, builds, build_seconds, resident in (
        (
            "codec tables",
            _value("kernels.codec.hit"), _value("kernels.codec.miss"),
            build.get("count", 0), build.get("sum", 0.0),
            _value("kernels.codec.cached"),
        ),
        (
            "search plans",
            _value("kernels.plan.hit"), _value("kernels.plan.miss"),
            _value("kernels.plan.miss"), 0.0, None,
        ),
        (
            "bucket haystacks",
            _value("lh.haystack.hit"), _value("lh.haystack.build"),
            _value("lh.haystack.build"), 0.0, None,
        ),
        (
            "scan automata",
            _value("kernels.automaton.hit"),
            _value("kernels.automaton.miss"),
            automaton_build.get("count", 0),
            automaton_build.get("sum", 0.0),
            _value("kernels.automaton.cached"),
        ),
        (
            "gram indexes",
            _value("lh.haystack.automaton.hit"),
            _value("lh.haystack.automaton.build"),
            gram_build.get("count", 0),
            gram_build.get("sum", 0.0),
            None,
        ),
    ):
        total = hits + misses
        table.add_row(
            cache, hits, misses,
            f"{hits / total:.0%}" if total else "-",
            builds, build_seconds,
            "-" if resident is None else resident,
        )
    return table


def render_report(spans: Iterable[Span], title: str | None = None) -> str:
    """Both tables, rendered as fixed-width text blocks."""
    spans = list(spans)
    breakdown = cost_breakdown(
        spans,
        title=title or "Per-operation cost breakdown",
    )
    census = kind_breakdown(spans)
    return breakdown.render() + "\n\n" + census.render()


def report_from_jsonl(path: str, title: str | None = None) -> str:
    """Render the report for a JSONL trace export on disk."""
    return render_report(load_jsonl(path), title=title)


def main(argv: list[str] | None = None) -> int:  # pragma: no cover
    import json
    import sys

    argv = sys.argv[1:] if argv is None else argv
    if not 1 <= len(argv) <= 2:
        print(
            "usage: python -m repro.obs.report TRACE.jsonl "
            "[METRICS.json]",
            file=sys.stderr,
        )
        return 2
    print(report_from_jsonl(argv[0]))
    if len(argv) == 2:
        with open(argv[1]) as handle:
            metrics = json.load(handle)
        print()
        print(cache_breakdown(metrics).render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
