"""Structured observability: tracing, metrics and cost reports.

The repo's answer to "what did that cost?" used to be hand-diffed
:class:`~repro.net.stats.NetworkStats` snapshots.  This package makes
the discipline first-class — see ``docs/OBSERVABILITY.md`` for the
operator guide:

* :mod:`repro.obs.trace` — span-based tracer over the virtual clock:
  per-operation counter deltas, parent/child nesting, protocol events
  (splits, forwards, retries, dedup replays), ring buffer, JSONL
  export/import, span-tree rendering.
* :mod:`repro.obs.metrics` — counters/gauges/histograms with
  plain-text and JSON dumps, plus a network observer feeding message
  size and delivery-latency distributions.
* :mod:`repro.obs.report` — paper-table-shaped cost breakdowns
  (per operation, per message kind) rendered from a trace.

Nothing here costs anything until installed: the hot-path hooks
(:func:`repro.obs.trace.span`, :func:`repro.obs.trace.emit`, the
metrics helpers) are ``None``-check no-ops until :func:`set_tracer` /
:func:`set_metrics` (or their ``use_*`` context-manager forms) turn
observability on.  ``benchmarks/bench_obs_overhead.py`` enforces
message-count parity between instrumented and uninstrumented runs.
"""

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NetworkMetricsObserver,
    get_metrics,
    set_metrics,
    use_metrics,
    watch_network,
)
from repro.obs.report import (
    cost_breakdown,
    kind_breakdown,
    render_report,
    report_from_jsonl,
)
from repro.obs.trace import (
    Span,
    SpanEvent,
    Tracer,
    get_tracer,
    load_jsonl,
    render_tree,
    set_tracer,
    use_tracer,
)

__all__ = [
    "Tracer",
    "Span",
    "SpanEvent",
    "get_tracer",
    "set_tracer",
    "use_tracer",
    "load_jsonl",
    "render_tree",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "NetworkMetricsObserver",
    "get_metrics",
    "set_metrics",
    "use_metrics",
    "watch_network",
    "cost_breakdown",
    "kind_breakdown",
    "render_report",
    "report_from_jsonl",
]
